// Experiment E15: concurrency and group commit. Two questions the MVCC
// split raises, measured: (1) do reader sessions scale — OpenSession is a
// shared_ptr grab and every evaluation runs on an immutable snapshot, so
// adding reader threads should add throughput; (2) what does group commit
// buy — batching N sentences into one WAL record + one fsync should move
// commit throughput from the fsync floor toward the apply floor as the
// batch grows.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>

#include "rollback/concurrent_executor.h"
#include "storage/env.h"
#include "workload/generator.h"

namespace ttra {
namespace {

constexpr char kDir[] = "/tmp/ttra_bench_concurrent";

Schema BenchSchema() {
  return *Schema::Make({{"id", ValueType::kInt}, {"v", ValueType::kInt}});
}

void ResetDir(Env* env) {
  (void)env->Remove(std::string(kDir) + "/wal.log");
  (void)env->Remove(std::string(kDir) + "/checkpoint.db");
  (void)env->Remove(std::string(kDir) + "/checkpoint.db.tmp");
}

/// Commits/sec vs group-commit batch size, sync policy kAlways (every
/// acknowledged batch is fsync'ed). The bench thread submits
/// asynchronously and bounds the in-flight window, so the writer sees a
/// standing backlog and batches fill naturally up to max_batch; batch
/// size 1 degenerates to one fsync per sentence — the E11 floor.
void BM_GroupCommitThroughput(benchmark::State& state) {
  Env* env = Env::Default();
  ResetDir(env);
  ConcurrentOptions options;
  options.durable.sync_policy = SyncPolicy::kAlways;
  options.group_commit.max_batch = static_cast<size_t>(state.range(0));
  options.group_commit.max_latency = std::chrono::microseconds(0);
  ConcurrentExecutor exec(env, kDir, options);
  if (!exec.Start().ok()) {
    state.SkipWithError("cannot start executor");
    return;
  }
  const Schema schema = BenchSchema();
  workload::Generator gen(17);
  if (!exec.Submit(Command{DefineRelationCmd{
                       "emp", RelationType::kSnapshot, schema}})
           .ok()) {
    state.SkipWithError("define failed");
    return;
  }
  std::vector<std::vector<Command>> sentences;
  for (int i = 0; i < 128; ++i) {
    sentences.push_back({ModifySnapshotCmd{"emp", gen.RandomState(schema, 8)}});
  }
  size_t next = 0;
  std::deque<std::future<Result<TransactionNumber>>> inflight;
  for (auto _ : state) {
    inflight.push_back(exec.SubmitAsync(sentences[next]));
    next = (next + 1) % sentences.size();
    // A bounded window keeps memory flat and guarantees each counted
    // iteration is (or is about to be) durably committed.
    while (inflight.size() >= 256) {
      if (!inflight.front().get().ok()) {
        state.SkipWithError("commit failed");
        return;
      }
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    (void)inflight.front().get();
    inflight.pop_front();
  }
  const ConcurrentExecutor::Stats stats = exec.stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["fsyncs"] = static_cast<double>(stats.wal.syncs);
  state.counters["batches"] = static_cast<double>(stats.batches);
  state.counters["avg_batch"] =
      stats.batches == 0
          ? 0.0
          : static_cast<double>(stats.commits) /
                static_cast<double>(stats.batches);
  exec.Stop();
  ResetDir(env);
}
BENCHMARK(BM_GroupCommitThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ArgName("max_batch")
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Reader-session scaling, 1→16 threads: every thread opens a pinned
/// session and evaluates ρ(emp, n) for random committed n. The database
/// holds 64 committed states under the delta engine with a small
/// FINDSTATE cache, so reads mix cache hits with log reconstruction —
/// the realistic mix a hot rollback relation serves.
ConcurrentExecutor* g_read_exec = nullptr;

void BM_ReaderSessionScaling(benchmark::State& state) {
  if (state.thread_index() == 0) {
    Env* env = Env::Default();
    ResetDir(env);
    ConcurrentOptions options;
    options.durable.db.storage = StorageKind::kDelta;
    options.durable.db.checkpoint_interval = 8;
    options.durable.db.findstate_cache_capacity = 8;
    g_read_exec = new ConcurrentExecutor(env, kDir, options);
    if (!g_read_exec->Start().ok()) {
      state.SkipWithError("cannot start executor");
      return;
    }
    const Schema schema = BenchSchema();
    workload::Generator gen(29);
    (void)g_read_exec->Submit(Command{
        DefineRelationCmd{"emp", RelationType::kRollback, schema}});
    for (int i = 0; i < 64; ++i) {
      (void)g_read_exec->Submit(
          Command{ModifySnapshotCmd{"emp", gen.RandomState(schema, 32)}});
    }
  }
  uint64_t salt = static_cast<uint64_t>(state.thread_index()) + 1;
  uint64_t failures = 0;
  for (auto _ : state) {
    Session session = g_read_exec->OpenSession();
    salt = salt * 6364136223846793005u + 1442695040888963407u;
    const TransactionNumber txn = 2 + (salt >> 33) % (session.epoch() - 1);
    auto result = session.Rollback("emp", txn);
    if (!result.ok()) ++failures;
    benchmark::DoNotOptimize(result);
  }
  if (failures != 0) state.SkipWithError("rollback failed");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    g_read_exec->Stop();
    delete g_read_exec;
    g_read_exec = nullptr;
    ResetDir(Env::Default());
  }
}
BENCHMARK(BM_ReaderSessionScaling)
    ->ThreadRange(1, 16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Raw physical floor under the executors: N framed records in ONE
/// Env::Append plus one fsync, vs N separate append+fsync round trips.
/// The ratio bounds what any group-commit policy can recover.
void BM_WalBatchedAppendSync(benchmark::State& state) {
  Env* env = Env::Default();
  (void)env->CreateDir(kDir);
  const std::string path = std::string(kDir) + "/raw.log";
  WalWriter writer(env, path);
  if (!writer.Create().ok()) {
    state.SkipWithError("cannot create wal");
    return;
  }
  const size_t batch = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  const std::vector<std::string> payloads(batch, std::string(256, 'x'));
  for (auto _ : state) {
    if (batched) {
      if (!writer.AddRecords(payloads).ok() || !writer.Sync().ok()) {
        state.SkipWithError("wal write failed");
        return;
      }
    } else {
      for (const std::string& payload : payloads) {
        if (!writer.AddRecord(payload).ok() || !writer.Sync().ok()) {
          state.SkipWithError("wal write failed");
          return;
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  (void)env->Remove(path);
}
BENCHMARK(BM_WalBatchedAppendSync)
    ->ArgsProduct({{8, 64}, {0, 1}})
    ->ArgNames({"records", "batched"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ttra
