// Experiments E6/E7: the historical algebra under transaction time.
// Measures ρ̂ as temporal history grows, the δ_{G,V} operator against
// interval count per tuple, and the historical operators — showing the
// identical rollback construction carries over (orthogonality).

#include <benchmark/benchmark.h>

#include "historical/haggregate.h"
#include "historical/hoperators.h"
#include "rollback/database.h"
#include "workload/generator.h"

namespace ttra {
namespace {

namespace hops = historical_ops;

Database BuildTemporal(size_t history, size_t state_size,
                       StorageKind kind = StorageKind::kFullCopy) {
  workload::Generator gen(29);
  Database db(DatabaseOptions{kind, 16});
  const Schema schema = *Schema::Make({{"id", ValueType::kInt},
                                       {"name", ValueType::kString}});
  (void)db.DefineRelation("t", RelationType::kTemporal, schema);
  HistoricalState state = gen.RandomHistoricalState(schema, state_size);
  for (size_t i = 0; i < history; ++i) {
    (void)db.ModifyState("t", state);
    state = gen.MutateState(state, 0.1);
  }
  return db;
}

// ρ̂(t, N) at the middle of a growing history — mirrors BM_Rollback* of
// experiment E2, over historical states.
void RunHrho(benchmark::State& state, StorageKind kind) {
  const size_t history = static_cast<size_t>(state.range(0));
  Database db = BuildTemporal(history, 128, kind);
  const TransactionNumber middle = 1 + history / 2;
  for (auto _ : state) {
    auto result = db.RollbackHistorical("t", middle);
    benchmark::DoNotOptimize(result);
  }
  state.counters["bytes"] = static_cast<double>(db.ApproxBytes());
}

void BM_HrhoFullCopy(benchmark::State& state) {
  RunHrho(state, StorageKind::kFullCopy);
}
void BM_HrhoDelta(benchmark::State& state) {
  RunHrho(state, StorageKind::kDelta);
}
void BM_HrhoCheckpoint(benchmark::State& state) {
  RunHrho(state, StorageKind::kCheckpoint);
}
BENCHMARK(BM_HrhoFullCopy)->Range(16, 1024);
BENCHMARK(BM_HrhoDelta)->Range(16, 1024);
BENCHMARK(BM_HrhoCheckpoint)->Range(16, 1024);

// δ_{G,V}: valid-time selection + projection as interval complexity grows.
void BM_Delta(benchmark::State& state) {
  const size_t max_intervals = static_cast<size_t>(state.range(0));
  workload::GeneratorOptions options;
  options.max_intervals_per_element = max_intervals;
  workload::Generator gen(31, options);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt}});
  HistoricalState hstate = gen.RandomHistoricalState(schema, 2048);
  TemporalPred g = TemporalPred::Overlaps(
      TemporalExpr::Valid(),
      TemporalExpr::Const(TemporalElement::Span(100, 500)));
  TemporalExpr v = TemporalExpr::Intersect(
      TemporalExpr::Valid(),
      TemporalExpr::Const(TemporalElement::Span(100, 500)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hops::Delta(hstate, g, v));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
  state.counters["max_intervals"] = static_cast<double>(max_intervals);
}
BENCHMARK(BM_Delta)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Historical operator throughput vs cardinality (the ∪̂ −̂ ×̂ π̂ σ̂ costs).
void BM_HistoricalUnion(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(37);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt}});
  HistoricalState a = gen.RandomHistoricalState(schema, n);
  HistoricalState b = gen.RandomHistoricalState(schema, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hops::Union(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_HistoricalUnion)->Range(64, 16384);

void BM_HistoricalDifference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(41);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt}});
  HistoricalState a = gen.RandomHistoricalState(schema, n);
  HistoricalState b = gen.RandomHistoricalState(schema, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hops::Difference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HistoricalDifference)->Range(64, 16384);

void BM_HistoricalProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(43);
  HistoricalState a = gen.RandomHistoricalState(
      *Schema::Make({{"x", ValueType::kInt}}), n);
  HistoricalState b = gen.RandomHistoricalState(
      *Schema::Make({{"y", ValueType::kInt}}), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hops::Product(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_HistoricalProduct)->Range(8, 256);

// Temporal aggregation (interval partitioning): cost vs tuple count.
// Slab count grows with total interval count, so this is the quadratic-ish
// worst case of the historical algebra — worth tracking.
void BM_TemporalAggregate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(53);
  HistoricalState a = gen.RandomHistoricalState(
      *Schema::Make({{"dept", ValueType::kString},
                     {"salary", ValueType::kInt}}),
      n);
  const std::vector<AggregateDef> defs = {
      {"cnt", AggFunc::kCount, ""},
      {"total", AggFunc::kSum, "salary"},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(hops::Aggregate(a, {"dept"}, defs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TemporalAggregate)->Range(16, 512);

// Timeslice: reconstructing a snapshot from an historical state.
void BM_SnapshotAt(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(47);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt}});
  HistoricalState a = gen.RandomHistoricalState(schema, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.SnapshotAt(500));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SnapshotAt)->Range(64, 16384);

}  // namespace
}  // namespace ttra
