// Experiment E4: modify_state throughput. Snapshot relations replace
// their single state; rollback relations append — the paper's two
// dispatch branches of C⟦modify_state⟧. Sweeps state size and, for
// rollback relations, accumulated history (append cost must stay flat:
// the sequence is append-only).

#include <benchmark/benchmark.h>

#include "rollback/commands.h"
#include "rollback/database.h"
#include "workload/generator.h"

namespace ttra {
namespace {

void RunModify(benchmark::State& state, RelationType type,
               StorageKind storage) {
  const size_t state_size = static_cast<size_t>(state.range(0));
  workload::Generator gen(17);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt},
                                       {"payload", ValueType::kString}});
  // Pre-generate a cycle of evolved states.
  std::vector<SnapshotState> states;
  SnapshotState current = gen.RandomState(schema, state_size);
  for (int i = 0; i < 32; ++i) {
    states.push_back(current);
    current = gen.MutateState(current, 0.1);
  }
  Database db(DatabaseOptions{storage, 16});
  (void)db.DefineRelation("r", type, schema);
  size_t next = 0;
  for (auto _ : state) {
    // Rollback relations are append-only; cap resident history so long
    // benchmark runs measure steady-state appends, not allocator pressure.
    if (db.Find("r")->history_length() >= 1024) {
      state.PauseTiming();
      db = Database(DatabaseOptions{storage, 16});
      (void)db.DefineRelation("r", type, schema);
      state.ResumeTiming();
    }
    Status status = db.ModifyState("r", states[next]);
    benchmark::DoNotOptimize(status);
    next = (next + 1) % states.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["state_size"] = static_cast<double>(state_size);
}

void BM_ModifySnapshot(benchmark::State& state) {
  RunModify(state, RelationType::kSnapshot, StorageKind::kFullCopy);
}
void BM_ModifyRollbackFullCopy(benchmark::State& state) {
  RunModify(state, RelationType::kRollback, StorageKind::kFullCopy);
}
void BM_ModifyRollbackDelta(benchmark::State& state) {
  RunModify(state, RelationType::kRollback, StorageKind::kDelta);
}
void BM_ModifyRollbackCheckpoint(benchmark::State& state) {
  RunModify(state, RelationType::kRollback, StorageKind::kCheckpoint);
}

BENCHMARK(BM_ModifySnapshot)->Range(16, 4096);
BENCHMARK(BM_ModifyRollbackFullCopy)->Range(16, 4096);
BENCHMARK(BM_ModifyRollbackDelta)->Range(16, 4096);
BENCHMARK(BM_ModifyRollbackCheckpoint)->Range(16, 4096);

// Temporal relations: the identical construction over historical states
// (orthogonality in action at the update path).
void BM_ModifyTemporal(benchmark::State& state) {
  const size_t state_size = static_cast<size_t>(state.range(0));
  workload::Generator gen(19);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt}});
  std::vector<HistoricalState> states;
  HistoricalState current = gen.RandomHistoricalState(schema, state_size);
  for (int i = 0; i < 32; ++i) {
    states.push_back(current);
    current = gen.MutateState(current, 0.1);
  }
  Database db(DatabaseOptions{StorageKind::kDelta, 16});
  (void)db.DefineRelation("t", RelationType::kTemporal, schema);
  size_t next = 0;
  for (auto _ : state) {
    if (db.Find("t")->history_length() >= 1024) {
      state.PauseTiming();
      db = Database(DatabaseOptions{StorageKind::kDelta, 16});
      (void)db.DefineRelation("t", RelationType::kTemporal, schema);
      state.ResumeTiming();
    }
    Status status = db.ModifyState("t", states[next]);
    benchmark::DoNotOptimize(status);
    next = (next + 1) % states.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModifyTemporal)->Range(16, 1024);

// Whole-sentence evaluation: P⟦·⟧ from the empty database, command count
// sweep — the end-to-end denotational pipeline.
void BM_EvalSentence(benchmark::State& state) {
  const size_t updates = static_cast<size_t>(state.range(0));
  workload::Generator gen(23);
  auto commands = gen.RandomCommandStream("r", RelationType::kRollback,
                                          updates, 64, 0.2);
  for (auto _ : state) {
    auto db = EvalSentence(commands);
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() * updates);
}
BENCHMARK(BM_EvalSentence)->Range(8, 512);

}  // namespace
}  // namespace ttra
