// Experiment E9: throughput of the five snapshot-algebra operators (and
// the derived joins) as state cardinality grows. Establishes the baseline
// costs every other experiment builds on.

#include <benchmark/benchmark.h>

#include "snapshot/aggregate.h"
#include "snapshot/operators.h"
#include "workload/generator.h"

namespace ttra {
namespace {

namespace ops = snapshot_ops;

constexpr uint64_t kSeed = 42;

SnapshotState MakeState(size_t n, uint64_t salt) {
  workload::Generator gen(kSeed + salt);
  return gen.RandomState(
      *Schema::Make({{"id", ValueType::kInt},
                     {"name", ValueType::kString},
                     {"score", ValueType::kDouble}}),
      n);
}

void BM_Union(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SnapshotState a = MakeState(n, 1);
  SnapshotState b = MakeState(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Union(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_Union)->Range(64, 65536);

void BM_Difference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SnapshotState a = MakeState(n, 1);
  SnapshotState b = MakeState(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Difference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_Difference)->Range(64, 65536);

void BM_Select(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SnapshotState a = MakeState(n, 1);
  Predicate p = Predicate::AttrCompare("id", CompareOp::kLt, Value::Int(50));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Select(a, p));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Select)->Range(64, 65536);

void BM_Project(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SnapshotState a = MakeState(n, 1);
  const std::vector<std::string> attrs = {"name"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Project(a, attrs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Project)->Range(64, 65536);

void BM_Product(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(kSeed);
  SnapshotState a = gen.RandomState(
      *Schema::Make({{"x", ValueType::kInt}}), n);
  SnapshotState b = gen.RandomState(
      *Schema::Make({{"y", ValueType::kInt}}), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Product(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Product)->Range(8, 512);

void BM_NaturalJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(kSeed);
  SnapshotState a = gen.RandomState(
      *Schema::Make({{"k", ValueType::kInt}, {"x", ValueType::kInt}}), n);
  SnapshotState b = gen.RandomState(
      *Schema::Make({{"k", ValueType::kInt}, {"y", ValueType::kInt}}), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::NaturalJoin(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NaturalJoin)->Range(8, 512);

void BM_Aggregate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Generator gen(kSeed);
  SnapshotState a = gen.RandomState(
      *Schema::Make({{"dept", ValueType::kString},
                     {"salary", ValueType::kInt}}),
      n);
  const std::vector<AggregateDef> defs = {
      {"cnt", AggFunc::kCount, ""},
      {"total", AggFunc::kSum, "salary"},
      {"hi", AggFunc::kMax, "salary"},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(Aggregate(a, {"dept"}, defs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Aggregate)->Range(64, 65536);

// --- Experiment E12: hash equijoin vs. materialized product-then-select ---
//
// A selective equijoin (keys drawn from a wide domain, so most pairs do
// not match) is where the fused hash kernel pays off: the product path
// materializes n*m tuples before discarding nearly all of them.

SnapshotState JoinOperand(size_t n, uint64_t salt, const char* key,
                          const char* payload) {
  workload::GeneratorOptions options;
  options.value_range = static_cast<int64_t>(n) * 4;  // selective keys
  workload::Generator gen(kSeed + salt, options);
  return gen.RandomState(*Schema::Make({{key, ValueType::kInt},
                                        {payload, ValueType::kInt}}),
                         n);
}

void BM_EquiJoinHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SnapshotState a = JoinOperand(n, 1, "a0", "a1");
  SnapshotState b = JoinOperand(n, 2, "b0", "b1");
  const Predicate pred = Predicate::Comparison(
      Operand::Attr("a0"), CompareOp::kEq, Operand::Attr("b0"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::ThetaJoin(a, b, pred));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_EquiJoinHash)->Range(64, 4096);

void BM_EquiJoinProductSelect(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SnapshotState a = JoinOperand(n, 1, "a0", "a1");
  SnapshotState b = JoinOperand(n, 2, "b0", "b1");
  const Predicate pred = Predicate::Comparison(
      Operand::Attr("a0"), CompareOp::kEq, Operand::Attr("b0"));
  for (auto _ : state) {
    auto product = ops::Product(a, b);
    benchmark::DoNotOptimize(ops::Select(*product, pred));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_EquiJoinProductSelect)->Range(64, 4096);

void BM_PredicateDepth(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  SnapshotState a = MakeState(4096, 1);
  workload::Generator gen(kSeed);
  Predicate p = gen.RandomPredicate(a.schema(), depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Select(a, p));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PredicateDepth)->DenseRange(0, 6, 2);

}  // namespace
}  // namespace ttra
