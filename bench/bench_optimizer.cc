// Experiment E1: the preserved algebraic laws pay off. Evaluates the same
// queries unoptimized and after rule-based rewriting (selection pushdown
// through ×, σ-merge, σ/π identities). The win grows with operand size
// and predicate selectivity, exactly as classical optimization theory —
// which the paper argues still applies verbatim under transaction time —
// predicts. Also reports the rewriter's own cost.

#include <benchmark/benchmark.h>

#include "lang/evaluator.h"
#include "lang/parser.h"
#include "optimizer/rewriter.h"
#include "workload/generator.h"

namespace ttra {
namespace {

using lang::Catalog;
using lang::Expr;

Database BuildDb(size_t rows) {
  workload::Generator gen(71);
  Database db;
  const Schema left = *Schema::Make({{"a", ValueType::kInt},
                                     {"b", ValueType::kString}});
  const Schema right = *Schema::Make({{"c", ValueType::kInt},
                                      {"d", ValueType::kString}});
  (void)db.DefineRelation("l", RelationType::kRollback, left);
  (void)db.DefineRelation("r", RelationType::kRollback, right);
  (void)db.ModifyState("l", gen.RandomState(left, rows));
  (void)db.ModifyState("r", gen.RandomState(right, rows));
  return db;
}

// σ over a product with per-side conjuncts: the textbook pushdown case.
// selectivity_pct controls how much of each side survives its conjunct.
Expr PushdownQuery(int selectivity_pct) {
  const int64_t cutoff = selectivity_pct;  // values are uniform in [0,100)
  auto expr = lang::ParseExpr(
      "select[a < " + std::to_string(cutoff) + " and c < " +
      std::to_string(cutoff) + " and a = c](rho(l, inf) times rho(r, inf))");
  return *expr;
}

void BM_SelectProductUnoptimized(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int selectivity = static_cast<int>(state.range(1));
  Database db = BuildDb(rows);
  Expr query = PushdownQuery(selectivity);
  for (auto _ : state) {
    auto result = lang::EvalExpr(query, db);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["sel_pct"] = static_cast<double>(selectivity);
}

void BM_SelectProductOptimized(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int selectivity = static_cast<int>(state.range(1));
  Database db = BuildDb(rows);
  Catalog catalog(db);
  Expr query = optimizer::Optimize(PushdownQuery(selectivity), catalog);
  for (auto _ : state) {
    auto result = lang::EvalExpr(query, db);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["sel_pct"] = static_cast<double>(selectivity);
}

void PushdownArgs(benchmark::internal::Benchmark* bench) {
  for (int rows : {64, 256, 1024}) {
    for (int selectivity : {5, 20, 80}) {
      bench->Args({rows, selectivity});
    }
  }
}
BENCHMARK(BM_SelectProductUnoptimized)->Apply(PushdownArgs);
BENCHMARK(BM_SelectProductOptimized)->Apply(PushdownArgs);

// σ-merge: a chain of selections collapses to one conjunction (one pass
// over the state instead of k).
Expr SelectChain(int depth) {
  std::string source = "rho(l, inf)";
  for (int i = 0; i < depth; ++i) {
    source = "select[a != " + std::to_string(i) + "](" + source + ")";
  }
  return *lang::ParseExpr(source);
}

void BM_SelectChainUnoptimized(benchmark::State& state) {
  Database db = BuildDb(4096);
  Expr query = SelectChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::EvalExpr(query, db));
  }
}
void BM_SelectChainOptimized(benchmark::State& state) {
  Database db = BuildDb(4096);
  Catalog catalog(db);
  Expr query = optimizer::Optimize(SelectChain(static_cast<int>(state.range(0))),
                                   catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::EvalExpr(query, db));
  }
}
BENCHMARK(BM_SelectChainUnoptimized)->DenseRange(2, 10, 4);
BENCHMARK(BM_SelectChainOptimized)->DenseRange(2, 10, 4);

// The rewriter's own cost: optimize time per expression node count.
void BM_OptimizeCost(benchmark::State& state) {
  workload::Generator gen(73);
  Database db = BuildDb(16);
  Catalog catalog(db);
  const Schema left = db.Find("l")->schema();
  std::vector<Expr> bases = {Expr::Rollback("l", std::nullopt, false)};
  Expr query = gen.RandomExpr(bases, left, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer::Optimize(query, catalog));
  }
}
BENCHMARK(BM_OptimizeCost)->DenseRange(2, 8, 2);

// Rollback-aware rewriting: rules fire identically below ρ of a past
// transaction, the paper's "full application of previously developed
// algebraic optimizations" with transaction time present.
void BM_PastStateQueryOptimized(benchmark::State& state) {
  workload::Generator gen(79);
  Database db;
  const Schema schema = *Schema::Make({{"a", ValueType::kInt},
                                       {"b", ValueType::kString}});
  (void)db.DefineRelation("l", RelationType::kRollback, schema);
  SnapshotState s = gen.RandomState(schema, 1024);
  for (int i = 0; i < 32; ++i) {
    (void)db.ModifyState("l", s);
    s = gen.MutateState(s, 0.1);
  }
  Catalog catalog(db);
  Expr raw = *lang::ParseExpr(
      "select[a < 10](select[a >= 0](project[a, b](rho(l, 16))))");
  const bool optimize = state.range(0) != 0;
  Expr query = optimize ? optimizer::Optimize(raw, catalog) : raw;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::EvalExpr(query, db));
  }
  state.SetLabel(optimize ? "optimized" : "unoptimized");
}
BENCHMARK(BM_PastStateQueryOptimized)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ttra
