// Experiment E5: the Quel front-end. Measures parse+compile cost of the
// calculus → algebra mapping, end-to-end update throughput through Quel
// vs. hand-written algebra, and confirms the mapping's overhead is a
// constant per statement (the paper's benefit #1 is free in practice).

#include <benchmark/benchmark.h>

#include "lang/evaluator.h"
#include "lang/parser.h"
#include "quel/quel.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Database FreshDb(size_t rows) {
  workload::Generator gen(53);
  Database db;
  const Schema schema = *Schema::Make({{"name", ValueType::kString},
                                       {"salary", ValueType::kInt}});
  (void)db.DefineRelation("emp", RelationType::kRollback, schema);
  (void)db.ModifyState("emp", gen.RandomState(schema, rows));
  return db;
}

void BM_QuelParse(benchmark::State& state) {
  const char* source =
      R"(replace emp set salary = salary + 500 where name = "ed")";
  for (auto _ : state) {
    benchmark::DoNotOptimize(quel::ParseQuel(source));
  }
}
BENCHMARK(BM_QuelParse);

void BM_QuelCompile(benchmark::State& state) {
  Database db = FreshDb(100);
  lang::Catalog catalog(db);
  auto stmt = quel::ParseQuel(
      R"(replace emp set salary = salary + 500 where name = "ed")");
  for (auto _ : state) {
    benchmark::DoNotOptimize(quel::CompileQuel(*stmt, catalog));
  }
}
BENCHMARK(BM_QuelCompile);

// End-to-end: one Quel replace per iteration (parse + compile + execute),
// state size sweep.
void BM_QuelReplaceEndToEnd(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Database db = FreshDb(rows);
  lang::Catalog catalog(db);
  const char* source =
      R"(replace emp set salary = salary + 1 where salary < 50)";
  for (auto _ : state) {
    if (db.Find("emp")->history_length() >= 512) {
      state.PauseTiming();
      db = FreshDb(rows);
      state.ResumeTiming();
    }
    auto stmt = quel::ParseQuel(source);
    auto compiled = quel::CompileQuel(*stmt, catalog);
    Status status = lang::ExecStmt(*compiled, db);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuelReplaceEndToEnd)->Range(16, 4096);

// The same update written directly in the algebra (pre-parsed): the
// difference against BM_QuelReplaceEndToEnd is the front-end's overhead.
void BM_DirectAlgebraReplace(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Database db = FreshDb(rows);
  auto expr = lang::ParseExpr(
      "select[not (salary < 50)](rho(emp, inf)) union "
      "extend[salary = salary + 1](select[salary < 50](rho(emp, inf)))");
  lang::Stmt stmt = lang::ModifyStateStmt{"emp", *expr};
  for (auto _ : state) {
    if (db.Find("emp")->history_length() >= 512) {
      state.PauseTiming();
      db = FreshDb(rows);
      state.ResumeTiming();
    }
    Status status = lang::ExecStmt(stmt, db);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectAlgebraReplace)->Range(16, 4096);

// Statement-mix throughput: append/replace/delete/retrieve round-robin.
void BM_QuelMixedWorkload(benchmark::State& state) {
  Database db = FreshDb(256);
  const char* sources[] = {
      R"(append to emp (name = "new", salary = 10))",
      R"(replace emp set salary = salary + 1 where salary < 30)",
      R"(retrieve emp (name) where salary > 90)",
      R"(delete emp where name = "new")",
  };
  size_t next = 0;
  std::vector<lang::StateValue> outputs;
  for (auto _ : state) {
    if (db.Find("emp")->history_length() >= 512) {
      state.PauseTiming();
      db = FreshDb(256);
      state.ResumeTiming();
    }
    auto stmt = quel::ParseQuel(sources[next]);
    auto compiled = quel::CompileQuel(*stmt, lang::Catalog(db));
    outputs.clear();
    Status status = lang::ExecStmt(*compiled, db, &outputs);
    benchmark::DoNotOptimize(status);
    next = (next + 1) % 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuelMixedWorkload);

}  // namespace
}  // namespace ttra
