// Experiment E2: cost of the rollback operator ρ(R, N) as history length
// grows, for each storage engine and for three probe positions (oldest
// state, middle, current). The paper's direct semantics (full-copy) gives
// O(log h) lookups; delta pays O(h) replay; checkpointed delta bounds the
// replay by the checkpoint interval.

#include <benchmark/benchmark.h>

#include "rollback/database.h"
#include "workload/generator.h"

namespace ttra {
namespace {

constexpr size_t kStateSize = 256;
constexpr double kChurn = 0.1;

Database BuildDatabase(StorageKind kind, size_t history,
                       size_t checkpoint_interval,
                       size_t cache_capacity = kDefaultFindStateCacheCapacity) {
  workload::Generator gen(7);
  Database db(DatabaseOptions{kind, checkpoint_interval, cache_capacity});
  const Schema schema = *Schema::Make({{"id", ValueType::kInt},
                                       {"payload", ValueType::kString}});
  (void)db.DefineRelation("r", RelationType::kRollback, schema);
  SnapshotState state = gen.RandomState(schema, kStateSize);
  for (size_t i = 0; i < history; ++i) {
    (void)db.ModifyState("r", state);
    state = gen.MutateState(state, kChurn);
  }
  return db;
}

enum Probe { kOldest = 0, kMiddle = 1, kCurrent = 2 };

void RunRollback(benchmark::State& state, StorageKind kind) {
  const size_t history = static_cast<size_t>(state.range(0));
  const Probe probe = static_cast<Probe>(state.range(1));
  Database db = BuildDatabase(kind, history, 16);
  const TransactionNumber target =
      probe == kOldest ? 2
      : probe == kMiddle ? 1 + history / 2
                         : db.transaction_number();
  for (auto _ : state) {
    auto result = db.Rollback("r", target);
    benchmark::DoNotOptimize(result);
  }
  state.counters["history"] = static_cast<double>(history);
  state.counters["bytes"] = static_cast<double>(db.ApproxBytes());
}

void BM_RollbackFullCopy(benchmark::State& state) {
  RunRollback(state, StorageKind::kFullCopy);
}
void BM_RollbackDelta(benchmark::State& state) {
  RunRollback(state, StorageKind::kDelta);
}
void BM_RollbackCheckpoint(benchmark::State& state) {
  RunRollback(state, StorageKind::kCheckpoint);
}
void BM_RollbackReverseDelta(benchmark::State& state) {
  RunRollback(state, StorageKind::kReverseDelta);
}

void RollbackArgs(benchmark::internal::Benchmark* bench) {
  for (int history : {16, 64, 256, 1024}) {
    for (int probe : {kOldest, kMiddle, kCurrent}) {
      bench->Args({history, probe});
    }
  }
}

BENCHMARK(BM_RollbackFullCopy)->Apply(RollbackArgs);
BENCHMARK(BM_RollbackDelta)->Apply(RollbackArgs);
BENCHMARK(BM_RollbackCheckpoint)->Apply(RollbackArgs);
BENCHMARK(BM_RollbackReverseDelta)->Apply(RollbackArgs);

// ρ(R, ∞) — the common case: always the tail, cheap for every engine.
void BM_RollbackCurrentInf(benchmark::State& state) {
  const StorageKind kind = static_cast<StorageKind>(state.range(0));
  Database db = BuildDatabase(kind, 256, 16);
  for (auto _ : state) {
    auto result = db.Rollback("r");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::string(StorageKindName(kind)));
}
BENCHMARK(BM_RollbackCurrentInf)->DenseRange(0, 3);

// --- Experiment E12: repeated ρ(R, N) with the FINDSTATE cache on/off ---
//
// Rolling a delta-backed relation repeatedly to the same past transaction
// is the worst case for pure replay (O(history) per call) and the best
// case for the reconstruction cache (O(1) after the first call).

void RunRepeatedRollback(benchmark::State& state, size_t cache_capacity) {
  const size_t history = static_cast<size_t>(state.range(0));
  Database db = BuildDatabase(StorageKind::kDelta, history, 16,
                              cache_capacity);
  const TransactionNumber middle = 1 + history / 2;
  for (auto _ : state) {
    auto result = db.Rollback("r", middle);
    benchmark::DoNotOptimize(result);
  }
  state.counters["history"] = static_cast<double>(history);
}

void BM_RepeatedRollbackDeltaCached(benchmark::State& state) {
  RunRepeatedRollback(state, kDefaultFindStateCacheCapacity);
}
void BM_RepeatedRollbackDeltaUncached(benchmark::State& state) {
  RunRepeatedRollback(state, 0);
}
BENCHMARK(BM_RepeatedRollbackDeltaCached)->Range(64, 1024);
BENCHMARK(BM_RepeatedRollbackDeltaUncached)->Range(64, 1024);

// Checkpoint-interval sweep at fixed history: the E2/E3 tradeoff dial.
void BM_RollbackCheckpointInterval(benchmark::State& state) {
  const size_t interval = static_cast<size_t>(state.range(0));
  Database db = BuildDatabase(StorageKind::kCheckpoint, 512, interval);
  const TransactionNumber middle = 1 + 256;
  for (auto _ : state) {
    auto result = db.Rollback("r", middle);
    benchmark::DoNotOptimize(result);
  }
  state.counters["interval"] = static_cast<double>(interval);
  state.counters["bytes"] = static_cast<double>(db.ApproxBytes());
}
BENCHMARK(BM_RollbackCheckpointInterval)->RangeMultiplier(4)->Range(1, 256);

}  // namespace
}  // namespace ttra
