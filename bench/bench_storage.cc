// Experiment E3: the storage/retrieval tradeoff the paper explicitly
// leaves to "more efficient implementations" (§2). Measures, per engine:
//   * bytes per recorded transaction as the update ratio varies, and
//   * FINDSTATE latency at a random past transaction.
// Full-copy is the paper's direct semantics; delta and checkpointed delta
// are the optimized realizations proven equivalent by the test suite.

#include <benchmark/benchmark.h>

#include "storage/serialize.h"
#include "storage/state_log.h"
#include "workload/generator.h"

namespace ttra {
namespace {

constexpr size_t kHistory = 200;
constexpr size_t kStateSize = 500;

std::unique_ptr<StateLog<SnapshotState>> BuildLog(StorageKind kind,
                                                  double churn,
                                                  size_t interval) {
  workload::Generator gen(11);
  auto log = MakeStateLog<SnapshotState>(kind, interval);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt},
                                       {"payload", ValueType::kString}});
  SnapshotState state = gen.RandomState(schema, kStateSize);
  for (size_t i = 0; i < kHistory; ++i) {
    (void)log->Append(state, i + 1);
    state = gen.MutateState(state, churn);
  }
  return log;
}

// churn is permille (range args must be integers).
void RunSpace(benchmark::State& state, StorageKind kind) {
  const double churn = static_cast<double>(state.range(0)) / 1000.0;
  auto log = BuildLog(kind, churn, 16);
  // Space is a property of the built log, not of an inner loop; the timed
  // region measures a full FINDSTATE at the middle as the retrieval cost
  // that buys that space.
  for (auto _ : state) {
    benchmark::DoNotOptimize(log->StateAt(kHistory / 2));
  }
  state.counters["bytes_per_txn"] =
      static_cast<double>(log->ApproxBytes()) / kHistory;
  state.counters["churn_permille"] = static_cast<double>(state.range(0));
}

void BM_SpaceFullCopy(benchmark::State& state) {
  RunSpace(state, StorageKind::kFullCopy);
}
void BM_SpaceDelta(benchmark::State& state) {
  RunSpace(state, StorageKind::kDelta);
}
void BM_SpaceCheckpoint(benchmark::State& state) {
  RunSpace(state, StorageKind::kCheckpoint);
}
void BM_SpaceReverseDelta(benchmark::State& state) {
  RunSpace(state, StorageKind::kReverseDelta);
}

BENCHMARK(BM_SpaceFullCopy)->Arg(10)->Arg(50)->Arg(200)->Arg(500);
BENCHMARK(BM_SpaceDelta)->Arg(10)->Arg(50)->Arg(200)->Arg(500);
BENCHMARK(BM_SpaceCheckpoint)->Arg(10)->Arg(50)->Arg(200)->Arg(500);
BENCHMARK(BM_SpaceReverseDelta)->Arg(10)->Arg(50)->Arg(200)->Arg(500);

// Checkpoint-interval sweep: interval 1 ≈ full-copy space, interval ∞ ≈
// delta space; retrieval cost moves the other way.
void BM_CheckpointIntervalSpace(benchmark::State& state) {
  const size_t interval = static_cast<size_t>(state.range(0));
  auto log = BuildLog(StorageKind::kCheckpoint, 0.05, interval);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log->StateAt(kHistory / 2));
  }
  state.counters["bytes_per_txn"] =
      static_cast<double>(log->ApproxBytes()) / kHistory;
  state.counters["interval"] = static_cast<double>(interval);
}
BENCHMARK(BM_CheckpointIntervalSpace)->RangeMultiplier(2)->Range(1, 128);

// Append cost: what each engine pays at modify_state time.
void RunAppend(benchmark::State& state, StorageKind kind) {
  workload::Generator gen(13);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt},
                                       {"payload", ValueType::kString}});
  SnapshotState base = gen.RandomState(schema, kStateSize);
  // Pre-generate mutated states so generation cost stays out of the loop.
  std::vector<SnapshotState> states;
  states.reserve(64);
  SnapshotState current = base;
  for (int i = 0; i < 64; ++i) {
    states.push_back(current);
    current = gen.MutateState(current, 0.1);
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto log = MakeStateLog<SnapshotState>(kind, 16);
    state.ResumeTiming();
    for (size_t i = 0; i < states.size(); ++i) {
      (void)log->Append(states[i], i + 1);
    }
    benchmark::DoNotOptimize(log);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_AppendFullCopy(benchmark::State& state) {
  RunAppend(state, StorageKind::kFullCopy);
}
void BM_AppendDelta(benchmark::State& state) {
  RunAppend(state, StorageKind::kDelta);
}
void BM_AppendCheckpoint(benchmark::State& state) {
  RunAppend(state, StorageKind::kCheckpoint);
}
void BM_AppendReverseDelta(benchmark::State& state) {
  RunAppend(state, StorageKind::kReverseDelta);
}
BENCHMARK(BM_AppendFullCopy);
BENCHMARK(BM_AppendDelta);
BENCHMARK(BM_AppendCheckpoint);
BENCHMARK(BM_AppendReverseDelta);

// Serialization throughput with checksum verification.
void BM_SerializeRoundTrip(benchmark::State& state) {
  auto log = BuildLog(StorageKind::kFullCopy, 0.1, 16);
  auto sequence = MaterializeSequence(*log);
  sequence.resize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string encoded = EncodeStateSequence(sequence);
    auto decoded = DecodeStateSequence<SnapshotState>(encoded);
    benchmark::DoNotOptimize(decoded);
    state.counters["encoded_bytes"] = static_cast<double>(encoded.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ttra
