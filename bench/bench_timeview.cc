// Experiment E8: our ρ̂ + valid-time timeslice vs. Ben-Zvi's Time-View
// (paper §5). Both answer the bitemporal point query "tuples valid at tv
// as recorded at tt"; the TRM keeps one flat interval-stamped table while
// the temporal relation keeps a state sequence. The benchmark sweeps
// history length and probes both query paths plus storage cost.

#include <benchmark/benchmark.h>

#include "benzvi/trm.h"
#include "rollback/database.h"
#include "workload/generator.h"

namespace ttra {
namespace {

struct Setup {
  Database db;
  benzvi::TrmRelation trm{Schema()};
};

Setup Build(size_t history, size_t state_size, StorageKind kind) {
  workload::Generator gen(61);
  Setup setup;
  setup.db = Database(DatabaseOptions{kind, 16});
  const Schema schema = *Schema::Make({{"id", ValueType::kInt},
                                       {"name", ValueType::kString}});
  (void)setup.db.DefineRelation("t", RelationType::kTemporal, schema);
  HistoricalState state = gen.RandomHistoricalState(schema, state_size);
  for (size_t i = 0; i < history; ++i) {
    (void)setup.db.ModifyState("t", state);
    state = gen.MutateState(state, 0.1);
  }
  auto trm = benzvi::TrmRelation::FromTemporal(*setup.db.Find("t"));
  setup.trm = *std::move(trm);
  return setup;
}

// ρ̂(t, tt) then timeslice at tv — our two-step path.
void RunRhoSlice(benchmark::State& state, StorageKind kind) {
  const size_t history = static_cast<size_t>(state.range(0));
  Setup setup = Build(history, 128, kind);
  const TransactionNumber tt = 1 + history / 2;
  for (auto _ : state) {
    auto rolled = setup.db.RollbackHistorical("t", tt);
    benchmark::DoNotOptimize(rolled->SnapshotAt(500));
  }
  state.counters["temporal_bytes"] =
      static_cast<double>(setup.db.ApproxBytes());
}

void BM_RhoSliceFullCopy(benchmark::State& state) {
  RunRhoSlice(state, StorageKind::kFullCopy);
}
void BM_RhoSliceDelta(benchmark::State& state) {
  RunRhoSlice(state, StorageKind::kDelta);
}
BENCHMARK(BM_RhoSliceFullCopy)->Range(16, 1024);
BENCHMARK(BM_RhoSliceDelta)->Range(16, 1024);

// Ben-Zvi's one-step Time-View over the flat interval table.
void BM_TimeView(benchmark::State& state) {
  const size_t history = static_cast<size_t>(state.range(0));
  Setup setup = Build(history, 128, StorageKind::kFullCopy);
  const TransactionNumber tt = 1 + history / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.trm.TimeView(500, tt));
  }
  state.counters["trm_rows"] = static_cast<double>(setup.trm.size());
  state.counters["trm_bytes"] = static_cast<double>(setup.trm.ApproxBytes());
}
BENCHMARK(BM_TimeView)->Range(16, 1024);

// Reconstructing the *full* history at tt: here the sequence-of-states
// model wins structurally — TRM must scan and regroup every row, while
// ρ̂ is a FINDSTATE lookup. This is the composability asymmetry §5 argues.
void BM_FullHistoryViaRho(benchmark::State& state) {
  const size_t history = static_cast<size_t>(state.range(0));
  Setup setup = Build(history, 128, StorageKind::kFullCopy);
  const TransactionNumber tt = 1 + history / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.db.RollbackHistorical("t", tt));
  }
}
BENCHMARK(BM_FullHistoryViaRho)->Range(16, 1024);

void BM_FullHistoryViaTrm(benchmark::State& state) {
  const size_t history = static_cast<size_t>(state.range(0));
  Setup setup = Build(history, 128, StorageKind::kFullCopy);
  const TransactionNumber tt = 1 + history / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.trm.HistoricalAsOf(tt));
  }
}
BENCHMARK(BM_FullHistoryViaTrm)->Range(16, 1024);

// Maintenance: applying one more version to each representation.
void BM_TrmApplyVersion(benchmark::State& state) {
  workload::Generator gen(67);
  const Schema schema = *Schema::Make({{"id", ValueType::kInt}});
  std::vector<HistoricalState> states;
  HistoricalState current = gen.RandomHistoricalState(schema, 128);
  for (int i = 0; i < 64; ++i) {
    states.push_back(current);
    current = gen.MutateState(current, 0.1);
  }
  for (auto _ : state) {
    state.PauseTiming();
    benzvi::TrmRelation trm(schema);
    state.ResumeTiming();
    for (size_t i = 0; i < states.size(); ++i) {
      (void)trm.ApplyVersion(states[i], i + 1);
    }
    benchmark::DoNotOptimize(trm);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TrmApplyVersion);

}  // namespace
}  // namespace ttra
