// Experiment E11: the price of durability. The paper's semantics make the
// committed command sequence the database (C⟦·⟧), so crash safety reduces
// to making that sequence durable before acknowledging each commit. This
// measures commit throughput through DurableExecutor under the three sync
// policies — always (sync per commit), batch (bounded loss window), never
// (checkpoint-only durability) — plus the raw WAL append/sync floor.

#include <benchmark/benchmark.h>

#include "rollback/durable_executor.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "workload/generator.h"

namespace ttra {
namespace {

constexpr size_t kTuplesPerState = 32;

Command NextCommand(workload::Generator& gen, const Schema& schema) {
  return ModifySnapshotCmd{"emp", gen.RandomState(schema, kTuplesPerState)};
}

// Raw floor: append-and-fsync a WAL record with no executor on top. The
// payload size matches a typical encoded modify_state command.
void BM_WalAppendSync(benchmark::State& state) {
  Env* env = Env::Default();
  const std::string path = "/tmp/ttra_bench_wal.log";
  WalWriter writer(env, path);
  if (!writer.Create().ok()) {
    state.SkipWithError("cannot create wal");
    return;
  }
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  const bool sync = state.range(1) != 0;
  for (auto _ : state) {
    if (!writer.AddRecord(payload).ok() || (sync && !writer.Sync().ok())) {
      state.SkipWithError("wal write failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  (void)env->Remove(path);
}
BENCHMARK(BM_WalAppendSync)
    ->ArgsProduct({{256, 4096}, {0, 1}})
    ->ArgNames({"bytes", "sync"});

void RunCommitThroughput(benchmark::State& state, SyncPolicy policy,
                         size_t batch_size) {
  Env* env = Env::Default();
  DurableOptions options;
  options.sync_policy = policy;
  options.batch_size = batch_size;
  DurableExecutor exec(env, "/tmp/ttra_bench_wal_dir", options);
  // Fresh state per run: discard whatever the previous run left behind.
  (void)env->Remove(exec.wal_path());
  (void)env->Remove(exec.checkpoint_path());
  if (!exec.Open().ok()) {
    state.SkipWithError("cannot open durable executor");
    return;
  }
  const Schema schema = *Schema::Make(
      {{"id", ValueType::kInt}, {"payload", ValueType::kString}});
  workload::Generator gen(23);
  if (!exec.Submit(DefineRelationCmd{"emp", RelationType::kSnapshot, schema})
           .ok()) {
    state.SkipWithError("define failed");
    return;
  }
  // Pre-generate states so the timed loop measures logging + apply, not
  // workload generation.
  std::vector<Command> commands;
  for (int i = 0; i < 64; ++i) commands.push_back(NextCommand(gen, schema));
  size_t next = 0;
  for (auto _ : state) {
    if (!exec.Submit(commands[next]).ok()) {
      state.SkipWithError("submit failed");
      return;
    }
    next = (next + 1) % commands.size();
  }
  state.counters["commits_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel(std::string(SyncPolicyName(policy)));
}

void BM_CommitSyncAlways(benchmark::State& state) {
  RunCommitThroughput(state, SyncPolicy::kAlways, 0);
}
void BM_CommitSyncBatch(benchmark::State& state) {
  RunCommitThroughput(state, SyncPolicy::kBatch,
                      static_cast<size_t>(state.range(0)));
}
void BM_CommitSyncNever(benchmark::State& state) {
  RunCommitThroughput(state, SyncPolicy::kNever, 0);
}
BENCHMARK(BM_CommitSyncAlways);
BENCHMARK(BM_CommitSyncBatch)->Arg(8)->Arg(64)->ArgNames({"batch"});
BENCHMARK(BM_CommitSyncNever);

}  // namespace
}  // namespace ttra
