file(REMOVE_RECURSE
  "CMakeFiles/bench_historical.dir/bench_historical.cc.o"
  "CMakeFiles/bench_historical.dir/bench_historical.cc.o.d"
  "bench_historical"
  "bench_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
