# Empty dependencies file for bench_historical.
# This may be replaced when dependencies are built.
