file(REMOVE_RECURSE
  "CMakeFiles/bench_modify.dir/bench_modify.cc.o"
  "CMakeFiles/bench_modify.dir/bench_modify.cc.o.d"
  "bench_modify"
  "bench_modify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
