# Empty compiler generated dependencies file for bench_modify.
# This may be replaced when dependencies are built.
