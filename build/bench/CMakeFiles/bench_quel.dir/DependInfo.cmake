
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_quel.cc" "bench/CMakeFiles/bench_quel.dir/bench_quel.cc.o" "gcc" "bench/CMakeFiles/bench_quel.dir/bench_quel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quel/CMakeFiles/ttra_quel.dir/DependInfo.cmake"
  "/root/repo/build/src/benzvi/CMakeFiles/ttra_benzvi.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/ttra_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ttra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ttra_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rollback/CMakeFiles/ttra_rollback.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ttra_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/historical/CMakeFiles/ttra_historical.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/ttra_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
