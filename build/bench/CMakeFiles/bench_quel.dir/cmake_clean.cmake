file(REMOVE_RECURSE
  "CMakeFiles/bench_quel.dir/bench_quel.cc.o"
  "CMakeFiles/bench_quel.dir/bench_quel.cc.o.d"
  "bench_quel"
  "bench_quel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
