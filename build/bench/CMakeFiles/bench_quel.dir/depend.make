# Empty dependencies file for bench_quel.
# This may be replaced when dependencies are built.
