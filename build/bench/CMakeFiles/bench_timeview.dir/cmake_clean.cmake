file(REMOVE_RECURSE
  "CMakeFiles/bench_timeview.dir/bench_timeview.cc.o"
  "CMakeFiles/bench_timeview.dir/bench_timeview.cc.o.d"
  "bench_timeview"
  "bench_timeview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
