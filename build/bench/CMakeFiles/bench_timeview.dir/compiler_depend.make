# Empty compiler generated dependencies file for bench_timeview.
# This may be replaced when dependencies are built.
