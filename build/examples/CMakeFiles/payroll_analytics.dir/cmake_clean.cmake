file(REMOVE_RECURSE
  "CMakeFiles/payroll_analytics.dir/payroll_analytics.cpp.o"
  "CMakeFiles/payroll_analytics.dir/payroll_analytics.cpp.o.d"
  "payroll_analytics"
  "payroll_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
