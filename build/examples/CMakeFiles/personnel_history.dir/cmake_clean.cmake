file(REMOVE_RECURSE
  "CMakeFiles/personnel_history.dir/personnel_history.cpp.o"
  "CMakeFiles/personnel_history.dir/personnel_history.cpp.o.d"
  "personnel_history"
  "personnel_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personnel_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
