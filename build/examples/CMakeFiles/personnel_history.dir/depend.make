# Empty dependencies file for personnel_history.
# This may be replaced when dependencies are built.
