# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;ttra_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_personnel_history "/root/repo/build/examples/personnel_history")
set_tests_properties(example_personnel_history PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;ttra_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_audit_trail "/root/repo/build/examples/audit_trail")
set_tests_properties(example_audit_trail PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;ttra_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_payroll_analytics "/root/repo/build/examples/payroll_analytics")
set_tests_properties(example_payroll_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;ttra_add_example;/root/repo/examples/CMakeLists.txt;0;")
