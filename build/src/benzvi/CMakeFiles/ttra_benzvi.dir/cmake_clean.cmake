file(REMOVE_RECURSE
  "CMakeFiles/ttra_benzvi.dir/trm.cc.o"
  "CMakeFiles/ttra_benzvi.dir/trm.cc.o.d"
  "libttra_benzvi.a"
  "libttra_benzvi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_benzvi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
