file(REMOVE_RECURSE
  "libttra_benzvi.a"
)
