# Empty dependencies file for ttra_benzvi.
# This may be replaced when dependencies are built.
