
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/historical/haggregate.cc" "src/historical/CMakeFiles/ttra_historical.dir/haggregate.cc.o" "gcc" "src/historical/CMakeFiles/ttra_historical.dir/haggregate.cc.o.d"
  "/root/repo/src/historical/hoperators.cc" "src/historical/CMakeFiles/ttra_historical.dir/hoperators.cc.o" "gcc" "src/historical/CMakeFiles/ttra_historical.dir/hoperators.cc.o.d"
  "/root/repo/src/historical/hstate.cc" "src/historical/CMakeFiles/ttra_historical.dir/hstate.cc.o" "gcc" "src/historical/CMakeFiles/ttra_historical.dir/hstate.cc.o.d"
  "/root/repo/src/historical/interval.cc" "src/historical/CMakeFiles/ttra_historical.dir/interval.cc.o" "gcc" "src/historical/CMakeFiles/ttra_historical.dir/interval.cc.o.d"
  "/root/repo/src/historical/temporal_element.cc" "src/historical/CMakeFiles/ttra_historical.dir/temporal_element.cc.o" "gcc" "src/historical/CMakeFiles/ttra_historical.dir/temporal_element.cc.o.d"
  "/root/repo/src/historical/temporal_expr.cc" "src/historical/CMakeFiles/ttra_historical.dir/temporal_expr.cc.o" "gcc" "src/historical/CMakeFiles/ttra_historical.dir/temporal_expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snapshot/CMakeFiles/ttra_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
