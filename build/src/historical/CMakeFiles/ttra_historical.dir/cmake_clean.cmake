file(REMOVE_RECURSE
  "CMakeFiles/ttra_historical.dir/haggregate.cc.o"
  "CMakeFiles/ttra_historical.dir/haggregate.cc.o.d"
  "CMakeFiles/ttra_historical.dir/hoperators.cc.o"
  "CMakeFiles/ttra_historical.dir/hoperators.cc.o.d"
  "CMakeFiles/ttra_historical.dir/hstate.cc.o"
  "CMakeFiles/ttra_historical.dir/hstate.cc.o.d"
  "CMakeFiles/ttra_historical.dir/interval.cc.o"
  "CMakeFiles/ttra_historical.dir/interval.cc.o.d"
  "CMakeFiles/ttra_historical.dir/temporal_element.cc.o"
  "CMakeFiles/ttra_historical.dir/temporal_element.cc.o.d"
  "CMakeFiles/ttra_historical.dir/temporal_expr.cc.o"
  "CMakeFiles/ttra_historical.dir/temporal_expr.cc.o.d"
  "libttra_historical.a"
  "libttra_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
