file(REMOVE_RECURSE
  "libttra_historical.a"
)
