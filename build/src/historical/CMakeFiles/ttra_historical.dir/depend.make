# Empty dependencies file for ttra_historical.
# This may be replaced when dependencies are built.
