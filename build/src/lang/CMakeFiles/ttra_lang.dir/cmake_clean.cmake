file(REMOVE_RECURSE
  "CMakeFiles/ttra_lang.dir/analyzer.cc.o"
  "CMakeFiles/ttra_lang.dir/analyzer.cc.o.d"
  "CMakeFiles/ttra_lang.dir/ast.cc.o"
  "CMakeFiles/ttra_lang.dir/ast.cc.o.d"
  "CMakeFiles/ttra_lang.dir/evaluator.cc.o"
  "CMakeFiles/ttra_lang.dir/evaluator.cc.o.d"
  "CMakeFiles/ttra_lang.dir/parser.cc.o"
  "CMakeFiles/ttra_lang.dir/parser.cc.o.d"
  "CMakeFiles/ttra_lang.dir/printer.cc.o"
  "CMakeFiles/ttra_lang.dir/printer.cc.o.d"
  "CMakeFiles/ttra_lang.dir/token.cc.o"
  "CMakeFiles/ttra_lang.dir/token.cc.o.d"
  "libttra_lang.a"
  "libttra_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
