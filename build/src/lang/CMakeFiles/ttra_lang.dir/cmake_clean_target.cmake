file(REMOVE_RECURSE
  "libttra_lang.a"
)
