# Empty compiler generated dependencies file for ttra_lang.
# This may be replaced when dependencies are built.
