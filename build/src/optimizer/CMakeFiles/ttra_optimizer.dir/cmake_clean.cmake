file(REMOVE_RECURSE
  "CMakeFiles/ttra_optimizer.dir/rewriter.cc.o"
  "CMakeFiles/ttra_optimizer.dir/rewriter.cc.o.d"
  "libttra_optimizer.a"
  "libttra_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
