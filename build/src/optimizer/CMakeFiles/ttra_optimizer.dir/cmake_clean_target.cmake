file(REMOVE_RECURSE
  "libttra_optimizer.a"
)
