# Empty dependencies file for ttra_optimizer.
# This may be replaced when dependencies are built.
