file(REMOVE_RECURSE
  "CMakeFiles/ttra_quel.dir/quel.cc.o"
  "CMakeFiles/ttra_quel.dir/quel.cc.o.d"
  "libttra_quel.a"
  "libttra_quel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_quel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
