file(REMOVE_RECURSE
  "libttra_quel.a"
)
