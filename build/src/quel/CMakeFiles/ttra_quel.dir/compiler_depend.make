# Empty compiler generated dependencies file for ttra_quel.
# This may be replaced when dependencies are built.
