
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rollback/commands.cc" "src/rollback/CMakeFiles/ttra_rollback.dir/commands.cc.o" "gcc" "src/rollback/CMakeFiles/ttra_rollback.dir/commands.cc.o.d"
  "/root/repo/src/rollback/database.cc" "src/rollback/CMakeFiles/ttra_rollback.dir/database.cc.o" "gcc" "src/rollback/CMakeFiles/ttra_rollback.dir/database.cc.o.d"
  "/root/repo/src/rollback/persistence.cc" "src/rollback/CMakeFiles/ttra_rollback.dir/persistence.cc.o" "gcc" "src/rollback/CMakeFiles/ttra_rollback.dir/persistence.cc.o.d"
  "/root/repo/src/rollback/relation.cc" "src/rollback/CMakeFiles/ttra_rollback.dir/relation.cc.o" "gcc" "src/rollback/CMakeFiles/ttra_rollback.dir/relation.cc.o.d"
  "/root/repo/src/rollback/serial_executor.cc" "src/rollback/CMakeFiles/ttra_rollback.dir/serial_executor.cc.o" "gcc" "src/rollback/CMakeFiles/ttra_rollback.dir/serial_executor.cc.o.d"
  "/root/repo/src/rollback/vacuum.cc" "src/rollback/CMakeFiles/ttra_rollback.dir/vacuum.cc.o" "gcc" "src/rollback/CMakeFiles/ttra_rollback.dir/vacuum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ttra_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/historical/CMakeFiles/ttra_historical.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/ttra_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
