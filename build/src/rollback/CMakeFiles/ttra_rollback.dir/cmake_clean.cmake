file(REMOVE_RECURSE
  "CMakeFiles/ttra_rollback.dir/commands.cc.o"
  "CMakeFiles/ttra_rollback.dir/commands.cc.o.d"
  "CMakeFiles/ttra_rollback.dir/database.cc.o"
  "CMakeFiles/ttra_rollback.dir/database.cc.o.d"
  "CMakeFiles/ttra_rollback.dir/persistence.cc.o"
  "CMakeFiles/ttra_rollback.dir/persistence.cc.o.d"
  "CMakeFiles/ttra_rollback.dir/relation.cc.o"
  "CMakeFiles/ttra_rollback.dir/relation.cc.o.d"
  "CMakeFiles/ttra_rollback.dir/serial_executor.cc.o"
  "CMakeFiles/ttra_rollback.dir/serial_executor.cc.o.d"
  "CMakeFiles/ttra_rollback.dir/vacuum.cc.o"
  "CMakeFiles/ttra_rollback.dir/vacuum.cc.o.d"
  "libttra_rollback.a"
  "libttra_rollback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
