file(REMOVE_RECURSE
  "libttra_rollback.a"
)
