# Empty dependencies file for ttra_rollback.
# This may be replaced when dependencies are built.
