
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snapshot/aggregate.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/aggregate.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/aggregate.cc.o.d"
  "/root/repo/src/snapshot/csv.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/csv.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/csv.cc.o.d"
  "/root/repo/src/snapshot/operators.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/operators.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/operators.cc.o.d"
  "/root/repo/src/snapshot/predicate.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/predicate.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/predicate.cc.o.d"
  "/root/repo/src/snapshot/schema.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/schema.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/schema.cc.o.d"
  "/root/repo/src/snapshot/state.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/state.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/state.cc.o.d"
  "/root/repo/src/snapshot/tuple.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/tuple.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/tuple.cc.o.d"
  "/root/repo/src/snapshot/value.cc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/value.cc.o" "gcc" "src/snapshot/CMakeFiles/ttra_snapshot.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ttra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
