file(REMOVE_RECURSE
  "CMakeFiles/ttra_snapshot.dir/aggregate.cc.o"
  "CMakeFiles/ttra_snapshot.dir/aggregate.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/csv.cc.o"
  "CMakeFiles/ttra_snapshot.dir/csv.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/operators.cc.o"
  "CMakeFiles/ttra_snapshot.dir/operators.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/predicate.cc.o"
  "CMakeFiles/ttra_snapshot.dir/predicate.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/schema.cc.o"
  "CMakeFiles/ttra_snapshot.dir/schema.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/state.cc.o"
  "CMakeFiles/ttra_snapshot.dir/state.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/tuple.cc.o"
  "CMakeFiles/ttra_snapshot.dir/tuple.cc.o.d"
  "CMakeFiles/ttra_snapshot.dir/value.cc.o"
  "CMakeFiles/ttra_snapshot.dir/value.cc.o.d"
  "libttra_snapshot.a"
  "libttra_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
