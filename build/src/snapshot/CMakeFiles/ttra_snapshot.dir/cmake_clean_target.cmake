file(REMOVE_RECURSE
  "libttra_snapshot.a"
)
