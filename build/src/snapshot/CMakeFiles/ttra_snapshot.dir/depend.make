# Empty dependencies file for ttra_snapshot.
# This may be replaced when dependencies are built.
