
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/serialize.cc" "src/storage/CMakeFiles/ttra_storage.dir/serialize.cc.o" "gcc" "src/storage/CMakeFiles/ttra_storage.dir/serialize.cc.o.d"
  "/root/repo/src/storage/state_log.cc" "src/storage/CMakeFiles/ttra_storage.dir/state_log.cc.o" "gcc" "src/storage/CMakeFiles/ttra_storage.dir/state_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/historical/CMakeFiles/ttra_historical.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/ttra_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
