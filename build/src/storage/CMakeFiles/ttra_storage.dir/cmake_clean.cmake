file(REMOVE_RECURSE
  "CMakeFiles/ttra_storage.dir/serialize.cc.o"
  "CMakeFiles/ttra_storage.dir/serialize.cc.o.d"
  "CMakeFiles/ttra_storage.dir/state_log.cc.o"
  "CMakeFiles/ttra_storage.dir/state_log.cc.o.d"
  "libttra_storage.a"
  "libttra_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
