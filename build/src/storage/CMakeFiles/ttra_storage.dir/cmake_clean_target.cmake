file(REMOVE_RECURSE
  "libttra_storage.a"
)
