# Empty dependencies file for ttra_storage.
# This may be replaced when dependencies are built.
