file(REMOVE_RECURSE
  "CMakeFiles/ttra_util.dir/random.cc.o"
  "CMakeFiles/ttra_util.dir/random.cc.o.d"
  "CMakeFiles/ttra_util.dir/status.cc.o"
  "CMakeFiles/ttra_util.dir/status.cc.o.d"
  "CMakeFiles/ttra_util.dir/string_util.cc.o"
  "CMakeFiles/ttra_util.dir/string_util.cc.o.d"
  "libttra_util.a"
  "libttra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
