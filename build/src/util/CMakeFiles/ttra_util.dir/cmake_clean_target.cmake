file(REMOVE_RECURSE
  "libttra_util.a"
)
