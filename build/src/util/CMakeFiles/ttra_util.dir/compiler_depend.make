# Empty compiler generated dependencies file for ttra_util.
# This may be replaced when dependencies are built.
