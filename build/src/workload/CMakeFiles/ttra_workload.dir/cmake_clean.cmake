file(REMOVE_RECURSE
  "CMakeFiles/ttra_workload.dir/generator.cc.o"
  "CMakeFiles/ttra_workload.dir/generator.cc.o.d"
  "libttra_workload.a"
  "libttra_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
