file(REMOVE_RECURSE
  "libttra_workload.a"
)
