# Empty compiler generated dependencies file for ttra_workload.
# This may be replaced when dependencies are built.
