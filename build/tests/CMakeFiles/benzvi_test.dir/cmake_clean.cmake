file(REMOVE_RECURSE
  "CMakeFiles/benzvi_test.dir/benzvi_test.cc.o"
  "CMakeFiles/benzvi_test.dir/benzvi_test.cc.o.d"
  "benzvi_test"
  "benzvi_test.pdb"
  "benzvi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benzvi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
