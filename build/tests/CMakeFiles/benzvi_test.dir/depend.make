# Empty dependencies file for benzvi_test.
# This may be replaced when dependencies are built.
