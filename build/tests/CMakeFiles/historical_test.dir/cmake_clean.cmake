file(REMOVE_RECURSE
  "CMakeFiles/historical_test.dir/historical_test.cc.o"
  "CMakeFiles/historical_test.dir/historical_test.cc.o.d"
  "historical_test"
  "historical_test.pdb"
  "historical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
