file(REMOVE_RECURSE
  "CMakeFiles/lang_eval_test.dir/lang_eval_test.cc.o"
  "CMakeFiles/lang_eval_test.dir/lang_eval_test.cc.o.d"
  "lang_eval_test"
  "lang_eval_test.pdb"
  "lang_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
