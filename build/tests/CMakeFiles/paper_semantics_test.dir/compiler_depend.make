# Empty compiler generated dependencies file for paper_semantics_test.
# This may be replaced when dependencies are built.
