file(REMOVE_RECURSE
  "CMakeFiles/quel_test.dir/quel_test.cc.o"
  "CMakeFiles/quel_test.dir/quel_test.cc.o.d"
  "quel_test"
  "quel_test.pdb"
  "quel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
