# Empty dependencies file for quel_test.
# This may be replaced when dependencies are built.
