file(REMOVE_RECURSE
  "CMakeFiles/vacuum_test.dir/vacuum_test.cc.o"
  "CMakeFiles/vacuum_test.dir/vacuum_test.cc.o.d"
  "vacuum_test"
  "vacuum_test.pdb"
  "vacuum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vacuum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
