# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/historical_test[1]_include.cmake")
include("/root/repo/build/tests/rollback_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/lang_parser_test[1]_include.cmake")
include("/root/repo/build/tests/lang_eval_test[1]_include.cmake")
include("/root/repo/build/tests/quel_test[1]_include.cmake")
include("/root/repo/build/tests/benzvi_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/vacuum_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/paper_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
