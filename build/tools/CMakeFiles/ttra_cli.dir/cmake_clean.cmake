file(REMOVE_RECURSE
  "CMakeFiles/ttra_cli.dir/ttra_cli.cpp.o"
  "CMakeFiles/ttra_cli.dir/ttra_cli.cpp.o.d"
  "ttra"
  "ttra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttra_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
