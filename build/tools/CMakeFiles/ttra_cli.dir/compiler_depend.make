# Empty compiler generated dependencies file for ttra_cli.
# This may be replaced when dependencies are built.
