# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_run "ttra" "run" "/root/repo/tools/testdata/smoke.ttra" "--optimize" "--explain" "--save" "/root/repo/build/tools/smoke.db")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_describe "ttra" "describe" "--db" "/root/repo/build/tools/smoke.db")
set_tests_properties(cli_describe PROPERTIES  DEPENDS "cli_run" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_vacuum "ttra" "vacuum" "--db" "/root/repo/build/tools/smoke.db" "--relation" "emp" "--before" "4" "--archive" "/root/repo/build/tools/smoke.arc" "--save" "/root/repo/build/tools/smoke2.db")
set_tests_properties(cli_vacuum PROPERTIES  DEPENDS "cli_describe" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
