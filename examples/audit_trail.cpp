// Audit trail: a rollback relation as a tamper-evident account ledger.
//
// Rollback relations are append-only — past states are never modified —
// so ρ(accounts, N) reconstructs exactly what the database said after any
// transaction: an audit trail for free. The example also drives updates
// through the Quel front-end (the calculus → algebra mapping of §1/§5)
// and diffs two past states with the algebra itself. The final section
// makes the ledger crash-proof with the write-ahead log: a simulated
// power cut mid-update loses nothing that was acknowledged.

#include <iostream>

#include "lang/evaluator.h"
#include "lang/printer.h"
#include "quel/quel.h"
#include "rollback/durable_executor.h"
#include "storage/env.h"

namespace {

// Applies one Quel statement, reporting the transaction it committed as.
bool Apply(ttra::Database& db, std::string_view quel_source) {
  using namespace ttra;
  auto stmt = quel::ParseQuel(quel_source);
  if (!stmt.ok()) {
    std::cerr << "parse error: " << stmt.status() << "\n";
    return false;
  }
  auto compiled = quel::CompileQuel(*stmt, lang::Catalog(db));
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.status() << "\n";
    return false;
  }
  Status status = lang::ExecStmt(*compiled, db);
  if (!status.ok()) {
    std::cerr << "exec error: " << status << "\n";
    return false;
  }
  std::cout << "txn " << db.transaction_number() << ": " << quel_source
            << "\n    → " << lang::StmtToString(*compiled) << "\n";
  return true;
}

}  // namespace

int main() {
  using namespace ttra;

  // Store the ledger with the delta engine: storage grows with change
  // volume, not state size — the paper's "more efficient implementation",
  // provably equivalent to the full-copy semantics.
  Database db(DatabaseOptions{StorageKind::kDelta, 16});
  Status status = lang::Run(
      "define_relation(accounts, rollback, (owner: string, balance: int));",
      db);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }

  const char* updates[] = {
      R"(append to accounts (owner = "alice", balance = 1000))",
      R"(append to accounts (owner = "bob", balance = 500))",
      R"(replace accounts set balance = balance - 300 where owner = "alice")",
      R"(replace accounts set balance = balance + 300 where owner = "bob")",
      R"(append to accounts (owner = "carol", balance = 250))",
      R"(delete accounts where owner = "bob")",
  };
  for (const char* update : updates) {
    if (!Apply(db, update)) return 1;
  }

  std::cout << "\nCurrent ledger:\n"
            << lang::FormatTable(*db.Rollback("accounts")) << "\n";

  // The audit: replay the ledger state after every transaction.
  std::cout << "Audit trail (state after each transaction):\n";
  for (TransactionNumber txn = 1; txn <= db.transaction_number(); ++txn) {
    auto state = db.Rollback("accounts", txn);
    std::cout << "  after txn " << txn << ": ";
    for (const Tuple& t : state->tuples()) {
      std::cout << t.at(0).AsString() << "=" << t.at(1).AsInt() << "  ";
    }
    std::cout << "\n";
  }

  // Where did the money move between txn 4 and txn 6? The algebra answers
  // with plain difference over two rollback results — no special audit
  // machinery needed.
  std::vector<lang::StateValue> outputs;
  status = lang::Run(R"(
    show(rho(accounts, 4) minus rho(accounts, 6));
    show(rho(accounts, 6) minus rho(accounts, 4));
  )", db, &outputs);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  std::cout << "\nRows present at txn 4 but gone by txn 6:\n"
            << lang::FormatTable(outputs[0]);
  std::cout << "\nRows new or changed by txn 6:\n"
            << lang::FormatTable(outputs[1]);

  std::cout << "\nStorage: " << lang::DescribeDatabase(db);

  // --- Crash safety ---------------------------------------------------
  // An audit trail is only as trustworthy as its durability: an append
  // that vanishes in a crash is exactly the tampering the ledger exists
  // to rule out. DurableExecutor logs every command to a write-ahead log
  // and fsyncs it before acknowledging. We demonstrate with the fault-
  // injection environment, which simulates a power cut deterministically;
  // swap in Env::Default() and a real directory for production use.
  std::cout << "\n--- durable ledger with a simulated power cut ---\n";
  FaultInjectionEnv env;
  const Schema ledger_schema = *Schema::Make(
      {{"owner", ValueType::kString}, {"balance", ValueType::kInt}});
  auto account = [&](const char* owner, int64_t balance) {
    return *SnapshotState::Make(
        ledger_schema, {Tuple{Value::String(owner), Value::Int(balance)}});
  };

  {
    DurableExecutor ledger(&env, "ledger");
    if (!ledger.Open().ok()) return 1;
    (void)ledger.Submit(
        DefineRelationCmd{"accounts", RelationType::kRollback, ledger_schema});
    auto acked = ledger.Submit(ModifySnapshotCmd{"accounts",
                                                 account("alice", 1000)});
    std::cout << "acknowledged txn " << *acked << ": alice=1000\n";

    // The power cut: the next disk write fails mid-operation, and
    // everything that was never fsync'ed evaporates.
    env.InjectFault(1, FaultInjectionEnv::FaultMode::kTornAppend);
    auto lost = ledger.Submit(ModifySnapshotCmd{"accounts",
                                                account("mallory", 9999)});
    std::cout << "unacknowledged update: " << lost.status() << "\n";
    std::cout << "executor is now fail-stop: "
              << ledger.Submit(ModifySnapshotCmd{"accounts",
                                                 account("bob", 1)})
                     .status()
              << "\n";
  }
  env.Crash();  // drop all unsynced writes, as the machine dying would

  // Reopen after the "reboot": recovery replays the log and lands on the
  // acknowledged prefix — alice's deposit survives, mallory's torn write
  // does not.
  DurableExecutor recovered(&env, "ledger");
  if (!recovered.Open().ok()) return 1;
  const auto info = recovered.last_recovery();
  std::cout << "recovered transaction " << recovered.transaction_number()
            << " (checkpoint at " << info.checkpoint_txn << ", "
            << info.replayed_records << " wal record(s) replayed"
            << (info.torn_tail ? ", torn tail truncated" : "") << ")\n"
            << lang::FormatTable(*recovered.Rollback("accounts"));
  return 0;
}
