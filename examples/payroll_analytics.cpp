// Payroll analytics: aggregates over transaction time and valid time.
//
// Shows the summarize operator in three settings:
//  1. plain grouping over the current state,
//  2. "as of" analytics — the same aggregate evaluated against past
//     database states via ρ (how did the department totals *look* after
//     each transaction?), and
//  3. temporal aggregation over a temporal relation — the headcount as a
//     piecewise-constant function of valid time, with the database's
//     earlier belief recoverable via ρ̂.

#include <iostream>

#include "lang/evaluator.h"
#include "lang/printer.h"
#include "quel/quel.h"

namespace {

bool Show(ttra::Database& db, std::string_view source) {
  std::vector<ttra::lang::StateValue> outputs;
  ttra::Status status = ttra::lang::Run(source, db, &outputs);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return false;
  }
  for (const auto& value : outputs) {
    std::cout << ttra::lang::FormatTable(value);
  }
  return true;
}

}  // namespace

int main() {
  using namespace ttra;

  Database db;
  Status status = lang::Run(R"(
    define_relation(emp, rollback, (dept: string, name: string, salary: int));
    -- txn 2
    modify_state(emp, (dept: string, name: string, salary: int)
        {("cs", "ed", 20000), ("cs", "amy", 25000), ("ee", "rick", 30000)});
    -- txn 3: amy moves to ee
    modify_state(emp,
      select[name != "amy"](rho(emp, inf)) union
      (dept: string, name: string, salary: int) {("ee", "amy", 25000)});
    -- txn 4: cs hires two graduates
    modify_state(emp, rho(emp, inf) union
      (dept: string, name: string, salary: int)
        {("cs", "bo", 15000), ("cs", "lin", 15000)});
  )", db);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }

  std::cout << "Current payroll by department:\n";
  if (!Show(db,
            "show(summarize[dept; headcount = count, total = sum(salary), "
            "top = max(salary)](rho(emp, inf)));")) {
    return 1;
  }

  std::cout << "\nThe same aggregate as of every past transaction (the "
               "rollback operator composes with summarize):\n";
  for (TransactionNumber txn = 2; txn <= 4; ++txn) {
    std::cout << "as of transaction " << txn << ":\n";
    if (!Show(db, "show(summarize[dept; headcount = count, total = "
                  "sum(salary)](rho(emp, " +
                      std::to_string(txn) + ")));")) {
      return 1;
    }
  }

  // The Quel spelling of the same query.
  std::cout << "Via Quel: retrieve emp compute n = count, total = "
               "sum(salary) by dept\n";
  auto stmt = quel::ParseQuel(
      "retrieve emp compute n = count, total = sum(salary) by dept");
  auto compiled = quel::CompileQuel(*stmt, lang::Catalog(db));
  if (!compiled.ok()) {
    std::cerr << "error: " << compiled.status() << "\n";
    return 1;
  }
  std::vector<lang::StateValue> outputs;
  (void)lang::ExecStmt(*compiled, db, &outputs);
  std::cout << lang::FormatTable(outputs[0]);

  // Temporal aggregation: headcount over valid time, under transaction
  // time. Chronons are months.
  status = lang::Run(R"(
    define_relation(tenure, temporal, (dept: string, name: string));
    modify_state(tenure, (dept: string, name: string)
        {("cs", "ed") @ [0, inf), ("cs", "amy") @ [3, inf)});
    modify_state(tenure, (dept: string, name: string)
        {("cs", "ed") @ [0, inf), ("cs", "amy") @ [3, 8),
         ("ee", "amy") @ [8, inf), ("ee", "rick") @ [5, inf)});
  )", db);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }

  std::cout << "\nHeadcount by department as a function of valid time "
               "(temporal aggregation, current belief):\n";
  if (!Show(db, "show(summarize[dept; headcount = count]"
                "(hrho(tenure, inf)));")) {
    return 1;
  }

  std::cout << "\n...and as believed before the amy-transfer correction "
               "(ρ̂ at transaction 6):\n";
  if (!Show(db, "show(summarize[dept; headcount = count]"
                "(hrho(tenure, 6)));")) {
    return 1;
  }
  return 0;
}
