// Personnel history: valid time AND transaction time together (paper §4).
//
// A *temporal* relation stores a sequence of historical states indexed by
// transaction time. Valid time records when facts held in the real world;
// transaction time records when the database learned them. The example
// plays out a classic bitemporal scenario: a retroactive correction —
// payroll discovers Ed's raise was effective two months earlier than first
// recorded — without losing what the database believed before the fix.

#include <iostream>

#include "benzvi/trm.h"
#include "lang/evaluator.h"
#include "lang/printer.h"

int main() {
  using namespace ttra;

  Database db;
  // Valid-time chronons are months since 2025-01 in this example.
  Status status = lang::Run(R"(
    define_relation(salary, temporal, (name: string, amount: int));

    -- txn 2: Ed hired in month 0 at 20000, open-ended.
    modify_state(salary, (name: string, amount: int)
                         {("ed", 20000) @ [0, inf)});

    -- txn 3: a raise recorded as effective month 6.
    modify_state(salary,
      delta[true; valid intersect [0, 6)](hrho(salary, inf)) union
      (name: string, amount: int) {("ed", 24000) @ [6, inf)});

    -- txn 4: correction! the raise was actually effective month 4.
    -- Rewrite the history as best known now; the old belief stays
    -- queryable at txn 3.
    modify_state(salary, (name: string, amount: int)
                         {("ed", 20000) @ [0, 4),
                          ("ed", 24000) @ [4, inf)});
  )", db);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }

  std::cout << "History as currently best known  ρ̂(salary, inf):\n"
            << lang::FormatTable(*db.RollbackHistorical("salary")) << "\n";

  std::cout << "History as the database believed it at txn 3  "
               "ρ̂(salary, 3):\n"
            << lang::FormatTable(*db.RollbackHistorical("salary", 3))
            << "\n";

  // Bitemporal point query: "what did we think (at transaction T) Ed
  // earned in month 5?" — ρ̂ composed with a valid-time timeslice.
  for (TransactionNumber txn = 3; txn <= 4; ++txn) {
    auto history = db.RollbackHistorical("salary", txn);
    SnapshotState month5 = history->SnapshotAt(5);
    std::cout << "Believed-at-txn-" << txn << " salary during month 5:\n"
              << lang::FormatTable(month5) << "\n";
  }

  // δ_{G,V} through the language: the parts of the history valid in the
  // first half-year, as currently known.
  std::vector<lang::StateValue> outputs;
  status = lang::Run(
      "show(delta[overlaps(valid, [0, 6)); valid intersect [0, 6)]"
      "(hrho(salary, inf)));",
      db, &outputs);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  std::cout << "δ: history restricted to months [0, 6):\n"
            << lang::FormatTable(outputs[0]) << "\n";

  // The same data in Ben-Zvi's Time Relational Model (paper §5): each row
  // carries explicit valid and transaction intervals, and Time-View slices
  // both at once.
  auto trm = benzvi::TrmRelation::FromTemporal(*db.Find("salary"));
  if (!trm.ok()) {
    std::cerr << "error: " << trm.status() << "\n";
    return 1;
  }
  std::cout << "Ben-Zvi TRM rows (values, valid interval, [t_begin, "
               "t_end)):\n";
  for (const benzvi::TrmTuple& row : trm->tuples()) {
    std::cout << "  " << row.values.ToString() << " @ "
              << row.valid.ToString() << " trans [" << row.trans_begin
              << ", "
              << (row.trans_end == benzvi::kOpenTransaction
                      ? std::string("open")
                      : std::to_string(row.trans_end))
              << ")\n";
  }
  auto view = trm->TimeView(/*tv=*/5, /*tt=*/3);
  std::cout << "\nTime-View(salary, month 5, txn 3) — matches the ρ̂ +"
               " timeslice result above:\n"
            << lang::FormatTable(*view);
  return 0;
}
