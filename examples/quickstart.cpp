// Quickstart: the transaction-time algebra in five minutes.
//
// Builds a rollback relation, updates it through the algebraic language,
// and rolls it back to past transactions with the ρ operator — the core
// of McKenzie & Snodgrass, "Extending the Relational Algebra to Support
// Transaction Time" (SIGMOD 1987).

#include <iostream>

#include "lang/evaluator.h"
#include "lang/printer.h"

int main() {
  using namespace ttra;

  // Every sentence is evaluated against the EMPTY database (P⟦·⟧).
  Database db;
  std::vector<lang::StateValue> outputs;

  // The language's two core commands: define_relation and modify_state.
  // A rollback relation keeps *every* past state, indexed by transaction
  // time; updates are expressed as algebra over the current state ρ(R, ∞).
  Status status = lang::Run(R"(
    define_relation(emp, rollback, (name: string, salary: int));

    -- txn 2: initial payroll
    modify_state(emp, (name: string, salary: int)
                      {("ed", 20000), ("rick", 30000)});

    -- txn 3: hire amy (append = union with the current state)
    modify_state(emp, rho(emp, inf) union
                      (name: string, salary: int) {("amy", 25000)});

    -- txn 4: ed leaves (delete = selection of the survivors)
    modify_state(emp, select[name != "ed"](rho(emp, inf)));

    -- txn 5: a raise for everyone (replace = extend over the current state)
    modify_state(emp, extend[salary = salary + 1000](rho(emp, inf)));
  )", db, &outputs);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }

  std::cout << "Database after five transactions:\n"
            << lang::DescribeDatabase(db) << "\n";

  // ρ(emp, ∞): the current state.
  std::cout << "Current state  ρ(emp, inf):\n"
            << lang::FormatTable(*db.Rollback("emp")) << "\n";

  // ρ(emp, N): the state current at transaction N. FINDSTATE interpolates,
  // so any N between commits resolves to the preceding state.
  for (TransactionNumber txn = 2; txn <= 4; ++txn) {
    std::cout << "As of transaction " << txn << "  ρ(emp, " << txn << "):\n"
              << lang::FormatTable(*db.Rollback("emp", txn)) << "\n";
  }

  // The rollback operator composes with the rest of the algebra: "who
  // earned under 26000 as of transaction 3?"
  outputs.clear();
  status = lang::Run(
      "show(project[name](select[salary < 26000](rho(emp, 3))));", db,
      &outputs);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  std::cout << "Names earning < 26000 as of transaction 3:\n"
            << lang::FormatTable(outputs[0]);
  return 0;
}
