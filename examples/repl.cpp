// Interactive REPL for the transaction-time algebraic language.
//
//   $ ./repl
//   ttra> define_relation(emp, rollback, (name: string, salary: int));
//   ttra> modify_state(emp, (name: string, salary: int) {("ed", 100)});
//   ttra> show(rho(emp, inf));
//
// Meta-commands: \d (describe database), \quel <stmt> (run one Quel
// statement), \lax (toggle paper-faithful non-strict error handling),
// \q (quit). Plain input is parsed as language statements; a trailing
// ';' is optional for single statements.

#include <iostream>
#include <string>

#include "lang/analyzer.h"
#include "lang/evaluator.h"
#include "lang/printer.h"
#include "quel/quel.h"

namespace {

void ShowOutputs(const std::vector<ttra::lang::StateValue>& outputs) {
  for (const auto& value : outputs) {
    std::cout << ttra::lang::FormatTable(value);
  }
}

}  // namespace

int main() {
  using namespace ttra;

  Database db;
  lang::ExecOptions options;
  std::cout << "transaction-time relational algebra — type \\q to quit\n";

  std::string line;
  while (true) {
    std::cout << "ttra> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line == "\\q" || line == "\\quit") break;
    if (line == "\\d") {
      std::cout << lang::DescribeDatabase(db);
      continue;
    }
    if (line == "\\lax") {
      options.strict = !options.strict;
      std::cout << (options.strict
                        ? "strict mode: errors abort the statement\n"
                        : "lax mode: failing commands are no-ops (paper's "
                          "else-branches)\n");
      continue;
    }
    if (line.rfind("\\quel ", 0) == 0) {
      auto stmt = quel::ParseQuel(line.substr(6));
      if (!stmt.ok()) {
        std::cout << stmt.status() << "\n";
        continue;
      }
      auto compiled = quel::CompileQuel(*stmt, lang::Catalog(db));
      if (!compiled.ok()) {
        std::cout << compiled.status() << "\n";
        continue;
      }
      std::cout << "→ " << lang::StmtToString(*compiled) << "\n";
      std::vector<lang::StateValue> outputs;
      Status status = lang::ExecStmt(*compiled, db, &outputs, options);
      if (!status.ok()) {
        std::cout << status << "\n";
        continue;
      }
      ShowOutputs(outputs);
      continue;
    }

    std::vector<lang::StateValue> outputs;
    Status status = lang::Run(line, db, &outputs, options);
    if (!status.ok()) {
      std::cout << status << "\n";
      continue;
    }
    ShowOutputs(outputs);
    std::cout << "ok (transaction " << db.transaction_number() << ")\n";
  }
  return 0;
}
