#include "benzvi/trm.h"

#include <map>
#include <set>

namespace ttra::benzvi {

Status TrmRelation::ApplyVersion(const HistoricalState& state,
                                 TransactionNumber txn) {
  if (state.schema() != schema_) {
    return SchemaMismatchError("TRM version schema " +
                               state.schema().ToString() +
                               " does not match relation schema " +
                               schema_.ToString());
  }
  if (has_version_ && txn <= last_txn_) {
    return InvalidArgumentError("TRM versions must have increasing txns");
  }
  // Flatten the new state into (tuple, interval) facts.
  std::set<std::pair<Tuple, Interval>> new_facts;
  for (const HistoricalTuple& ht : state.tuples()) {
    for (const Interval& interval : ht.valid.intervals()) {
      new_facts.emplace(ht.tuple, interval);
    }
  }
  // Close open rows whose fact disappeared; keep the ones that survive.
  for (TrmTuple& row : tuples_) {
    if (row.trans_end != kOpenTransaction) continue;
    auto it = new_facts.find({row.values, row.valid});
    if (it != new_facts.end()) {
      new_facts.erase(it);  // fact unchanged: row stays open
    } else {
      row.trans_end = txn;  // fact superseded at this transaction
    }
  }
  // Open rows for brand-new facts.
  for (const auto& [tuple, interval] : new_facts) {
    tuples_.push_back(TrmTuple{tuple, interval, txn, kOpenTransaction});
  }
  last_txn_ = txn;
  has_version_ = true;
  return Status::Ok();
}

Result<SnapshotState> TrmRelation::TimeView(Chronon tv,
                                            TransactionNumber tt) const {
  std::vector<Tuple> current;
  for (const TrmTuple& row : tuples_) {
    const bool trans_ok = row.trans_begin <= tt && tt < row.trans_end;
    if (trans_ok && row.valid.Contains(tv)) current.push_back(row.values);
  }
  return SnapshotState::Make(schema_, std::move(current));
}

Result<HistoricalState> TrmRelation::HistoricalAsOf(
    TransactionNumber tt) const {
  std::vector<HistoricalTuple> tuples;
  for (const TrmTuple& row : tuples_) {
    if (row.trans_begin <= tt && tt < row.trans_end) {
      tuples.push_back(
          HistoricalTuple{row.values, TemporalElement::Of({row.valid})});
    }
  }
  return HistoricalState::Make(schema_, std::move(tuples));
}

size_t TrmRelation::ApproxBytes() const {
  size_t total = 64;
  for (const TrmTuple& row : tuples_) {
    total += ApproxSize(row.values) + sizeof(Interval) +
             2 * sizeof(TransactionNumber);
  }
  return total;
}

Result<TrmRelation> TrmRelation::FromTemporal(const Relation& relation) {
  if (relation.type() != RelationType::kTemporal) {
    return TypeMismatchError(
        "TRM conversion requires a temporal relation; got " +
        std::string(RelationTypeName(relation.type())));
  }
  TrmRelation trm(relation.schema());
  for (size_t i = 0; i < relation.history_length(); ++i) {
    const TransactionNumber txn = relation.TxnAt(i);
    TTRA_ASSIGN_OR_RETURN(HistoricalState state, relation.HistoricalAt(txn));
    TTRA_RETURN_IF_ERROR(trm.ApplyVersion(state, txn));
  }
  return trm;
}

}  // namespace ttra::benzvi
