#ifndef TTRA_BENZVI_TRM_H_
#define TTRA_BENZVI_TRM_H_

#include <optional>
#include <string>
#include <vector>

#include "historical/hstate.h"
#include "rollback/relation.h"
#include "storage/state_log.h"

namespace ttra::benzvi {

/// Ben-Zvi's Time Relational Model (TRM), the one prior algebra supporting
/// both valid and transaction time (paper §5). Each tuple carries implicit
/// time attributes: a valid interval [valid_begin, valid_end) and a
/// transaction interval [trans_begin, trans_end); trans_end is open
/// (kOpenTransaction) while the fact is current in the database.
///
/// The paper contrasts its ρ̂ (which composes with any historical algebra)
/// with TRM's Time-View operator, which is tied to this interval-stamped
/// representation. The equivalence suite (experiment E8) checks
///
///   TimeView(R, tv, tt) = (ρ̂(R, tt)) sliced at valid time tv
///
/// and the benchmark compares the two query paths.

inline constexpr TransactionNumber kOpenTransaction = UINT64_MAX;

struct TrmTuple {
  Tuple values;
  Interval valid;                        // valid-time interval
  TransactionNumber trans_begin = 0;     // recorded at this transaction
  TransactionNumber trans_end = kOpenTransaction;  // superseded at (open if
                                                   // still current)

  friend bool operator==(const TrmTuple&, const TrmTuple&) = default;
};

/// An append-only TRM relation: rows are never removed, only closed by
/// setting trans_end.
class TrmRelation {
 public:
  explicit TrmRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<TrmTuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Records that, as of transaction `txn`, the relation's historical
  /// state is `state`: facts absent from `state` are closed, new facts are
  /// opened. `txn` must exceed every previously applied transaction.
  /// Equivalent to one modify_state on a temporal relation.
  Status ApplyVersion(const HistoricalState& state, TransactionNumber txn);

  /// Ben-Zvi's Time-View: the tuples valid at `tv` as recorded at
  /// transaction `tt` — a plain snapshot state.
  Result<SnapshotState> TimeView(Chronon tv, TransactionNumber tt) const;

  /// The full historical state as recorded at transaction `tt`
  /// (reconstructs what ρ̂(R, tt) returns); used by the equivalence tests.
  Result<HistoricalState> HistoricalAsOf(TransactionNumber tt) const;

  /// Storage footprint for the comparison benchmark.
  size_t ApproxBytes() const;

  /// Builds a TRM relation from a temporal relation by replaying its state
  /// sequence.
  static Result<TrmRelation> FromTemporal(const Relation& relation);

 private:
  Schema schema_;
  std::vector<TrmTuple> tuples_;
  TransactionNumber last_txn_ = 0;
  bool has_version_ = false;
};

}  // namespace ttra::benzvi

#endif  // TTRA_BENZVI_TRM_H_
