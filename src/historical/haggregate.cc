#include "historical/haggregate.h"

#include <algorithm>

namespace ttra::historical_ops {

Result<HistoricalState> Aggregate(
    const HistoricalState& state,
    const std::vector<std::string>& group_attrs,
    const std::vector<AggregateDef>& aggregates) {
  TTRA_ASSIGN_OR_RETURN(
      Schema schema,
      AggregateSchema(state.schema(), group_attrs, aggregates));
  if (state.empty()) return HistoricalState::Empty(std::move(schema));

  // Collect all element boundaries: within [boundary_i, boundary_{i+1})
  // the valid tuple set is constant.
  std::vector<Chronon> boundaries;
  for (const HistoricalTuple& ht : state.tuples()) {
    for (const Interval& interval : ht.valid.intervals()) {
      boundaries.push_back(interval.begin);
      boundaries.push_back(interval.end);
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::vector<HistoricalTuple> result;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const Chronon begin = boundaries[i];
    const Chronon end = boundaries[i + 1];
    // Tuples valid throughout this slab (constant by construction).
    std::vector<Tuple> slab_tuples;
    for (const HistoricalTuple& ht : state.tuples()) {
      if (ht.valid.Contains(begin)) slab_tuples.push_back(ht.tuple);
    }
    if (slab_tuples.empty()) continue;
    TTRA_ASSIGN_OR_RETURN(
        SnapshotState slab,
        SnapshotState::Make(state.schema(), std::move(slab_tuples)));
    TTRA_ASSIGN_OR_RETURN(SnapshotState aggregated,
                          ttra::Aggregate(slab, group_attrs, aggregates));
    const TemporalElement element = TemporalElement::Span(begin, end);
    for (const Tuple& tuple : aggregated.tuples()) {
      result.push_back(HistoricalTuple{tuple, element});
    }
  }
  // HistoricalState::Make merges value-equal tuples across adjacent slabs
  // into coalesced temporal elements.
  return HistoricalState::Make(std::move(schema), std::move(result));
}

}  // namespace ttra::historical_ops
