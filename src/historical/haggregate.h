#ifndef TTRA_HISTORICAL_HAGGREGATE_H_
#define TTRA_HISTORICAL_HAGGREGATE_H_

#include <string>
#include <vector>

#include "historical/hstate.h"
#include "snapshot/aggregate.h"

namespace ttra::historical_ops {

/// Temporal (snapshot-reducible) aggregation over an historical state:
/// for every chronon t, the result's timeslice equals the snapshot
/// aggregate of the input's timeslice —
///
///   Aggregate(H, G, A).SnapshotAt(t) == Aggregate(H.SnapshotAt(t), G, A)
///
/// Implemented by interval partitioning: the valid-time axis is split at
/// every boundary chronon of the input's temporal elements; within each
/// elementary slab the set of valid tuples is constant, so one snapshot
/// aggregation per slab suffices, and value-equal result tuples across
/// adjacent slabs coalesce through HistoricalState's canonical form. Cost
/// is O(#slabs × slab aggregation); #slabs ≤ 2 × Σ intervals.
Result<HistoricalState> Aggregate(const HistoricalState& state,
                                  const std::vector<std::string>& group_attrs,
                                  const std::vector<AggregateDef>& aggregates);

}  // namespace ttra::historical_ops

#endif  // TTRA_HISTORICAL_HAGGREGATE_H_
