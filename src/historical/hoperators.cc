#include "historical/hoperators.h"

#include <algorithm>
#include <unordered_map>

#include "snapshot/join_common.h"

namespace ttra::historical_ops {

namespace {

Status RequireUnionCompatible(const HistoricalState& lhs,
                              const HistoricalState& rhs,
                              std::string_view op_name) {
  if (lhs.schema() != rhs.schema()) {
    return SchemaMismatchError(std::string(op_name) +
                               " requires identical schemas; got " +
                               lhs.schema().ToString() + " vs " +
                               rhs.schema().ToString());
  }
  return Status::Ok();
}

// The predicate decomposition and key/concat helpers are shared with the
// snapshot join kernel (snapshot/join_common.h).
using snapshot_ops::ConcatTuples;
using snapshot_ops::EquiJoinSplit;
using snapshot_ops::JoinKeyOf;
using snapshot_ops::SplitEquiJoin;

}  // namespace

Result<HistoricalState> Union(const HistoricalState& lhs,
                              const HistoricalState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "hunion"));
  std::vector<HistoricalTuple> merged = lhs.tuples();
  merged.insert(merged.end(), rhs.tuples().begin(), rhs.tuples().end());
  return HistoricalState::Make(lhs.schema(), std::move(merged));
}

Result<HistoricalState> Difference(const HistoricalState& lhs,
                                   const HistoricalState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "hdiff"));
  std::vector<HistoricalTuple> remaining;
  for (const HistoricalTuple& ht : lhs.tuples()) {
    TemporalElement survived =
        ht.valid.Difference(rhs.ValidTimeOf(ht.tuple));
    if (!survived.empty()) {
      remaining.push_back(HistoricalTuple{ht.tuple, std::move(survived)});
    }
  }
  // Value tuples stay unique and in lhs order; empties were dropped.
  return HistoricalState::FromCanonical(lhs.schema(), std::move(remaining));
}

Result<HistoricalState> Product(const HistoricalState& lhs,
                                const HistoricalState& rhs) {
  if (Result<Schema> schema = lhs.schema().Concat(rhs.schema()); schema.ok()) {
    std::vector<HistoricalTuple> combined;
    for (const HistoricalTuple& a : lhs.tuples()) {
      for (const HistoricalTuple& b : rhs.tuples()) {
        TemporalElement both = a.valid.Intersect(b.valid);
        if (both.empty()) continue;
        combined.push_back(HistoricalTuple{ConcatTuples(a.tuple, b.tuple),
                                           std::move(both)});
      }
    }
    // Concatenated value tuples of canonical operands, emitted lhs-major:
    // unique and sorted, with empty elements already dropped.
    return HistoricalState::FromCanonical(*std::move(schema),
                                          std::move(combined));
  } else {
    return SchemaMismatchError(
        "product requires attribute-name-disjoint schemas (rename first): " +
        schema.status().message());
  }
}

Result<HistoricalState> Project(const HistoricalState& state,
                                const std::vector<std::string>& attributes) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Project(attributes));
  std::vector<size_t> indices;
  indices.reserve(attributes.size());
  for (const std::string& name : attributes) {
    indices.push_back(*state.schema().IndexOf(name));
  }
  std::vector<HistoricalTuple> projected;
  projected.reserve(state.size());
  for (const HistoricalTuple& ht : state.tuples()) {
    std::vector<Value> values;
    values.reserve(indices.size());
    for (size_t i : indices) values.push_back(ht.tuple.at(i));
    projected.push_back(HistoricalTuple{Tuple(std::move(values)), ht.valid});
  }
  return HistoricalState::Make(std::move(schema), std::move(projected));
}

Result<HistoricalState> Select(const HistoricalState& state,
                               const Predicate& predicate) {
  TTRA_RETURN_IF_ERROR(predicate.Validate(state.schema()));
  std::vector<HistoricalTuple> selected;
  for (const HistoricalTuple& ht : state.tuples()) {
    TTRA_ASSIGN_OR_RETURN(bool keep, predicate.Eval(state.schema(), ht.tuple));
    if (keep) selected.push_back(ht);
  }
  // A predicate that kept everything returns the input unchanged (states
  // are copy-on-write); a kept subsequence is still canonical.
  if (selected.size() == state.size()) return state;
  return HistoricalState::FromCanonical(state.schema(), std::move(selected));
}

Result<HistoricalState> Delta(const HistoricalState& state,
                              const TemporalPred& pred,
                              const TemporalExpr& projection) {
  std::vector<HistoricalTuple> result;
  for (const HistoricalTuple& ht : state.tuples()) {
    if (!pred.Eval(ht.valid)) continue;
    TemporalElement projected = projection.Eval(ht.valid);
    if (projected.empty()) continue;
    result.push_back(HistoricalTuple{ht.tuple, std::move(projected)});
  }
  return HistoricalState::FromCanonical(state.schema(), std::move(result));
}

Result<HistoricalState> Intersect(const HistoricalState& lhs,
                                  const HistoricalState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "hintersect"));
  std::vector<HistoricalTuple> shared;
  for (const HistoricalTuple& ht : lhs.tuples()) {
    TemporalElement both = ht.valid.Intersect(rhs.ValidTimeOf(ht.tuple));
    if (!both.empty()) {
      shared.push_back(HistoricalTuple{ht.tuple, std::move(both)});
    }
  }
  return HistoricalState::FromCanonical(lhs.schema(), std::move(shared));
}

Result<HistoricalState> ThetaJoin(const HistoricalState& lhs,
                                  const HistoricalState& rhs,
                                  const Predicate& predicate) {
  Result<Schema> concat = lhs.schema().Concat(rhs.schema());
  if (!concat.ok()) {
    // Same report as Product, so σ̂_F(E1 ×̂ E2) and its fused form agree.
    return SchemaMismatchError(
        "product requires attribute-name-disjoint schemas (rename first): " +
        concat.status().message());
  }
  Schema schema = *std::move(concat);
  TTRA_RETURN_IF_ERROR(predicate.Validate(schema));

  const EquiJoinSplit split =
      SplitEquiJoin(predicate, lhs.schema(), rhs.schema());
  const std::vector<size_t>& lhs_keys = split.lhs_keys;
  const std::vector<size_t>& rhs_keys = split.rhs_keys;
  const Predicate& residual = split.residual;
  const bool check_residual = split.has_residual();

  std::vector<HistoricalTuple> joined;
  auto emit = [&](const HistoricalTuple& a,
                  const HistoricalTuple& b) -> Status {
    TemporalElement both = a.valid.Intersect(b.valid);
    if (both.empty()) return Status::Ok();
    Tuple combined = ConcatTuples(a.tuple, b.tuple);
    if (check_residual) {
      TTRA_ASSIGN_OR_RETURN(bool keep, residual.Eval(schema, combined));
      if (!keep) return Status::Ok();
    }
    joined.push_back(HistoricalTuple{std::move(combined), std::move(both)});
    return Status::Ok();
  };

  if (!split.has_keys()) {
    // No equality keys: evaluate the whole predicate per pair without
    // materializing the product state.
    for (const HistoricalTuple& a : lhs.tuples()) {
      for (const HistoricalTuple& b : rhs.tuples()) {
        TemporalElement both = a.valid.Intersect(b.valid);
        if (both.empty()) continue;
        Tuple combined = ConcatTuples(a.tuple, b.tuple);
        TTRA_ASSIGN_OR_RETURN(bool keep, predicate.Eval(schema, combined));
        if (!keep) continue;
        joined.push_back(
            HistoricalTuple{std::move(combined), std::move(both)});
      }
    }
    return HistoricalState::FromCanonical(std::move(schema),
                                          std::move(joined));
  }

  // Hash the rhs on the key attributes and probe lhs in order, which
  // emits the result canonically (buckets preserve rhs sort order).
  std::unordered_map<Tuple, std::vector<size_t>> buckets;
  buckets.reserve(rhs.size());
  for (size_t j = 0; j < rhs.size(); ++j) {
    buckets[JoinKeyOf(rhs.tuples()[j].tuple, rhs_keys)].push_back(j);
  }
  for (const HistoricalTuple& a : lhs.tuples()) {
    auto it = buckets.find(JoinKeyOf(a.tuple, lhs_keys));
    if (it == buckets.end()) continue;
    for (size_t j : it->second) {
      TTRA_RETURN_IF_ERROR(emit(a, rhs.tuples()[j]));
    }
  }
  return HistoricalState::FromCanonical(std::move(schema), std::move(joined));
}

Result<HistoricalState> NaturalJoin(const HistoricalState& lhs,
                                    const HistoricalState& rhs) {
  std::vector<size_t> lhs_keys, rhs_keys;
  std::vector<size_t> rhs_only;
  for (size_t j = 0; j < rhs.schema().size(); ++j) {
    const Attribute& attr = rhs.schema().attribute(j);
    auto i = lhs.schema().IndexOf(attr.name);
    if (i.has_value()) {
      if (lhs.schema().attribute(*i).type != attr.type) {
        return SchemaMismatchError("natural join attribute '" + attr.name +
                                   "' has mismatched types");
      }
      lhs_keys.push_back(*i);
      rhs_keys.push_back(j);
    } else {
      rhs_only.push_back(j);
    }
  }
  std::vector<Attribute> result_attrs = lhs.schema().attributes();
  for (size_t j : rhs_only) result_attrs.push_back(rhs.schema().attribute(j));
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(result_attrs)));

  auto emit = [&](const HistoricalTuple& a, const HistoricalTuple& b,
                  std::vector<HistoricalTuple>& out) {
    TemporalElement both = a.valid.Intersect(b.valid);
    if (both.empty()) return;
    std::vector<Value> values = a.tuple.values();
    for (size_t j : rhs_only) values.push_back(b.tuple.at(j));
    out.push_back(
        HistoricalTuple{Tuple(std::move(values)), std::move(both)});
  };

  std::vector<HistoricalTuple> joined;
  if (lhs_keys.empty()) {
    for (const HistoricalTuple& a : lhs.tuples()) {
      for (const HistoricalTuple& b : rhs.tuples()) emit(a, b, joined);
    }
    return HistoricalState::FromCanonical(std::move(schema),
                                          std::move(joined));
  }

  // Hash path, probing lhs in order: bucket members agree on the shared
  // columns, so their rhs-only projections stay sorted within a bucket and
  // the output is canonical.
  std::unordered_map<Tuple, std::vector<size_t>> buckets;
  buckets.reserve(rhs.size());
  for (size_t j = 0; j < rhs.size(); ++j) {
    buckets[JoinKeyOf(rhs.tuples()[j].tuple, rhs_keys)].push_back(j);
  }
  for (const HistoricalTuple& a : lhs.tuples()) {
    auto it = buckets.find(JoinKeyOf(a.tuple, lhs_keys));
    if (it == buckets.end()) continue;
    for (size_t j : it->second) emit(a, rhs.tuples()[j], joined);
  }
  return HistoricalState::FromCanonical(std::move(schema), std::move(joined));
}

Result<HistoricalState> Rename(const HistoricalState& state,
                               std::string_view from, std::string_view to) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Rename(from, to));
  // Renaming changes no tuple, so canonical order is preserved.
  return HistoricalState::FromCanonical(std::move(schema), state.tuples());
}

Result<HistoricalState> FromSnapshot(const SnapshotState& state,
                                     const TemporalElement& valid) {
  if (valid.empty()) return HistoricalState::Empty(state.schema());
  std::vector<HistoricalTuple> tuples;
  tuples.reserve(state.size());
  for (const Tuple& t : state.tuples()) {
    tuples.push_back(HistoricalTuple{t, valid});
  }
  // Snapshot tuples are sorted and unique; every element is `valid`.
  return HistoricalState::FromCanonical(state.schema(), std::move(tuples));
}

}  // namespace ttra::historical_ops
