#include "historical/hoperators.h"

#include <algorithm>

namespace ttra::historical_ops {

namespace {

Status RequireUnionCompatible(const HistoricalState& lhs,
                              const HistoricalState& rhs,
                              std::string_view op_name) {
  if (lhs.schema() != rhs.schema()) {
    return SchemaMismatchError(std::string(op_name) +
                               " requires identical schemas; got " +
                               lhs.schema().ToString() + " vs " +
                               rhs.schema().ToString());
  }
  return Status::Ok();
}

}  // namespace

Result<HistoricalState> Union(const HistoricalState& lhs,
                              const HistoricalState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "hunion"));
  std::vector<HistoricalTuple> merged = lhs.tuples();
  merged.insert(merged.end(), rhs.tuples().begin(), rhs.tuples().end());
  return HistoricalState::Make(lhs.schema(), std::move(merged));
}

Result<HistoricalState> Difference(const HistoricalState& lhs,
                                   const HistoricalState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "hdiff"));
  std::vector<HistoricalTuple> remaining;
  for (const HistoricalTuple& ht : lhs.tuples()) {
    TemporalElement survived =
        ht.valid.Difference(rhs.ValidTimeOf(ht.tuple));
    if (!survived.empty()) {
      remaining.push_back(HistoricalTuple{ht.tuple, std::move(survived)});
    }
  }
  return HistoricalState::Make(lhs.schema(), std::move(remaining));
}

Result<HistoricalState> Product(const HistoricalState& lhs,
                                const HistoricalState& rhs) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, lhs.schema().Concat(rhs.schema()));
  std::vector<HistoricalTuple> combined;
  for (const HistoricalTuple& a : lhs.tuples()) {
    for (const HistoricalTuple& b : rhs.tuples()) {
      TemporalElement both = a.valid.Intersect(b.valid);
      if (both.empty()) continue;
      std::vector<Value> values = a.tuple.values();
      values.insert(values.end(), b.tuple.values().begin(),
                    b.tuple.values().end());
      combined.push_back(
          HistoricalTuple{Tuple(std::move(values)), std::move(both)});
    }
  }
  return HistoricalState::Make(std::move(schema), std::move(combined));
}

Result<HistoricalState> Project(const HistoricalState& state,
                                const std::vector<std::string>& attributes) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Project(attributes));
  std::vector<size_t> indices;
  indices.reserve(attributes.size());
  for (const std::string& name : attributes) {
    indices.push_back(*state.schema().IndexOf(name));
  }
  std::vector<HistoricalTuple> projected;
  projected.reserve(state.size());
  for (const HistoricalTuple& ht : state.tuples()) {
    std::vector<Value> values;
    values.reserve(indices.size());
    for (size_t i : indices) values.push_back(ht.tuple.at(i));
    projected.push_back(HistoricalTuple{Tuple(std::move(values)), ht.valid});
  }
  return HistoricalState::Make(std::move(schema), std::move(projected));
}

Result<HistoricalState> Select(const HistoricalState& state,
                               const Predicate& predicate) {
  TTRA_RETURN_IF_ERROR(predicate.Validate(state.schema()));
  std::vector<HistoricalTuple> selected;
  for (const HistoricalTuple& ht : state.tuples()) {
    TTRA_ASSIGN_OR_RETURN(bool keep, predicate.Eval(state.schema(), ht.tuple));
    if (keep) selected.push_back(ht);
  }
  return HistoricalState::Make(state.schema(), std::move(selected));
}

Result<HistoricalState> Delta(const HistoricalState& state,
                              const TemporalPred& pred,
                              const TemporalExpr& projection) {
  std::vector<HistoricalTuple> result;
  for (const HistoricalTuple& ht : state.tuples()) {
    if (!pred.Eval(ht.valid)) continue;
    TemporalElement projected = projection.Eval(ht.valid);
    if (projected.empty()) continue;
    result.push_back(HistoricalTuple{ht.tuple, std::move(projected)});
  }
  return HistoricalState::Make(state.schema(), std::move(result));
}

Result<HistoricalState> Intersect(const HistoricalState& lhs,
                                  const HistoricalState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "hintersect"));
  std::vector<HistoricalTuple> shared;
  for (const HistoricalTuple& ht : lhs.tuples()) {
    TemporalElement both = ht.valid.Intersect(rhs.ValidTimeOf(ht.tuple));
    if (!both.empty()) {
      shared.push_back(HistoricalTuple{ht.tuple, std::move(both)});
    }
  }
  return HistoricalState::Make(lhs.schema(), std::move(shared));
}

Result<HistoricalState> NaturalJoin(const HistoricalState& lhs,
                                    const HistoricalState& rhs) {
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> rhs_only;
  for (size_t j = 0; j < rhs.schema().size(); ++j) {
    const Attribute& attr = rhs.schema().attribute(j);
    auto i = lhs.schema().IndexOf(attr.name);
    if (i.has_value()) {
      if (lhs.schema().attribute(*i).type != attr.type) {
        return SchemaMismatchError("natural join attribute '" + attr.name +
                                   "' has mismatched types");
      }
      shared.emplace_back(*i, j);
    } else {
      rhs_only.push_back(j);
    }
  }
  std::vector<Attribute> result_attrs = lhs.schema().attributes();
  for (size_t j : rhs_only) result_attrs.push_back(rhs.schema().attribute(j));
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(result_attrs)));

  std::vector<HistoricalTuple> joined;
  for (const HistoricalTuple& a : lhs.tuples()) {
    for (const HistoricalTuple& b : rhs.tuples()) {
      bool match = true;
      for (const auto& [i, j] : shared) {
        if (!(a.tuple.at(i) == b.tuple.at(j))) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      TemporalElement both = a.valid.Intersect(b.valid);
      if (both.empty()) continue;
      std::vector<Value> values = a.tuple.values();
      for (size_t j : rhs_only) values.push_back(b.tuple.at(j));
      joined.push_back(
          HistoricalTuple{Tuple(std::move(values)), std::move(both)});
    }
  }
  return HistoricalState::Make(std::move(schema), std::move(joined));
}

Result<HistoricalState> Rename(const HistoricalState& state,
                               std::string_view from, std::string_view to) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Rename(from, to));
  return HistoricalState::Make(std::move(schema), state.tuples());
}

Result<HistoricalState> FromSnapshot(const SnapshotState& state,
                                     const TemporalElement& valid) {
  std::vector<HistoricalTuple> tuples;
  tuples.reserve(state.size());
  for (const Tuple& t : state.tuples()) {
    tuples.push_back(HistoricalTuple{t, valid});
  }
  return HistoricalState::Make(state.schema(), std::move(tuples));
}

}  // namespace ttra::historical_ops
