#ifndef TTRA_HISTORICAL_HOPERATORS_H_
#define TTRA_HISTORICAL_HOPERATORS_H_

#include <string>
#include <vector>

#include "historical/hstate.h"
#include "historical/temporal_expr.h"
#include "snapshot/predicate.h"
#include "util/result.h"

namespace ttra::historical_ops {

/// The historical counterparts ∪̂ −̂ ×̂ π̂ σ̂ of the snapshot operators plus
/// the new valid-time operator δ_{G,V} (paper §4). All evaluate to
/// historical states and are pure.
///
/// Semantics follow the homogeneous (temporal-element) model:
///  * ∪̂ merges the temporal elements of value-equal tuples;
///  * −̂ subtracts elements of value-equal tuples, dropping tuples whose
///    element becomes empty (a tuple survives for the chronons at which it
///    is in the left operand's history but not the right's);
///  * ×̂ concatenates value tuples and *intersects* elements (a combined
///    fact holds only when both facts hold), dropping empty results;
///  * π̂ projects value components and merges elements of tuples that
///    become equal;
///  * σ̂ selects on value components only, leaving elements untouched.

Result<HistoricalState> Union(const HistoricalState& lhs,
                              const HistoricalState& rhs);

Result<HistoricalState> Difference(const HistoricalState& lhs,
                                   const HistoricalState& rhs);

Result<HistoricalState> Product(const HistoricalState& lhs,
                                const HistoricalState& rhs);

Result<HistoricalState> Project(const HistoricalState& state,
                                const std::vector<std::string>& attributes);

Result<HistoricalState> Select(const HistoricalState& state,
                               const Predicate& predicate);

/// δ_{G,V}(E): valid-time selection and projection. Keeps the tuples whose
/// valid-time element satisfies G, then replaces each kept tuple's element
/// with V evaluated on it (tuples whose new element is empty are dropped).
Result<HistoricalState> Delta(const HistoricalState& state,
                              const TemporalPred& pred,
                              const TemporalExpr& projection);

// ---- Derived operators -------------------------------------------------

/// ∩̂: value-equal tuples with intersected elements.
Result<HistoricalState> Intersect(const HistoricalState& lhs,
                                  const HistoricalState& rhs);

/// σ̂_F(E1 ×̂ E2) without materializing the product: equality conjuncts of
/// F become hash-join keys, the rest is applied per candidate pair.
/// Names must be disjoint; elements intersect as in ×̂.
Result<HistoricalState> ThetaJoin(const HistoricalState& lhs,
                                  const HistoricalState& rhs,
                                  const Predicate& predicate);

/// Equijoin on shared attribute names with element intersection.
Result<HistoricalState> NaturalJoin(const HistoricalState& lhs,
                                    const HistoricalState& rhs);

Result<HistoricalState> Rename(const HistoricalState& state,
                               std::string_view from, std::string_view to);

/// Promotes a snapshot state to an historical state valid over `valid`.
Result<HistoricalState> FromSnapshot(const SnapshotState& state,
                                     const TemporalElement& valid);

}  // namespace ttra::historical_ops

#endif  // TTRA_HISTORICAL_HOPERATORS_H_
