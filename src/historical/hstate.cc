#include "historical/hstate.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/hash.h"

namespace ttra {

const std::shared_ptr<const HistoricalState::Rep>&
HistoricalState::EmptyRep() {
  static const std::shared_ptr<const Rep> kEmpty = std::make_shared<Rep>();
  return kEmpty;
}

std::string HistoricalTuple::ToString() const {
  return tuple.ToString() + " @ " + valid.ToString();
}

size_t HistoricalTuple::Hash() const {
  return HashCombine(tuple.Hash(), valid.Hash());
}

std::ostream& operator<<(std::ostream& os, const HistoricalTuple& tuple) {
  return os << tuple.ToString();
}

Result<HistoricalState> HistoricalState::Make(
    Schema schema, std::vector<HistoricalTuple> tuples) {
  std::map<Tuple, TemporalElement> merged;
  for (HistoricalTuple& ht : tuples) {
    TTRA_RETURN_IF_ERROR(ht.tuple.ConformsTo(schema));
    auto [it, inserted] = merged.emplace(std::move(ht.tuple), ht.valid);
    if (!inserted) it->second = it->second.Union(ht.valid);
  }
  std::vector<HistoricalTuple> canonical;
  canonical.reserve(merged.size());
  for (auto& [tuple, valid] : merged) {
    if (valid.empty()) continue;
    canonical.push_back(HistoricalTuple{tuple, std::move(valid)});
  }
  // std::map iteration is already sorted by tuple; elements are unique.
  return HistoricalState(std::move(schema), std::move(canonical));
}

HistoricalState HistoricalState::FromCanonical(
    Schema schema, std::vector<HistoricalTuple> tuples) {
#ifndef NDEBUG
  assert(std::is_sorted(tuples.begin(), tuples.end()));
  for (size_t i = 0; i < tuples.size(); ++i) {
    assert(!tuples[i].valid.empty());
    assert(i == 0 || !(tuples[i - 1].tuple == tuples[i].tuple));
    assert(tuples[i].tuple.ConformsTo(schema).ok());
  }
#endif
  return HistoricalState(std::move(schema), std::move(tuples));
}

HistoricalState HistoricalState::Empty(Schema schema) {
  return HistoricalState(std::move(schema), {});
}

TemporalElement HistoricalState::ValidTimeOf(const Tuple& tuple) const {
  auto it = std::lower_bound(
      rep_->tuples.begin(), rep_->tuples.end(), tuple,
      [](const HistoricalTuple& ht, const Tuple& t) { return ht.tuple < t; });
  if (it != rep_->tuples.end() && it->tuple == tuple) return it->valid;
  return TemporalElement();
}

SnapshotState HistoricalState::SnapshotAt(Chronon t) const {
  std::vector<Tuple> valid_now;
  for (const HistoricalTuple& ht : rep_->tuples) {
    if (ht.valid.Contains(t)) valid_now.push_back(ht.tuple);
  }
  // Tuples are unique and sorted already and conformed on construction.
  return SnapshotState::FromCanonical(rep_->schema, std::move(valid_now));
}

std::string HistoricalState::ToString() const {
  std::string out = rep_->schema.ToString();
  out += " {";
  for (size_t i = 0; i < rep_->tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += rep_->tuples[i].ToString();
  }
  out += "}";
  return out;
}

size_t HistoricalState::Hash() const {
  size_t seed = rep_->schema.Hash();
  for (const HistoricalTuple& t : rep_->tuples) {
    seed = HashCombine(seed, t.Hash());
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const HistoricalState& state) {
  return os << state.ToString();
}

}  // namespace ttra
