#include "historical/hstate.h"

#include <algorithm>
#include <map>

#include "util/hash.h"

namespace ttra {

std::string HistoricalTuple::ToString() const {
  return tuple.ToString() + " @ " + valid.ToString();
}

size_t HistoricalTuple::Hash() const {
  return HashCombine(tuple.Hash(), valid.Hash());
}

std::ostream& operator<<(std::ostream& os, const HistoricalTuple& tuple) {
  return os << tuple.ToString();
}

Result<HistoricalState> HistoricalState::Make(
    Schema schema, std::vector<HistoricalTuple> tuples) {
  std::map<Tuple, TemporalElement> merged;
  for (HistoricalTuple& ht : tuples) {
    TTRA_RETURN_IF_ERROR(ht.tuple.ConformsTo(schema));
    auto [it, inserted] = merged.emplace(std::move(ht.tuple), ht.valid);
    if (!inserted) it->second = it->second.Union(ht.valid);
  }
  std::vector<HistoricalTuple> canonical;
  canonical.reserve(merged.size());
  for (auto& [tuple, valid] : merged) {
    if (valid.empty()) continue;
    canonical.push_back(HistoricalTuple{tuple, std::move(valid)});
  }
  // std::map iteration is already sorted by tuple; elements are unique.
  return HistoricalState(std::move(schema), std::move(canonical));
}

HistoricalState HistoricalState::Empty(Schema schema) {
  return HistoricalState(std::move(schema), {});
}

TemporalElement HistoricalState::ValidTimeOf(const Tuple& tuple) const {
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), tuple,
      [](const HistoricalTuple& ht, const Tuple& t) { return ht.tuple < t; });
  if (it != tuples_.end() && it->tuple == tuple) return it->valid;
  return TemporalElement();
}

SnapshotState HistoricalState::SnapshotAt(Chronon t) const {
  std::vector<Tuple> valid_now;
  for (const HistoricalTuple& ht : tuples_) {
    if (ht.valid.Contains(t)) valid_now.push_back(ht.tuple);
  }
  // Tuples are unique and sorted already, so Make cannot fail (they
  // conformed on construction).
  return *SnapshotState::Make(schema_, std::move(valid_now));
}

std::string HistoricalState::ToString() const {
  std::string out = schema_.ToString();
  out += " {";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples_[i].ToString();
  }
  out += "}";
  return out;
}

size_t HistoricalState::Hash() const {
  size_t seed = schema_.Hash();
  for (const HistoricalTuple& t : tuples_) seed = HashCombine(seed, t.Hash());
  return seed;
}

std::ostream& operator<<(std::ostream& os, const HistoricalState& state) {
  return os << state.ToString();
}

}  // namespace ttra
