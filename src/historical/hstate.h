#ifndef TTRA_HISTORICAL_HSTATE_H_
#define TTRA_HISTORICAL_HSTATE_H_

#include <ostream>
#include <string>
#include <vector>

#include "historical/temporal_element.h"
#include "snapshot/schema.h"
#include "snapshot/state.h"
#include "snapshot/tuple.h"
#include "util/result.h"

namespace ttra {

/// A value tuple stamped with the temporal element over which it is valid.
struct HistoricalTuple {
  Tuple tuple;
  TemporalElement valid;

  std::string ToString() const;
  size_t Hash() const;

  friend bool operator==(const HistoricalTuple&,
                         const HistoricalTuple&) = default;
  friend bool operator<(const HistoricalTuple& a, const HistoricalTuple& b) {
    if (a.tuple < b.tuple) return true;
    if (b.tuple < a.tuple) return false;
    return a.valid < b.valid;
  }
};

std::ostream& operator<<(std::ostream& os, const HistoricalTuple& tuple);

/// An element of the paper's HISTORICAL STATE semantic domain: the history
/// of the modeled enterprise as currently best known. Canonical form is
/// *homogeneous*: value tuples are unique (equal value tuples have their
/// temporal elements merged) and no tuple has an empty element. This makes
/// state equality structural, which the temporal storage layer relies on.
class HistoricalState {
 public:
  HistoricalState() = default;

  /// Validates conformance and canonicalizes (merges duplicates, drops
  /// empty-element tuples, sorts).
  static Result<HistoricalState> Make(Schema schema,
                                      std::vector<HistoricalTuple> tuples);

  static HistoricalState Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  const std::vector<HistoricalTuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// The temporal element attached to `tuple`, or the empty element if the
  /// value tuple is absent.
  TemporalElement ValidTimeOf(const Tuple& tuple) const;

  /// The snapshot state valid at chronon t (the "timeslice": tuples whose
  /// element contains t, with timestamps dropped).
  SnapshotState SnapshotAt(Chronon t) const;

  /// "(a: int) {(1) @ [0, 5), (2) @ [3, 7)}".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const HistoricalState&,
                         const HistoricalState&) = default;

 private:
  HistoricalState(Schema schema, std::vector<HistoricalTuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  Schema schema_;
  std::vector<HistoricalTuple> tuples_;
};

std::ostream& operator<<(std::ostream& os, const HistoricalState& state);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::HistoricalTuple> {
  size_t operator()(const ttra::HistoricalTuple& t) const { return t.Hash(); }
};
template <>
struct hash<ttra::HistoricalState> {
  size_t operator()(const ttra::HistoricalState& s) const { return s.Hash(); }
};
}  // namespace std

#endif  // TTRA_HISTORICAL_HSTATE_H_
