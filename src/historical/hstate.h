#ifndef TTRA_HISTORICAL_HSTATE_H_
#define TTRA_HISTORICAL_HSTATE_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "historical/temporal_element.h"
#include "snapshot/schema.h"
#include "snapshot/state.h"
#include "snapshot/tuple.h"
#include "util/result.h"

namespace ttra {

/// A value tuple stamped with the temporal element over which it is valid.
struct HistoricalTuple {
  Tuple tuple;
  TemporalElement valid;

  std::string ToString() const;
  size_t Hash() const;

  friend bool operator==(const HistoricalTuple&,
                         const HistoricalTuple&) = default;
  friend bool operator<(const HistoricalTuple& a, const HistoricalTuple& b) {
    if (a.tuple < b.tuple) return true;
    if (b.tuple < a.tuple) return false;
    return a.valid < b.valid;
  }
};

std::ostream& operator<<(std::ostream& os, const HistoricalTuple& tuple);

/// An element of the paper's HISTORICAL STATE semantic domain: the history
/// of the modeled enterprise as currently best known. Canonical form is
/// *homogeneous*: value tuples are unique (equal value tuples have their
/// temporal elements merged) and no tuple has an empty element. This makes
/// state equality structural, which the temporal storage layer relies on.
///
/// Like SnapshotState, historical states are immutable and copy-on-write:
/// copies share one representation, so FINDSTATE reads and clones never
/// deep-copy the tuple vector.
class HistoricalState {
 public:
  HistoricalState() = default;

  /// Validates conformance and canonicalizes (merges duplicates, drops
  /// empty-element tuples, sorts).
  static Result<HistoricalState> Make(Schema schema,
                                      std::vector<HistoricalTuple> tuples);

  /// Trusted constructor for operator kernels: `tuples` must already be
  /// canonical (sorted, unique value tuples, no empty elements) and
  /// conform to `schema`. Invariants are asserted in debug builds only.
  static HistoricalState FromCanonical(Schema schema,
                                       std::vector<HistoricalTuple> tuples);

  static HistoricalState Empty(Schema schema);

  const Schema& schema() const { return rep_->schema; }
  const std::vector<HistoricalTuple>& tuples() const { return rep_->tuples; }
  size_t size() const { return rep_->tuples.size(); }
  bool empty() const { return rep_->tuples.empty(); }

  /// The temporal element attached to `tuple`, or the empty element if the
  /// value tuple is absent.
  TemporalElement ValidTimeOf(const Tuple& tuple) const;

  /// The snapshot state valid at chronon t (the "timeslice": tuples whose
  /// element contains t, with timestamps dropped).
  SnapshotState SnapshotAt(Chronon t) const;

  /// "(a: int) {(1) @ [0, 5), (2) @ [3, 7)}".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const HistoricalState& a, const HistoricalState& b) {
    return a.rep_ == b.rep_ || (a.rep_->schema == b.rep_->schema &&
                                a.rep_->tuples == b.rep_->tuples);
  }

 private:
  struct Rep {
    Schema schema;
    std::vector<HistoricalTuple> tuples;
  };

  static const std::shared_ptr<const Rep>& EmptyRep();

  HistoricalState(Schema schema, std::vector<HistoricalTuple> tuples)
      : rep_(std::make_shared<const Rep>(
            Rep{std::move(schema), std::move(tuples)})) {}

  std::shared_ptr<const Rep> rep_ = EmptyRep();
};

std::ostream& operator<<(std::ostream& os, const HistoricalState& state);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::HistoricalTuple> {
  size_t operator()(const ttra::HistoricalTuple& t) const { return t.Hash(); }
};
template <>
struct hash<ttra::HistoricalState> {
  size_t operator()(const ttra::HistoricalState& s) const { return s.Hash(); }
};
}  // namespace std

#endif  // TTRA_HISTORICAL_HSTATE_H_
