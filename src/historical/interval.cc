#include "historical/interval.h"

namespace ttra {

namespace {
std::string ChrononToString(Chronon t) {
  if (t == kChrononMax) return "inf";
  return std::to_string(t);
}
}  // namespace

std::string Interval::ToString() const {
  return "[" + ChrononToString(begin) + ", " + ChrononToString(end) + ")";
}

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << interval.ToString();
}

}  // namespace ttra
