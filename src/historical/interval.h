#ifndef TTRA_HISTORICAL_INTERVAL_H_
#define TTRA_HISTORICAL_INTERVAL_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace ttra {

/// Valid-time instants ("chronons"). The historical algebra is discrete;
/// kChrononMax serves as "forever" in the printed form.
using Chronon = int64_t;

inline constexpr Chronon kChrononMax = INT64_MAX;
inline constexpr Chronon kChrononMin = INT64_MIN;

/// A half-open valid-time interval [begin, end). Empty iff begin >= end.
struct Interval {
  Chronon begin = 0;
  Chronon end = 0;

  static Interval Make(Chronon begin, Chronon end) { return {begin, end}; }
  /// [t, t+1): the single chronon t.
  static Interval Point(Chronon t) { return {t, t + 1}; }
  /// [begin, forever).
  static Interval From(Chronon begin) { return {begin, kChrononMax}; }

  bool empty() const { return begin >= end; }
  bool Contains(Chronon t) const { return begin <= t && t < end; }
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }
  /// True if the intervals overlap or touch (can be coalesced).
  bool Meets(const Interval& other) const {
    return begin <= other.end && other.begin <= end;
  }

  /// "[begin, end)"; kChrononMax prints as "inf".
  std::string ToString() const;

  friend bool operator==(const Interval&, const Interval&) = default;
  friend auto operator<=>(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

}  // namespace ttra

#endif  // TTRA_HISTORICAL_INTERVAL_H_
