#include "historical/temporal_element.h"

#include <algorithm>

#include "util/hash.h"

namespace ttra {

TemporalElement TemporalElement::Of(std::vector<Interval> intervals) {
  intervals.erase(
      std::remove_if(intervals.begin(), intervals.end(),
                     [](const Interval& i) { return i.empty(); }),
      intervals.end());
  std::sort(intervals.begin(), intervals.end());
  TemporalElement element;
  for (const Interval& interval : intervals) {
    if (!element.intervals_.empty() &&
        element.intervals_.back().Meets(interval)) {
      element.intervals_.back().end =
          std::max(element.intervals_.back().end, interval.end);
    } else {
      element.intervals_.push_back(interval);
    }
  }
  return element;
}

bool TemporalElement::Contains(Chronon t) const {
  // Binary search: first interval with begin > t, then check predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Chronon value, const Interval& i) { return value < i.begin; });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->Contains(t);
}

bool TemporalElement::Overlaps(const TemporalElement& other) const {
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    if (intervals_[i].Overlaps(other.intervals_[j])) return true;
    if (intervals_[i].end <= other.intervals_[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool TemporalElement::Covers(const TemporalElement& other) const {
  return other.Difference(*this).empty();
}

uint64_t TemporalElement::Duration() const {
  uint64_t total = 0;
  for (const Interval& i : intervals_) {
    const uint64_t len = static_cast<uint64_t>(i.end) -
                         static_cast<uint64_t>(i.begin);
    if (total > UINT64_MAX - len) return UINT64_MAX;
    total += len;
  }
  return total;
}

TemporalElement TemporalElement::Union(const TemporalElement& other) const {
  std::vector<Interval> merged = intervals_;
  merged.insert(merged.end(), other.intervals_.begin(),
                other.intervals_.end());
  return Of(std::move(merged));
}

TemporalElement TemporalElement::Intersect(
    const TemporalElement& other) const {
  std::vector<Interval> result;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    const Chronon lo = std::max(a.begin, b.begin);
    const Chronon hi = std::min(a.end, b.end);
    if (lo < hi) result.push_back(Interval::Make(lo, hi));
    if (a.end <= b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return Of(std::move(result));
}

TemporalElement TemporalElement::Difference(
    const TemporalElement& other) const {
  std::vector<Interval> result;
  size_t j = 0;
  for (Interval a : intervals_) {
    while (j < other.intervals_.size() &&
           other.intervals_[j].end <= a.begin) {
      ++j;
    }
    size_t k = j;
    while (!a.empty() && k < other.intervals_.size() &&
           other.intervals_[k].begin < a.end) {
      const Interval& b = other.intervals_[k];
      if (b.begin > a.begin) {
        result.push_back(Interval::Make(a.begin, b.begin));
      }
      a.begin = std::max(a.begin, b.end);
      if (b.end >= a.end) break;
      ++k;
    }
    if (!a.empty()) result.push_back(a);
  }
  return Of(std::move(result));
}

std::string TemporalElement::ToString() const {
  if (intervals_.empty()) return "[)";
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += " u ";
    out += intervals_[i].ToString();
  }
  return out;
}

size_t TemporalElement::Hash() const {
  size_t seed = intervals_.size();
  for (const Interval& i : intervals_) {
    seed = HashCombine(seed, HashValue(i.begin));
    seed = HashCombine(seed, HashValue(i.end));
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const TemporalElement& element) {
  return os << element.ToString();
}

}  // namespace ttra
