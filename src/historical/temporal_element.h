#ifndef TTRA_HISTORICAL_TEMPORAL_ELEMENT_H_
#define TTRA_HISTORICAL_TEMPORAL_ELEMENT_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "historical/interval.h"

namespace ttra {

/// A temporal element: a finite union of valid-time intervals, kept in
/// canonical form (sorted, disjoint, non-touching, non-empty intervals).
/// This is the valid-time timestamp attached to each historical tuple in
/// our (Gadia-style homogeneous) historical algebra; the paper only
/// requires *some* historical-state definition, see DESIGN.md.
class TemporalElement {
 public:
  /// The empty element (valid never).
  TemporalElement() = default;

  /// Canonicalizes an arbitrary interval collection.
  static TemporalElement Of(std::vector<Interval> intervals);
  static TemporalElement Of(std::initializer_list<Interval> intervals) {
    return Of(std::vector<Interval>(intervals));
  }
  /// Single interval [begin, end).
  static TemporalElement Span(Chronon begin, Chronon end) {
    return Of({Interval::Make(begin, end)});
  }
  /// The single chronon t.
  static TemporalElement Point(Chronon t) { return Of({Interval::Point(t)}); }

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

  bool Contains(Chronon t) const;
  bool Overlaps(const TemporalElement& other) const;
  /// True iff every chronon of `other` is in this element.
  bool Covers(const TemporalElement& other) const;
  /// Total number of chronons (saturates at INT64_MAX).
  uint64_t Duration() const;
  /// Earliest chronon; requires !empty().
  Chronon Min() const { return intervals_.front().begin; }
  /// One past the latest chronon; requires !empty().
  Chronon Max() const { return intervals_.back().end; }

  TemporalElement Union(const TemporalElement& other) const;
  TemporalElement Intersect(const TemporalElement& other) const;
  TemporalElement Difference(const TemporalElement& other) const;

  /// "[1, 5) u [7, inf)"; the empty element prints as "[)".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const TemporalElement&,
                         const TemporalElement&) = default;
  /// Canonical order for sorting historical tuples.
  friend bool operator<(const TemporalElement& a, const TemporalElement& b) {
    return a.intervals_ < b.intervals_;
  }

 private:
  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const TemporalElement& element);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::TemporalElement> {
  size_t operator()(const ttra::TemporalElement& e) const { return e.Hash(); }
};
}  // namespace std

#endif  // TTRA_HISTORICAL_TEMPORAL_ELEMENT_H_
