#include "historical/temporal_expr.h"

#include <cassert>

namespace ttra {

struct TemporalExpr::Node {
  Kind kind;
  TemporalElement constant;  // kConst
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

TemporalExpr::TemporalExpr(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

TemporalExpr::TemporalExpr() : TemporalExpr(Valid()) {}

TemporalExpr TemporalExpr::Valid() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kValid;
  return TemporalExpr(std::move(node));
}

TemporalExpr TemporalExpr::Const(TemporalElement element) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->constant = std::move(element);
  return TemporalExpr(std::move(node));
}

TemporalExpr TemporalExpr::Union(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return TemporalExpr(std::move(node));
}

TemporalExpr TemporalExpr::Intersect(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kIntersect;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return TemporalExpr(std::move(node));
}

TemporalExpr TemporalExpr::Difference(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDifference;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return TemporalExpr(std::move(node));
}

TemporalElement TemporalExpr::Eval(const TemporalElement& valid) const {
  switch (node_->kind) {
    case Kind::kValid:
      return valid;
    case Kind::kConst:
      return node_->constant;
    case Kind::kUnion:
      return TemporalExpr(node_->left)
          .Eval(valid)
          .Union(TemporalExpr(node_->right).Eval(valid));
    case Kind::kIntersect:
      return TemporalExpr(node_->left)
          .Eval(valid)
          .Intersect(TemporalExpr(node_->right).Eval(valid));
    case Kind::kDifference:
      return TemporalExpr(node_->left)
          .Eval(valid)
          .Difference(TemporalExpr(node_->right).Eval(valid));
  }
  return TemporalElement();
}

bool TemporalExpr::IsIdentity() const { return node_->kind == Kind::kValid; }

std::string TemporalExpr::ToString() const {
  switch (node_->kind) {
    case Kind::kValid:
      return "valid";
    case Kind::kConst:
      return node_->constant.ToString();
    case Kind::kUnion:
      return "(" + TemporalExpr(node_->left).ToString() + " union " +
             TemporalExpr(node_->right).ToString() + ")";
    case Kind::kIntersect:
      return "(" + TemporalExpr(node_->left).ToString() + " intersect " +
             TemporalExpr(node_->right).ToString() + ")";
    case Kind::kDifference:
      return "(" + TemporalExpr(node_->left).ToString() + " minus " +
             TemporalExpr(node_->right).ToString() + ")";
  }
  return "?";
}

bool operator==(const TemporalExpr& a, const TemporalExpr& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case TemporalExpr::Kind::kValid:
      return true;
    case TemporalExpr::Kind::kConst:
      return a.constant() == b.constant();
    default:
      return a.left() == b.left() && a.right() == b.right();
  }
}

TemporalExpr::Kind TemporalExpr::kind() const { return node_->kind; }
const TemporalElement& TemporalExpr::constant() const {
  assert(node_->kind == Kind::kConst);
  return node_->constant;
}
TemporalExpr TemporalExpr::left() const {
  assert(node_->left != nullptr);
  return TemporalExpr(node_->left);
}
TemporalExpr TemporalExpr::right() const {
  assert(node_->right != nullptr);
  return TemporalExpr(node_->right);
}

std::ostream& operator<<(std::ostream& os, const TemporalExpr& expr) {
  return os << expr.ToString();
}

// ---------------------------------------------------------------------------

struct TemporalPred::Node {
  Kind kind;
  bool const_value = false;         // kConst
  TemporalExpr lhs;                 // comparison kinds
  TemporalExpr rhs;                 // binary comparison kinds
  std::shared_ptr<const Node> left;   // kAnd / kOr / kNot
  std::shared_ptr<const Node> right;  // kAnd / kOr
};

TemporalPred::TemporalPred(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

TemporalPred::TemporalPred() : TemporalPred(True()) {}

TemporalPred TemporalPred::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = true;
  return TemporalPred(std::move(node));
}

TemporalPred TemporalPred::False() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = false;
  return TemporalPred(std::move(node));
}

TemporalPred TemporalPred::Overlaps(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOverlaps;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return TemporalPred(std::move(node));
}
TemporalPred TemporalPred::Contains(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kContains;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return TemporalPred(std::move(node));
}
TemporalPred TemporalPred::Before(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBefore;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return TemporalPred(std::move(node));
}
TemporalPred TemporalPred::Equals(TemporalExpr lhs, TemporalExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kEquals;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return TemporalPred(std::move(node));
}
TemporalPred TemporalPred::Empty(TemporalExpr operand) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kEmpty;
  node->lhs = std::move(operand);
  return TemporalPred(std::move(node));
}

TemporalPred TemporalPred::And(TemporalPred lhs, TemporalPred rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return TemporalPred(std::move(node));
}

TemporalPred TemporalPred::Or(TemporalPred lhs, TemporalPred rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return TemporalPred(std::move(node));
}

TemporalPred TemporalPred::Not(TemporalPred operand) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = std::move(operand.node_);
  return TemporalPred(std::move(node));
}

bool TemporalPred::Eval(const TemporalElement& valid) const {
  switch (node_->kind) {
    case Kind::kConst:
      return node_->const_value;
    case Kind::kOverlaps:
      return node_->lhs.Eval(valid).Overlaps(node_->rhs.Eval(valid));
    case Kind::kContains:
      return node_->lhs.Eval(valid).Covers(node_->rhs.Eval(valid));
    case Kind::kBefore: {
      const TemporalElement a = node_->lhs.Eval(valid);
      const TemporalElement b = node_->rhs.Eval(valid);
      return !a.empty() && !b.empty() && a.Max() <= b.Min();
    }
    case Kind::kEquals:
      return node_->lhs.Eval(valid) == node_->rhs.Eval(valid);
    case Kind::kEmpty:
      return node_->lhs.Eval(valid).empty();
    case Kind::kAnd:
      return TemporalPred(node_->left).Eval(valid) &&
             TemporalPred(node_->right).Eval(valid);
    case Kind::kOr:
      return TemporalPred(node_->left).Eval(valid) ||
             TemporalPred(node_->right).Eval(valid);
    case Kind::kNot:
      return !TemporalPred(node_->left).Eval(valid);
  }
  return false;
}

bool TemporalPred::IsTrueLiteral() const {
  return node_->kind == Kind::kConst && node_->const_value;
}

std::string TemporalPred::ToString() const {
  switch (node_->kind) {
    case Kind::kConst:
      return node_->const_value ? "true" : "false";
    case Kind::kOverlaps:
      return "overlaps(" + node_->lhs.ToString() + ", " +
             node_->rhs.ToString() + ")";
    case Kind::kContains:
      return "contains(" + node_->lhs.ToString() + ", " +
             node_->rhs.ToString() + ")";
    case Kind::kBefore:
      return "before(" + node_->lhs.ToString() + ", " + node_->rhs.ToString() +
             ")";
    case Kind::kEquals:
      return "equals(" + node_->lhs.ToString() + ", " + node_->rhs.ToString() +
             ")";
    case Kind::kEmpty:
      return "isempty(" + node_->lhs.ToString() + ")";
    case Kind::kAnd:
      return "(" + TemporalPred(node_->left).ToString() + " and " +
             TemporalPred(node_->right).ToString() + ")";
    case Kind::kOr:
      return "(" + TemporalPred(node_->left).ToString() + " or " +
             TemporalPred(node_->right).ToString() + ")";
    case Kind::kNot:
      return "not (" + TemporalPred(node_->left).ToString() + ")";
  }
  return "?";
}

bool operator==(const TemporalPred& a, const TemporalPred& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case TemporalPred::Kind::kConst:
      return a.const_value() == b.const_value();
    case TemporalPred::Kind::kOverlaps:
    case TemporalPred::Kind::kContains:
    case TemporalPred::Kind::kBefore:
    case TemporalPred::Kind::kEquals:
      return a.lhs() == b.lhs() && a.rhs() == b.rhs();
    case TemporalPred::Kind::kEmpty:
      return a.lhs() == b.lhs();
    case TemporalPred::Kind::kAnd:
    case TemporalPred::Kind::kOr:
      return a.left() == b.left() && a.right() == b.right();
    case TemporalPred::Kind::kNot:
      return a.left() == b.left();
  }
  return false;
}

TemporalPred::Kind TemporalPred::kind() const { return node_->kind; }
bool TemporalPred::const_value() const {
  assert(node_->kind == Kind::kConst);
  return node_->const_value;
}
TemporalExpr TemporalPred::lhs() const { return node_->lhs; }
TemporalExpr TemporalPred::rhs() const { return node_->rhs; }
TemporalPred TemporalPred::left() const {
  assert(node_->left != nullptr);
  return TemporalPred(node_->left);
}
TemporalPred TemporalPred::right() const {
  assert(node_->right != nullptr);
  return TemporalPred(node_->right);
}

std::ostream& operator<<(std::ostream& os, const TemporalPred& pred) {
  return os << pred.ToString();
}

}  // namespace ttra
