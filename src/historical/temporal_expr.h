#ifndef TTRA_HISTORICAL_TEMPORAL_EXPR_H_
#define TTRA_HISTORICAL_TEMPORAL_EXPR_H_

#include <memory>
#include <ostream>
#include <string>

#include "historical/temporal_element.h"

namespace ttra {

/// The paper's domain 𝒱 of temporal expressions: expressions that, given a
/// tuple's valid-time element, evaluate to a temporal element. Used as the
/// V argument of δ_{G,V} (valid-time projection) and inside the boolean
/// domain 𝒢. Immutable and cheap to copy.
class TemporalExpr {
 public:
  /// Defaults to Valid() — the identity projection.
  TemporalExpr();

  /// The tuple's own valid-time element ("valid").
  static TemporalExpr Valid();
  /// A constant temporal element.
  static TemporalExpr Const(TemporalElement element);
  static TemporalExpr Union(TemporalExpr lhs, TemporalExpr rhs);
  static TemporalExpr Intersect(TemporalExpr lhs, TemporalExpr rhs);
  static TemporalExpr Difference(TemporalExpr lhs, TemporalExpr rhs);

  /// Evaluates with `valid` bound to the tuple's element. Total.
  TemporalElement Eval(const TemporalElement& valid) const;

  /// True if the expression is exactly `Valid()`.
  bool IsIdentity() const;

  std::string ToString() const;

  friend bool operator==(const TemporalExpr& a, const TemporalExpr& b);

  enum class Kind : uint8_t { kValid, kConst, kUnion, kIntersect, kDifference };
  Kind kind() const;
  /// kConst only.
  const TemporalElement& constant() const;
  /// Binary kinds only.
  TemporalExpr left() const;
  TemporalExpr right() const;

 private:
  struct Node;
  explicit TemporalExpr(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const TemporalExpr& expr);

/// The paper's domain 𝒢 of boolean expressions over temporal expressions,
/// relational operators, and logical operators. Used as the G argument of
/// δ_{G,V} (valid-time selection).
class TemporalPred {
 public:
  /// Defaults to True (δ with G=true filters nothing).
  TemporalPred();

  static TemporalPred True();
  static TemporalPred False();
  /// V1 and V2 share at least one chronon.
  static TemporalPred Overlaps(TemporalExpr lhs, TemporalExpr rhs);
  /// Every chronon of V2 is in V1.
  static TemporalPred Contains(TemporalExpr lhs, TemporalExpr rhs);
  /// Both non-empty and all of V1 precedes all of V2.
  static TemporalPred Before(TemporalExpr lhs, TemporalExpr rhs);
  /// V1 and V2 denote the same element.
  static TemporalPred Equals(TemporalExpr lhs, TemporalExpr rhs);
  /// V is the empty element.
  static TemporalPred Empty(TemporalExpr operand);
  static TemporalPred And(TemporalPred lhs, TemporalPred rhs);
  static TemporalPred Or(TemporalPred lhs, TemporalPred rhs);
  static TemporalPred Not(TemporalPred operand);

  /// Evaluates with `valid` bound to the tuple's element. Total.
  bool Eval(const TemporalElement& valid) const;

  bool IsTrueLiteral() const;

  std::string ToString() const;

  friend bool operator==(const TemporalPred& a, const TemporalPred& b);

  enum class Kind : uint8_t {
    kConst,
    kOverlaps,
    kContains,
    kBefore,
    kEquals,
    kEmpty,
    kAnd,
    kOr,
    kNot,
  };
  Kind kind() const;
  bool const_value() const;
  /// Comparison kinds.
  TemporalExpr lhs() const;
  TemporalExpr rhs() const;
  /// kAnd/kOr (left, right) and kNot (left).
  TemporalPred left() const;
  TemporalPred right() const;

 private:
  struct Node;
  explicit TemporalPred(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const TemporalPred& pred);

}  // namespace ttra

#endif  // TTRA_HISTORICAL_TEMPORAL_EXPR_H_
