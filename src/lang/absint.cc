#include "lang/absint.h"

#include <algorithm>
#include <utility>

namespace ttra::lang {

TxnInterval TxnInterval::Join(const TxnInterval& other) const {
  TxnInterval out;
  out.lo = std::min(lo, other.lo);
  if (hi.has_value() && other.hi.has_value()) {
    out.hi = std::max(*hi, *other.hi);
  } else {
    out.hi = std::nullopt;
  }
  return out;
}

TxnInterval TxnInterval::Plus(TransactionNumber a, TransactionNumber b) const {
  TxnInterval out;
  out.lo = lo + a;
  out.hi = hi.has_value() ? std::optional<TransactionNumber>(*hi + b)
                          : std::nullopt;
  return out;
}

std::string TxnInterval::ToString() const {
  if (exact()) return std::to_string(lo);
  if (hi.has_value()) {
    return "[" + std::to_string(lo) + "," + std::to_string(*hi) + "]";
  }
  return "[" + std::to_string(lo) + ",inf)";
}

const Schema* AbsRelation::ProvableSchemaAt(TransactionNumber txn) const {
  // An empty history means the relation pre-existed the program and its
  // scheme versions are unknown — nothing is provable.
  if (schema_history.empty()) return nullptr;
  // k = largest index whose installation provably precedes-or-equals txn.
  // Index 0 also applies when txn precedes every installation, because
  // Relation::SchemaAt clamps to the define-time scheme.
  size_t k = 0;
  for (size_t i = 1; i < schema_history.size(); ++i) {
    if (schema_history[i].second.ProvablyLe(txn)) k = i;
  }
  // Version k is the one FINDSTATE observes only if every later version
  // provably post-dates txn; otherwise the applicable version is ambiguous.
  for (size_t i = k + 1; i < schema_history.size(); ++i) {
    if (!schema_history[i].second.ProvablyGt(txn)) return nullptr;
  }
  return &schema_history[k].first;
}

bool AbsRelation::ProvablyEmptyAt(TransactionNumber txn) const {
  if (!states_complete) return false;
  for (const TxnInterval& t : state_txns) {
    if (!t.ProvablyGt(txn)) return false;
  }
  return true;
}

const Schema* AbsRelation::ProvableObservedSchemaAt(
    std::optional<TransactionNumber> txn) const {
  if (!states_complete) return nullptr;
  // A relation whose scheme never changed observes that scheme no matter
  // which state FINDSTATE lands on (including the empty state).
  if (schema_history.size() == 1) return &schema_history.front().first;
  if (schema_history.empty()) return nullptr;
  // With scheme evolution in play, pin down the exact state observed.
  std::optional<TransactionNumber> observed;
  for (const TxnInterval& t : state_txns) {
    if (!t.exact()) return nullptr;
    if (!txn.has_value() || t.lo <= *txn) observed = t.lo;
  }
  if (!observed.has_value()) {
    // The probe observes the empty state, whose scheme is the one current
    // at the probe transaction (Relation::SchemaAt semantics).
    if (!txn.has_value()) return &schema;
    return ProvableSchemaAt(*txn);
  }
  return ProvableSchemaAt(*observed);
}

const AbsRelation* AbsState::Find(const std::string& name) const {
  auto it = relations.find(name);
  return it == relations.end() ? nullptr : &it->second;
}

AbsState InitialAbsState(const Catalog& catalog,
                         std::optional<TransactionNumber> initial_txn) {
  AbsState state;
  state.counter = initial_txn.has_value() ? TxnInterval::Exact(*initial_txn)
                                          : TxnInterval::AtLeast(0);
  // Pre-existing relations were created at some unknown transaction no
  // later than the current counter; their state and scheme histories are
  // invisible, so only the current type/scheme are recorded as facts.
  const TxnInterval unknown_past =
      initial_txn.has_value() ? TxnInterval::Range(0, *initial_txn)
                              : TxnInterval::AtLeast(0);
  for (const auto& [name, entry] : catalog.entries()) {
    AbsRelation r;
    r.type = entry.type;
    r.schema = entry.schema;
    r.defined_at = unknown_past;
    r.states_complete = false;
    state.relations.emplace(name, std::move(r));
  }
  return state;
}

AbsState AbsStateFromDatabase(const Database& db) {
  AbsState state;
  state.counter = TxnInterval::Exact(db.transaction_number());
  for (const std::string& name : db.RelationNames()) {
    const Relation* rel = db.Find(name);
    AbsRelation r;
    r.type = rel->type();
    r.schema = rel->schema();
    for (const auto& [schema, txn] : rel->schema_history()) {
      r.schema_history.emplace_back(schema, TxnInterval::Exact(txn));
    }
    r.defined_at = r.schema_history.empty() ? TxnInterval::Exact(0)
                                            : r.schema_history.front().second;
    for (size_t i = 0; i < rel->history_length(); ++i) {
      r.state_txns.push_back(TxnInterval::Exact(rel->TxnAt(i)));
    }
    r.states_complete = true;
    state.relations.emplace(name, std::move(r));
  }
  return state;
}

namespace {

/// Transfer function of one statement over the abstract state. A rejected
/// statement commits nothing (the database, including the transaction
/// counter, is unchanged on failure), so it has no abstract effect either.
void ApplyAbstract(const Stmt& stmt, bool has_error, AbsState& state) {
  if (std::holds_alternative<ShowStmt>(stmt)) return;  // queries commit nothing
  if (has_error) return;
  const TxnInterval commit = state.counter.Plus(1, 1);
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          if (state.relations.contains(s.name)) return;
          AbsRelation r;
          r.type = s.type;
          r.schema = s.schema;
          r.defined_at = commit;
          r.schema_history.emplace_back(s.schema, commit);
          r.states_complete = true;
          state.relations.emplace(s.name, std::move(r));
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          state.relations.erase(s.name);
        } else if constexpr (std::is_same_v<T, ModifySchemaStmt>) {
          auto it = state.relations.find(s.name);
          if (it == state.relations.end()) return;
          it->second.schema = s.schema;
          it->second.schema_history.emplace_back(s.schema, commit);
        } else if constexpr (std::is_same_v<T, ModifyStateStmt>) {
          auto it = state.relations.find(s.name);
          if (it == state.relations.end()) return;
          // modify_state dispatch (§3.5): append for rollback/temporal,
          // replace the single state for snapshot/historical.
          if (!RetainsHistory(it->second.type)) it->second.state_txns.clear();
          it->second.state_txns.push_back(commit);
        }
      },
      stmt);
  // Every non-rejected command commits exactly one transaction.
  state.counter = commit;
}

}  // namespace

std::vector<AbsState> Interpret(const Program& program, AbsState initial,
                                const std::vector<bool>* stmt_has_error) {
  std::vector<AbsState> states;
  states.reserve(program.size() + 1);
  AbsState current = std::move(initial);
  for (size_t i = 0; i < program.size(); ++i) {
    states.push_back(current);
    const bool has_error = stmt_has_error != nullptr &&
                           i < stmt_has_error->size() && (*stmt_has_error)[i];
    ApplyAbstract(program[i], has_error, current);
  }
  states.push_back(std::move(current));
  return states;
}

namespace {

template <typename Fn>
void ForEachRollback(const Expr& expr, Fn&& fn) {
  if (expr.kind() == Expr::Kind::kRollback) {
    fn(expr);
    return;
  }
  if (expr.kind() == Expr::Kind::kConst) return;
  ForEachRollback(expr.left(), fn);
  if (expr.kind() == Expr::Kind::kBinary) ForEachRollback(expr.right(), fn);
}

SourceSpan ExprOrStmtSpan(const Expr& expr, const Stmt& stmt) {
  return expr.span().valid() ? expr.span() : StmtSpan(stmt);
}

}  // namespace

void CheckProgramAbsint(const Program& program,
                        const std::vector<AbsState>& states,
                        const std::vector<bool>& stmt_has_error,
                        DiagnosticSink& sink) {
  struct PendingWrite {
    size_t stmt_index;  // 0-based
    SourceSpan span;
  };
  // Snapshot/historical writes not yet observed by any expression.
  std::map<std::string, PendingWrite> pending;

  for (size_t i = 0; i < program.size() && i < states.size(); ++i) {
    const Stmt& stmt = program[i];
    const AbsState& pre = states[i];
    const bool clean = i >= stmt_has_error.size() || !stmt_has_error[i];

    // The statement's expression observes the relations it references,
    // whether or not the statement itself goes on to commit.
    if (const Expr* expr = StmtExpr(stmt)) {
      for (const std::string& name : expr->RelationNames()) {
        pending.erase(name);
      }
    }

    if (clean) {
      if (const Expr* expr = StmtExpr(stmt)) {
        // TTRA-W006/W007: finite rollbacks judged against the abstract
        // state sequence and scheme history.
        ForEachRollback(*expr, [&](const Expr& rb) {
          if (!rb.rollback_txn().has_value()) return;
          const TransactionNumber txn = *rb.rollback_txn();
          const AbsRelation* rel = pre.Find(rb.relation_name());
          if (rel == nullptr) return;
          if (rel->ProvablyEmptyAt(txn)) {
            sink.AddWarning(
                kWarnRollbackProvablyEmpty, ExprOrStmtSpan(rb, stmt),
                "rollback to transaction " + std::to_string(txn) +
                    " provably observes the empty state: relation '" +
                    rb.relation_name() +
                    "' records no state at or before that transaction");
            return;
          }
          if (const Schema* at = rel->ProvableSchemaAt(txn)) {
            if (*at != rel->schema) {
              sink.AddWarning(
                  kWarnRollbackSchemaChanged, ExprOrStmtSpan(rb, stmt),
                  "rollback to transaction " + std::to_string(txn) +
                      " observes scheme " + at->ToString() +
                      ", but surrounding operators are typed against the "
                      "current scheme " +
                      rel->schema.ToString());
            }
          }
        });

        // TTRA-W009: a non-constant expression over no relations is a
        // compile-time constant.
        if (expr->kind() != Expr::Kind::kConst && expr->RelationNames().empty()) {
          sink.AddWarning(kWarnConstantFoldable, ExprOrStmtSpan(*expr, stmt),
                          "expression references no relation; its value is a "
                          "compile-time constant");
        }
      }
    }

    // TTRA-W008: dead modify_state of a relation that does not retain
    // history. A rejected statement commits nothing, so it neither starts
    // nor kills a pending write.
    if (const auto* modify = std::get_if<ModifyStateStmt>(&stmt)) {
      if (clean) {
        auto it = pending.find(modify->name);
        if (it != pending.end()) {
          sink.AddWarning(
              kWarnDeadModifyState, it->second.span,
              "state written to '" + modify->name +
                  "' here is overwritten by statement " + std::to_string(i + 1) +
                  " before any expression reads it");
          pending.erase(it);
        }
        const AbsRelation* rel = pre.Find(modify->name);
        if (rel != nullptr && !RetainsHistory(rel->type)) {
          pending[modify->name] = PendingWrite{i, StmtSpan(stmt)};
        }
      }
    } else if (const auto* del = std::get_if<DeleteRelationStmt>(&stmt)) {
      if (clean) {
        auto it = pending.find(del->name);
        if (it != pending.end()) {
          sink.AddWarning(
              kWarnDeadModifyState, it->second.span,
              "state written to '" + del->name +
                  "' here is deleted by statement " + std::to_string(i + 1) +
                  " before any expression reads it");
        }
      }
      pending.erase(del->name);
    } else if (const auto* define = std::get_if<DefineRelationStmt>(&stmt)) {
      pending.erase(define->name);
    }
    // modify_schema keeps the old state observable: neither read nor kill.
  }
}

}  // namespace ttra::lang
