#ifndef TTRA_LANG_ABSINT_H_
#define TTRA_LANG_ABSINT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/analyzer.h"
#include "lang/ast.h"

namespace ttra::lang {

// --- Abstract interpreter over the paper's command semantics ---------------
//
// The denotation C⟦·⟧ of every command is statically predictable up to the
// values stored in states: commands either fail (leaving the database — and
// the transaction counter — unchanged) or commit exactly one transaction,
// and transaction numbers in a relation's state sequence are strictly
// increasing. The interpreter below exploits this: it walks a program once
// and tracks, per relation identifier, an abstract state — relation type,
// current scheme, scheme-version history, and the set of transaction
// numbers at which states were recorded — plus an interval abstraction of
// the transaction counter itself.
//
// Soundness (DESIGN.md §10): facts are sound for strict execution from the
// given initial state. "Provably" below always means "in every strict
// execution reaching this statement". Statements the static analyzer found
// an error in are treated as may-skip (they commit nothing under --lax),
// which widens the counter interval instead of invalidating it.

/// Closed interval [lo, hi] of transaction numbers; unset hi = unbounded.
/// The lattice join is interval hull; bottom is not representable (an
/// AbsRelation/AbsState simply omits facts it cannot bound).
struct TxnInterval {
  TransactionNumber lo = 0;
  std::optional<TransactionNumber> hi = 0;

  static TxnInterval Exact(TransactionNumber t) { return {t, t}; }
  static TxnInterval Range(TransactionNumber lo, TransactionNumber hi) {
    return {lo, hi};
  }
  static TxnInterval AtLeast(TransactionNumber lo) { return {lo, std::nullopt}; }

  bool exact() const { return hi.has_value() && *hi == lo; }

  /// Interval hull (lattice join).
  TxnInterval Join(const TxnInterval& other) const;

  /// The interval shifted by [a, b]: commit-counter transfer for a
  /// statement that commits between a and b transactions.
  TxnInterval Plus(TransactionNumber a, TransactionNumber b) const;

  /// Every element of this interval is < t (resp. >, <=, >=).
  bool ProvablyLt(TransactionNumber t) const { return hi.has_value() && *hi < t; }
  bool ProvablyGt(TransactionNumber t) const { return lo > t; }
  bool ProvablyLe(TransactionNumber t) const { return hi.has_value() && *hi <= t; }
  bool ProvablyGe(TransactionNumber t) const { return lo >= t; }

  std::string ToString() const;  // "[3,7]", "[3,∞)", "3" when exact

  friend bool operator==(const TxnInterval&, const TxnInterval&) = default;
};

/// Abstract value of one relation identifier.
struct AbsRelation {
  RelationType type = RelationType::kSnapshot;
  /// Scheme current at the program point (mirrors Catalog::Entry::schema).
  Schema schema;
  /// Commit transaction of the define_relation that created the binding.
  TxnInterval defined_at;
  /// Scheme versions in increasing transaction order, each with the
  /// interval of its installation transaction. Index 0 is the define-time
  /// scheme (mirrors Relation::schema_history()).
  std::vector<std::pair<Schema, TxnInterval>> schema_history;
  /// Commit transactions of the recorded states, in increasing order.
  /// Snapshot/historical relations replace their single state, so at most
  /// one entry; rollback/temporal relations append.
  std::vector<TxnInterval> state_txns;
  /// True when state_txns lists every state the relation has recorded —
  /// i.e. the relation's whole life is visible to the interpreter (created
  /// by the program, or seeded from a live Database). False for relations
  /// that pre-exist in a Catalog, whose history is unknown.
  bool states_complete = false;

  /// The scheme FINDSTATE-style lookups observe at transaction `txn`, when
  /// provably resolvable from the abstract scheme history (clamps to the
  /// define-time scheme for txn before every installation, mirroring
  /// Relation::SchemaAt). nullptr when the interval abstraction cannot
  /// pin down which version applies.
  const Schema* ProvableSchemaAt(TransactionNumber txn) const;

  /// True when ρ/ρ̂ at `txn` provably observes the empty state: the whole
  /// state history is visible and contains no state at or before `txn`.
  bool ProvablyEmptyAt(TransactionNumber txn) const;

  /// The scheme of the *state* a ρ/ρ̂ probe at `txn` (nullopt = ∞) observes
  /// — i.e. the scheme FINDSTATE's answer was recorded under, which is what
  /// the runtime result carries. Differs from ProvableSchemaAt when the
  /// probe lands between a state and a later modify_schema. nullptr when
  /// not provable (incomplete history or imprecise intervals).
  const Schema* ProvableObservedSchemaAt(
      std::optional<TransactionNumber> txn) const;
};

/// Abstract database state at one program point.
struct AbsState {
  /// Transaction counter before the statement at this point runs.
  TxnInterval counter;
  std::map<std::string, AbsRelation> relations;

  const AbsRelation* Find(const std::string& name) const;
};

/// Abstract state for a program checked against `catalog` with nothing
/// known beyond it. Pre-existing relations get unknown (wide) histories;
/// the counter is exact when `initial_txn` is known, [0, ∞) otherwise.
AbsState InitialAbsState(const Catalog& catalog,
                         std::optional<TransactionNumber> initial_txn);

/// Exact abstract state of a live database: every relation's recorded
/// transaction numbers and scheme history become singleton intervals and
/// states_complete is set, so downstream consumers (the optimizer) get
/// maximal precision.
AbsState AbsStateFromDatabase(const Database& db);

/// Runs the abstract semantics over the program. Returns one AbsState per
/// program point: element i is the state before statement i, element
/// program.size() is the final state. `stmt_has_error` (parallel to the
/// program; may be nullptr = all clean) marks statements the static
/// analyzer rejected: a failing command commits nothing — the database and
/// counter are unchanged — so such statements apply no abstract effect.
std::vector<AbsState> Interpret(const Program& program, AbsState initial,
                                const std::vector<bool>* stmt_has_error);

/// The whole-program warnings TTRA-W006..W009, derived from the
/// interpreter's facts:
///   W006 — ρ/ρ̂ with a finite transaction number provably at or before
///          which the relation has recorded no state (e.g. before the
///          relation was defined): the result is provably empty.
///   W007 — ρ/ρ̂ whose transaction number provably resolves to a scheme
///          version older than the current one; the surrounding operators
///          are typed against the current scheme, so this use is
///          schema-incompatible across commands.
///   W008 — modify_state of a snapshot/historical relation whose state is
///          provably overwritten (or deleted) before any expression reads
///          it: the write is dead.
///   W009 — a non-constant modify_state/show expression that references no
///          relation: its value is a compile-time constant (the optimizer
///          folds it; see OptimizeWithFacts).
/// `states` must come from Interpret over the same program/error mask.
void CheckProgramAbsint(const Program& program,
                        const std::vector<AbsState>& states,
                        const std::vector<bool>& stmt_has_error,
                        DiagnosticSink& sink);

}  // namespace ttra::lang

#endif  // TTRA_LANG_ABSINT_H_
