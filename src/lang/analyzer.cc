#include "lang/analyzer.h"

#include <set>
#include <vector>

#include "lang/absint.h"

namespace ttra::lang {

std::string_view StateKindName(StateKind kind) {
  return kind == StateKind::kSnapshot ? "snapshot" : "historical";
}

Catalog::Catalog(const Database& db) {
  for (const std::string& name : db.RelationNames()) {
    const Relation* relation = db.Find(name);
    entries_.emplace(name, Entry{relation->type(), relation->schema()});
  }
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Status Catalog::Apply(const Stmt& stmt) {
  return std::visit(
      [this](const auto& s) -> Status {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          if (entries_.contains(s.name)) {
            return AlreadyDefinedError("relation already defined: " + s.name);
          }
          entries_.emplace(s.name, Entry{s.type, s.schema});
          return Status::Ok();
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          if (entries_.erase(s.name) == 0) {
            return UnknownIdentifierError("delete of undefined relation: " +
                                          s.name);
          }
          return Status::Ok();
        } else if constexpr (std::is_same_v<T, ModifySchemaStmt>) {
          auto it = entries_.find(s.name);
          if (it == entries_.end()) {
            return UnknownIdentifierError(
                "modify_schema of undefined relation: " + s.name);
          }
          it->second.schema = s.schema;
          return Status::Ok();
        } else {
          return Status::Ok();
        }
      },
      stmt);
}

namespace {

/// True for kinds with at least one child expression (left()).
bool HasChild(Expr::Kind kind) {
  return kind != Expr::Kind::kConst && kind != Expr::Kind::kRollback;
}

Result<ExprType> CombineBinary(const Expr& expr, const ExprType& lhs,
                               const ExprType& rhs) {
  if (lhs.kind != rhs.kind) {
    return TypeMismatchError(
        std::string(BinaryOpName(expr.op())) + " mixes a " +
        std::string(StateKindName(lhs.kind)) + " operand with a " +
        std::string(StateKindName(rhs.kind)) + " operand");
  }
  switch (expr.op()) {
    case BinaryOp::kUnion:
    case BinaryOp::kMinus:
    case BinaryOp::kIntersect:
      if (lhs.schema != rhs.schema) {
        return SchemaMismatchError(
            std::string(BinaryOpName(expr.op())) +
            " requires identical schemas; got " + lhs.schema.ToString() +
            " vs " + rhs.schema.ToString());
      }
      return lhs;
    case BinaryOp::kTimes: {
      TTRA_ASSIGN_OR_RETURN(Schema schema, lhs.schema.Concat(rhs.schema));
      return ExprType{lhs.kind, std::move(schema)};
    }
    case BinaryOp::kJoin: {
      // Natural-join result: lhs attributes then rhs-only attributes;
      // shared names must agree on type.
      std::vector<Attribute> attrs = lhs.schema.attributes();
      for (const Attribute& attr : rhs.schema.attributes()) {
        auto i = lhs.schema.IndexOf(attr.name);
        if (i.has_value()) {
          if (lhs.schema.attribute(*i).type != attr.type) {
            return SchemaMismatchError("natural join attribute '" +
                                       attr.name + "' has mismatched types");
          }
        } else {
          attrs.push_back(attr);
        }
      }
      TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
      return ExprType{lhs.kind, std::move(schema)};
    }
  }
  return InternalError("unhandled binary operator");
}

Result<ExprType> ExtendType(const Expr& expr, const ExprType& child) {
  std::vector<Attribute> attrs = child.schema.attributes();
  for (const auto& [name, scalar] : expr.definitions()) {
    TTRA_ASSIGN_OR_RETURN(ValueType type, scalar.TypeIn(child.schema));
    auto i = child.schema.IndexOf(name);
    if (i.has_value()) {
      attrs[*i].type = type;  // in-place redefinition (replace semantics)
    } else {
      attrs.push_back(Attribute{name, type});
    }
  }
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return ExprType{child.kind, std::move(schema)};
}

/// Type of one node given its (already analyzed) child types. Leaves ignore
/// `lhs`/`rhs`; binary nodes use both; every other kind uses `lhs` only.
/// Shared by the fail-fast and the collecting traversals so both report
/// exactly the same node-level errors.
Result<ExprType> TypeOfNode(const Expr& expr, const Catalog& catalog,
                            const std::optional<ExprType>& lhs,
                            const std::optional<ExprType>& rhs) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      if (std::holds_alternative<HistoricalState>(expr.constant())) {
        return ExprType{StateKind::kHistorical,
                        std::get<HistoricalState>(expr.constant()).schema()};
      }
      return ExprType{StateKind::kSnapshot,
                      std::get<SnapshotState>(expr.constant()).schema()};
    case Expr::Kind::kBinary:
      return CombineBinary(expr, *lhs, *rhs);
    case Expr::Kind::kProject: {
      TTRA_ASSIGN_OR_RETURN(Schema schema,
                            lhs->schema.Project(expr.attributes()));
      return ExprType{lhs->kind, std::move(schema)};
    }
    case Expr::Kind::kSelect:
      TTRA_RETURN_IF_ERROR(expr.predicate().Validate(lhs->schema));
      return *lhs;
    case Expr::Kind::kRename: {
      TTRA_ASSIGN_OR_RETURN(
          Schema schema,
          lhs->schema.Rename(expr.rename_from(), expr.rename_to()));
      return ExprType{lhs->kind, std::move(schema)};
    }
    case Expr::Kind::kExtend:
      return ExtendType(expr, *lhs);
    case Expr::Kind::kDelta:
      if (lhs->kind != StateKind::kHistorical) {
        return TypeMismatchError(
            "delta applies to historical states only; operand is snapshot");
      }
      return *lhs;
    case Expr::Kind::kSummarize: {
      TTRA_ASSIGN_OR_RETURN(
          Schema schema,
          AggregateSchema(lhs->schema, expr.group_attrs(),
                          expr.aggregates()));
      return ExprType{lhs->kind, std::move(schema)};
    }
    case Expr::Kind::kRollback: {
      const Catalog::Entry* entry = catalog.Find(expr.relation_name());
      if (entry == nullptr) {
        return UnknownIdentifierError("rollback of undefined relation: " +
                                      expr.relation_name());
      }
      if (!expr.rollback_historical()) {
        // ρ: snapshot states. ∞ allows snapshot or rollback relations;
        // a finite transaction number requires a rollback relation.
        if (!HoldsSnapshotStates(entry->type)) {
          return InvalidRollbackError("rho applied to " +
                                      std::string(RelationTypeName(
                                          entry->type)) +
                                      " relation '" + expr.relation_name() +
                                      "' (use hrho)");
        }
        if (expr.rollback_txn().has_value() &&
            entry->type != RelationType::kRollback) {
          return InvalidRollbackError(
              "rho with a transaction number requires a rollback relation");
        }
        return ExprType{StateKind::kSnapshot, entry->schema};
      }
      // ρ̂: historical states.
      if (HoldsSnapshotStates(entry->type)) {
        return InvalidRollbackError(
            "hrho applied to " +
            std::string(RelationTypeName(entry->type)) + " relation '" +
            expr.relation_name() + "' (use rho)");
      }
      if (expr.rollback_txn().has_value() &&
          entry->type != RelationType::kTemporal) {
        return InvalidRollbackError(
            "hrho with a transaction number requires a temporal relation");
      }
      return ExprType{StateKind::kHistorical, entry->schema};
    }
  }
  return InternalError("unhandled expression kind");
}

}  // namespace

Result<ExprType> Analyze(const Expr& expr, const Catalog& catalog) {
  std::optional<ExprType> lhs;
  std::optional<ExprType> rhs;
  if (HasChild(expr.kind())) {
    TTRA_ASSIGN_OR_RETURN(ExprType left, Analyze(expr.left(), catalog));
    lhs = std::move(left);
    if (expr.kind() == Expr::Kind::kBinary) {
      TTRA_ASSIGN_OR_RETURN(ExprType right, Analyze(expr.right(), catalog));
      rhs = std::move(right);
    }
  }
  return TypeOfNode(expr, catalog, lhs, rhs);
}

std::optional<ExprType> CheckExpr(const Expr& expr, const Catalog& catalog,
                                  DiagnosticSink& sink) {
  std::optional<ExprType> lhs;
  std::optional<ExprType> rhs;
  bool children_ok = true;
  if (HasChild(expr.kind())) {
    lhs = CheckExpr(expr.left(), catalog, sink);
    if (!lhs.has_value()) children_ok = false;
    if (expr.kind() == Expr::Kind::kBinary) {
      rhs = CheckExpr(expr.right(), catalog, sink);
      if (!rhs.has_value()) children_ok = false;
    }
  }
  // Errors in the children are already in the sink; a node whose operands
  // failed cannot be typed, and re-reporting would duplicate diagnostics.
  if (!children_ok) return std::nullopt;
  auto type = TypeOfNode(expr, catalog, lhs, rhs);
  if (!type.ok()) {
    sink.AddError(type.status(), expr.span());
    return std::nullopt;
  }
  return std::move(type).value();
}

namespace {

StateKind RequiredKind(RelationType type) {
  return HoldsSnapshotStates(type) ? StateKind::kSnapshot
                                   : StateKind::kHistorical;
}

/// The state kind an expression is forced to by its syntax alone. Every
/// operator yields its (left) operand's kind except delta, which always
/// yields historical; leaves are constants and rollback operators, whose
/// kinds are manifest. Defined for every tree, even ill-typed ones.
StateKind StructuralKind(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      return std::holds_alternative<HistoricalState>(expr.constant())
                 ? StateKind::kHistorical
                 : StateKind::kSnapshot;
    case Expr::Kind::kRollback:
      return expr.rollback_historical() ? StateKind::kHistorical
                                        : StateKind::kSnapshot;
    case Expr::Kind::kDelta:
      return StateKind::kHistorical;
    default:
      return StructuralKind(expr.left());
  }
}

SourceSpan SpanOrStmt(const Expr& expr, const Stmt& stmt) {
  return expr.span().valid() ? expr.span() : StmtSpan(stmt);
}

}  // namespace

void CheckStmt(const Stmt& stmt, const Catalog& catalog,
               DiagnosticSink& sink) {
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, ModifyStateStmt>) {
          const Catalog::Entry* entry = catalog.Find(s.name);
          if (entry == nullptr) {
            sink.AddError(UnknownIdentifierError(
                              "modify_state of undefined relation: " + s.name),
                          s.span);
          }
          auto type = CheckExpr(s.expr, catalog, sink);
          if (entry == nullptr) return;
          const StateKind required = RequiredKind(entry->type);
          if (type.has_value()) {
            if (type->kind != required) {
              sink.AddError(
                  TypeMismatchError(
                      "modify_state of " +
                      std::string(RelationTypeName(entry->type)) +
                      " relation '" + s.name + "' requires a " +
                      std::string(StateKindName(required)) +
                      " expression, got " +
                      std::string(StateKindName(type->kind))),
                  SpanOrStmt(s.expr, stmt));
            } else if (type->schema != entry->schema) {
              sink.AddError(
                  SchemaMismatchError("modify_state expression schema " +
                                      type->schema.ToString() +
                                      " does not match relation schema " +
                                      entry->schema.ToString()),
                  SpanOrStmt(s.expr, stmt));
            }
          } else if (StructuralKind(s.expr) != required) {
            // The expression failed to type-check, but its kind is already
            // decided by its syntax — fixing the reported errors cannot make
            // this statement succeed.
            sink.AddWarning(
                kWarnKindNeverMatches, SpanOrStmt(s.expr, stmt),
                "expression kind can never match: '" + s.name + "' is a " +
                    std::string(RelationTypeName(entry->type)) +
                    " relation holding " +
                    std::string(StateKindName(required)) +
                    " states, but this expression is structurally " +
                    std::string(StateKindName(StructuralKind(s.expr))));
          }
        } else if constexpr (std::is_same_v<T, ShowStmt>) {
          CheckExpr(s.expr, catalog, sink);
        } else if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          if (catalog.Find(s.name) != nullptr) {
            sink.AddError(
                AlreadyDefinedError("relation already defined: " + s.name),
                s.span);
          }
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          if (catalog.Find(s.name) == nullptr) {
            sink.AddError(UnknownIdentifierError(
                              "delete_relation of undefined relation: " +
                              s.name),
                          s.span);
          }
        } else {
          static_assert(std::is_same_v<T, ModifySchemaStmt>);
          if (catalog.Find(s.name) == nullptr) {
            sink.AddError(UnknownIdentifierError(
                              "modify_schema of undefined relation: " +
                              s.name),
                          s.span);
          }
        }
      },
      stmt);
}

namespace {

/// Relation names a statement reads or writes (delete_relation's target is
/// deliberately excluded: deleting a relation is not "using" it for the
/// purposes of TTRA-W004).
std::set<std::string> ReferencedNames(const Stmt& stmt) {
  std::set<std::string> names;
  if (const Expr* expr = StmtExpr(stmt)) names = expr->RelationNames();
  if (const auto* modify = std::get_if<ModifyStateStmt>(&stmt)) {
    names.insert(modify->name);
  }
  if (const auto* schema = std::get_if<ModifySchemaStmt>(&stmt)) {
    names.insert(schema->name);
  }
  return names;
}

/// TTRA-W003: warns on every ρ/ρ̂ with a literal transaction number greater
/// than `max_txn`, the largest transaction that can have committed by the
/// time the enclosing statement executes.
void WarnFutureRollbacks(const Expr& expr, TransactionNumber max_txn,
                         DiagnosticSink& sink) {
  if (expr.kind() == Expr::Kind::kRollback) {
    if (expr.rollback_txn().has_value() && *expr.rollback_txn() > max_txn) {
      sink.AddWarning(
          kWarnRollbackInFuture, expr.span(),
          "rollback to transaction " + std::to_string(*expr.rollback_txn()) +
              ", but at most " + std::to_string(max_txn) +
              " transactions can have committed when this statement runs");
    }
    return;
  }
  if (expr.kind() == Expr::Kind::kConst) return;
  WarnFutureRollbacks(expr.left(), max_txn, sink);
  if (expr.kind() == Expr::Kind::kBinary) {
    WarnFutureRollbacks(expr.right(), max_txn, sink);
  }
}

}  // namespace

void CheckProgram(const Program& program, Catalog catalog,
                  DiagnosticSink& sink, const AnalyzeOptions& options) {
  // The abstract interpreter (below) needs the catalog as it was before
  // any statement's effect was threaded through.
  const Catalog initial_catalog = catalog;
  std::vector<bool> stmt_has_error(program.size(), false);

  // Index of each relation's first define_relation (for TTRA-W001) and the
  // names each statement references (for TTRA-W001/W004).
  std::map<std::string, size_t> first_define;
  std::vector<std::set<std::string>> referenced(program.size());
  for (size_t i = 0; i < program.size(); ++i) {
    if (const auto* define = std::get_if<DefineRelationStmt>(&program[i])) {
      first_define.try_emplace(define->name, i);
    }
    referenced[i] = ReferencedNames(program[i]);
  }

  std::optional<size_t> first_failed;
  size_t commands_before = 0;  // non-show statements preceding this one
  for (size_t i = 0; i < program.size(); ++i) {
    const Stmt& stmt = program[i];
    if (first_failed.has_value() && *first_failed + 1 == i) {
      sink.AddWarning(
          kWarnUnreachableStmt, StmtSpan(stmt),
          "unreachable: strict execution stops at the first failing command "
          "(statement " +
              std::to_string(*first_failed + 1) + ")");
    }
    const size_t errors_before = sink.error_count();
    CheckStmt(stmt, catalog, sink);
    for (const std::string& name : referenced[i]) {
      if (catalog.Find(name) != nullptr) continue;
      auto it = first_define.find(name);
      if (it != first_define.end() && it->second > i) {
        sink.AddWarning(kWarnUseBeforeDefine, StmtSpan(stmt),
                        "relation '" + name +
                            "' is used here but only defined by statement " +
                            std::to_string(it->second + 1));
      }
    }
    if (options.initial_txn.has_value()) {
      if (const Expr* expr = StmtExpr(stmt)) {
        WarnFutureRollbacks(*expr, *options.initial_txn + commands_before,
                            sink);
      }
    }
    if (sink.error_count() > errors_before) {
      stmt_has_error[i] = true;
      if (!first_failed.has_value()) first_failed = i;
    }
    // The statement's effect still applies so later statements are checked
    // against the right catalog; failure conditions were reported above.
    (void)catalog.Apply(stmt);
    if (!std::holds_alternative<ShowStmt>(stmt)) ++commands_before;
  }

  // TTRA-W004: a defined relation no later statement reads or writes.
  for (size_t i = 0; i < program.size(); ++i) {
    const auto* define = std::get_if<DefineRelationStmt>(&program[i]);
    if (define == nullptr || first_define.at(define->name) != i) continue;
    bool used = false;
    for (size_t j = i + 1; j < program.size() && !used; ++j) {
      used = referenced[j].contains(define->name);
    }
    if (!used) {
      sink.AddWarning(kWarnUnusedRelation, StmtSpan(program[i]),
                      "relation '" + define->name +
                          "' is defined but never used");
    }
  }

  // Whole-program pass: abstract interpretation of the command semantics
  // derives TTRA-W006..W009 (see absint.h).
  const std::vector<AbsState> abs_states = Interpret(
      program, InitialAbsState(initial_catalog, options.initial_txn),
      &stmt_has_error);
  CheckProgramAbsint(program, abs_states, stmt_has_error, sink);
}

Status AnalyzeStmt(const Stmt& stmt, const Catalog& catalog) {
  DiagnosticSink sink;
  CheckStmt(stmt, catalog, sink);
  return sink.FirstError();
}

Status AnalyzeProgram(const Program& program, Catalog catalog) {
  DiagnosticSink sink;
  CheckProgram(program, std::move(catalog), sink);
  return sink.FirstError();
}

}  // namespace ttra::lang
