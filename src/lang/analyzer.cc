#include "lang/analyzer.h"

namespace ttra::lang {

std::string_view StateKindName(StateKind kind) {
  return kind == StateKind::kSnapshot ? "snapshot" : "historical";
}

Catalog::Catalog(const Database& db) {
  for (const std::string& name : db.RelationNames()) {
    const Relation* relation = db.Find(name);
    entries_.emplace(name, Entry{relation->type(), relation->schema()});
  }
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Status Catalog::Apply(const Stmt& stmt) {
  return std::visit(
      [this](const auto& s) -> Status {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          if (entries_.contains(s.name)) {
            return AlreadyDefinedError("relation already defined: " + s.name);
          }
          entries_.emplace(s.name, Entry{s.type, s.schema});
          return Status::Ok();
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          if (entries_.erase(s.name) == 0) {
            return UnknownIdentifierError("delete of undefined relation: " +
                                          s.name);
          }
          return Status::Ok();
        } else if constexpr (std::is_same_v<T, ModifySchemaStmt>) {
          auto it = entries_.find(s.name);
          if (it == entries_.end()) {
            return UnknownIdentifierError(
                "modify_schema of undefined relation: " + s.name);
          }
          it->second.schema = s.schema;
          return Status::Ok();
        } else {
          return Status::Ok();
        }
      },
      stmt);
}

namespace {

Result<ExprType> AnalyzeBinary(const Expr& expr, const Catalog& catalog) {
  TTRA_ASSIGN_OR_RETURN(ExprType lhs, Analyze(expr.left(), catalog));
  TTRA_ASSIGN_OR_RETURN(ExprType rhs, Analyze(expr.right(), catalog));
  if (lhs.kind != rhs.kind) {
    return TypeMismatchError(
        std::string(BinaryOpName(expr.op())) + " mixes a " +
        std::string(StateKindName(lhs.kind)) + " operand with a " +
        std::string(StateKindName(rhs.kind)) + " operand");
  }
  switch (expr.op()) {
    case BinaryOp::kUnion:
    case BinaryOp::kMinus:
    case BinaryOp::kIntersect:
      if (lhs.schema != rhs.schema) {
        return SchemaMismatchError(
            std::string(BinaryOpName(expr.op())) +
            " requires identical schemas; got " + lhs.schema.ToString() +
            " vs " + rhs.schema.ToString());
      }
      return lhs;
    case BinaryOp::kTimes: {
      TTRA_ASSIGN_OR_RETURN(Schema schema, lhs.schema.Concat(rhs.schema));
      return ExprType{lhs.kind, std::move(schema)};
    }
    case BinaryOp::kJoin: {
      // Natural-join result: lhs attributes then rhs-only attributes;
      // shared names must agree on type.
      std::vector<Attribute> attrs = lhs.schema.attributes();
      for (const Attribute& attr : rhs.schema.attributes()) {
        auto i = lhs.schema.IndexOf(attr.name);
        if (i.has_value()) {
          if (lhs.schema.attribute(*i).type != attr.type) {
            return SchemaMismatchError("natural join attribute '" +
                                       attr.name + "' has mismatched types");
          }
        } else {
          attrs.push_back(attr);
        }
      }
      TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
      return ExprType{lhs.kind, std::move(schema)};
    }
  }
  return InternalError("unhandled binary operator");
}

Result<ExprType> AnalyzeExtend(const Expr& expr, const Catalog& catalog) {
  TTRA_ASSIGN_OR_RETURN(ExprType child, Analyze(expr.left(), catalog));
  std::vector<Attribute> attrs = child.schema.attributes();
  for (const auto& [name, scalar] : expr.definitions()) {
    TTRA_ASSIGN_OR_RETURN(ValueType type, scalar.TypeIn(child.schema));
    auto i = child.schema.IndexOf(name);
    if (i.has_value()) {
      attrs[*i].type = type;  // in-place redefinition (replace semantics)
    } else {
      attrs.push_back(Attribute{name, type});
    }
  }
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return ExprType{child.kind, std::move(schema)};
}

}  // namespace

Result<ExprType> Analyze(const Expr& expr, const Catalog& catalog) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      if (std::holds_alternative<HistoricalState>(expr.constant())) {
        return ExprType{StateKind::kHistorical,
                        std::get<HistoricalState>(expr.constant()).schema()};
      }
      return ExprType{StateKind::kSnapshot,
                      std::get<SnapshotState>(expr.constant()).schema()};
    case Expr::Kind::kBinary:
      return AnalyzeBinary(expr, catalog);
    case Expr::Kind::kProject: {
      TTRA_ASSIGN_OR_RETURN(ExprType child, Analyze(expr.left(), catalog));
      TTRA_ASSIGN_OR_RETURN(Schema schema,
                            child.schema.Project(expr.attributes()));
      return ExprType{child.kind, std::move(schema)};
    }
    case Expr::Kind::kSelect: {
      TTRA_ASSIGN_OR_RETURN(ExprType child, Analyze(expr.left(), catalog));
      TTRA_RETURN_IF_ERROR(expr.predicate().Validate(child.schema));
      return child;
    }
    case Expr::Kind::kRename: {
      TTRA_ASSIGN_OR_RETURN(ExprType child, Analyze(expr.left(), catalog));
      TTRA_ASSIGN_OR_RETURN(
          Schema schema,
          child.schema.Rename(expr.rename_from(), expr.rename_to()));
      return ExprType{child.kind, std::move(schema)};
    }
    case Expr::Kind::kExtend:
      return AnalyzeExtend(expr, catalog);
    case Expr::Kind::kDelta: {
      TTRA_ASSIGN_OR_RETURN(ExprType child, Analyze(expr.left(), catalog));
      if (child.kind != StateKind::kHistorical) {
        return TypeMismatchError(
            "delta applies to historical states only; operand is snapshot");
      }
      return child;
    }
    case Expr::Kind::kSummarize: {
      TTRA_ASSIGN_OR_RETURN(ExprType child, Analyze(expr.left(), catalog));
      TTRA_ASSIGN_OR_RETURN(
          Schema schema,
          AggregateSchema(child.schema, expr.group_attrs(),
                          expr.aggregates()));
      return ExprType{child.kind, std::move(schema)};
    }
    case Expr::Kind::kRollback: {
      const Catalog::Entry* entry = catalog.Find(expr.relation_name());
      if (entry == nullptr) {
        return UnknownIdentifierError("rollback of undefined relation: " +
                                      expr.relation_name());
      }
      if (!expr.rollback_historical()) {
        // ρ: snapshot states. ∞ allows snapshot or rollback relations;
        // a finite transaction number requires a rollback relation.
        if (!HoldsSnapshotStates(entry->type)) {
          return InvalidRollbackError("rho applied to " +
                                      std::string(RelationTypeName(
                                          entry->type)) +
                                      " relation '" + expr.relation_name() +
                                      "' (use hrho)");
        }
        if (expr.rollback_txn().has_value() &&
            entry->type != RelationType::kRollback) {
          return InvalidRollbackError(
              "rho with a transaction number requires a rollback relation");
        }
        return ExprType{StateKind::kSnapshot, entry->schema};
      }
      // ρ̂: historical states.
      if (HoldsSnapshotStates(entry->type)) {
        return InvalidRollbackError(
            "hrho applied to " +
            std::string(RelationTypeName(entry->type)) + " relation '" +
            expr.relation_name() + "' (use rho)");
      }
      if (expr.rollback_txn().has_value() &&
          entry->type != RelationType::kTemporal) {
        return InvalidRollbackError(
            "hrho with a transaction number requires a temporal relation");
      }
      return ExprType{StateKind::kHistorical, entry->schema};
    }
  }
  return InternalError("unhandled expression kind");
}

Status AnalyzeStmt(const Stmt& stmt, const Catalog& catalog) {
  return std::visit(
      [&catalog](const auto& s) -> Status {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, ModifyStateStmt>) {
          const Catalog::Entry* entry = catalog.Find(s.name);
          if (entry == nullptr) {
            return UnknownIdentifierError(
                "modify_state of undefined relation: " + s.name);
          }
          auto type = Analyze(s.expr, catalog);
          if (!type.ok()) return type.status();
          const StateKind required = HoldsSnapshotStates(entry->type)
                                         ? StateKind::kSnapshot
                                         : StateKind::kHistorical;
          if (type->kind != required) {
            return TypeMismatchError(
                "modify_state of " +
                std::string(RelationTypeName(entry->type)) + " relation '" +
                s.name + "' requires a " +
                std::string(StateKindName(required)) +
                " expression, got " + std::string(StateKindName(type->kind)));
          }
          if (type->schema != entry->schema) {
            return SchemaMismatchError(
                "modify_state expression schema " + type->schema.ToString() +
                " does not match relation schema " +
                entry->schema.ToString());
          }
          return Status::Ok();
        } else if constexpr (std::is_same_v<T, ShowStmt>) {
          auto type = Analyze(s.expr, catalog);
          return type.ok() ? Status::Ok() : type.status();
        } else if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          if (catalog.Find(s.name) != nullptr) {
            return AlreadyDefinedError("relation already defined: " + s.name);
          }
          return Status::Ok();
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          if (catalog.Find(s.name) == nullptr) {
            return UnknownIdentifierError(
                "delete_relation of undefined relation: " + s.name);
          }
          return Status::Ok();
        } else {
          static_assert(std::is_same_v<T, ModifySchemaStmt>);
          if (catalog.Find(s.name) == nullptr) {
            return UnknownIdentifierError(
                "modify_schema of undefined relation: " + s.name);
          }
          return Status::Ok();
        }
      },
      stmt);
}

Status AnalyzeProgram(const Program& program, Catalog catalog) {
  for (const Stmt& stmt : program) {
    TTRA_RETURN_IF_ERROR(AnalyzeStmt(stmt, catalog));
    TTRA_RETURN_IF_ERROR(catalog.Apply(stmt));
  }
  return Status::Ok();
}

}  // namespace ttra::lang
