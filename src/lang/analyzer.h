#ifndef TTRA_LANG_ANALYZER_H_
#define TTRA_LANG_ANALYZER_H_

#include <map>
#include <string>

#include "lang/ast.h"
#include "rollback/database.h"

namespace ttra::lang {

/// Which state domain an expression evaluates into.
enum class StateKind : uint8_t { kSnapshot, kHistorical };

std::string_view StateKindName(StateKind kind);

/// Static type of an expression: its state kind and scheme.
struct ExprType {
  StateKind kind = StateKind::kSnapshot;
  Schema schema;

  friend bool operator==(const ExprType&, const ExprType&) = default;
};

/// Name → (relation type, current scheme), the part of the database state
/// the analyzer needs. Derivable from a Database and updatable by
/// statements, so whole programs can be checked before execution.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(const Database& db);

  struct Entry {
    RelationType type = RelationType::kSnapshot;
    Schema schema;
  };

  const Entry* Find(const std::string& name) const;

  /// Applies a statement's effect on the catalog (define/delete/
  /// modify_schema); modify_state and show leave it unchanged.
  Status Apply(const Stmt& stmt);

 private:
  std::map<std::string, Entry> entries_;
};

/// Static analysis of an expression: resolves each polymorphic operator
/// use, checks schemas/types, and returns the expression's type. Mirrors
/// every run-time error the evaluator can produce except value-dependent
/// ones.
Result<ExprType> Analyze(const Expr& expr, const Catalog& catalog);

/// Checks one statement (expression analysis plus command-level rules:
/// modify_state's expression kind must match the target relation's type).
Status AnalyzeStmt(const Stmt& stmt, const Catalog& catalog);

/// Checks a whole program, threading catalog effects through the sequence.
Status AnalyzeProgram(const Program& program, Catalog catalog);

}  // namespace ttra::lang

#endif  // TTRA_LANG_ANALYZER_H_
