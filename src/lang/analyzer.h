#ifndef TTRA_LANG_ANALYZER_H_
#define TTRA_LANG_ANALYZER_H_

#include <map>
#include <optional>
#include <string>

#include "lang/ast.h"
#include "lang/diagnostics.h"
#include "rollback/database.h"

namespace ttra::lang {

/// Which state domain an expression evaluates into.
enum class StateKind : uint8_t { kSnapshot, kHistorical };

std::string_view StateKindName(StateKind kind);

/// Static type of an expression: its state kind and scheme.
struct ExprType {
  StateKind kind = StateKind::kSnapshot;
  Schema schema;

  friend bool operator==(const ExprType&, const ExprType&) = default;
};

/// Name → (relation type, current scheme), the part of the database state
/// the analyzer needs. Derivable from a Database and updatable by
/// statements, so whole programs can be checked before execution.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(const Database& db);

  struct Entry {
    RelationType type = RelationType::kSnapshot;
    Schema schema;
  };

  const Entry* Find(const std::string& name) const;

  /// All entries, for whole-catalog consumers (absint's initial state).
  const std::map<std::string, Entry>& entries() const { return entries_; }

  /// Applies a statement's effect on the catalog (define/delete/
  /// modify_schema); modify_state and show leave it unchanged.
  Status Apply(const Stmt& stmt);

 private:
  std::map<std::string, Entry> entries_;
};

/// Static analysis of an expression: resolves each polymorphic operator
/// use, checks schemas/types, and returns the expression's type. Mirrors
/// every run-time error the evaluator can produce except value-dependent
/// ones. Fail-fast: stops at the first error.
Result<ExprType> Analyze(const Expr& expr, const Catalog& catalog);

/// Checks one statement (expression analysis plus command-level rules:
/// modify_state's expression kind must match the target relation's type).
Status AnalyzeStmt(const Stmt& stmt, const Catalog& catalog);

/// Checks a whole program, threading catalog effects through the sequence.
Status AnalyzeProgram(const Program& program, Catalog catalog);

// --- Collecting engine ------------------------------------------------------
//
// The Check* family never stops at the first problem: every statement is
// analyzed, every error lands in the sink with the source span of the
// offending construct, and the five TTRA-W warnings are reported alongside.
// The Analyze* functions above are thin wrappers returning the sink's first
// error, so existing Status-based callers keep their exact behavior.

/// Program-level context for CheckProgram's warnings.
struct AnalyzeOptions {
  /// Transaction number the program's first command would commit under.
  /// Enables TTRA-W003 (rollback to a transaction that cannot have
  /// committed yet); unset disables that warning.
  std::optional<TransactionNumber> initial_txn;
};

/// Collecting analysis of an expression. Reports every error found in the
/// tree (both operands of a binary operator are always visited) and returns
/// the expression's type, or nullopt if any error was reported.
std::optional<ExprType> CheckExpr(const Expr& expr, const Catalog& catalog,
                                  DiagnosticSink& sink);

/// Collecting analysis of one statement. May also report TTRA-W002 when a
/// modify_state expression's kind is fixed by syntax and cannot match the
/// target relation's required kind.
void CheckStmt(const Stmt& stmt, const Catalog& catalog, DiagnosticSink& sink);

/// Collecting analysis of a whole program: checks every statement (threading
/// catalog effects through even past errors) and reports the program-level
/// warnings TTRA-W001 (use before definition), TTRA-W003 (rollback to an
/// uncommittable transaction), TTRA-W004 (relation defined but never used),
/// and TTRA-W005 (statement unreachable under strict execution).
void CheckProgram(const Program& program, Catalog catalog,
                  DiagnosticSink& sink, const AnalyzeOptions& options = {});

}  // namespace ttra::lang

#endif  // TTRA_LANG_ANALYZER_H_
