#include "lang/ast.h"

#include <cassert>

#include "util/string_util.h"

namespace ttra::lang {

// --- ScalarExpr ------------------------------------------------------------

struct ScalarExpr::Node {
  Kind kind;
  std::string attr;  // kAttr
  Value constant;    // kConst
  Op op = Op::kAdd;  // kBinary
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

ScalarExpr::ScalarExpr(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

ScalarExpr::ScalarExpr() : ScalarExpr(Const(Value::Int(0))) {}

ScalarExpr ScalarExpr::Attr(std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAttr;
  node->attr = std::move(name);
  return ScalarExpr(std::move(node));
}

ScalarExpr ScalarExpr::Const(Value value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->constant = std::move(value);
  return ScalarExpr(std::move(node));
}

ScalarExpr ScalarExpr::Binary(Op op, ScalarExpr lhs, ScalarExpr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBinary;
  node->op = op;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return ScalarExpr(std::move(node));
}

namespace {

bool IsNumeric(ValueType type) {
  return type == ValueType::kInt || type == ValueType::kDouble;
}

char ScalarOpChar(ScalarExpr::Op op) {
  switch (op) {
    case ScalarExpr::Op::kAdd:
      return '+';
    case ScalarExpr::Op::kSub:
      return '-';
    case ScalarExpr::Op::kMul:
      return '*';
    case ScalarExpr::Op::kDiv:
      return '/';
  }
  return '?';
}

Result<Value> ApplyScalarOp(ScalarExpr::Op op, const Value& a,
                            const Value& b) {
  if (op == ScalarExpr::Op::kAdd && a.type() == ValueType::kString &&
      b.type() == ValueType::kString) {
    return Value::String(a.AsString() + b.AsString());
  }
  if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
    return TypeMismatchError(
        std::string("arithmetic requires numeric operands; got ") +
        std::string(ValueTypeName(a.type())) + " and " +
        std::string(ValueTypeName(b.type())));
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    const int64_t x = a.AsInt();
    const int64_t y = b.AsInt();
    switch (op) {
      case ScalarExpr::Op::kAdd:
        return Value::Int(x + y);
      case ScalarExpr::Op::kSub:
        return Value::Int(x - y);
      case ScalarExpr::Op::kMul:
        return Value::Int(x * y);
      case ScalarExpr::Op::kDiv:
        if (y == 0) return InvalidArgumentError("integer division by zero");
        return Value::Int(x / y);
    }
  }
  const double x =
      a.type() == ValueType::kInt ? static_cast<double>(a.AsInt())
                                  : a.AsDouble();
  const double y =
      b.type() == ValueType::kInt ? static_cast<double>(b.AsInt())
                                  : b.AsDouble();
  switch (op) {
    case ScalarExpr::Op::kAdd:
      return Value::Double(x + y);
    case ScalarExpr::Op::kSub:
      return Value::Double(x - y);
    case ScalarExpr::Op::kMul:
      return Value::Double(x * y);
    case ScalarExpr::Op::kDiv:
      return Value::Double(x / y);
  }
  return InternalError("unhandled scalar op");
}

}  // namespace

Result<Value> ScalarExpr::Eval(const Schema& schema,
                               const Tuple& tuple) const {
  switch (node_->kind) {
    case Kind::kAttr: {
      auto index = schema.IndexOf(node_->attr);
      if (!index.has_value()) {
        return SchemaMismatchError("extend references unknown attribute: " +
                                   node_->attr);
      }
      return tuple.at(*index);
    }
    case Kind::kConst:
      return node_->constant;
    case Kind::kBinary: {
      TTRA_ASSIGN_OR_RETURN(Value a,
                            ScalarExpr(node_->left).Eval(schema, tuple));
      TTRA_ASSIGN_OR_RETURN(Value b,
                            ScalarExpr(node_->right).Eval(schema, tuple));
      return ApplyScalarOp(node_->op, a, b);
    }
  }
  return InternalError("unhandled scalar kind");
}

Result<ValueType> ScalarExpr::TypeIn(const Schema& schema) const {
  switch (node_->kind) {
    case Kind::kAttr: {
      auto index = schema.IndexOf(node_->attr);
      if (!index.has_value()) {
        return SchemaMismatchError("extend references unknown attribute: " +
                                   node_->attr);
      }
      return schema.attribute(*index).type;
    }
    case Kind::kConst:
      return node_->constant.type();
    case Kind::kBinary: {
      TTRA_ASSIGN_OR_RETURN(ValueType a,
                            ScalarExpr(node_->left).TypeIn(schema));
      TTRA_ASSIGN_OR_RETURN(ValueType b,
                            ScalarExpr(node_->right).TypeIn(schema));
      if (node_->op == Op::kAdd && a == ValueType::kString &&
          b == ValueType::kString) {
        return ValueType::kString;
      }
      if (!IsNumeric(a) || !IsNumeric(b)) {
        return TypeMismatchError(
            "arithmetic requires numeric operands in " + ToString());
      }
      if (a == ValueType::kDouble || b == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return ValueType::kInt;
    }
  }
  return InternalError("unhandled scalar kind");
}

std::set<std::string> ScalarExpr::AttributeNames() const {
  switch (node_->kind) {
    case Kind::kAttr:
      return {node_->attr};
    case Kind::kConst:
      return {};
    case Kind::kBinary: {
      auto names = ScalarExpr(node_->left).AttributeNames();
      auto right = ScalarExpr(node_->right).AttributeNames();
      names.insert(right.begin(), right.end());
      return names;
    }
  }
  return {};
}

std::string ScalarExpr::ToString() const {
  switch (node_->kind) {
    case Kind::kAttr:
      return node_->attr;
    case Kind::kConst:
      return node_->constant.ToString();
    case Kind::kBinary:
      return "(" + ScalarExpr(node_->left).ToString() + " " +
             ScalarOpChar(node_->op) + " " +
             ScalarExpr(node_->right).ToString() + ")";
  }
  return "?";
}

bool operator==(const ScalarExpr& a, const ScalarExpr& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ScalarExpr::Kind::kAttr:
      return a.attr_name() == b.attr_name();
    case ScalarExpr::Kind::kConst:
      return a.constant() == b.constant();
    case ScalarExpr::Kind::kBinary:
      return a.op() == b.op() && a.left() == b.left() &&
             a.right() == b.right();
  }
  return false;
}

ScalarExpr::Kind ScalarExpr::kind() const { return node_->kind; }
const std::string& ScalarExpr::attr_name() const {
  assert(node_->kind == Kind::kAttr);
  return node_->attr;
}
const Value& ScalarExpr::constant() const {
  assert(node_->kind == Kind::kConst);
  return node_->constant;
}
ScalarExpr::Op ScalarExpr::op() const {
  assert(node_->kind == Kind::kBinary);
  return node_->op;
}
ScalarExpr ScalarExpr::left() const {
  assert(node_->left != nullptr);
  return ScalarExpr(node_->left);
}
ScalarExpr ScalarExpr::right() const {
  assert(node_->right != nullptr);
  return ScalarExpr(node_->right);
}

std::ostream& operator<<(std::ostream& os, const ScalarExpr& expr) {
  return os << expr.ToString();
}

// --- Expr -------------------------------------------------------------------

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kUnion:
      return "union";
    case BinaryOp::kMinus:
      return "minus";
    case BinaryOp::kTimes:
      return "times";
    case BinaryOp::kIntersect:
      return "intersect";
    case BinaryOp::kJoin:
      return "join";
  }
  return "?";
}

struct Expr::Node {
  Kind kind;
  // kConst
  StateValue constant;
  // kBinary
  BinaryOp op = BinaryOp::kUnion;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
  // kProject
  std::vector<std::string> attributes;
  // kSelect
  Predicate predicate;
  // kRename
  std::string rename_from;
  std::string rename_to;
  // kExtend
  std::vector<std::pair<std::string, ScalarExpr>> definitions;
  // kDelta
  TemporalPred temporal_pred;
  TemporalExpr temporal_projection;
  // kSummarize
  std::vector<std::string> group_attrs;
  std::vector<AggregateDef> aggregates;
  // kRollback
  std::string relation_name;
  std::optional<TransactionNumber> rollback_txn;
  bool rollback_historical = false;
  // Source position (not structure; excluded from operator==).
  SourceSpan span;
};

Expr::Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Expr::Expr() : Expr(Const(SnapshotState())) {}

Expr Expr::Const(SnapshotState state) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->constant = std::move(state);
  return Expr(std::move(node));
}

Expr Expr::Const(HistoricalState state) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->constant = std::move(state);
  return Expr(std::move(node));
}

Expr Expr::Binary(BinaryOp op, Expr lhs, Expr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBinary;
  node->op = op;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return Expr(std::move(node));
}

Expr Expr::Project(std::vector<std::string> attributes, Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProject;
  node->attributes = std::move(attributes);
  node->left = std::move(child.node_);
  return Expr(std::move(node));
}

Expr Expr::Select(Predicate predicate, Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSelect;
  node->predicate = std::move(predicate);
  node->left = std::move(child.node_);
  return Expr(std::move(node));
}

Expr Expr::Rename(std::string from, std::string to, Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRename;
  node->rename_from = std::move(from);
  node->rename_to = std::move(to);
  node->left = std::move(child.node_);
  return Expr(std::move(node));
}

Expr Expr::Extend(std::vector<std::pair<std::string, ScalarExpr>> definitions,
                  Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kExtend;
  node->definitions = std::move(definitions);
  node->left = std::move(child.node_);
  return Expr(std::move(node));
}

Expr Expr::Delta(TemporalPred pred, TemporalExpr projection, Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDelta;
  node->temporal_pred = std::move(pred);
  node->temporal_projection = std::move(projection);
  node->left = std::move(child.node_);
  return Expr(std::move(node));
}

Expr Expr::Summarize(std::vector<std::string> group_attrs,
                     std::vector<AggregateDef> aggregates, Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSummarize;
  node->group_attrs = std::move(group_attrs);
  node->aggregates = std::move(aggregates);
  node->left = std::move(child.node_);
  return Expr(std::move(node));
}

Expr Expr::Rollback(std::string name, std::optional<TransactionNumber> txn,
                    bool historical) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRollback;
  node->relation_name = std::move(name);
  node->rollback_txn = txn;
  node->rollback_historical = historical;
  return Expr(std::move(node));
}

std::string Expr::ToString() const {
  switch (node_->kind) {
    case Kind::kConst:
      if (std::holds_alternative<HistoricalState>(node_->constant)) {
        return "historical " +
               std::get<HistoricalState>(node_->constant).ToString();
      }
      return std::get<SnapshotState>(node_->constant).ToString();
    case Kind::kBinary:
      return "(" + left().ToString() + " " +
             std::string(BinaryOpName(node_->op)) + " " + right().ToString() +
             ")";
    case Kind::kProject:
      return "project[" + Join(node_->attributes, ", ") + "](" +
             left().ToString() + ")";
    case Kind::kSelect:
      return "select[" + node_->predicate.ToString() + "](" +
             left().ToString() + ")";
    case Kind::kRename:
      return "rename[" + node_->rename_from + " -> " + node_->rename_to +
             "](" + left().ToString() + ")";
    case Kind::kExtend: {
      std::string defs;
      for (size_t i = 0; i < node_->definitions.size(); ++i) {
        if (i > 0) defs += ", ";
        defs += node_->definitions[i].first + " = " +
                node_->definitions[i].second.ToString();
      }
      return "extend[" + defs + "](" + left().ToString() + ")";
    }
    case Kind::kDelta:
      return "delta[" + node_->temporal_pred.ToString() + "; " +
             node_->temporal_projection.ToString() + "](" + left().ToString() +
             ")";
    case Kind::kSummarize: {
      std::string defs;
      for (size_t i = 0; i < node_->aggregates.size(); ++i) {
        const AggregateDef& def = node_->aggregates[i];
        if (i > 0) defs += ", ";
        defs += def.name + " = " + std::string(AggFuncName(def.func));
        if (def.func != AggFunc::kCount) defs += "(" + def.attr + ")";
      }
      return "summarize[" + Join(node_->group_attrs, ", ") + "; " + defs +
             "](" + left().ToString() + ")";
    }
    case Kind::kRollback: {
      const std::string op = node_->rollback_historical ? "hrho" : "rho";
      const std::string txn = node_->rollback_txn.has_value()
                                  ? std::to_string(*node_->rollback_txn)
                                  : "inf";
      return op + "(" + node_->relation_name + ", " + txn + ")";
    }
  }
  return "?";
}

const SourceSpan& Expr::span() const { return node_->span; }

Expr Expr::WithSpan(SourceSpan span) const {
  auto node = std::make_shared<Node>(*node_);
  node->span = span;
  return Expr(std::move(node));
}

std::set<std::string> Expr::RelationNames() const {
  std::set<std::string> names;
  switch (node_->kind) {
    case Kind::kConst:
      break;
    case Kind::kBinary: {
      names = left().RelationNames();
      auto r = right().RelationNames();
      names.insert(r.begin(), r.end());
      break;
    }
    case Kind::kRollback:
      names.insert(node_->relation_name);
      break;
    default:
      names = left().RelationNames();
  }
  return names;
}

bool operator==(const Expr& a, const Expr& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Expr::Kind::kConst:
      return a.constant() == b.constant();
    case Expr::Kind::kBinary:
      return a.op() == b.op() && a.left() == b.left() &&
             a.right() == b.right();
    case Expr::Kind::kProject:
      return a.attributes() == b.attributes() && a.left() == b.left();
    case Expr::Kind::kSelect:
      return a.predicate() == b.predicate() && a.left() == b.left();
    case Expr::Kind::kRename:
      return a.rename_from() == b.rename_from() &&
             a.rename_to() == b.rename_to() && a.left() == b.left();
    case Expr::Kind::kExtend:
      return a.definitions() == b.definitions() && a.left() == b.left();
    case Expr::Kind::kDelta:
      return a.temporal_pred() == b.temporal_pred() &&
             a.temporal_projection() == b.temporal_projection() &&
             a.left() == b.left();
    case Expr::Kind::kSummarize:
      return a.group_attrs() == b.group_attrs() &&
             a.aggregates() == b.aggregates() && a.left() == b.left();
    case Expr::Kind::kRollback:
      return a.relation_name() == b.relation_name() &&
             a.rollback_txn() == b.rollback_txn() &&
             a.rollback_historical() == b.rollback_historical();
  }
  return false;
}

Expr::Kind Expr::kind() const { return node_->kind; }
const StateValue& Expr::constant() const {
  assert(node_->kind == Kind::kConst);
  return node_->constant;
}
BinaryOp Expr::op() const {
  assert(node_->kind == Kind::kBinary);
  return node_->op;
}
Expr Expr::left() const {
  assert(node_->left != nullptr);
  return Expr(node_->left);
}
Expr Expr::right() const {
  assert(node_->right != nullptr);
  return Expr(node_->right);
}
const std::vector<std::string>& Expr::attributes() const {
  assert(node_->kind == Kind::kProject);
  return node_->attributes;
}
const Predicate& Expr::predicate() const {
  assert(node_->kind == Kind::kSelect);
  return node_->predicate;
}
const std::string& Expr::rename_from() const {
  assert(node_->kind == Kind::kRename);
  return node_->rename_from;
}
const std::string& Expr::rename_to() const {
  assert(node_->kind == Kind::kRename);
  return node_->rename_to;
}
const std::vector<std::pair<std::string, ScalarExpr>>& Expr::definitions()
    const {
  assert(node_->kind == Kind::kExtend);
  return node_->definitions;
}
const TemporalPred& Expr::temporal_pred() const {
  assert(node_->kind == Kind::kDelta);
  return node_->temporal_pred;
}
const TemporalExpr& Expr::temporal_projection() const {
  assert(node_->kind == Kind::kDelta);
  return node_->temporal_projection;
}
const std::vector<std::string>& Expr::group_attrs() const {
  assert(node_->kind == Kind::kSummarize);
  return node_->group_attrs;
}
const std::vector<AggregateDef>& Expr::aggregates() const {
  assert(node_->kind == Kind::kSummarize);
  return node_->aggregates;
}
const std::string& Expr::relation_name() const {
  assert(node_->kind == Kind::kRollback);
  return node_->relation_name;
}
const std::optional<TransactionNumber>& Expr::rollback_txn() const {
  assert(node_->kind == Kind::kRollback);
  return node_->rollback_txn;
}
bool Expr::rollback_historical() const {
  assert(node_->kind == Kind::kRollback);
  return node_->rollback_historical;
}

std::ostream& operator<<(std::ostream& os, const Expr& expr) {
  return os << expr.ToString();
}

// --- Statements -------------------------------------------------------------

const SourceSpan& StmtSpan(const Stmt& stmt) {
  return std::visit([](const auto& s) -> const SourceSpan& { return s.span; },
                    stmt);
}

const Expr* StmtExpr(const Stmt& stmt) {
  if (const auto* modify = std::get_if<ModifyStateStmt>(&stmt)) {
    return &modify->expr;
  }
  if (const auto* show = std::get_if<ShowStmt>(&stmt)) return &show->expr;
  return nullptr;
}

std::string SchemaToSyntax(const Schema& schema) { return schema.ToString(); }

std::string StmtToString(const Stmt& stmt) {
  return std::visit(
      [](const auto& s) -> std::string {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          return "define_relation(" + s.name + ", " +
                 std::string(RelationTypeName(s.type)) + ", " +
                 SchemaToSyntax(s.schema) + ")";
        } else if constexpr (std::is_same_v<T, ModifyStateStmt>) {
          return "modify_state(" + s.name + ", " + s.expr.ToString() + ")";
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          return "delete_relation(" + s.name + ")";
        } else if constexpr (std::is_same_v<T, ModifySchemaStmt>) {
          return "modify_schema(" + s.name + ", " + SchemaToSyntax(s.schema) +
                 ")";
        } else {
          static_assert(std::is_same_v<T, ShowStmt>);
          return "show(" + s.expr.ToString() + ")";
        }
      },
      stmt);
}

std::string ProgramToString(const Program& program) {
  std::string out;
  for (const Stmt& stmt : program) {
    out += StmtToString(stmt);
    out += ";\n";
  }
  return out;
}

}  // namespace ttra::lang
