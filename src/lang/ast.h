#ifndef TTRA_LANG_AST_H_
#define TTRA_LANG_AST_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "historical/hstate.h"
#include "snapshot/aggregate.h"
#include "historical/temporal_expr.h"
#include "lang/diagnostics.h"
#include "rollback/relation.h"
#include "snapshot/predicate.h"
#include "snapshot/state.h"

namespace ttra::lang {

/// What every expression of the language evaluates to: a snapshot state or
/// an historical state (the paper's two state domains).
using StateValue = std::variant<SnapshotState, HistoricalState>;

/// Arithmetic over attribute values, used by the `extend` operator (our
/// language extension backing Quel's `replace ... set a = a + 1`).
class ScalarExpr {
 public:
  enum class Op : uint8_t { kAdd, kSub, kMul, kDiv };
  enum class Kind : uint8_t { kAttr, kConst, kBinary };

  /// Defaults to the integer constant 0.
  ScalarExpr();

  static ScalarExpr Attr(std::string name);
  static ScalarExpr Const(Value value);
  static ScalarExpr Binary(Op op, ScalarExpr lhs, ScalarExpr rhs);

  /// Evaluates on one tuple. `+` concatenates strings; all four operators
  /// work on numeric operands (int op int → int except /, which divides as
  /// int and errors on zero; any double operand → double).
  Result<Value> Eval(const Schema& schema, const Tuple& tuple) const;

  /// Static result type under `schema`.
  Result<ValueType> TypeIn(const Schema& schema) const;

  std::set<std::string> AttributeNames() const;

  std::string ToString() const;

  friend bool operator==(const ScalarExpr& a, const ScalarExpr& b);

  Kind kind() const;
  const std::string& attr_name() const;  // kAttr
  const Value& constant() const;         // kConst
  Op op() const;                         // kBinary
  ScalarExpr left() const;               // kBinary
  ScalarExpr right() const;              // kBinary

 private:
  struct Node;
  explicit ScalarExpr(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const ScalarExpr& expr);

/// Binary algebraic operators. In the concrete syntax these are
/// polymorphic: the analyzer resolves each use to the snapshot operator or
/// its historical counterpart (∪ vs ∪̂ etc.) from the operand state kinds.
enum class BinaryOp : uint8_t { kUnion, kMinus, kTimes, kIntersect, kJoin };

std::string_view BinaryOpName(BinaryOp op);

/// The paper's EXPRESSION syntactic domain: constants, the five snapshot
/// operators (+ derived intersect/join/rename and the extend extension),
/// the historical operators including δ_{G,V}, and the rollback operators
/// ρ (kRollback, historical=false) and ρ̂ (historical=true). Immutable;
/// cheap to copy.
class Expr {
 public:
  enum class Kind : uint8_t {
    kConst,
    kBinary,
    kProject,
    kSelect,
    kRename,
    kExtend,
    kDelta,
    kSummarize,
    kRollback,
  };

  /// Defaults to the empty snapshot-state constant.
  Expr();

  static Expr Const(SnapshotState state);
  static Expr Const(HistoricalState state);
  static Expr Binary(BinaryOp op, Expr lhs, Expr rhs);
  static Expr Project(std::vector<std::string> attributes, Expr child);
  static Expr Select(Predicate predicate, Expr child);
  static Expr Rename(std::string from, std::string to, Expr child);
  static Expr Extend(
      std::vector<std::pair<std::string, ScalarExpr>> definitions, Expr child);
  static Expr Delta(TemporalPred pred, TemporalExpr projection, Expr child);
  /// Aggregation (Quel's aggregate functions as an algebraic operator;
  /// snapshot-reducible temporal semantics over historical operands).
  static Expr Summarize(std::vector<std::string> group_attrs,
                        std::vector<AggregateDef> aggregates, Expr child);
  /// ρ(name, txn); nullopt txn means ∞. `historical` selects ρ̂.
  static Expr Rollback(std::string name,
                       std::optional<TransactionNumber> txn, bool historical);

  std::string ToString() const;

  /// Relation names referenced via ρ/ρ̂ anywhere in the tree.
  std::set<std::string> RelationNames() const;

  /// Source region this expression was parsed from; invalid (line 0) for
  /// programmatically built trees. Ignored by operator==.
  const SourceSpan& span() const;

  /// Copy of this expression annotated with a source span (children keep
  /// their own spans). Used by the parser; cheap — one node is cloned.
  Expr WithSpan(SourceSpan span) const;

  friend bool operator==(const Expr& a, const Expr& b);

  Kind kind() const;
  // kConst:
  const StateValue& constant() const;
  // kBinary:
  BinaryOp op() const;
  // kBinary (both), kProject/kSelect/kRename/kExtend/kDelta (child = left):
  Expr left() const;
  Expr right() const;
  // kProject:
  const std::vector<std::string>& attributes() const;
  // kSelect:
  const Predicate& predicate() const;
  // kRename:
  const std::string& rename_from() const;
  const std::string& rename_to() const;
  // kExtend:
  const std::vector<std::pair<std::string, ScalarExpr>>& definitions() const;
  // kDelta:
  const TemporalPred& temporal_pred() const;
  const TemporalExpr& temporal_projection() const;
  // kSummarize:
  const std::vector<std::string>& group_attrs() const;
  const std::vector<AggregateDef>& aggregates() const;
  // kRollback:
  const std::string& relation_name() const;
  const std::optional<TransactionNumber>& rollback_txn() const;
  bool rollback_historical() const;

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const Expr& expr);

// --- Statements (the paper's COMMAND domain plus the show query and the --
// --- extension commands). -------------------------------------------------

// Statements carry the source span they were parsed from (invalid for
// hand-built statements). Spans are position metadata, not structure, so
// every operator== below ignores them.

struct DefineRelationStmt {
  std::string name;
  RelationType type = RelationType::kSnapshot;
  Schema schema;
  SourceSpan span = {};
  friend bool operator==(const DefineRelationStmt& a,
                         const DefineRelationStmt& b) {
    return a.name == b.name && a.type == b.type && a.schema == b.schema;
  }
};

struct ModifyStateStmt {
  std::string name;
  Expr expr;
  SourceSpan span = {};
  friend bool operator==(const ModifyStateStmt& a, const ModifyStateStmt& b) {
    return a.name == b.name && a.expr == b.expr;
  }
};

struct DeleteRelationStmt {
  std::string name;
  SourceSpan span = {};
  friend bool operator==(const DeleteRelationStmt& a,
                         const DeleteRelationStmt& b) {
    return a.name == b.name;
  }
};

struct ModifySchemaStmt {
  std::string name;
  Schema schema;
  SourceSpan span = {};
  friend bool operator==(const ModifySchemaStmt& a,
                         const ModifySchemaStmt& b) {
    return a.name == b.name && a.schema == b.schema;
  }
};

/// Pure query: evaluates the expression and reports its value (the
/// "display the contents of a relation" command of §3.1).
struct ShowStmt {
  Expr expr;
  SourceSpan span = {};
  friend bool operator==(const ShowStmt& a, const ShowStmt& b) {
    return a.expr == b.expr;
  }
};

using Stmt = std::variant<DefineRelationStmt, ModifyStateStmt,
                          DeleteRelationStmt, ModifySchemaStmt, ShowStmt>;

/// The paper's SENTENCE domain: a non-empty command sequence.
using Program = std::vector<Stmt>;

/// The span of any statement alternative.
const SourceSpan& StmtSpan(const Stmt& stmt);

/// The expression inside a modify_state/show statement, nullptr otherwise.
const Expr* StmtExpr(const Stmt& stmt);

std::string SchemaToSyntax(const Schema& schema);
std::string StmtToString(const Stmt& stmt);
std::string ProgramToString(const Program& program);

}  // namespace ttra::lang

#endif  // TTRA_LANG_AST_H_
