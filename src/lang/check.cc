#include "lang/check.h"

#include "lang/parser.h"

namespace ttra::lang {

DiagnosticSink CheckSource(std::string_view source, AnalyzeOptions options) {
  DiagnosticSink sink;
  Diagnostic parse_diag;
  auto program = ParseProgramDiag(source, &parse_diag);
  if (!program.ok()) {
    sink.Add(std::move(parse_diag));
    return sink;
  }
  CheckProgram(*program, Catalog(), sink, options);
  return sink;
}

}  // namespace ttra::lang
