#ifndef TTRA_LANG_CHECK_H_
#define TTRA_LANG_CHECK_H_

#include <string_view>

#include "lang/analyzer.h"
#include "lang/diagnostics.h"

namespace ttra::lang {

/// Front door of the diagnostics engine (backs `ttra check`): parses the
/// source and runs the collecting analyzer against an empty database. A
/// lexer or parser failure yields a single error diagnostic with the span
/// of the offending token; otherwise every analyzer error and warning is
/// reported. `options.initial_txn` defaults to 0 here — a checked file is
/// judged as if executed from scratch, enabling TTRA-W003.
DiagnosticSink CheckSource(std::string_view source,
                           AnalyzeOptions options = {
                               .initial_txn = TransactionNumber{0}});

}  // namespace ttra::lang

#endif  // TTRA_LANG_CHECK_H_
