#include "lang/diagnostics.h"

#include <cctype>

namespace ttra::lang {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string_view DiagnosticCodeForError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "";
    case ErrorCode::kUnknownIdentifier:
      return "TTRA-E001";
    case ErrorCode::kAlreadyDefined:
      return "TTRA-E002";
    case ErrorCode::kSchemaMismatch:
      return "TTRA-E003";
    case ErrorCode::kTypeMismatch:
      return "TTRA-E004";
    case ErrorCode::kInvalidRollback:
      return "TTRA-E005";
    case ErrorCode::kParseError:
      return "TTRA-E006";
    case ErrorCode::kCorruption:
      return "TTRA-E007";
    case ErrorCode::kInvalidArgument:
      return "TTRA-E008";
    case ErrorCode::kInternal:
      return "TTRA-E009";
    case ErrorCode::kIoError:
      return "TTRA-E010";
    case ErrorCode::kUnavailable:
      return "TTRA-E011";
    case ErrorCode::kResourceExhausted:
      return "TTRA-E012";
    case ErrorCode::kReadOnly:
      return "TTRA-E013";
  }
  return "TTRA-E999";
}

std::string_view DiagnosticCodeSummary(std::string_view code) {
  if (code == "TTRA-E001") return "identifier is not bound to a relation";
  if (code == "TTRA-E002") return "identifier is already bound";
  if (code == "TTRA-E003") return "operand schemas are incompatible";
  if (code == "TTRA-E004") return "expression has the wrong state kind or type";
  if (code == "TTRA-E005") return "rollback operator applied to the wrong relation type";
  if (code == "TTRA-E006") return "malformed concrete syntax";
  if (code == "TTRA-E007") return "serialized bytes failed validation";
  if (code == "TTRA-E008") return "argument outside its domain";
  if (code == "TTRA-E009") return "internal invariant violated";
  if (code == "TTRA-E010") return "filesystem operation failed";
  if (code == "TTRA-E011") return "component refuses work until recovered";
  if (code == "TTRA-E012") return "storage resource exhausted (disk full)";
  if (code == "TTRA-E013") return "read-only degraded mode rejects writes";
  if (code == kWarnUseBeforeDefine)
    return "relation used before the statement that defines it";
  if (code == kWarnKindNeverMatches)
    return "expression kind is fixed by syntax and can never match the target";
  if (code == kWarnRollbackInFuture)
    return "rollback transaction number exceeds any committable transaction";
  if (code == kWarnUnusedRelation) return "defined relation is never used";
  if (code == kWarnUnreachableStmt)
    return "statement is unreachable under strict execution";
  if (code == kWarnRollbackProvablyEmpty)
    return "rollback provably observes only the empty state";
  if (code == kWarnRollbackSchemaChanged)
    return "rollback observes a scheme older than the current one";
  if (code == kWarnDeadModifyState)
    return "state is overwritten before any expression reads it";
  if (code == kWarnConstantFoldable)
    return "expression reads no relation; its value is a constant";
  return "";
}

void DiagnosticSink::Add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) {
    ++error_count_;
  } else if (diagnostic.severity == Severity::kWarning) {
    ++warning_count_;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::AddError(const Status& status, SourceSpan span) {
  Add(Diagnostic{Severity::kError,
                 std::string(DiagnosticCodeForError(status.code())), span,
                 status.message(), status.code()});
}

void DiagnosticSink::AddWarning(std::string_view code, SourceSpan span,
                                std::string message) {
  Add(Diagnostic{Severity::kWarning, std::string(code), span,
                 std::move(message), ErrorCode::kOk});
}

Status DiagnosticSink::FirstError() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) return Status(d.error, d.message);
  }
  return Status::Ok();
}

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view file) {
  std::string out;
  if (!file.empty()) out += std::string(file) + ":";
  if (diagnostic.span.valid()) {
    out += std::to_string(diagnostic.span.begin.line) + ":" +
           std::to_string(diagnostic.span.begin.column) + ":";
  }
  if (!out.empty()) out += " ";
  out += std::string(SeverityName(diagnostic.severity)) + "[" +
         diagnostic.code + "]: " + diagnostic.message;
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view file) {
  std::string out;
  size_t errors = 0;
  size_t warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d, file) + "\n";
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  if (diagnostics.empty()) {
    out += file.empty() ? std::string("ok\n") : std::string(file) + ": ok\n";
    return out;
  }
  if (!file.empty()) out += std::string(file) + ": ";
  out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
         " warning(s)\n";
  return out;
}

namespace {

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view file) {
  size_t errors = 0;
  size_t warnings = 0;
  std::string items;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    if (!items.empty()) items += ",";
    items += "\n    {\"severity\": \"" + std::string(SeverityName(d.severity)) +
             "\", \"code\": \"" + EscapeJson(d.code) + "\"";
    if (d.span.valid()) {
      items += ", \"line\": " + std::to_string(d.span.begin.line) +
               ", \"column\": " + std::to_string(d.span.begin.column) +
               ", \"endLine\": " + std::to_string(d.span.end.line) +
               ", \"endColumn\": " + std::to_string(d.span.end.column);
    }
    items += ", \"message\": \"" + EscapeJson(d.message) + "\"}";
  }
  std::string out = "{\n  \"version\": " +
                    std::to_string(kDiagnosticsJsonVersion) + ",\n" +
                    "  \"file\": \"" + EscapeJson(file) + "\",\n" +
                    "  \"errors\": " + std::to_string(errors) + ",\n" +
                    "  \"warnings\": " + std::to_string(warnings) + ",\n" +
                    "  \"diagnostics\": [" + items;
  out += items.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool StatusHasSpan(const Status& status) {
  // A position prefix is "L:C: " — digits, colon, digits, colon, space.
  const std::string& m = status.message();
  size_t i = 0;
  while (i < m.size() && std::isdigit(static_cast<unsigned char>(m[i]))) ++i;
  if (i == 0 || i >= m.size() || m[i] != ':') return false;
  size_t j = ++i;
  while (j < m.size() && std::isdigit(static_cast<unsigned char>(m[j]))) ++j;
  return j > i && j + 1 < m.size() && m[j] == ':' && m[j + 1] == ' ';
}

Status WithSpan(Status status, const SourceSpan& span) {
  if (status.ok() || !span.valid() || StatusHasSpan(status)) return status;
  return Status(status.code(), std::to_string(span.begin.line) + ":" +
                                   std::to_string(span.begin.column) + ": " +
                                   status.message());
}

}  // namespace ttra::lang
