#ifndef TTRA_LANG_DIAGNOSTICS_H_
#define TTRA_LANG_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ttra::lang {

/// A 1-based position in the source text; line 0 means "unknown".
struct SourcePos {
  size_t line = 0;
  size_t column = 0;

  friend bool operator==(const SourcePos&, const SourcePos&) = default;
};

/// Half-open region of source text [begin, end). The parser attaches one to
/// every expression and statement so diagnostics (static and run-time) can
/// point at the construct that produced them. AST nodes built
/// programmatically have no span; such diagnostics print without position.
struct SourceSpan {
  SourcePos begin;
  SourcePos end;

  bool valid() const { return begin.line > 0; }

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

enum class Severity : uint8_t { kError, kWarning, kNote };

std::string_view SeverityName(Severity severity);

/// One finding of the diagnostics engine: a severity, a stable registry
/// code (see below), the source region it points at, and the message. For
/// errors, `error` keeps the machine classification so callers can bridge
/// back to the Status world without parsing the code string.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // "TTRA-E004", "TTRA-W001", ...
  SourceSpan span;      // may be invalid (position unknown)
  std::string message;  // human-readable, carries no position info
  ErrorCode error = ErrorCode::kOk;  // set for severity kError

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

// --- Stable code registry ---------------------------------------------------
//
// Error codes are derived 1:1 from ErrorCode so every Status produced by the
// analyzer or evaluator maps to exactly one diagnostic code. Warning codes
// are owned by the static analyzer. Codes are append-only: a published code
// never changes meaning.

/// "TTRA-E001" ... for every non-OK ErrorCode; "" for kOk.
std::string_view DiagnosticCodeForError(ErrorCode code);

// Warnings (static analysis only — never fail execution).
inline constexpr std::string_view kWarnUseBeforeDefine = "TTRA-W001";
inline constexpr std::string_view kWarnKindNeverMatches = "TTRA-W002";
inline constexpr std::string_view kWarnRollbackInFuture = "TTRA-W003";
inline constexpr std::string_view kWarnUnusedRelation = "TTRA-W004";
inline constexpr std::string_view kWarnUnreachableStmt = "TTRA-W005";
// Whole-program warnings derived by the abstract interpreter (absint.h).
inline constexpr std::string_view kWarnRollbackProvablyEmpty = "TTRA-W006";
inline constexpr std::string_view kWarnRollbackSchemaChanged = "TTRA-W007";
inline constexpr std::string_view kWarnDeadModifyState = "TTRA-W008";
inline constexpr std::string_view kWarnConstantFoldable = "TTRA-W009";

/// One-line summary of what a registry code means ("" for unknown codes).
std::string_view DiagnosticCodeSummary(std::string_view code);

/// Collects diagnostics during analysis. The analyzer never stops at the
/// first error: every statement is checked and every finding lands here,
/// errors and warnings interleaved in source order.
class DiagnosticSink {
 public:
  void Add(Diagnostic diagnostic);

  /// Records a non-OK status as an error diagnostic at `span`.
  void AddError(const Status& status, SourceSpan span);

  /// Records a warning with one of the kWarn* registry codes.
  void AddWarning(std::string_view code, SourceSpan span, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }
  bool has_errors() const { return error_count_ > 0; }

  /// The first error as a Status (message without position — identical to
  /// what the fail-fast analyzer produced), or OK if none. Bridges the
  /// collecting engine back to the Status-based API.
  Status FirstError() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

// --- Rendering --------------------------------------------------------------

/// "file:3:14: error[TTRA-E001]: message" (position omitted when the span
/// is unknown; `file` may be empty).
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view file);

/// All diagnostics, one per line, followed by a "N error(s), M warning(s)"
/// summary line ("ok" when empty).
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view file);

/// Schema version of the DiagnosticsToJson report. Bump on any
/// backwards-incompatible change to the JSON shape; downstream tooling
/// pins on it (and a golden test pins the shape for each version).
inline constexpr int kDiagnosticsJsonVersion = 1;

/// Machine-readable report:
///   {"version": 1, "file": "...", "errors": N, "warnings": M,
///    "diagnostics": [{"severity": ..., "code": ..., "line": ..., ...}]}
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view file);

// --- Status bridging --------------------------------------------------------

/// Prefixes the status message with "L:C: " so run-time errors surface the
/// failing construct's position. No-op for OK statuses, invalid spans, or
/// messages that already carry a position prefix (inner-most wins).
Status WithSpan(Status status, const SourceSpan& span);

/// True if the message begins with a "L:C: " position prefix.
bool StatusHasSpan(const Status& status);

}  // namespace ttra::lang

#endif  // TTRA_LANG_DIAGNOSTICS_H_
