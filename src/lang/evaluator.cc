#include "lang/evaluator.h"

#include "historical/haggregate.h"
#include "historical/hoperators.h"
#include "lang/parser.h"
#include "snapshot/aggregate.h"
#include "snapshot/operators.h"

namespace ttra::lang {

namespace {

Result<StateValue> EvalExprImpl(const Expr& expr, const Database& db);

Result<StateValue> EvalBinary(const Expr& expr, const Database& db) {
  TTRA_ASSIGN_OR_RETURN(StateValue lhs, EvalExpr(expr.left(), db));
  TTRA_ASSIGN_OR_RETURN(StateValue rhs, EvalExpr(expr.right(), db));
  const bool lhs_hist = std::holds_alternative<HistoricalState>(lhs);
  const bool rhs_hist = std::holds_alternative<HistoricalState>(rhs);
  if (lhs_hist != rhs_hist) {
    return TypeMismatchError(
        std::string(BinaryOpName(expr.op())) +
        " mixes snapshot and historical operands");
  }
  if (!lhs_hist) {
    const SnapshotState& a = std::get<SnapshotState>(lhs);
    const SnapshotState& b = std::get<SnapshotState>(rhs);
    Result<SnapshotState> result = [&]() {
      switch (expr.op()) {
        case BinaryOp::kUnion:
          return snapshot_ops::Union(a, b);
        case BinaryOp::kMinus:
          return snapshot_ops::Difference(a, b);
        case BinaryOp::kTimes:
          return snapshot_ops::Product(a, b);
        case BinaryOp::kIntersect:
          return snapshot_ops::Intersect(a, b);
        case BinaryOp::kJoin:
          return snapshot_ops::NaturalJoin(a, b);
      }
      return Result<SnapshotState>(InternalError("unhandled op"));
    }();
    if (!result.ok()) return result.status();
    return StateValue(std::move(result).value());
  }
  const HistoricalState& a = std::get<HistoricalState>(lhs);
  const HistoricalState& b = std::get<HistoricalState>(rhs);
  Result<HistoricalState> result = [&]() {
    switch (expr.op()) {
      case BinaryOp::kUnion:
        return historical_ops::Union(a, b);
      case BinaryOp::kMinus:
        return historical_ops::Difference(a, b);
      case BinaryOp::kTimes:
        return historical_ops::Product(a, b);
      case BinaryOp::kIntersect:
        return historical_ops::Intersect(a, b);
      case BinaryOp::kJoin:
        return historical_ops::NaturalJoin(a, b);
    }
    return Result<HistoricalState>(InternalError("unhandled op"));
  }();
  if (!result.ok()) return result.status();
  return StateValue(std::move(result).value());
}

/// Applies the extend definitions to one schema, returning the result
/// schema and, for each result attribute, where its value comes from
/// (original position or definition index).
struct ExtendPlan {
  Schema schema;
  // For each output attribute: if >= 0, index into definitions; if < 0,
  // ~value is the index into the child tuple.
  std::vector<int> sources;
};

Result<ExtendPlan> PlanExtend(
    const Schema& child,
    const std::vector<std::pair<std::string, ScalarExpr>>& definitions) {
  std::vector<Attribute> attrs = child.attributes();
  std::vector<int> sources(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) sources[i] = ~static_cast<int>(i);
  for (size_t d = 0; d < definitions.size(); ++d) {
    const auto& [name, scalar] = definitions[d];
    TTRA_ASSIGN_OR_RETURN(ValueType type, scalar.TypeIn(child));
    auto i = child.IndexOf(name);
    if (i.has_value()) {
      attrs[*i].type = type;
      sources[*i] = static_cast<int>(d);
    } else {
      attrs.push_back(Attribute{name, type});
      sources.push_back(static_cast<int>(d));
    }
  }
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return ExtendPlan{std::move(schema), std::move(sources)};
}

Result<Tuple> ApplyExtend(
    const ExtendPlan& plan, const Schema& child_schema, const Tuple& tuple,
    const std::vector<std::pair<std::string, ScalarExpr>>& definitions) {
  std::vector<Value> values;
  values.reserve(plan.sources.size());
  for (int source : plan.sources) {
    if (source >= 0) {
      TTRA_ASSIGN_OR_RETURN(
          Value v, definitions[source].second.Eval(child_schema, tuple));
      values.push_back(std::move(v));
    } else {
      values.push_back(tuple.at(static_cast<size_t>(~source)));
    }
  }
  return Tuple(std::move(values));
}

Result<StateValue> EvalExtend(const Expr& expr, const Database& db) {
  TTRA_ASSIGN_OR_RETURN(StateValue child, EvalExpr(expr.left(), db));
  if (std::holds_alternative<SnapshotState>(child)) {
    const SnapshotState& state = std::get<SnapshotState>(child);
    TTRA_ASSIGN_OR_RETURN(ExtendPlan plan,
                          PlanExtend(state.schema(), expr.definitions()));
    std::vector<Tuple> tuples;
    tuples.reserve(state.size());
    for (const Tuple& t : state.tuples()) {
      TTRA_ASSIGN_OR_RETURN(
          Tuple mapped,
          ApplyExtend(plan, state.schema(), t, expr.definitions()));
      tuples.push_back(std::move(mapped));
    }
    auto result = SnapshotState::Make(plan.schema, std::move(tuples));
    if (!result.ok()) return result.status();
    return StateValue(std::move(result).value());
  }
  const HistoricalState& state = std::get<HistoricalState>(child);
  TTRA_ASSIGN_OR_RETURN(ExtendPlan plan,
                        PlanExtend(state.schema(), expr.definitions()));
  std::vector<HistoricalTuple> tuples;
  tuples.reserve(state.size());
  for (const HistoricalTuple& ht : state.tuples()) {
    TTRA_ASSIGN_OR_RETURN(
        Tuple mapped,
        ApplyExtend(plan, state.schema(), ht.tuple, expr.definitions()));
    tuples.push_back(HistoricalTuple{std::move(mapped), ht.valid});
  }
  auto result = HistoricalState::Make(plan.schema, std::move(tuples));
  if (!result.ok()) return result.status();
  return StateValue(std::move(result).value());
}

Result<StateValue> EvalExprImpl(const Expr& expr, const Database& db) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      return expr.constant();
    case Expr::Kind::kBinary:
      return EvalBinary(expr, db);
    case Expr::Kind::kProject: {
      TTRA_ASSIGN_OR_RETURN(StateValue child, EvalExpr(expr.left(), db));
      if (std::holds_alternative<SnapshotState>(child)) {
        auto result = snapshot_ops::Project(std::get<SnapshotState>(child),
                                            expr.attributes());
        if (!result.ok()) return result.status();
        return StateValue(std::move(result).value());
      }
      auto result = historical_ops::Project(std::get<HistoricalState>(child),
                                            expr.attributes());
      if (!result.ok()) return result.status();
      return StateValue(std::move(result).value());
    }
    case Expr::Kind::kSelect: {
      // Fuse σ_F(E1 × E2) into a theta join: equality conjuncts of F
      // become hash-join keys instead of filtering the materialized
      // product. Semantics (including error cases) are unchanged.
      if (expr.left().kind() == Expr::Kind::kBinary &&
          expr.left().op() == BinaryOp::kTimes) {
        const Expr& times = expr.left();
        TTRA_ASSIGN_OR_RETURN(StateValue lhs, EvalExpr(times.left(), db));
        TTRA_ASSIGN_OR_RETURN(StateValue rhs, EvalExpr(times.right(), db));
        const bool lhs_hist = std::holds_alternative<HistoricalState>(lhs);
        const bool rhs_hist = std::holds_alternative<HistoricalState>(rhs);
        if (lhs_hist != rhs_hist) {
          return TypeMismatchError(
              std::string(BinaryOpName(times.op())) +
              " mixes snapshot and historical operands");
        }
        if (!lhs_hist) {
          auto result = snapshot_ops::ThetaJoin(std::get<SnapshotState>(lhs),
                                                std::get<SnapshotState>(rhs),
                                                expr.predicate());
          if (!result.ok()) return result.status();
          return StateValue(std::move(result).value());
        }
        auto result = historical_ops::ThetaJoin(
            std::get<HistoricalState>(lhs), std::get<HistoricalState>(rhs),
            expr.predicate());
        if (!result.ok()) return result.status();
        return StateValue(std::move(result).value());
      }
      TTRA_ASSIGN_OR_RETURN(StateValue child, EvalExpr(expr.left(), db));
      if (std::holds_alternative<SnapshotState>(child)) {
        auto result = snapshot_ops::Select(std::get<SnapshotState>(child),
                                           expr.predicate());
        if (!result.ok()) return result.status();
        return StateValue(std::move(result).value());
      }
      auto result = historical_ops::Select(std::get<HistoricalState>(child),
                                           expr.predicate());
      if (!result.ok()) return result.status();
      return StateValue(std::move(result).value());
    }
    case Expr::Kind::kRename: {
      TTRA_ASSIGN_OR_RETURN(StateValue child, EvalExpr(expr.left(), db));
      if (std::holds_alternative<SnapshotState>(child)) {
        auto result = snapshot_ops::Rename(std::get<SnapshotState>(child),
                                           expr.rename_from(),
                                           expr.rename_to());
        if (!result.ok()) return result.status();
        return StateValue(std::move(result).value());
      }
      auto result = historical_ops::Rename(std::get<HistoricalState>(child),
                                           expr.rename_from(),
                                           expr.rename_to());
      if (!result.ok()) return result.status();
      return StateValue(std::move(result).value());
    }
    case Expr::Kind::kExtend:
      return EvalExtend(expr, db);
    case Expr::Kind::kDelta: {
      TTRA_ASSIGN_OR_RETURN(StateValue child, EvalExpr(expr.left(), db));
      if (!std::holds_alternative<HistoricalState>(child)) {
        return TypeMismatchError(
            "delta applies to historical states only; operand is snapshot");
      }
      auto result = historical_ops::Delta(std::get<HistoricalState>(child),
                                          expr.temporal_pred(),
                                          expr.temporal_projection());
      if (!result.ok()) return result.status();
      return StateValue(std::move(result).value());
    }
    case Expr::Kind::kSummarize: {
      TTRA_ASSIGN_OR_RETURN(StateValue child, EvalExpr(expr.left(), db));
      if (std::holds_alternative<SnapshotState>(child)) {
        auto result = Aggregate(std::get<SnapshotState>(child),
                                expr.group_attrs(), expr.aggregates());
        if (!result.ok()) return result.status();
        return StateValue(std::move(result).value());
      }
      auto result = historical_ops::Aggregate(
          std::get<HistoricalState>(child), expr.group_attrs(),
          expr.aggregates());
      if (!result.ok()) return result.status();
      return StateValue(std::move(result).value());
    }
    case Expr::Kind::kRollback: {
      if (expr.rollback_historical()) {
        auto result =
            db.RollbackHistorical(expr.relation_name(), expr.rollback_txn());
        if (!result.ok()) return result.status();
        return StateValue(std::move(result).value());
      }
      auto result = db.Rollback(expr.relation_name(), expr.rollback_txn());
      if (!result.ok()) return result.status();
      return StateValue(std::move(result).value());
    }
  }
  return InternalError("unhandled expression kind");
}

}  // namespace

Result<StateValue> EvalExpr(const Expr& expr, const Database& db) {
  auto result = EvalExprImpl(expr, db);
  if (!result.ok()) {
    // Attach the failing construct's source position; nested evaluations
    // have already stamped theirs (innermost wins), and programmatically
    // built trees carry no span, leaving the message untouched.
    return WithSpan(result.status(), expr.span());
  }
  return result;
}

Status ExecStmt(const Stmt& stmt, Database& db,
                std::vector<StateValue>* outputs, const ExecOptions& options) {
  Status status = std::visit(
      [&db, outputs](const auto& s) -> Status {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, DefineRelationStmt>) {
          return db.DefineRelation(s.name, s.type, s.schema);
        } else if constexpr (std::is_same_v<T, ModifyStateStmt>) {
          auto value = EvalExpr(s.expr, db);
          if (!value.ok()) return value.status();
          if (std::holds_alternative<SnapshotState>(*value)) {
            return db.ModifyState(s.name, std::get<SnapshotState>(*value));
          }
          return db.ModifyState(s.name, std::get<HistoricalState>(*value));
        } else if constexpr (std::is_same_v<T, DeleteRelationStmt>) {
          return db.DeleteRelation(s.name);
        } else if constexpr (std::is_same_v<T, ModifySchemaStmt>) {
          return db.ModifySchema(s.name, s.schema);
        } else {
          static_assert(std::is_same_v<T, ShowStmt>);
          auto value = EvalExpr(s.expr, db);
          if (!value.ok()) return value.status();
          if (outputs != nullptr) outputs->push_back(std::move(*value));
          return Status::Ok();
        }
      },
      stmt);
  if (!status.ok()) status = WithSpan(status, StmtSpan(stmt));
  if (!status.ok() && !options.strict) {
    // Paper-faithful mode: a failing command is C⟦·⟧'s `else d` — the
    // database is unchanged and the sentence continues.
    return Status::Ok();
  }
  return status;
}

Status ExecProgram(const Program& program, Database& db,
                   std::vector<StateValue>* outputs,
                   const ExecOptions& options) {
  for (const Stmt& stmt : program) {
    TTRA_RETURN_IF_ERROR(ExecStmt(stmt, db, outputs, options));
  }
  return Status::Ok();
}

Status Run(std::string_view source, Database& db,
           std::vector<StateValue>* outputs, const ExecOptions& options) {
  auto program = ParseProgram(source);
  if (!program.ok()) return program.status();
  return ExecProgram(*program, db, outputs, options);
}

Result<Database> EvalSentence(std::string_view source,
                              DatabaseOptions db_options,
                              const ExecOptions& options) {
  Database db(db_options);
  TTRA_RETURN_IF_ERROR(Run(source, db, nullptr, options));
  return db;
}

}  // namespace ttra::lang
