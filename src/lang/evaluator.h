#ifndef TTRA_LANG_EVALUATOR_H_
#define TTRA_LANG_EVALUATOR_H_

#include <string_view>
#include <vector>

#include "lang/ast.h"
#include "rollback/database.h"

namespace ttra::lang {

/// Execution controls.
struct ExecOptions {
  /// When false, failing commands are paper-faithful no-ops (the `else d`
  /// branches of C⟦·⟧): the database is left unchanged and execution
  /// continues. When true (default), the first failure stops execution and
  /// is returned.
  bool strict = true;
};

/// E⟦expr⟧ db — evaluates an expression on a database, never modifying it.
/// The result is a snapshot or historical state.
Result<StateValue> EvalExpr(const Expr& expr, const Database& db);

/// C⟦stmt⟧ db — applies one command to the database. For ShowStmt the
/// evaluated state is appended to `outputs` (if non-null) and the database
/// is untouched.
Status ExecStmt(const Stmt& stmt, Database& db,
                std::vector<StateValue>* outputs = nullptr,
                const ExecOptions& options = {});

/// Applies every command of the program in sequence (C⟦C1, C2⟧).
Status ExecProgram(const Program& program, Database& db,
                   std::vector<StateValue>* outputs = nullptr,
                   const ExecOptions& options = {});

/// Parses and executes source text against an existing database.
Status Run(std::string_view source, Database& db,
           std::vector<StateValue>* outputs = nullptr,
           const ExecOptions& options = {});

/// P⟦sentence⟧ — parses and evaluates a sentence against the EMPTY
/// database, returning the resulting database.
Result<Database> EvalSentence(std::string_view source,
                              DatabaseOptions db_options = {},
                              const ExecOptions& options = {});

}  // namespace ttra::lang

#endif  // TTRA_LANG_EVALUATOR_H_
