#include "lang/parser.h"

#include <algorithm>

namespace ttra::lang {

namespace {

/// Recursive-descent parser over a pre-lexed token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, size_t pos = 0)
      : tokens_(std::move(tokens)), pos_(pos) {}

  size_t position() const { return pos_; }

  /// Structured form of the last syntax error (valid iff has_error()).
  bool has_error() const { return has_error_; }
  const Diagnostic& last_error() const { return last_error_; }

  Result<Predicate> ParsePredicateFragment() { return ParsePredicate(); }
  Result<ScalarExpr> ParseScalarFragment() { return ParseScalarExpr(); }
  Result<Value> ParseLiteralFragment() { return ParseLiteral(); }

  Result<Program> ParseProgram() {
    Program program;
    while (!AtEnd()) {
      TTRA_ASSIGN_OR_RETURN(Stmt stmt, ParseStmt());
      program.push_back(std::move(stmt));
      while (CheckKind(TokenKind::kSemicolon)) Advance();
    }
    if (program.empty()) {
      return ::ttra::ParseError("a sentence requires at least one command");
    }
    return program;
  }

  Result<Stmt> ParseSingleStmt() {
    TTRA_ASSIGN_OR_RETURN(Stmt stmt, ParseStmt());
    while (CheckKind(TokenKind::kSemicolon)) Advance();
    TTRA_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  Result<Expr> ParseSingleExpr() {
    TTRA_ASSIGN_OR_RETURN(Expr expr, ParseExpr());
    TTRA_RETURN_IF_ERROR(ExpectEnd());
    return expr;
  }

  Result<Predicate> ParseSinglePredicate() {
    TTRA_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
    TTRA_RETURN_IF_ERROR(ExpectEnd());
    return pred;
  }

 private:
  // --- Token-stream helpers ----------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool CheckKind(TokenKind kind, size_t ahead = 0) const {
    return Peek(ahead).kind == kind;
  }
  bool CheckKeyword(std::string_view word, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kKeyword && Peek(ahead).text == word;
  }

  Status ErrorAt(const Token& token, std::string_view message) const {
    const std::string detail =
        std::string(message) + ", found " + token.Describe();
    last_error_ = Diagnostic{
        Severity::kError,
        std::string(DiagnosticCodeForError(ErrorCode::kParseError)),
        SpanOf(token), detail, ErrorCode::kParseError};
    has_error_ = true;
    return ::ttra::ParseError(detail + " at line " +
                              std::to_string(token.line) + ", column " +
                              std::to_string(token.column));
  }

  // --- Source spans --------------------------------------------------------

  static SourceSpan SpanOf(const Token& token) {
    return SourceSpan{{token.line, token.column},
                      {token.line, token.column + token.Width()}};
  }

  /// Span covering tokens_[start] through the last consumed token.
  SourceSpan SpanFrom(size_t start) const {
    const Token& first = tokens_[std::min(start, tokens_.size() - 1)];
    const size_t last_idx =
        std::min(pos_ > start ? pos_ - 1 : start, tokens_.size() - 1);
    const Token& last = tokens_[last_idx];
    return SourceSpan{{first.line, first.column},
                      {last.line, last.column + last.Width()}};
  }

  Status Expect(TokenKind kind) {
    if (!CheckKind(kind)) {
      return ErrorAt(Peek(), "expected " + std::string(TokenKindName(kind)));
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view word) {
    if (!CheckKeyword(word)) {
      return ErrorAt(Peek(), "expected keyword '" + std::string(word) + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectEnd() {
    if (!AtEnd()) return ErrorAt(Peek(), "expected end of input");
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!CheckKind(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected " + std::string(what));
    }
    return Advance().text;
  }

  // --- Statements ----------------------------------------------------------

  Result<Stmt> ParseStmt() {
    const size_t start = pos_;
    TTRA_ASSIGN_OR_RETURN(Stmt stmt, ParseStmtInner());
    std::visit([&](auto& s) { s.span = SpanFrom(start); }, stmt);
    return stmt;
  }

  Result<Stmt> ParseStmtInner() {
    if (CheckKeyword("define_relation")) return ParseDefineRelation();
    if (CheckKeyword("modify_state")) return ParseModifyState();
    if (CheckKeyword("delete_relation")) return ParseDeleteRelation();
    if (CheckKeyword("modify_schema")) return ParseModifySchema();
    if (CheckKeyword("show")) return ParseShow();
    return ErrorAt(Peek(), "expected a command");
  }

  Result<Stmt> ParseDefineRelation() {
    Advance();  // define_relation
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    TTRA_ASSIGN_OR_RETURN(RelationType type, ParseRelationTypeName());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    TTRA_ASSIGN_OR_RETURN(Schema schema, ParseSchema());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Stmt(DefineRelationStmt{std::move(name), type, std::move(schema)});
  }

  Result<Stmt> ParseModifyState() {
    Advance();  // modify_state
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    TTRA_ASSIGN_OR_RETURN(Expr expr, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Stmt(ModifyStateStmt{std::move(name), std::move(expr)});
  }

  Result<Stmt> ParseDeleteRelation() {
    Advance();  // delete_relation
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Stmt(DeleteRelationStmt{std::move(name)});
  }

  Result<Stmt> ParseModifySchema() {
    Advance();  // modify_schema
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    TTRA_ASSIGN_OR_RETURN(Schema schema, ParseSchema());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Stmt(ModifySchemaStmt{std::move(name), std::move(schema)});
  }

  Result<Stmt> ParseShow() {
    Advance();  // show
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr expr, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Stmt(ShowStmt{std::move(expr)});
  }

  Result<RelationType> ParseRelationTypeName() {
    for (std::string_view name :
         {"snapshot", "rollback", "historical", "temporal"}) {
      if (CheckKeyword(name)) {
        Advance();
        return *ParseRelationType(name);
      }
    }
    return ErrorAt(Peek(), "expected a relation type");
  }

  // --- Schemas --------------------------------------------------------------

  Result<Schema> ParseSchema() {
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<Attribute> attrs;
    if (!CheckKind(TokenKind::kRParen)) {
      for (;;) {
        TTRA_ASSIGN_OR_RETURN(std::string name,
                              ExpectIdentifier("attribute name"));
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        TTRA_ASSIGN_OR_RETURN(ValueType type, ParseTypeName());
        attrs.push_back(Attribute{std::move(name), type});
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    auto schema = Schema::Make(std::move(attrs));
    if (!schema.ok()) return ErrorAt(Peek(), schema.status().message());
    return std::move(schema).value();
  }

  Result<ValueType> ParseTypeName() {
    for (std::string_view name : {"int", "double", "string", "bool",
                                  "usertime"}) {
      if (CheckKeyword(name)) {
        Advance();
        return *ParseValueType(name);
      }
    }
    return ErrorAt(Peek(), "expected an attribute type");
  }

  // --- Expressions -----------------------------------------------------------

  // Precedence (loosest to tightest): union/intersect, minus, times/join.
  Result<Expr> ParseExpr() {
    const size_t start = pos_;
    TTRA_ASSIGN_OR_RETURN(Expr lhs, ParseDiffExpr());
    while (CheckKeyword("union") || CheckKeyword("intersect")) {
      const BinaryOp op = Peek().text == "union" ? BinaryOp::kUnion
                                                 : BinaryOp::kIntersect;
      Advance();
      TTRA_ASSIGN_OR_RETURN(Expr rhs, ParseDiffExpr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs))
                .WithSpan(SpanFrom(start));
    }
    return lhs;
  }

  Result<Expr> ParseDiffExpr() {
    const size_t start = pos_;
    TTRA_ASSIGN_OR_RETURN(Expr lhs, ParseProdExpr());
    while (CheckKeyword("minus")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(Expr rhs, ParseProdExpr());
      lhs = Expr::Binary(BinaryOp::kMinus, std::move(lhs), std::move(rhs))
                .WithSpan(SpanFrom(start));
    }
    return lhs;
  }

  Result<Expr> ParseProdExpr() {
    const size_t start = pos_;
    TTRA_ASSIGN_OR_RETURN(Expr lhs, ParsePrimaryExpr());
    while (CheckKeyword("times") || CheckKeyword("join")) {
      const BinaryOp op =
          Peek().text == "times" ? BinaryOp::kTimes : BinaryOp::kJoin;
      Advance();
      TTRA_ASSIGN_OR_RETURN(Expr rhs, ParsePrimaryExpr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs))
                .WithSpan(SpanFrom(start));
    }
    return lhs;
  }

  Result<Expr> ParsePrimaryExpr() {
    const size_t start = pos_;
    TTRA_ASSIGN_OR_RETURN(Expr expr, ParsePrimaryExprInner());
    return expr.WithSpan(SpanFrom(start));
  }

  Result<Expr> ParsePrimaryExprInner() {
    if (CheckKeyword("project")) return ParseProject();
    if (CheckKeyword("select")) return ParseSelect();
    if (CheckKeyword("rename")) return ParseRename();
    if (CheckKeyword("extend")) return ParseExtend();
    if (CheckKeyword("delta")) return ParseDelta();
    if (CheckKeyword("summarize")) return ParseSummarize();
    if (CheckKeyword("rho")) return ParseRollback(/*historical=*/false);
    if (CheckKeyword("hrho")) return ParseRollback(/*historical=*/true);
    if (CheckKeyword("snapshot") || CheckKeyword("historical")) {
      return ParseConstant();
    }
    if (CheckKind(TokenKind::kLParen)) {
      // '(' begins either a constant (its schema) or a parenthesized
      // expression; a schema continues with `ident :` or closes
      // immediately before '{'.
      const bool is_constant =
          (CheckKind(TokenKind::kIdentifier, 1) && CheckKind(TokenKind::kColon, 2)) ||
          (CheckKind(TokenKind::kRParen, 1) && CheckKind(TokenKind::kLBrace, 2));
      if (is_constant) return ParseConstant();
      Advance();  // '('
      TTRA_ASSIGN_OR_RETURN(Expr expr, ParseExpr());
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return expr;
    }
    return ErrorAt(Peek(), "expected an expression");
  }

  Result<Expr> ParseProject() {
    Advance();  // project
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    std::vector<std::string> names;
    if (!CheckKind(TokenKind::kRBracket)) {
      for (;;) {
        TTRA_ASSIGN_OR_RETURN(std::string name,
                              ExpectIdentifier("attribute name"));
        names.push_back(std::move(name));
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr child, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Project(std::move(names), std::move(child));
  }

  Result<Expr> ParseSelect() {
    Advance();  // select
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    TTRA_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr child, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Select(std::move(pred), std::move(child));
  }

  Result<Expr> ParseRename() {
    Advance();  // rename
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    TTRA_ASSIGN_OR_RETURN(std::string from,
                          ExpectIdentifier("attribute name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    TTRA_ASSIGN_OR_RETURN(std::string to, ExpectIdentifier("attribute name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr child, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Rename(std::move(from), std::move(to), std::move(child));
  }

  Result<Expr> ParseExtend() {
    Advance();  // extend
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    std::vector<std::pair<std::string, ScalarExpr>> definitions;
    for (;;) {
      TTRA_ASSIGN_OR_RETURN(std::string name,
                            ExpectIdentifier("attribute name"));
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      TTRA_ASSIGN_OR_RETURN(ScalarExpr value, ParseScalarExpr());
      definitions.emplace_back(std::move(name), std::move(value));
      if (!CheckKind(TokenKind::kComma)) break;
      Advance();
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr child, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Extend(std::move(definitions), std::move(child));
  }

  Result<Expr> ParseDelta() {
    Advance();  // delta
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    TTRA_ASSIGN_OR_RETURN(TemporalPred pred, ParseTemporalPred());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    TTRA_ASSIGN_OR_RETURN(TemporalExpr projection, ParseTemporalExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr child, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Delta(std::move(pred), std::move(projection),
                       std::move(child));
  }

  // summarize[group, attrs; out = func(attr), n = count](E)
  Result<Expr> ParseSummarize() {
    Advance();  // summarize
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    std::vector<std::string> group;
    if (!CheckKind(TokenKind::kSemicolon)) {
      for (;;) {
        TTRA_ASSIGN_OR_RETURN(std::string name,
                              ExpectIdentifier("group attribute"));
        group.push_back(std::move(name));
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    std::vector<AggregateDef> aggregates;
    for (;;) {
      AggregateDef def;
      TTRA_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("aggregate name"));
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      bool parsed_func = false;
      for (std::string_view func : {"count", "sum", "min", "max", "avg"}) {
        if (CheckKeyword(func)) {
          Advance();
          def.func = *ParseAggFunc(func);
          parsed_func = true;
          break;
        }
      }
      if (!parsed_func) {
        return ErrorAt(Peek(), "expected an aggregate function");
      }
      if (def.func == AggFunc::kCount) {
        // count takes no attribute; "count()" is also accepted.
        if (CheckKind(TokenKind::kLParen)) {
          Advance();
          TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        }
      } else {
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        TTRA_ASSIGN_OR_RETURN(def.attr,
                              ExpectIdentifier("aggregated attribute"));
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      }
      aggregates.push_back(std::move(def));
      if (!CheckKind(TokenKind::kComma)) break;
      Advance();
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(Expr child, ParseExpr());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Summarize(std::move(group), std::move(aggregates),
                           std::move(child));
  }

  Result<Expr> ParseRollback(bool historical) {
    Advance();  // rho / hrho
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    std::optional<TransactionNumber> txn;
    if (CheckKeyword("inf")) {
      Advance();
    } else if (CheckKind(TokenKind::kIntLiteral)) {
      const int64_t value = Advance().int_value;
      if (value < 0) {
        return ErrorAt(Peek(), "transaction numbers are non-negative");
      }
      txn = static_cast<TransactionNumber>(value);
    } else {
      return ErrorAt(Peek(), "expected a transaction number or 'inf'");
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Expr::Rollback(std::move(name), txn, historical);
  }

  // --- Constants --------------------------------------------------------------

  enum class ConstKind { kAuto, kSnapshot, kHistorical };

  Result<Expr> ParseConstant() {
    ConstKind kind = ConstKind::kAuto;
    if (CheckKeyword("snapshot")) {
      kind = ConstKind::kSnapshot;
      Advance();
    } else if (CheckKeyword("historical")) {
      kind = ConstKind::kHistorical;
      Advance();
    }
    TTRA_ASSIGN_OR_RETURN(Schema schema, ParseSchema());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::vector<Tuple> tuples;
    std::vector<HistoricalTuple> htuples;
    if (!CheckKind(TokenKind::kRBrace)) {
      for (;;) {
        TTRA_ASSIGN_OR_RETURN(Tuple tuple, ParseTuple());
        if (CheckAtSign()) {
          if (kind == ConstKind::kSnapshot) {
            return ErrorAt(Peek(),
                           "snapshot constant must not carry valid time");
          }
          kind = ConstKind::kHistorical;
          ConsumeAtSign();
          TTRA_ASSIGN_OR_RETURN(TemporalElement element,
                                ParseTemporalElement());
          htuples.push_back(
              HistoricalTuple{std::move(tuple), std::move(element)});
        } else {
          if (kind == ConstKind::kHistorical) {
            return ErrorAt(Peek(),
                           "historical constant requires '@ element' after "
                           "each tuple");
          }
          kind = ConstKind::kSnapshot;
          tuples.push_back(std::move(tuple));
        }
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (kind == ConstKind::kHistorical) {
      auto state = HistoricalState::Make(std::move(schema), std::move(htuples));
      if (!state.ok()) return ErrorAt(Peek(), state.status().message());
      return Expr::Const(std::move(state).value());
    }
    auto state = SnapshotState::Make(std::move(schema), std::move(tuples));
    if (!state.ok()) return ErrorAt(Peek(), state.status().message());
    return Expr::Const(std::move(state).value());
  }

  bool CheckAtSign() const { return CheckKind(TokenKind::kAtSign); }
  void ConsumeAtSign() { Advance(); }

  Result<Tuple> ParseTuple() {
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<Value> values;
    if (!CheckKind(TokenKind::kRParen)) {
      for (;;) {
        TTRA_ASSIGN_OR_RETURN(Value value, ParseLiteral());
        values.push_back(std::move(value));
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
    }
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Tuple(std::move(values));
  }

  Result<Value> ParseLiteral() {
    bool negative = false;
    if (CheckKind(TokenKind::kMinusSign)) {
      negative = true;
      Advance();
    }
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return Value::Int(negative ? -token.int_value : token.int_value);
      case TokenKind::kDoubleLiteral:
        Advance();
        return Value::Double(negative ? -token.double_value
                                      : token.double_value);
      case TokenKind::kStringLiteral:
        if (negative) return ErrorAt(token, "cannot negate a string");
        Advance();
        return Value::String(token.text);
      case TokenKind::kTimeLiteral:
        if (negative) return ErrorAt(token, "write negative times as @-n");
        Advance();
        return Value::Time(token.int_value);
      case TokenKind::kKeyword:
        if (token.text == "true" || token.text == "false") {
          if (negative) return ErrorAt(token, "cannot negate a bool");
          Advance();
          return Value::Bool(token.text == "true");
        }
        [[fallthrough]];
      default:
        return ErrorAt(token, "expected a literal value");
    }
  }

  // --- Predicates (domain 𝓕) ---------------------------------------------

  Result<Predicate> ParsePredicate() { return ParseOrPred(); }

  Result<Predicate> ParseOrPred() {
    TTRA_ASSIGN_OR_RETURN(Predicate lhs, ParseAndPred());
    while (CheckKeyword("or")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(Predicate rhs, ParseAndPred());
      lhs = Predicate::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Predicate> ParseAndPred() {
    TTRA_ASSIGN_OR_RETURN(Predicate lhs, ParseUnaryPred());
    while (CheckKeyword("and")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(Predicate rhs, ParseUnaryPred());
      lhs = Predicate::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Predicate> ParseUnaryPred() {
    if (CheckKeyword("not")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(Predicate operand, ParseUnaryPred());
      return Predicate::Not(std::move(operand));
    }
    if (CheckKeyword("true")) {
      // Either the constant `true` or the operand of a comparison like
      // `true = flag` — the latter is not supported; document as such.
      Advance();
      return Predicate::True();
    }
    if (CheckKeyword("false")) {
      Advance();
      return Predicate::False();
    }
    if (CheckKind(TokenKind::kLParen)) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(Predicate inner, ParsePredicate());
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return ParseComparison();
  }

  Result<Predicate> ParseComparison() {
    TTRA_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    TTRA_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
    TTRA_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    return Predicate::Comparison(std::move(lhs), op, std::move(rhs));
  }

  Result<Operand> ParseOperand() {
    if (CheckKind(TokenKind::kIdentifier)) {
      return Operand::Attr(Advance().text);
    }
    TTRA_ASSIGN_OR_RETURN(Value value, ParseLiteral());
    return Operand::Const(std::move(value));
  }

  Result<CompareOp> ParseCompareOp() {
    switch (Peek().kind) {
      case TokenKind::kEq:
        Advance();
        return CompareOp::kEq;
      case TokenKind::kNe:
        Advance();
        return CompareOp::kNe;
      case TokenKind::kLt:
        Advance();
        return CompareOp::kLt;
      case TokenKind::kLe:
        Advance();
        return CompareOp::kLe;
      case TokenKind::kGt:
        Advance();
        return CompareOp::kGt;
      case TokenKind::kGe:
        Advance();
        return CompareOp::kGe;
      default:
        return ErrorAt(Peek(), "expected a comparison operator");
    }
  }

  // --- Scalar expressions (extend) ------------------------------------------

  // Precedence: +,- then *,/ (tighter).
  Result<ScalarExpr> ParseScalarExpr() {
    TTRA_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarTerm());
    while (CheckKind(TokenKind::kPlus) || CheckKind(TokenKind::kMinusSign)) {
      const ScalarExpr::Op op = CheckKind(TokenKind::kPlus)
                                    ? ScalarExpr::Op::kAdd
                                    : ScalarExpr::Op::kSub;
      Advance();
      TTRA_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarTerm());
      lhs = ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExpr> ParseScalarTerm() {
    TTRA_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarFactor());
    while (CheckKind(TokenKind::kStar) || CheckKind(TokenKind::kSlash)) {
      const ScalarExpr::Op op = CheckKind(TokenKind::kStar)
                                    ? ScalarExpr::Op::kMul
                                    : ScalarExpr::Op::kDiv;
      Advance();
      TTRA_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarFactor());
      lhs = ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExpr> ParseScalarFactor() {
    if (CheckKind(TokenKind::kLParen)) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(ScalarExpr inner, ParseScalarExpr());
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    if (CheckKind(TokenKind::kIdentifier)) {
      return ScalarExpr::Attr(Advance().text);
    }
    TTRA_ASSIGN_OR_RETURN(Value value, ParseLiteral());
    return ScalarExpr::Const(std::move(value));
  }

  // --- Temporal expressions and predicates (domains 𝒱 and 𝒢) ---------------

  Result<TemporalExpr> ParseTemporalExpr() {
    TTRA_ASSIGN_OR_RETURN(TemporalExpr lhs, ParseTemporalTerm());
    while (CheckKeyword("union") || CheckKeyword("intersect") ||
           CheckKeyword("minus")) {
      const std::string op = Advance().text;
      TTRA_ASSIGN_OR_RETURN(TemporalExpr rhs, ParseTemporalTerm());
      if (op == "union") {
        lhs = TemporalExpr::Union(std::move(lhs), std::move(rhs));
      } else if (op == "intersect") {
        lhs = TemporalExpr::Intersect(std::move(lhs), std::move(rhs));
      } else {
        lhs = TemporalExpr::Difference(std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<TemporalExpr> ParseTemporalTerm() {
    if (CheckKeyword("valid")) {
      Advance();
      return TemporalExpr::Valid();
    }
    if (CheckKind(TokenKind::kLBracket)) {
      TTRA_ASSIGN_OR_RETURN(TemporalElement element, ParseTemporalElement());
      return TemporalExpr::Const(std::move(element));
    }
    if (CheckKind(TokenKind::kLParen)) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(TemporalExpr inner, ParseTemporalExpr());
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return ErrorAt(Peek(), "expected a temporal expression");
  }

  Result<TemporalElement> ParseTemporalElement() {
    // "[)" is the empty element; otherwise intervals joined by 'u'.
    if (CheckKind(TokenKind::kLBracket) && CheckKind(TokenKind::kRParen, 1)) {
      Advance();
      Advance();
      return TemporalElement();
    }
    std::vector<Interval> intervals;
    for (;;) {
      TTRA_ASSIGN_OR_RETURN(Interval interval, ParseInterval());
      intervals.push_back(interval);
      if (!CheckKeyword("u")) break;
      Advance();
    }
    return TemporalElement::Of(std::move(intervals));
  }

  Result<Interval> ParseInterval() {
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    TTRA_ASSIGN_OR_RETURN(Chronon begin, ParseChronon(/*allow_inf=*/false));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    TTRA_ASSIGN_OR_RETURN(Chronon end, ParseChronon(/*allow_inf=*/true));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Interval::Make(begin, end);
  }

  Result<Chronon> ParseChronon(bool allow_inf) {
    if (allow_inf && CheckKeyword("inf")) {
      Advance();
      return kChrononMax;
    }
    bool negative = false;
    if (CheckKind(TokenKind::kMinusSign)) {
      negative = true;
      Advance();
    }
    if (!CheckKind(TokenKind::kIntLiteral)) {
      return ErrorAt(Peek(), "expected a chronon");
    }
    const int64_t value = Advance().int_value;
    return negative ? -value : value;
  }

  Result<TemporalPred> ParseTemporalPred() { return ParseTOrPred(); }

  Result<TemporalPred> ParseTOrPred() {
    TTRA_ASSIGN_OR_RETURN(TemporalPred lhs, ParseTAndPred());
    while (CheckKeyword("or")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(TemporalPred rhs, ParseTAndPred());
      lhs = TemporalPred::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TemporalPred> ParseTAndPred() {
    TTRA_ASSIGN_OR_RETURN(TemporalPred lhs, ParseTUnaryPred());
    while (CheckKeyword("and")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(TemporalPred rhs, ParseTUnaryPred());
      lhs = TemporalPred::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TemporalPred> ParseTUnaryPred() {
    if (CheckKeyword("not")) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(TemporalPred operand, ParseTUnaryPred());
      return TemporalPred::Not(std::move(operand));
    }
    if (CheckKeyword("true")) {
      Advance();
      return TemporalPred::True();
    }
    if (CheckKeyword("false")) {
      Advance();
      return TemporalPred::False();
    }
    if (CheckKind(TokenKind::kLParen)) {
      Advance();
      TTRA_ASSIGN_OR_RETURN(TemporalPred inner, ParseTemporalPred());
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    for (std::string_view name : {"overlaps", "contains", "before",
                                  "equals"}) {
      if (CheckKeyword(name)) {
        Advance();
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        TTRA_ASSIGN_OR_RETURN(TemporalExpr lhs, ParseTemporalExpr());
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        TTRA_ASSIGN_OR_RETURN(TemporalExpr rhs, ParseTemporalExpr());
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        if (name == "overlaps") {
          return TemporalPred::Overlaps(std::move(lhs), std::move(rhs));
        }
        if (name == "contains") {
          return TemporalPred::Contains(std::move(lhs), std::move(rhs));
        }
        if (name == "before") {
          return TemporalPred::Before(std::move(lhs), std::move(rhs));
        }
        return TemporalPred::Equals(std::move(lhs), std::move(rhs));
      }
    }
    if (CheckKeyword("isempty")) {
      Advance();
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      TTRA_ASSIGN_OR_RETURN(TemporalExpr operand, ParseTemporalExpr());
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return TemporalPred::Empty(std::move(operand));
    }
    return ErrorAt(Peek(), "expected a temporal predicate");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // ErrorAt is const (callable from const helpers), so the structured copy
  // of the last error is recorded through mutable state.
  mutable Diagnostic last_error_;
  mutable bool has_error_ = false;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  TTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

namespace {

/// Drops the trailing " at line L, column C" human suffix — the structured
/// span carries the position instead.
std::string StripPositionSuffix(std::string message) {
  const size_t at = message.rfind(" at line ");
  if (at != std::string::npos) message.erase(at);
  return message;
}

}  // namespace

Result<Program> ParseProgramDiag(std::string_view source, Diagnostic* diag) {
  size_t error_line = 0;
  size_t error_column = 0;
  auto tokens = Tokenize(source, &error_line, &error_column);
  if (!tokens.ok()) {
    if (diag != nullptr) {
      SourceSpan span;
      if (error_line > 0) {
        span = SourceSpan{{error_line, error_column},
                          {error_line, error_column + 1}};
      }
      *diag = Diagnostic{
          Severity::kError,
          std::string(DiagnosticCodeForError(tokens.status().code())), span,
          StripPositionSuffix(tokens.status().message()),
          tokens.status().code()};
    }
    return tokens.status();
  }
  Parser parser(std::move(tokens).value());
  auto program = parser.ParseProgram();
  if (!program.ok() && diag != nullptr) {
    if (parser.has_error()) {
      *diag = parser.last_error();
    } else {
      *diag = Diagnostic{
          Severity::kError,
          std::string(DiagnosticCodeForError(program.status().code())),
          SourceSpan{}, program.status().message(), program.status().code()};
    }
  }
  return program;
}

Result<Stmt> ParseStmt(std::string_view source) {
  TTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleStmt();
}

Result<Expr> ParseExpr(std::string_view source) {
  TTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleExpr();
}

Result<Predicate> ParsePredicate(std::string_view source) {
  TTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSinglePredicate();
}

Result<Predicate> ParsePredicateTokens(const std::vector<Token>& tokens,
                                       size_t& pos) {
  Parser parser(tokens, pos);
  auto result = parser.ParsePredicateFragment();
  if (result.ok()) pos = parser.position();
  return result;
}

Result<ScalarExpr> ParseScalarTokens(const std::vector<Token>& tokens,
                                     size_t& pos) {
  Parser parser(tokens, pos);
  auto result = parser.ParseScalarFragment();
  if (result.ok()) pos = parser.position();
  return result;
}

Result<Value> ParseLiteralTokens(const std::vector<Token>& tokens,
                                 size_t& pos) {
  Parser parser(tokens, pos);
  auto result = parser.ParseLiteralFragment();
  if (result.ok()) pos = parser.position();
  return result;
}

}  // namespace ttra::lang
