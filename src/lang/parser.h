#ifndef TTRA_LANG_PARSER_H_
#define TTRA_LANG_PARSER_H_

#include <string_view>

#include "lang/ast.h"
#include "lang/token.h"

namespace ttra::lang {

/// Recursive-descent parser for the concrete syntax (grammar in README.md).
/// All entry points are total: malformed input yields kParseError with a
/// line/column diagnostic.

/// Parses a full program (sentence): one or more ';'-separated statements.
Result<Program> ParseProgram(std::string_view source);

/// Like ParseProgram but, on failure, also fills `diag` (if non-null) with
/// the structured diagnostic: severity, registry code, source span, and the
/// message without the human "at line L, column C" suffix.
Result<Program> ParseProgramDiag(std::string_view source, Diagnostic* diag);

/// Parses a single statement (trailing ';' optional).
Result<Stmt> ParseStmt(std::string_view source);

/// Parses a standalone algebraic expression.
Result<Expr> ParseExpr(std::string_view source);

/// Parses a standalone selection predicate (domain 𝓕).
Result<Predicate> ParsePredicate(std::string_view source);

/// Token-level entry points for embedding language fragments in other
/// front-ends (the Quel compiler). Each parses starting at tokens[pos] and
/// advances pos past the consumed fragment.
Result<Predicate> ParsePredicateTokens(const std::vector<Token>& tokens,
                                       size_t& pos);
Result<ScalarExpr> ParseScalarTokens(const std::vector<Token>& tokens,
                                     size_t& pos);
Result<Value> ParseLiteralTokens(const std::vector<Token>& tokens,
                                 size_t& pos);

}  // namespace ttra::lang

#endif  // TTRA_LANG_PARSER_H_
