#include "lang/printer.h"

#include <algorithm>
#include <vector>

namespace ttra::lang {

namespace {

std::string RenderGrid(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&widths]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  };
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };
  std::string out = rule();
  out += render_row(header);
  out += rule();
  for (const auto& row : rows) out += render_row(row);
  out += rule();
  return out;
}

}  // namespace

std::string FormatTable(const SnapshotState& state) {
  std::vector<std::string> header;
  for (const Attribute& attr : state.schema().attributes()) {
    header.push_back(attr.name);
  }
  if (header.empty()) header.push_back("(empty scheme)");
  std::vector<std::vector<std::string>> rows;
  rows.reserve(state.size());
  for (const Tuple& tuple : state.tuples()) {
    std::vector<std::string> row;
    for (const Value& v : tuple.values()) row.push_back(v.ToString());
    rows.push_back(std::move(row));
  }
  std::string out = RenderGrid(header, rows);
  out += std::to_string(state.size()) + " tuple(s)\n";
  return out;
}

std::string FormatTable(const HistoricalState& state) {
  std::vector<std::string> header;
  for (const Attribute& attr : state.schema().attributes()) {
    header.push_back(attr.name);
  }
  header.push_back("valid");
  std::vector<std::vector<std::string>> rows;
  rows.reserve(state.size());
  for (const HistoricalTuple& ht : state.tuples()) {
    std::vector<std::string> row;
    for (const Value& v : ht.tuple.values()) row.push_back(v.ToString());
    row.push_back(ht.valid.ToString());
    rows.push_back(std::move(row));
  }
  std::string out = RenderGrid(header, rows);
  out += std::to_string(state.size()) + " tuple(s)\n";
  return out;
}

std::string FormatTable(const StateValue& value) {
  if (std::holds_alternative<SnapshotState>(value)) {
    return FormatTable(std::get<SnapshotState>(value));
  }
  return FormatTable(std::get<HistoricalState>(value));
}

namespace {

std::string NodeLabel(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kConst: {
      if (std::holds_alternative<HistoricalState>(expr.constant())) {
        const auto& s = std::get<HistoricalState>(expr.constant());
        return "const historical " + s.schema().ToString() + " {" +
               std::to_string(s.size()) + " tuples}";
      }
      const auto& s = std::get<SnapshotState>(expr.constant());
      return "const " + s.schema().ToString() + " {" +
             std::to_string(s.size()) + " tuples}";
    }
    case Expr::Kind::kBinary:
      return std::string(BinaryOpName(expr.op()));
    case Expr::Kind::kProject: {
      std::string names;
      for (size_t i = 0; i < expr.attributes().size(); ++i) {
        if (i > 0) names += ", ";
        names += expr.attributes()[i];
      }
      return "project[" + names + "]";
    }
    case Expr::Kind::kSelect:
      return "select[" + expr.predicate().ToString() + "]";
    case Expr::Kind::kRename:
      return "rename[" + expr.rename_from() + " -> " + expr.rename_to() +
             "]";
    case Expr::Kind::kExtend: {
      std::string defs;
      for (size_t i = 0; i < expr.definitions().size(); ++i) {
        if (i > 0) defs += ", ";
        defs += expr.definitions()[i].first + " = " +
                expr.definitions()[i].second.ToString();
      }
      return "extend[" + defs + "]";
    }
    case Expr::Kind::kDelta:
      return "delta[" + expr.temporal_pred().ToString() + "; " +
             expr.temporal_projection().ToString() + "]";
    case Expr::Kind::kSummarize: {
      std::string defs;
      for (size_t i = 0; i < expr.aggregates().size(); ++i) {
        const AggregateDef& def = expr.aggregates()[i];
        if (i > 0) defs += ", ";
        defs += def.name + " = " + std::string(AggFuncName(def.func));
        if (def.func != AggFunc::kCount) defs += "(" + def.attr + ")";
      }
      std::string groups;
      for (size_t i = 0; i < expr.group_attrs().size(); ++i) {
        if (i > 0) groups += ", ";
        groups += expr.group_attrs()[i];
      }
      return "summarize[" + groups + "; " + defs + "]";
    }
    case Expr::Kind::kRollback:
      return expr.ToString();
  }
  return "?";
}

void RenderTree(const Expr& expr, const std::string& prefix, bool is_last,
                bool is_root, std::string& out) {
  if (is_root) {
    out += NodeLabel(expr) + "\n";
  } else {
    out += prefix + (is_last ? "└─ " : "├─ ") + NodeLabel(expr) + "\n";
  }
  // Children.
  std::vector<Expr> children;
  switch (expr.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kRollback:
      break;
    case Expr::Kind::kBinary:
      children.push_back(expr.left());
      children.push_back(expr.right());
      break;
    default:
      children.push_back(expr.left());
  }
  const std::string child_prefix =
      is_root ? "" : prefix + (is_last ? "   " : "│  ");
  for (size_t i = 0; i < children.size(); ++i) {
    RenderTree(children[i], child_prefix, i + 1 == children.size(),
               /*is_root=*/false, out);
  }
}

}  // namespace

std::string FormatExprTree(const Expr& expr) {
  std::string out;
  RenderTree(expr, "", /*is_last=*/true, /*is_root=*/true, out);
  return out;
}

std::string DescribeDatabase(const Database& db) {
  std::string out = "database at transaction " +
                    std::to_string(db.transaction_number()) + "\n";
  for (const std::string& name : db.RelationNames()) {
    const Relation* r = db.Find(name);
    out += "  " + name + " : " + std::string(RelationTypeName(r->type())) +
           " " + r->schema().ToString() + ", " +
           std::to_string(r->history_length()) + " state(s), ~" +
           std::to_string(r->ApproxBytes()) + " bytes\n";
  }
  return out;
}

}  // namespace ttra::lang
