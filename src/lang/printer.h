#ifndef TTRA_LANG_PRINTER_H_
#define TTRA_LANG_PRINTER_H_

#include <string>

#include "lang/ast.h"
#include "rollback/database.h"

namespace ttra::lang {

/// Renders a state as an aligned ASCII table (for the REPL and examples):
///
///   +------+--------+
///   | name | salary |
///   +------+--------+
///   | "Ed" | 20000  |
///   +------+--------+
std::string FormatTable(const SnapshotState& state);

/// Historical tables gain a trailing `valid` column with the temporal
/// element of each tuple.
std::string FormatTable(const HistoricalState& state);

std::string FormatTable(const StateValue& value);

/// One line per relation: name, type, scheme, history length, bytes.
std::string DescribeDatabase(const Database& db);

/// Multi-line operator-tree rendering for EXPLAIN-style output:
///
///   select[a > 1]
///   └─ union
///      ├─ rho(r, inf)
///      └─ const (a: int) {2 tuples}
std::string FormatExprTree(const Expr& expr);

}  // namespace ttra::lang

#endif  // TTRA_LANG_PRINTER_H_
