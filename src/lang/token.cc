#include "lang/token.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace ttra::lang {

namespace {

constexpr std::array kKeywords = {
    // Commands.
    "define_relation", "modify_state", "delete_relation", "modify_schema",
    "show",
    // Relation types.
    "snapshot", "rollback", "historical", "temporal",
    // Algebraic operators (polymorphic: resolved to the snapshot or
    // historical variant during analysis).
    "union", "minus", "times", "intersect", "join", "project", "select",
    "rename", "extend", "delta", "rho", "hrho", "summarize",
    // Aggregate functions.
    "count", "sum", "min", "max", "avg",
    // Predicate / temporal-expression vocabulary.
    "and", "or", "not", "true", "false", "valid", "overlaps", "contains",
    "before", "equals", "isempty", "u",
    // Numerals.
    "inf",
    // Attribute types.
    "int", "double", "string", "bool", "usertime",
};

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kDoubleLiteral:
      return "double literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kTimeLiteral:
      return "time literal";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kAtSign:
      return "'@'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinusSign:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
  }
  return "unknown token";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword '" + text + "'";
    case TokenKind::kIntLiteral:
      return "integer " + std::to_string(int_value);
    case TokenKind::kDoubleLiteral:
      return "double " + std::to_string(double_value);
    case TokenKind::kStringLiteral:
      return "string \"" + EscapeString(text) + "\"";
    case TokenKind::kTimeLiteral:
      return "time @" + std::to_string(int_value);
    default:
      return std::string(TokenKindName(kind));
  }
}

size_t Token::Width() const {
  switch (kind) {
    case TokenKind::kEnd:
      return 0;
    case TokenKind::kIdentifier:
    case TokenKind::kKeyword:
      return text.size();
    case TokenKind::kStringLiteral:
      return text.size() + 2;  // surrounding quotes (escapes approximated)
    case TokenKind::kIntLiteral:
      return std::to_string(int_value).size();
    case TokenKind::kTimeLiteral:
      return std::to_string(int_value).size() + 1;  // leading '@'
    case TokenKind::kDoubleLiteral:
      return std::to_string(double_value).size();  // approximate
    case TokenKind::kArrow:
    case TokenKind::kNe:
    case TokenKind::kLe:
    case TokenKind::kGe:
      return 2;
    default:
      return 1;
  }
}

bool IsKeyword(std::string_view word) {
  for (std::string_view keyword : kKeywords) {
    if (word == keyword) return true;
  }
  return false;
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(std::move(token));
        return tokens;
      }
      TTRA_RETURN_IF_ERROR(LexOne(token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  Status ErrorHere(std::string_view message) const {
    error_line_ = line_;
    error_column_ = column_;
    return ParseError(std::string(message) + " at line " +
                      std::to_string(line_) + ", column " +
                      std::to_string(column_));
  }

 public:
  size_t error_line() const { return error_line_; }
  size_t error_column() const { return error_column_; }

 private:

  Status LexOne(Token& token) {
    const char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexWord(token);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(token);
    }
    switch (c) {
      case '"':
        return LexString(token);
      case '@':
        return LexTime(token);
      case '(':
        Advance();
        token.kind = TokenKind::kLParen;
        return Status::Ok();
      case ')':
        Advance();
        token.kind = TokenKind::kRParen;
        return Status::Ok();
      case '{':
        Advance();
        token.kind = TokenKind::kLBrace;
        return Status::Ok();
      case '}':
        Advance();
        token.kind = TokenKind::kRBrace;
        return Status::Ok();
      case '[':
        Advance();
        token.kind = TokenKind::kLBracket;
        return Status::Ok();
      case ']':
        Advance();
        token.kind = TokenKind::kRBracket;
        return Status::Ok();
      case ',':
        Advance();
        token.kind = TokenKind::kComma;
        return Status::Ok();
      case ';':
        Advance();
        token.kind = TokenKind::kSemicolon;
        return Status::Ok();
      case ':':
        Advance();
        token.kind = TokenKind::kColon;
        return Status::Ok();
      case '=':
        Advance();
        token.kind = TokenKind::kEq;
        return Status::Ok();
      case '!':
        Advance();
        if (Peek() != '=') return ErrorHere("expected '=' after '!'");
        Advance();
        token.kind = TokenKind::kNe;
        return Status::Ok();
      case '<':
        Advance();
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kLe;
        } else {
          token.kind = TokenKind::kLt;
        }
        return Status::Ok();
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kGe;
        } else {
          token.kind = TokenKind::kGt;
        }
        return Status::Ok();
      case '+':
        Advance();
        token.kind = TokenKind::kPlus;
        return Status::Ok();
      case '-':
        Advance();
        if (Peek() == '>') {
          Advance();
          token.kind = TokenKind::kArrow;
          return Status::Ok();
        }
        // Unary minus on literals is handled by the parser so that
        // `sal - 500` and `(-500)` both lex unambiguously.
        token.kind = TokenKind::kMinusSign;
        return Status::Ok();
      case '*':
        Advance();
        token.kind = TokenKind::kStar;
        return Status::Ok();
      case '/':
        Advance();
        token.kind = TokenKind::kSlash;
        return Status::Ok();
      default:
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
  }

  Status LexWord(Token& token) {
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      word.push_back(Advance());
    }
    token.kind = IsKeyword(word) ? TokenKind::kKeyword
                                 : TokenKind::kIdentifier;
    token.text = std::move(word);
    return Status::Ok();
  }

  Status LexNumber(Token& token) {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    bool is_double = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      digits.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      const char next = Peek(1);
      const char next2 = Peek(2);
      if (std::isdigit(static_cast<unsigned char>(next)) ||
          ((next == '+' || next == '-') &&
           std::isdigit(static_cast<unsigned char>(next2)))) {
        is_double = true;
        digits.push_back(Advance());  // e
        if (Peek() == '+' || Peek() == '-') digits.push_back(Advance());
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          digits.push_back(Advance());
        }
      }
    }
    try {
      if (is_double) {
        token.kind = TokenKind::kDoubleLiteral;
        token.double_value = std::stod(digits);
      } else {
        token.kind = TokenKind::kIntLiteral;
        token.int_value = std::stoll(digits);
      }
    } catch (const std::exception&) {
      return ErrorHere("numeric literal out of range: " + digits);
    }
    return Status::Ok();
  }

  Status LexString(Token& token) {
    Advance();  // opening quote
    std::string raw;
    for (;;) {
      if (AtEnd()) return ErrorHere("unterminated string literal");
      char c = Advance();
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return ErrorHere("unterminated escape in string");
        raw.push_back('\\');
        raw.push_back(Advance());
        continue;
      }
      raw.push_back(c);
    }
    token.kind = TokenKind::kStringLiteral;
    token.text = UnescapeString(raw);
    return Status::Ok();
  }

  Status LexTime(Token& token) {
    // '@' followed by (optionally negative) digits is a user-time literal;
    // a bare '@' is the valid-time separator of historical tuples.
    if (!std::isdigit(static_cast<unsigned char>(Peek(1))) &&
        !(Peek(1) == '-' &&
          std::isdigit(static_cast<unsigned char>(Peek(2))))) {
      Advance();  // '@'
      token.kind = TokenKind::kAtSign;
      return Status::Ok();
    }
    Advance();  // '@'
    bool negative = false;
    if (Peek() == '-') {
      negative = true;
      Advance();
    }
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return ErrorHere("expected digits after '@'");
    }
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    try {
      token.kind = TokenKind::kTimeLiteral;
      token.int_value = std::stoll((negative ? "-" : "") + digits);
    } catch (const std::exception&) {
      return ErrorHere("time literal out of range: @" + digits);
    }
    return Status::Ok();
  }

  std::string_view source_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
  mutable size_t error_line_ = 0;
  mutable size_t error_column_ = 0;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

Result<std::vector<Token>> Tokenize(std::string_view source,
                                    size_t* error_line, size_t* error_column) {
  Lexer lexer(source);
  auto tokens = lexer.Run();
  if (!tokens.ok()) {
    if (error_line != nullptr) *error_line = lexer.error_line();
    if (error_column != nullptr) *error_column = lexer.error_column();
  }
  return tokens;
}

}  // namespace ttra::lang
