#ifndef TTRA_LANG_TOKEN_H_
#define TTRA_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ttra::lang {

enum class TokenKind : uint8_t {
  kEnd,
  kIdentifier,   // relation / attribute names (keywords are separate)
  kKeyword,      // reserved words, lowercase
  kIntLiteral,   // 42, -7
  kDoubleLiteral,  // 3.5, -0.25
  kStringLiteral,  // "text" (unescaped in `text`)
  kTimeLiteral,    // @123 (user-defined time)
  kLParen,       // (
  kRParen,       // )
  kLBrace,       // {
  kRBrace,       // }
  kLBracket,     // [
  kRBracket,     // ]
  kComma,        // ,
  kSemicolon,    // ;
  kColon,        // :
  kAtSign,       // @ (valid-time separator in historical tuples)
  kArrow,        // ->
  kEq,           // =
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kPlus,         // +
  kMinusSign,    // -
  kStar,         // *
  kSlash,        // /
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/keyword/string payload
  int64_t int_value = 0;  // kIntLiteral / kTimeLiteral
  double double_value = 0.0;  // kDoubleLiteral
  size_t line = 1;
  size_t column = 1;

  std::string Describe() const;

  /// Width of the token's lexeme in source columns (best effort: string
  /// literals report their unescaped payload length plus quotes).
  size_t Width() const;
};

/// True for the language's reserved words (operator names, relation types,
/// command names, literals). Reserved words cannot be identifiers.
bool IsKeyword(std::string_view word);

/// Tokenizes a program. `--` starts a comment to end of line.
Result<std::vector<Token>> Tokenize(std::string_view source);

/// Like Tokenize but, on failure, also reports the error's 1-based source
/// position for structured diagnostics.
Result<std::vector<Token>> Tokenize(std::string_view source,
                                    size_t* error_line, size_t* error_column);

}  // namespace ttra::lang

#endif  // TTRA_LANG_TOKEN_H_
