#include "optimizer/rewriter.h"

#include <algorithm>

#include "lang/evaluator.h"

namespace ttra::optimizer {

namespace {

using lang::AbsRelation;
using lang::AbsState;
using lang::Analyze;
using lang::AnalyzeStmt;
using lang::BinaryOp;
using lang::Catalog;
using lang::Expr;
using lang::ExprType;
using lang::StateKind;

bool Covers(const Schema& schema, const std::set<std::string>& names) {
  return std::all_of(names.begin(), names.end(), [&schema](const auto& n) {
    return schema.IndexOf(n).has_value();
  });
}

}  // namespace

Predicate SimplifyPredicate(const Predicate& p) {
  switch (p.kind()) {
    case Predicate::Kind::kConst:
    case Predicate::Kind::kComparison:
      return p;
    case Predicate::Kind::kAnd: {
      Predicate l = SimplifyPredicate(p.left());
      Predicate r = SimplifyPredicate(p.right());
      if (l.IsFalseLiteral() || r.IsFalseLiteral()) return Predicate::False();
      if (l.IsTrueLiteral()) return r;
      if (r.IsTrueLiteral()) return l;
      return Predicate::And(std::move(l), std::move(r));
    }
    case Predicate::Kind::kOr: {
      Predicate l = SimplifyPredicate(p.left());
      Predicate r = SimplifyPredicate(p.right());
      if (l.IsTrueLiteral() || r.IsTrueLiteral()) return Predicate::True();
      if (l.IsFalseLiteral()) return r;
      if (r.IsFalseLiteral()) return l;
      return Predicate::Or(std::move(l), std::move(r));
    }
    case Predicate::Kind::kNot: {
      Predicate inner = SimplifyPredicate(p.left());
      if (inner.IsTrueLiteral()) return Predicate::False();
      if (inner.IsFalseLiteral()) return Predicate::True();
      if (inner.kind() == Predicate::Kind::kNot) return inner.left();
      return Predicate::Not(std::move(inner));
    }
  }
  return p;
}

std::vector<Predicate> SplitConjuncts(const Predicate& p) {
  if (p.kind() == Predicate::Kind::kAnd) {
    std::vector<Predicate> conjuncts = SplitConjuncts(p.left());
    std::vector<Predicate> right = SplitConjuncts(p.right());
    conjuncts.insert(conjuncts.end(), right.begin(), right.end());
    return conjuncts;
  }
  return {p};
}

Predicate AndAll(const std::vector<Predicate>& conjuncts) {
  if (conjuncts.empty()) return Predicate::True();
  Predicate result = conjuncts.front();
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Predicate::And(std::move(result), conjuncts[i]);
  }
  return result;
}

namespace {

class Rewriter {
 public:
  explicit Rewriter(const Catalog& catalog,
                    const AbsState* facts = nullptr)
      : catalog_(catalog), facts_(facts) {}

  Expr Rewrite(const Expr& expr) {
    // Bottom-up, then local rules at this node to a (bounded) fixpoint.
    Expr node = RewriteChildren(expr);
    for (int i = 0; i < 8; ++i) {
      auto rewritten = ApplyLocal(node);
      if (!rewritten.has_value()) break;
      ++applications_;
      node = RewriteChildren(*rewritten);
    }
    return node;
  }

  int applications() const { return applications_; }

 private:
  Expr RewriteChildren(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kConst:
      case Expr::Kind::kRollback:
        return expr;
      case Expr::Kind::kBinary:
        return Expr::Binary(expr.op(), Rewrite(expr.left()),
                            Rewrite(expr.right()));
      case Expr::Kind::kProject:
        return Expr::Project(expr.attributes(), Rewrite(expr.left()));
      case Expr::Kind::kSelect:
        return Expr::Select(expr.predicate(), Rewrite(expr.left()));
      case Expr::Kind::kRename:
        return Expr::Rename(expr.rename_from(), expr.rename_to(),
                            Rewrite(expr.left()));
      case Expr::Kind::kExtend:
        return Expr::Extend(expr.definitions(), Rewrite(expr.left()));
      case Expr::Kind::kDelta:
        return Expr::Delta(expr.temporal_pred(), expr.temporal_projection(),
                           Rewrite(expr.left()));
      case Expr::Kind::kSummarize:
        return Expr::Summarize(expr.group_attrs(), expr.aggregates(),
                               Rewrite(expr.left()));
    }
    return expr;
  }

  /// One local rewrite at the root of `expr`, or nullopt if none applies.
  std::optional<Expr> ApplyLocal(const Expr& expr) {
    if (facts_ != nullptr) {
      if (auto folded = TryConstFold(expr)) return folded;
    }
    switch (expr.kind()) {
      case Expr::Kind::kSelect:
        return RewriteSelect(expr);
      case Expr::Kind::kProject:
        return RewriteProject(expr);
      case Expr::Kind::kDelta:
        if (expr.temporal_pred().IsTrueLiteral() &&
            expr.temporal_projection().IsIdentity()) {
          return expr.left();
        }
        return std::nullopt;
      case Expr::Kind::kRollback:
        return facts_ != nullptr ? RewriteRollback(expr) : std::nullopt;
      case Expr::Kind::kBinary:
        return facts_ != nullptr ? RewriteEmptyOperand(expr) : std::nullopt;
      default:
        return std::nullopt;
    }
  }

  // --- Facts-driven rules (facts_ != nullptr) -------------------------------

  /// TTRA-W009's rewrite: a relation-free non-constant subexpression is a
  /// compile-time constant — if its evaluation succeeds. Evaluation
  /// failure (division by zero, ...) keeps the expression so the run-time
  /// error surfaces exactly where it did before.
  std::optional<Expr> TryConstFold(const Expr& expr) {
    if (expr.kind() == Expr::Kind::kConst) return std::nullopt;
    if (!expr.RelationNames().empty()) return std::nullopt;
    if (!Analyze(expr, catalog_).ok()) return std::nullopt;
    auto value = lang::EvalExpr(expr, empty_db_);
    if (!value.ok()) return std::nullopt;
    if (std::holds_alternative<HistoricalState>(*value)) {
      return Expr::Const(std::get<HistoricalState>(std::move(*value)));
    }
    return Expr::Const(std::get<SnapshotState>(std::move(*value)));
  }

  /// ρ-empty fold and ρ-∞ normalization for finite-transaction rollbacks.
  std::optional<Expr> RewriteRollback(const Expr& expr) {
    if (!expr.rollback_txn().has_value()) return std::nullopt;
    const TransactionNumber txn = *expr.rollback_txn();
    const AbsRelation* rel = facts_->Find(expr.relation_name());
    if (rel == nullptr || !rel->states_complete) return std::nullopt;
    // Never replace a node static analysis rejects: the rewritten program
    // must fail exactly like the original.
    if (!Analyze(expr, catalog_).ok()) return std::nullopt;
    if (rel->ProvablyEmptyAt(txn)) {
      // FINDSTATE returns Empty(SchemaAt(txn)); fold only when that scheme
      // is provably the current one, so the constant types exactly like
      // the rollback node did (no static/run-time divergence).
      const Schema* at = rel->ProvableSchemaAt(txn);
      if (at == nullptr || !(*at == rel->schema)) return std::nullopt;
      if (expr.rollback_historical()) {
        return Expr::Const(HistoricalState::Empty(*at));
      }
      return Expr::Const(SnapshotState::Empty(*at));
    }
    // N provably at/after the last recorded state: FINDSTATE picks that
    // last state either way, and ∞ is O(1) on every storage engine (the
    // reverse-delta engine otherwise replays backwards from the tail).
    const lang::TxnInterval& last = rel->state_txns.back();
    if (last.hi.has_value() && txn >= *last.hi) {
      return Expr::Rollback(expr.relation_name(), std::nullopt,
                            expr.rollback_historical());
    }
    return std::nullopt;
  }

  /// True when every ρ/ρ̂ inside `e` provably observes a state whose
  /// recorded scheme equals the scheme static analysis assigned to the
  /// node. Under this condition Analyze's acceptance proves no run-time
  /// schema/type check in `e` can fail, so a rewrite may remove such
  /// checks (∅-pruning removes the binary operator that performed them).
  bool RuntimeSchemaProvable(const Expr& e) const {
    switch (e.kind()) {
      case Expr::Kind::kConst:
        return true;
      case Expr::Kind::kRollback: {
        const AbsRelation* rel = facts_->Find(e.relation_name());
        if (rel == nullptr) return false;
        const Schema* observed = rel->ProvableObservedSchemaAt(e.rollback_txn());
        return observed != nullptr && *observed == rel->schema;
      }
      case Expr::Kind::kBinary:
        return RuntimeSchemaProvable(e.left()) &&
               RuntimeSchemaProvable(e.right());
      default:
        return RuntimeSchemaProvable(e.left());
    }
  }

  /// True when evaluating `e` cannot fail for value-dependent reasons once
  /// static analysis accepted it and RuntimeSchemaProvable holds: extend
  /// (scalar arithmetic can divide by zero), summarize and delta
  /// (value-dependent domain checks) are the failure sources. Only such
  /// subtrees may be discarded without masking an error.
  bool DiscardSafe(const Expr& e) const {
    switch (e.kind()) {
      case Expr::Kind::kConst:
      case Expr::Kind::kRollback:
        return true;
      case Expr::Kind::kExtend:
      case Expr::Kind::kSummarize:
      case Expr::Kind::kDelta:
        return false;
      case Expr::Kind::kBinary:
        return DiscardSafe(e.left()) && DiscardSafe(e.right());
      default:
        return DiscardSafe(e.left());
    }
  }

  static bool IsEmptyConst(const Expr& e) {
    if (e.kind() != Expr::Kind::kConst) return false;
    return std::visit([](const auto& s) { return s.empty(); }, e.constant());
  }

  /// ∅-pruning of binary operators with a provably-empty operand.
  std::optional<Expr> RewriteEmptyOperand(const Expr& expr) {
    const Expr lhs = expr.left();
    const Expr rhs = expr.right();
    const bool lhs_empty = IsEmptyConst(lhs);
    const bool rhs_empty = IsEmptyConst(rhs);
    if (!lhs_empty && !rhs_empty) return std::nullopt;
    auto type = Analyze(expr, catalog_);
    if (!type.ok() || !RuntimeSchemaProvable(expr)) return std::nullopt;
    const auto empty_result = [&type]() -> Expr {
      if (type->kind == StateKind::kHistorical) {
        return Expr::Const(HistoricalState::Empty(type->schema));
      }
      return Expr::Const(SnapshotState::Empty(type->schema));
    };
    switch (expr.op()) {
      case BinaryOp::kUnion:
        // Nothing value-bearing is discarded: ∅ contributes no tuples.
        if (lhs_empty) return rhs;
        return lhs;
      case BinaryOp::kMinus:
        if (rhs_empty) return lhs;  // E − ∅ → E
        // ∅ − E → ∅ discards E.
        return DiscardSafe(rhs) ? std::optional<Expr>(lhs) : std::nullopt;
      case BinaryOp::kIntersect:
        if (lhs_empty) {
          return DiscardSafe(rhs) ? std::optional<Expr>(lhs) : std::nullopt;
        }
        return DiscardSafe(lhs) ? std::optional<Expr>(rhs) : std::nullopt;
      case BinaryOp::kTimes:
      case BinaryOp::kJoin:
        // ∅ × E and ∅ ⋈ E are empty over the combined scheme.
        if (DiscardSafe(lhs_empty ? rhs : lhs)) return empty_result();
        return std::nullopt;
    }
    return std::nullopt;
  }

  std::optional<Expr> RewriteSelect(const Expr& expr) {
    Predicate pred = SimplifyPredicate(expr.predicate());
    const Expr child = expr.left();

    // σ_true(E) → E.
    if (pred.IsTrueLiteral()) return child;

    // σ_false(E) → empty constant of E's scheme (needs a typeable child).
    if (pred.IsFalseLiteral()) {
      auto type = Analyze(child, catalog_);
      if (type.ok()) {
        if (type->kind == StateKind::kSnapshot) {
          return Expr::Const(SnapshotState::Empty(type->schema));
        }
        return Expr::Const(HistoricalState::Empty(type->schema));
      }
      return std::nullopt;
    }

    // Simplification changed the predicate? Re-anchor and continue.
    if (!(pred == expr.predicate())) {
      return Expr::Select(std::move(pred), child);
    }

    switch (child.kind()) {
      case Expr::Kind::kSelect:
        // σ-merge.
        return Expr::Select(Predicate::And(pred, child.predicate()),
                            child.left());
      case Expr::Kind::kBinary:
        switch (child.op()) {
          case BinaryOp::kUnion:
          case BinaryOp::kMinus:
            // σ distributes over ∪ and −.
            return Expr::Binary(child.op(),
                                Expr::Select(pred, child.left()),
                                Expr::Select(pred, child.right()));
          case BinaryOp::kTimes:
            return PushSelectThroughProduct(pred, child);
          default:
            return std::nullopt;
        }
      default:
        return std::nullopt;
    }
  }

  std::optional<Expr> PushSelectThroughProduct(const Predicate& pred,
                                               const Expr& product) {
    auto lhs_type = Analyze(product.left(), catalog_);
    auto rhs_type = Analyze(product.right(), catalog_);
    if (!lhs_type.ok() || !rhs_type.ok()) return std::nullopt;

    std::vector<Predicate> lhs_conj, rhs_conj, mixed;
    for (const Predicate& conjunct : SplitConjuncts(pred)) {
      const std::set<std::string> names = conjunct.AttributeNames();
      if (Covers(lhs_type->schema, names)) {
        lhs_conj.push_back(conjunct);
      } else if (Covers(rhs_type->schema, names)) {
        rhs_conj.push_back(conjunct);
      } else {
        mixed.push_back(conjunct);
      }
    }
    if (lhs_conj.empty() && rhs_conj.empty()) return std::nullopt;

    Expr lhs = lhs_conj.empty()
                   ? product.left()
                   : Expr::Select(AndAll(lhs_conj), product.left());
    Expr rhs = rhs_conj.empty()
                   ? product.right()
                   : Expr::Select(AndAll(rhs_conj), product.right());
    Expr pushed = Expr::Binary(BinaryOp::kTimes, std::move(lhs),
                               std::move(rhs));
    if (mixed.empty()) return pushed;
    return Expr::Select(AndAll(mixed), std::move(pushed));
  }

  std::optional<Expr> RewriteProject(const Expr& expr) {
    const Expr child = expr.left();
    if (child.kind() == Expr::Kind::kProject) {
      // π-absorb: the outer list is necessarily a subset of the inner one
      // in well-typed expressions.
      return Expr::Project(expr.attributes(), child.left());
    }
    // π over the full scheme is the identity.
    auto type = Analyze(child, catalog_);
    if (type.ok() && expr.attributes() == type->schema.Names()) {
      return child;
    }
    return std::nullopt;
  }

  const Catalog& catalog_;
  const AbsState* facts_;
  /// Relation-free expressions never touch the database; a shared empty
  /// one satisfies EvalExpr's signature for constant folding.
  Database empty_db_;
  int applications_ = 0;
};

Expr RunToFixpoint(Rewriter& rewriter, const Expr& expr, RewriteStats* stats) {
  Expr current = expr;
  int passes = 0;
  for (; passes < 8; ++passes) {
    Expr next = rewriter.Rewrite(current);
    if (next == current) break;
    current = std::move(next);
  }
  if (stats != nullptr) {
    stats->passes += passes;
    stats->applications += rewriter.applications();
  }
  return current;
}

}  // namespace

lang::Expr Optimize(const lang::Expr& expr, const lang::Catalog& catalog,
                    RewriteStats* stats) {
  Rewriter rewriter(catalog);
  return RunToFixpoint(rewriter, expr, stats);
}

lang::Expr OptimizeWithFacts(const lang::Expr& expr,
                             const lang::Catalog& catalog,
                             const lang::AbsState& facts,
                             RewriteStats* stats) {
  Rewriter rewriter(catalog, &facts);
  return RunToFixpoint(rewriter, expr, stats);
}

lang::Program OptimizeProgram(const lang::Program& program,
                              lang::Catalog catalog, lang::AbsState initial,
                              RewriteStats* stats) {
  // Mirror CheckProgram's error mask so the interpreter treats rejected
  // statements as committing nothing.
  std::vector<bool> errors(program.size(), false);
  {
    Catalog scratch = catalog;
    for (size_t i = 0; i < program.size(); ++i) {
      errors[i] = !AnalyzeStmt(program[i], scratch).ok();
      (void)scratch.Apply(program[i]);
    }
  }
  const std::vector<AbsState> states =
      lang::Interpret(program, std::move(initial), &errors);

  lang::Program out = program;
  for (size_t i = 0; i < out.size(); ++i) {
    if (!errors[i]) {
      if (auto* modify = std::get_if<lang::ModifyStateStmt>(&out[i])) {
        modify->expr = OptimizeWithFacts(modify->expr, catalog, states[i],
                                         stats);
      } else if (auto* show = std::get_if<lang::ShowStmt>(&out[i])) {
        show->expr = OptimizeWithFacts(show->expr, catalog, states[i], stats);
      }
    }
    (void)catalog.Apply(out[i]);
  }
  return out;
}

}  // namespace ttra::optimizer
