#include "optimizer/rewriter.h"

#include <algorithm>

namespace ttra::optimizer {

namespace {

using lang::Analyze;
using lang::BinaryOp;
using lang::Catalog;
using lang::Expr;
using lang::ExprType;
using lang::StateKind;

bool Covers(const Schema& schema, const std::set<std::string>& names) {
  return std::all_of(names.begin(), names.end(), [&schema](const auto& n) {
    return schema.IndexOf(n).has_value();
  });
}

}  // namespace

Predicate SimplifyPredicate(const Predicate& p) {
  switch (p.kind()) {
    case Predicate::Kind::kConst:
    case Predicate::Kind::kComparison:
      return p;
    case Predicate::Kind::kAnd: {
      Predicate l = SimplifyPredicate(p.left());
      Predicate r = SimplifyPredicate(p.right());
      if (l.IsFalseLiteral() || r.IsFalseLiteral()) return Predicate::False();
      if (l.IsTrueLiteral()) return r;
      if (r.IsTrueLiteral()) return l;
      return Predicate::And(std::move(l), std::move(r));
    }
    case Predicate::Kind::kOr: {
      Predicate l = SimplifyPredicate(p.left());
      Predicate r = SimplifyPredicate(p.right());
      if (l.IsTrueLiteral() || r.IsTrueLiteral()) return Predicate::True();
      if (l.IsFalseLiteral()) return r;
      if (r.IsFalseLiteral()) return l;
      return Predicate::Or(std::move(l), std::move(r));
    }
    case Predicate::Kind::kNot: {
      Predicate inner = SimplifyPredicate(p.left());
      if (inner.IsTrueLiteral()) return Predicate::False();
      if (inner.IsFalseLiteral()) return Predicate::True();
      if (inner.kind() == Predicate::Kind::kNot) return inner.left();
      return Predicate::Not(std::move(inner));
    }
  }
  return p;
}

std::vector<Predicate> SplitConjuncts(const Predicate& p) {
  if (p.kind() == Predicate::Kind::kAnd) {
    std::vector<Predicate> conjuncts = SplitConjuncts(p.left());
    std::vector<Predicate> right = SplitConjuncts(p.right());
    conjuncts.insert(conjuncts.end(), right.begin(), right.end());
    return conjuncts;
  }
  return {p};
}

Predicate AndAll(const std::vector<Predicate>& conjuncts) {
  if (conjuncts.empty()) return Predicate::True();
  Predicate result = conjuncts.front();
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Predicate::And(std::move(result), conjuncts[i]);
  }
  return result;
}

namespace {

class Rewriter {
 public:
  explicit Rewriter(const Catalog& catalog) : catalog_(catalog) {}

  Expr Rewrite(const Expr& expr) {
    // Bottom-up, then local rules at this node to a (bounded) fixpoint.
    Expr node = RewriteChildren(expr);
    for (int i = 0; i < 8; ++i) {
      auto rewritten = ApplyLocal(node);
      if (!rewritten.has_value()) break;
      ++applications_;
      node = RewriteChildren(*rewritten);
    }
    return node;
  }

  int applications() const { return applications_; }

 private:
  Expr RewriteChildren(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kConst:
      case Expr::Kind::kRollback:
        return expr;
      case Expr::Kind::kBinary:
        return Expr::Binary(expr.op(), Rewrite(expr.left()),
                            Rewrite(expr.right()));
      case Expr::Kind::kProject:
        return Expr::Project(expr.attributes(), Rewrite(expr.left()));
      case Expr::Kind::kSelect:
        return Expr::Select(expr.predicate(), Rewrite(expr.left()));
      case Expr::Kind::kRename:
        return Expr::Rename(expr.rename_from(), expr.rename_to(),
                            Rewrite(expr.left()));
      case Expr::Kind::kExtend:
        return Expr::Extend(expr.definitions(), Rewrite(expr.left()));
      case Expr::Kind::kDelta:
        return Expr::Delta(expr.temporal_pred(), expr.temporal_projection(),
                           Rewrite(expr.left()));
      case Expr::Kind::kSummarize:
        return Expr::Summarize(expr.group_attrs(), expr.aggregates(),
                               Rewrite(expr.left()));
    }
    return expr;
  }

  /// One local rewrite at the root of `expr`, or nullopt if none applies.
  std::optional<Expr> ApplyLocal(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kSelect:
        return RewriteSelect(expr);
      case Expr::Kind::kProject:
        return RewriteProject(expr);
      case Expr::Kind::kDelta:
        if (expr.temporal_pred().IsTrueLiteral() &&
            expr.temporal_projection().IsIdentity()) {
          return expr.left();
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  std::optional<Expr> RewriteSelect(const Expr& expr) {
    Predicate pred = SimplifyPredicate(expr.predicate());
    const Expr child = expr.left();

    // σ_true(E) → E.
    if (pred.IsTrueLiteral()) return child;

    // σ_false(E) → empty constant of E's scheme (needs a typeable child).
    if (pred.IsFalseLiteral()) {
      auto type = Analyze(child, catalog_);
      if (type.ok()) {
        if (type->kind == StateKind::kSnapshot) {
          return Expr::Const(SnapshotState::Empty(type->schema));
        }
        return Expr::Const(HistoricalState::Empty(type->schema));
      }
      return std::nullopt;
    }

    // Simplification changed the predicate? Re-anchor and continue.
    if (!(pred == expr.predicate())) {
      return Expr::Select(std::move(pred), child);
    }

    switch (child.kind()) {
      case Expr::Kind::kSelect:
        // σ-merge.
        return Expr::Select(Predicate::And(pred, child.predicate()),
                            child.left());
      case Expr::Kind::kBinary:
        switch (child.op()) {
          case BinaryOp::kUnion:
          case BinaryOp::kMinus:
            // σ distributes over ∪ and −.
            return Expr::Binary(child.op(),
                                Expr::Select(pred, child.left()),
                                Expr::Select(pred, child.right()));
          case BinaryOp::kTimes:
            return PushSelectThroughProduct(pred, child);
          default:
            return std::nullopt;
        }
      default:
        return std::nullopt;
    }
  }

  std::optional<Expr> PushSelectThroughProduct(const Predicate& pred,
                                               const Expr& product) {
    auto lhs_type = Analyze(product.left(), catalog_);
    auto rhs_type = Analyze(product.right(), catalog_);
    if (!lhs_type.ok() || !rhs_type.ok()) return std::nullopt;

    std::vector<Predicate> lhs_conj, rhs_conj, mixed;
    for (const Predicate& conjunct : SplitConjuncts(pred)) {
      const std::set<std::string> names = conjunct.AttributeNames();
      if (Covers(lhs_type->schema, names)) {
        lhs_conj.push_back(conjunct);
      } else if (Covers(rhs_type->schema, names)) {
        rhs_conj.push_back(conjunct);
      } else {
        mixed.push_back(conjunct);
      }
    }
    if (lhs_conj.empty() && rhs_conj.empty()) return std::nullopt;

    Expr lhs = lhs_conj.empty()
                   ? product.left()
                   : Expr::Select(AndAll(lhs_conj), product.left());
    Expr rhs = rhs_conj.empty()
                   ? product.right()
                   : Expr::Select(AndAll(rhs_conj), product.right());
    Expr pushed = Expr::Binary(BinaryOp::kTimes, std::move(lhs),
                               std::move(rhs));
    if (mixed.empty()) return pushed;
    return Expr::Select(AndAll(mixed), std::move(pushed));
  }

  std::optional<Expr> RewriteProject(const Expr& expr) {
    const Expr child = expr.left();
    if (child.kind() == Expr::Kind::kProject) {
      // π-absorb: the outer list is necessarily a subset of the inner one
      // in well-typed expressions.
      return Expr::Project(expr.attributes(), child.left());
    }
    // π over the full scheme is the identity.
    auto type = Analyze(child, catalog_);
    if (type.ok() && expr.attributes() == type->schema.Names()) {
      return child;
    }
    return std::nullopt;
  }

  const Catalog& catalog_;
  int applications_ = 0;
};

}  // namespace

lang::Expr Optimize(const lang::Expr& expr, const lang::Catalog& catalog,
                    RewriteStats* stats) {
  Rewriter rewriter(catalog);
  Expr current = expr;
  int passes = 0;
  for (; passes < 8; ++passes) {
    Expr next = rewriter.Rewrite(current);
    if (next == current) break;
    current = std::move(next);
  }
  if (stats != nullptr) {
    stats->passes = passes;
    stats->applications = rewriter.applications();
  }
  return current;
}

}  // namespace ttra::optimizer
