#ifndef TTRA_OPTIMIZER_REWRITER_H_
#define TTRA_OPTIMIZER_REWRITER_H_

#include <vector>

#include "lang/analyzer.h"
#include "lang/ast.h"

namespace ttra::optimizer {

/// Rule-based rewriter exploiting exactly the algebraic properties the
/// paper claims are preserved by the transaction-time extension (§2, §5):
/// the classical select/project identities keep holding below and around
/// ρ, so "the full application of previously developed algebraic
/// optimizations" remains available. The property suite (experiment E1)
/// checks every rewrite for semantic equivalence on randomized inputs.
///
/// Rules applied to a fixpoint (bounded):
///  * σ-merge:        σ_F(σ_G(E))         → σ_{F∧G}(E)
///  * σ-over-∪:       σ_F(E1 ∪ E2)        → σ_F(E1) ∪ σ_F(E2)
///  * σ-over-−:       σ_F(E1 − E2)        → σ_F(E1) − σ_F(E2)
///  * σ-over-×:       σ_{F1∧F2∧Fm}(E1×E2) → σ_{Fm}(σ_{F1}(E1) × σ_{F2}(E2))
///                     (conjuncts routed to the side whose scheme covers
///                      their attributes; mixed conjuncts stay on top)
///  * π-absorb:       π_X(π_Y(E))         → π_X(E)
///  * σ/δ identities: σ_true(E) → E, δ_{true, valid}(E) → E
///  * σ_false(E)      → the empty constant of E's scheme (needs catalog)
///  * predicate simplification (¬¬p, p∧true, p∧false, p∨true, ...)
///
/// All rules are kind-agnostic: they fire for snapshot and historical
/// operands alike, which is the paper's orthogonality claim in action.

struct RewriteStats {
  int passes = 0;
  int applications = 0;
};

/// Simplifies a predicate by constant propagation and double-negation
/// elimination. Semantics-preserving for all inputs.
Predicate SimplifyPredicate(const Predicate& predicate);

/// Splits a predicate into its top-level conjuncts.
std::vector<Predicate> SplitConjuncts(const Predicate& predicate);

/// Rebuilds a conjunction (empty input → true).
Predicate AndAll(const std::vector<Predicate>& conjuncts);

/// Rewrites the expression to a cheaper equivalent form. The catalog is
/// used to derive schemas (needed by σ-over-× routing and σ_false
/// folding); unknown relations make those rules no-ops rather than errors.
lang::Expr Optimize(const lang::Expr& expr, const lang::Catalog& catalog,
                    RewriteStats* stats = nullptr);

}  // namespace ttra::optimizer

#endif  // TTRA_OPTIMIZER_REWRITER_H_
