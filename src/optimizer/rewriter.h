#ifndef TTRA_OPTIMIZER_REWRITER_H_
#define TTRA_OPTIMIZER_REWRITER_H_

#include <vector>

#include "lang/absint.h"
#include "lang/analyzer.h"
#include "lang/ast.h"

namespace ttra::optimizer {

/// Rule-based rewriter exploiting exactly the algebraic properties the
/// paper claims are preserved by the transaction-time extension (§2, §5):
/// the classical select/project identities keep holding below and around
/// ρ, so "the full application of previously developed algebraic
/// optimizations" remains available. The property suite (experiment E1)
/// checks every rewrite for semantic equivalence on randomized inputs.
///
/// Rules applied to a fixpoint (bounded):
///  * σ-merge:        σ_F(σ_G(E))         → σ_{F∧G}(E)
///  * σ-over-∪:       σ_F(E1 ∪ E2)        → σ_F(E1) ∪ σ_F(E2)
///  * σ-over-−:       σ_F(E1 − E2)        → σ_F(E1) − σ_F(E2)
///  * σ-over-×:       σ_{F1∧F2∧Fm}(E1×E2) → σ_{Fm}(σ_{F1}(E1) × σ_{F2}(E2))
///                     (conjuncts routed to the side whose scheme covers
///                      their attributes; mixed conjuncts stay on top)
///  * π-absorb:       π_X(π_Y(E))         → π_X(E)
///  * σ/δ identities: σ_true(E) → E, δ_{true, valid}(E) → E
///  * σ_false(E)      → the empty constant of E's scheme (needs catalog)
///  * predicate simplification (¬¬p, p∧true, p∧false, p∨true, ...)
///
/// All rules are kind-agnostic: they fire for snapshot and historical
/// operands alike, which is the paper's orthogonality claim in action.

struct RewriteStats {
  int passes = 0;
  int applications = 0;
};

/// Simplifies a predicate by constant propagation and double-negation
/// elimination. Semantics-preserving for all inputs.
Predicate SimplifyPredicate(const Predicate& predicate);

/// Splits a predicate into its top-level conjuncts.
std::vector<Predicate> SplitConjuncts(const Predicate& predicate);

/// Rebuilds a conjunction (empty input → true).
Predicate AndAll(const std::vector<Predicate>& conjuncts);

/// Rewrites the expression to a cheaper equivalent form. The catalog is
/// used to derive schemas (needed by σ-over-× routing and σ_false
/// folding); unknown relations make those rules no-ops rather than errors.
lang::Expr Optimize(const lang::Expr& expr, const lang::Catalog& catalog,
                    RewriteStats* stats = nullptr);

// --- Facts-driven rewrites (abstract interpretation consumer) ---------------
//
// OptimizeWithFacts layers four rewrite families over Optimize, each
// justified by the interpreter's facts (DESIGN.md §10):
//  * ρ-empty fold:   ρ/ρ̂(I, N) with the relation provably recording no
//                    state at or before N → the empty constant FINDSTATE
//                    would return (only when the observed scheme is
//                    provably the current one).
//  * ρ-∞ normalize:  ρ/ρ̂(I, N) with N provably at/after the relation's
//                    last recorded state → ρ/ρ̂(I, ∞), which every storage
//                    engine answers in O(1) (no backward replay).
//  * const fold:     a relation-free subexpression whose evaluation
//                    succeeds → its value as a constant (TTRA-W009's
//                    rewrite; evaluation failure keeps the expression so
//                    run-time errors are preserved).
//  * ∅-pruning:      E ∪ ∅ → E, ∅ − E → ∅, E − ∅ → E, ∅ ∩ E → ∅,
//                    ∅ × E → ∅, ∅ ⋈ E → ∅ (and mirrored) — applied only
//                    when run-time schema checks are provably redundant
//                    and the discarded side has no value-dependent
//                    failure source (extend/summarize/delta).
//
// Soundness contract: `facts` must abstract the database state the
// expression evaluates against — AbsStateFromDatabase(db) right before
// execution, or Interpret()'s per-statement pre-state for whole programs
// (the latter is exact for strict execution; see DESIGN.md §10). The
// oracle test replays rewritten vs. original programs on every storage
// engine to enforce this.
lang::Expr OptimizeWithFacts(const lang::Expr& expr,
                             const lang::Catalog& catalog,
                             const lang::AbsState& facts,
                             RewriteStats* stats = nullptr);

/// Whole-program optimization: runs the abstract interpreter once and
/// rewrites every modify_state/show expression against its per-statement
/// facts, threading catalog effects. Statements the analyzer rejects are
/// left untouched (rewrites must not mask static errors).
lang::Program OptimizeProgram(const lang::Program& program,
                              lang::Catalog catalog, lang::AbsState initial,
                              RewriteStats* stats = nullptr);

}  // namespace ttra::optimizer

#endif  // TTRA_OPTIMIZER_REWRITER_H_
