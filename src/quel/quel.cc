#include "quel/quel.h"

#include "lang/parser.h"
#include "lang/token.h"

namespace ttra::quel {

namespace {

using lang::Expr;
using lang::ScalarExpr;
using lang::Token;
using lang::TokenKind;

/// Quel's verbs are ordinary identifiers to the shared lexer (they are not
/// reserved words of the algebraic language), so the parser matches on
/// identifier text.
class QuelParser {
 public:
  explicit QuelParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<QuelStmt>> ParseAll() {
    std::vector<QuelStmt> stmts;
    while (!AtEnd()) {
      TTRA_ASSIGN_OR_RETURN(QuelStmt stmt, ParseOne());
      stmts.push_back(std::move(stmt));
      while (CheckKind(TokenKind::kSemicolon)) Advance();
    }
    if (stmts.empty()) {
      return ParseError("expected at least one quel statement");
    }
    return stmts;
  }

  Result<QuelStmt> ParseSingle() {
    TTRA_ASSIGN_OR_RETURN(QuelStmt stmt, ParseOne());
    while (CheckKind(TokenKind::kSemicolon)) Advance();
    if (!AtEnd()) {
      return ErrorAt(Peek(), "expected end of statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool CheckKind(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckWord(std::string_view word) const {
    return (Peek().kind == TokenKind::kIdentifier ||
            Peek().kind == TokenKind::kKeyword) &&
           Peek().text == word;
  }

  Status ErrorAt(const Token& token, std::string_view message) const {
    return ParseError(std::string(message) + ", found " + token.Describe() +
                      " at line " + std::to_string(token.line) + ", column " +
                      std::to_string(token.column));
  }

  Status ExpectWord(std::string_view word) {
    if (!CheckWord(word)) {
      return ErrorAt(Peek(), "expected '" + std::string(word) + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status Expect(TokenKind kind) {
    if (!CheckKind(kind)) {
      return ErrorAt(Peek(),
                     "expected " + std::string(lang::TokenKindName(kind)));
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!CheckKind(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected " + std::string(what));
    }
    return Advance().text;
  }

  Result<QuelStmt> ParseOne() {
    if (CheckWord("append")) return ParseAppend();
    if (CheckWord("delete")) return ParseDelete();
    if (CheckWord("replace")) return ParseReplace();
    if (CheckWord("retrieve")) return ParseRetrieve();
    return ErrorAt(Peek(),
                   "expected 'append', 'delete', 'replace' or 'retrieve'");
  }

  Result<std::vector<std::pair<std::string, ScalarExpr>>> ParseAssignments() {
    std::vector<std::pair<std::string, ScalarExpr>> assignments;
    for (;;) {
      TTRA_ASSIGN_OR_RETURN(std::string name,
                            ExpectIdentifier("attribute name"));
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      TTRA_ASSIGN_OR_RETURN(ScalarExpr value,
                            lang::ParseScalarTokens(tokens_, pos_));
      assignments.emplace_back(std::move(name), std::move(value));
      if (!CheckKind(TokenKind::kComma)) break;
      Advance();
    }
    return assignments;
  }

  Result<Predicate> ParseWhere() {
    if (!CheckWord("where")) return Predicate::True();
    Advance();
    return lang::ParsePredicateTokens(tokens_, pos_);
  }

  Result<QuelStmt> ParseAppend() {
    Advance();  // append
    TTRA_RETURN_IF_ERROR(ExpectWord("to"));
    AppendStmt stmt;
    TTRA_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TTRA_ASSIGN_OR_RETURN(stmt.values, ParseAssignments());
    TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return QuelStmt(std::move(stmt));
  }

  Result<QuelStmt> ParseDelete() {
    Advance();  // delete
    DeleteStmt stmt;
    TTRA_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("relation name"));
    TTRA_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return QuelStmt(std::move(stmt));
  }

  Result<QuelStmt> ParseReplace() {
    Advance();  // replace
    ReplaceStmt stmt;
    TTRA_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("relation name"));
    TTRA_RETURN_IF_ERROR(ExpectWord("set"));
    TTRA_ASSIGN_OR_RETURN(stmt.assignments, ParseAssignments());
    TTRA_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return QuelStmt(std::move(stmt));
  }

  Result<QuelStmt> ParseRetrieve() {
    Advance();  // retrieve
    RetrieveStmt stmt;
    TTRA_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("relation name"));
    if (CheckKind(TokenKind::kLParen)) {
      Advance();
      for (;;) {
        TTRA_ASSIGN_OR_RETURN(std::string name,
                              ExpectIdentifier("attribute name"));
        stmt.attributes.push_back(std::move(name));
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    // Optional aggregate clause.
    if (CheckWord("compute")) {
      Advance();
      if (!stmt.attributes.empty()) {
        return ErrorAt(Peek(),
                       "retrieve cannot combine an attribute list with "
                       "'compute'");
      }
      for (;;) {
        AggregateDef def;
        TTRA_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("aggregate name"));
        TTRA_RETURN_IF_ERROR(Expect(TokenKind::kEq));
        bool parsed = false;
        for (std::string_view func : {"count", "sum", "min", "max", "avg"}) {
          if (CheckWord(func)) {
            Advance();
            def.func = *ParseAggFunc(func);
            parsed = true;
            break;
          }
        }
        if (!parsed) return ErrorAt(Peek(), "expected an aggregate function");
        if (def.func == AggFunc::kCount) {
          if (CheckKind(TokenKind::kLParen)) {
            Advance();
            TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          }
        } else {
          TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
          TTRA_ASSIGN_OR_RETURN(def.attr,
                                ExpectIdentifier("aggregated attribute"));
          TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        }
        stmt.compute.push_back(std::move(def));
        if (!CheckKind(TokenKind::kComma)) break;
        Advance();
      }
      if (CheckWord("by")) {
        Advance();
        for (;;) {
          TTRA_ASSIGN_OR_RETURN(std::string name,
                                ExpectIdentifier("grouping attribute"));
          stmt.by.push_back(std::move(name));
          if (!CheckKind(TokenKind::kComma)) break;
          Advance();
        }
      }
    }
    // Optional temporal clauses, in either order.
    for (;;) {
      if (CheckWord("as") && !stmt.as_of.has_value()) {
        Advance();
        TTRA_RETURN_IF_ERROR(ExpectWord("of"));
        if (!CheckKind(TokenKind::kIntLiteral)) {
          return ErrorAt(Peek(), "expected a transaction number after 'as of'");
        }
        stmt.as_of = static_cast<TransactionNumber>(Advance().int_value);
        continue;
      }
      if (CheckWord("when") && !stmt.when_overlaps.has_value()) {
        Advance();
        TTRA_RETURN_IF_ERROR(ExpectWord("overlaps"));
        TTRA_ASSIGN_OR_RETURN(TemporalElement element, ParseElement());
        stmt.when_overlaps = std::move(element);
        continue;
      }
      break;
    }
    TTRA_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return QuelStmt(std::move(stmt));
  }

  // Temporal-element literal: interval ('u' interval)* with the language's
  // [a, b) syntax (end may be 'inf').
  Result<TemporalElement> ParseElement() {
    std::vector<Interval> intervals;
    for (;;) {
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
      TTRA_ASSIGN_OR_RETURN(Chronon begin, ParseChronon(false));
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      TTRA_ASSIGN_OR_RETURN(Chronon end, ParseChronon(true));
      TTRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      intervals.push_back(Interval::Make(begin, end));
      if (!CheckWord("u")) break;
      Advance();
    }
    return TemporalElement::Of(std::move(intervals));
  }

  Result<Chronon> ParseChronon(bool allow_inf) {
    if (allow_inf && CheckWord("inf")) {
      Advance();
      return kChrononMax;
    }
    bool negative = false;
    if (CheckKind(TokenKind::kMinusSign)) {
      negative = true;
      Advance();
    }
    if (!CheckKind(TokenKind::kIntLiteral)) {
      return ErrorAt(Peek(), "expected a chronon");
    }
    const int64_t value = Advance().int_value;
    return negative ? -value : value;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// The current state of the target relation: ρ(R, ∞).
Expr CurrentState(const std::string& relation, const lang::Catalog& catalog) {
  const lang::Catalog::Entry* entry = catalog.Find(relation);
  const bool historical =
      entry != nullptr && !HoldsSnapshotStates(entry->type);
  return Expr::Rollback(relation, std::nullopt, historical);
}

Result<lang::Stmt> CompileAppend(const AppendStmt& stmt,
                                 const lang::Catalog& catalog) {
  const lang::Catalog::Entry* entry = catalog.Find(stmt.relation);
  if (entry == nullptr) {
    return UnknownIdentifierError("append to undefined relation: " +
                                  stmt.relation);
  }
  if (!HoldsSnapshotStates(entry->type)) {
    return TypeMismatchError(
        "quel append targets snapshot/rollback relations; '" + stmt.relation +
        "' is " + std::string(RelationTypeName(entry->type)));
  }
  // Build the appended tuple in scheme order.
  const Schema& schema = entry->schema;
  std::vector<Value> values(schema.size());
  std::vector<bool> assigned(schema.size(), false);
  const Schema empty_schema;
  const Tuple empty_tuple;
  for (const auto& [name, scalar] : stmt.values) {
    auto index = schema.IndexOf(name);
    if (!index.has_value()) {
      return SchemaMismatchError("append assigns unknown attribute '" + name +
                                 "' of relation " + stmt.relation);
    }
    if (assigned[*index]) {
      return InvalidArgumentError("append assigns attribute '" + name +
                                  "' twice");
    }
    if (!scalar.AttributeNames().empty()) {
      return InvalidArgumentError(
          "append values must be constant expressions");
    }
    TTRA_ASSIGN_OR_RETURN(Value value, scalar.Eval(empty_schema, empty_tuple));
    values[*index] = std::move(value);
    assigned[*index] = true;
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    if (!assigned[i]) {
      return InvalidArgumentError("append leaves attribute '" +
                                  schema.attribute(i).name + "' unassigned");
    }
  }
  TTRA_ASSIGN_OR_RETURN(
      SnapshotState constant,
      SnapshotState::Make(schema, {Tuple(std::move(values))}));
  Expr expr = Expr::Binary(lang::BinaryOp::kUnion,
                           CurrentState(stmt.relation, catalog),
                           Expr::Const(std::move(constant)));
  return lang::Stmt(lang::ModifyStateStmt{stmt.relation, std::move(expr)});
}

Result<lang::Stmt> CompileDelete(const DeleteStmt& stmt,
                                 const lang::Catalog& catalog) {
  if (catalog.Find(stmt.relation) == nullptr) {
    return UnknownIdentifierError("delete from undefined relation: " +
                                  stmt.relation);
  }
  Expr expr = Expr::Select(Predicate::Not(stmt.where),
                           CurrentState(stmt.relation, catalog));
  return lang::Stmt(lang::ModifyStateStmt{stmt.relation, std::move(expr)});
}

Result<lang::Stmt> CompileReplace(const ReplaceStmt& stmt,
                                  const lang::Catalog& catalog) {
  const lang::Catalog::Entry* entry = catalog.Find(stmt.relation);
  if (entry == nullptr) {
    return UnknownIdentifierError("replace in undefined relation: " +
                                  stmt.relation);
  }
  for (const auto& [name, scalar] : stmt.assignments) {
    if (!entry->schema.IndexOf(name).has_value()) {
      return SchemaMismatchError("replace assigns unknown attribute '" +
                                 name + "' of relation " + stmt.relation);
    }
  }
  Expr current = CurrentState(stmt.relation, catalog);
  Expr untouched = Expr::Select(Predicate::Not(stmt.where), current);
  Expr updated =
      Expr::Extend(stmt.assignments, Expr::Select(stmt.where, current));
  Expr expr = Expr::Binary(lang::BinaryOp::kUnion, std::move(untouched),
                           std::move(updated));
  return lang::Stmt(lang::ModifyStateStmt{stmt.relation, std::move(expr)});
}

Result<lang::Stmt> CompileRetrieve(const RetrieveStmt& stmt,
                                   const lang::Catalog& catalog) {
  const lang::Catalog::Entry* entry = catalog.Find(stmt.relation);
  if (entry == nullptr) {
    return UnknownIdentifierError("retrieve from undefined relation: " +
                                  stmt.relation);
  }
  const bool historical = !HoldsSnapshotStates(entry->type);
  // `as of N` → ρ(R, N) / ρ̂(R, N); otherwise the current state.
  if (stmt.as_of.has_value() && !RetainsHistory(entry->type)) {
    return InvalidRollbackError(
        "retrieve ... as of requires a rollback or temporal relation; '" +
        stmt.relation + "' is " +
        std::string(RelationTypeName(entry->type)));
  }
  Expr expr = Expr::Rollback(stmt.relation, stmt.as_of, historical);
  // `when overlaps E` → δ with overlap selection and element projection.
  if (stmt.when_overlaps.has_value()) {
    if (!historical) {
      return TypeMismatchError(
          "retrieve ... when overlaps requires valid time; '" +
          stmt.relation + "' is " +
          std::string(RelationTypeName(entry->type)));
    }
    TemporalExpr window = TemporalExpr::Const(*stmt.when_overlaps);
    expr = Expr::Delta(
        TemporalPred::Overlaps(TemporalExpr::Valid(), window),
        TemporalExpr::Intersect(TemporalExpr::Valid(), window),
        std::move(expr));
  }
  expr = Expr::Select(stmt.where, std::move(expr));
  if (!stmt.compute.empty()) {
    expr = Expr::Summarize(stmt.by, stmt.compute, std::move(expr));
  } else if (!stmt.attributes.empty()) {
    expr = Expr::Project(stmt.attributes, std::move(expr));
  }
  return lang::Stmt(lang::ShowStmt{std::move(expr)});
}

}  // namespace

Result<QuelStmt> ParseQuel(std::string_view source) {
  TTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lang::Tokenize(source));
  return QuelParser(std::move(tokens)).ParseSingle();
}

Result<std::vector<QuelStmt>> ParseQuelProgram(std::string_view source) {
  TTRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lang::Tokenize(source));
  return QuelParser(std::move(tokens)).ParseAll();
}

Result<lang::Stmt> CompileQuel(const QuelStmt& stmt,
                               const lang::Catalog& catalog) {
  return std::visit(
      [&catalog](const auto& s) -> Result<lang::Stmt> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, AppendStmt>) {
          return CompileAppend(s, catalog);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return CompileDelete(s, catalog);
        } else if constexpr (std::is_same_v<T, ReplaceStmt>) {
          return CompileReplace(s, catalog);
        } else {
          static_assert(std::is_same_v<T, RetrieveStmt>);
          return CompileRetrieve(s, catalog);
        }
      },
      stmt);
}

Result<lang::Program> CompileQuelProgram(std::string_view source,
                                         const lang::Catalog& catalog) {
  TTRA_ASSIGN_OR_RETURN(std::vector<QuelStmt> stmts,
                        ParseQuelProgram(source));
  lang::Program program;
  program.reserve(stmts.size());
  for (const QuelStmt& stmt : stmts) {
    TTRA_ASSIGN_OR_RETURN(lang::Stmt compiled, CompileQuel(stmt, catalog));
    program.push_back(std::move(compiled));
  }
  return program;
}

}  // namespace ttra::quel
