#ifndef TTRA_QUEL_QUEL_H_
#define TTRA_QUEL_QUEL_H_

#include <string>
#include <variant>
#include <vector>

#include "lang/analyzer.h"
#include "lang/ast.h"

namespace ttra::quel {

/// The calculus-style update statements the paper names as the motivating
/// front-end (§1 benefit 1, §5): Quel's append / delete / replace, plus a
/// retrieve for round-trips. Each statement compiles to a single
/// modify_state (or show) command of the algebraic language — the mapping
/// the paper says a DBMS would perform.
///
/// Concrete syntax (whitespace-insensitive):
///
///   append to emp (name = "Ed", salary = 20000)
///   delete emp where salary < 1000
///   replace emp set salary = salary + 500 where name = "Ed"
///   retrieve emp                       -- whole current state
///   retrieve emp (name) where salary > 0
///   retrieve emp as of 5               -- transaction-time rollback (ρ)
///   retrieve emp compute n = count, total = sum(salary) by dept
///                                      -- aggregates (summarize operator)
///   retrieve hist when overlaps [0, 10) where name = "Ed"
///                                      -- valid-time slice (δ) on
///                                      -- historical/temporal relations
///
/// `where` clauses use the language's predicate syntax; assignment
/// right-hand sides use its scalar-expression syntax. The `as of` and
/// `when overlaps` clauses are the TQuel-flavoured temporal extensions
/// (Snodgrass 1987, cited by the paper); both compile to ordinary algebra
/// (ρ/ρ̂ and δ), demonstrating that the calculus front-end needs nothing
/// beyond the paper's operators.

struct AppendStmt {
  std::string relation;
  /// One value per assignment; attribute order is free, all attributes of
  /// the target scheme must be covered. RHS must not reference attributes.
  std::vector<std::pair<std::string, lang::ScalarExpr>> values;
};

struct DeleteStmt {
  std::string relation;
  Predicate where;  // defaults to true: delete everything
};

struct ReplaceStmt {
  std::string relation;
  std::vector<std::pair<std::string, lang::ScalarExpr>> assignments;
  Predicate where;
};

struct RetrieveStmt {
  std::string relation;
  std::vector<std::string> attributes;  // empty: all
  Predicate where;
  /// Quel aggregate clause: `compute n = count, total = sum(salary) by
  /// dept`. Compiles to the summarize operator after the where-selection;
  /// mutually exclusive with the attribute list.
  std::vector<AggregateDef> compute;
  std::vector<std::string> by;
  /// TQuel-style transaction-time clause: `as of <txn>` rolls the relation
  /// back before filtering (compiles to ρ(R, txn) / ρ̂(R, txn)). Absent →
  /// current state (∞).
  std::optional<TransactionNumber> as_of;
  /// TQuel-style valid-time clause for historical/temporal relations:
  /// `when overlaps [a, b)` keeps tuples whose valid time intersects the
  /// element and restricts their histories to it (compiles to δ).
  std::optional<TemporalElement> when_overlaps;
};

using QuelStmt =
    std::variant<AppendStmt, DeleteStmt, ReplaceStmt, RetrieveStmt>;

/// Parses one Quel statement.
Result<QuelStmt> ParseQuel(std::string_view source);

/// Parses a ';'-separated sequence of Quel statements.
Result<std::vector<QuelStmt>> ParseQuelProgram(std::string_view source);

/// Compiles a Quel statement to its algebraic command (the provably
/// correct mapping the paper's benefit #1 anticipates):
///
///   append  → modify_state(R, ρ(R, ∞) ∪ {t})
///   delete  → modify_state(R, σ_{¬F}(ρ(R, ∞)))
///   replace → modify_state(R, σ_{¬F}(ρ(R, ∞)) ∪ extend[...](σ_F(ρ(R, ∞))))
///   retrieve → show(π_X(σ_F(ρ(R, ∞))))
///
/// Needs the catalog to type the appended tuple and to validate targets.
Result<lang::Stmt> CompileQuel(const QuelStmt& stmt,
                               const lang::Catalog& catalog);

/// Convenience: parse + compile + return the algebra program.
Result<lang::Program> CompileQuelProgram(std::string_view source,
                                         const lang::Catalog& catalog);

}  // namespace ttra::quel

#endif  // TTRA_QUEL_QUEL_H_
