#include "rollback/commands.h"

namespace ttra {

namespace {

enum CommandTag : uint8_t {
  kTagDefineRelation = 0,
  kTagModifySnapshot = 1,
  kTagModifyHistorical = 2,
  kTagDeleteRelation = 3,
  kTagModifySchema = 4,
};

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string_view s, std::string& out) {
  PutU64(s.size(), out);
  out.append(s);
}

}  // namespace

Status ApplyCommand(Database& db, const Command& command) {
  return std::visit(
      [&db](const auto& cmd) -> Status {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, DefineRelationCmd>) {
          return db.DefineRelation(cmd.name, cmd.type, cmd.schema);
        } else if constexpr (std::is_same_v<T, ModifySnapshotCmd>) {
          return db.ModifyState(cmd.name, cmd.state);
        } else if constexpr (std::is_same_v<T, ModifyHistoricalCmd>) {
          return db.ModifyState(cmd.name, cmd.state);
        } else if constexpr (std::is_same_v<T, DeleteRelationCmd>) {
          return db.DeleteRelation(cmd.name);
        } else {
          static_assert(std::is_same_v<T, ModifySchemaCmd>);
          return db.ModifySchema(cmd.name, cmd.schema);
        }
      },
      command);
}

Status ApplySentence(Database& db, const std::vector<Command>& sentence) {
  Status first_error;
  for (const Command& command : sentence) {
    Status status = ApplyCommand(db, command);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Result<Database> EvalSentence(const std::vector<Command>& sentence,
                              DatabaseOptions options) {
  Database db(options);
  TTRA_RETURN_IF_ERROR(ApplySentence(db, sentence));
  return db;
}

void EncodeCommand(const Command& command, std::string& out) {
  std::visit(
      [&out](const auto& cmd) {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, DefineRelationCmd>) {
          out.push_back(static_cast<char>(kTagDefineRelation));
          PutString(cmd.name, out);
          out.push_back(static_cast<char>(cmd.type));
          EncodeSchema(cmd.schema, out);
        } else if constexpr (std::is_same_v<T, ModifySnapshotCmd>) {
          out.push_back(static_cast<char>(kTagModifySnapshot));
          PutString(cmd.name, out);
          EncodeSnapshotState(cmd.state, out);
        } else if constexpr (std::is_same_v<T, ModifyHistoricalCmd>) {
          out.push_back(static_cast<char>(kTagModifyHistorical));
          PutString(cmd.name, out);
          EncodeHistoricalState(cmd.state, out);
        } else if constexpr (std::is_same_v<T, DeleteRelationCmd>) {
          out.push_back(static_cast<char>(kTagDeleteRelation));
          PutString(cmd.name, out);
        } else {
          static_assert(std::is_same_v<T, ModifySchemaCmd>);
          out.push_back(static_cast<char>(kTagModifySchema));
          PutString(cmd.name, out);
          EncodeSchema(cmd.schema, out);
        }
      },
      command);
}

Result<Command> DecodeCommand(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadByte());
  TTRA_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
  switch (tag) {
    case kTagDefineRelation: {
      TTRA_ASSIGN_OR_RETURN(uint8_t type_tag, reader.ReadByte());
      if (type_tag > static_cast<uint8_t>(RelationType::kTemporal)) {
        return CorruptionError("invalid relation type tag in command");
      }
      TTRA_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(reader));
      return Command(DefineRelationCmd{std::move(name),
                                       static_cast<RelationType>(type_tag),
                                       std::move(schema)});
    }
    case kTagModifySnapshot: {
      TTRA_ASSIGN_OR_RETURN(SnapshotState state, DecodeSnapshotState(reader));
      return Command(ModifySnapshotCmd{std::move(name), std::move(state)});
    }
    case kTagModifyHistorical: {
      TTRA_ASSIGN_OR_RETURN(HistoricalState state,
                            DecodeHistoricalState(reader));
      return Command(ModifyHistoricalCmd{std::move(name), std::move(state)});
    }
    case kTagDeleteRelation:
      return Command(DeleteRelationCmd{std::move(name)});
    case kTagModifySchema: {
      TTRA_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(reader));
      return Command(ModifySchemaCmd{std::move(name), std::move(schema)});
    }
    default:
      return CorruptionError("invalid command tag " + std::to_string(tag));
  }
}

}  // namespace ttra
