#include "rollback/commands.h"

namespace ttra {

Status ApplyCommand(Database& db, const Command& command) {
  return std::visit(
      [&db](const auto& cmd) -> Status {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, DefineRelationCmd>) {
          return db.DefineRelation(cmd.name, cmd.type, cmd.schema);
        } else if constexpr (std::is_same_v<T, ModifySnapshotCmd>) {
          return db.ModifyState(cmd.name, cmd.state);
        } else if constexpr (std::is_same_v<T, ModifyHistoricalCmd>) {
          return db.ModifyState(cmd.name, cmd.state);
        } else if constexpr (std::is_same_v<T, DeleteRelationCmd>) {
          return db.DeleteRelation(cmd.name);
        } else {
          static_assert(std::is_same_v<T, ModifySchemaCmd>);
          return db.ModifySchema(cmd.name, cmd.schema);
        }
      },
      command);
}

Status ApplySentence(Database& db, const std::vector<Command>& sentence) {
  Status first_error;
  for (const Command& command : sentence) {
    Status status = ApplyCommand(db, command);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Result<Database> EvalSentence(const std::vector<Command>& sentence,
                              DatabaseOptions options) {
  Database db(options);
  TTRA_RETURN_IF_ERROR(ApplySentence(db, sentence));
  return db;
}

}  // namespace ttra
