#ifndef TTRA_ROLLBACK_COMMANDS_H_
#define TTRA_ROLLBACK_COMMANDS_H_

#include <string>
#include <variant>
#include <vector>

#include "rollback/database.h"
#include "storage/serialize.h"

namespace ttra {

/// Plain-data command forms mirroring the paper's COMMAND syntactic domain
/// with expressions already evaluated to constant states. Used by the
/// workload generators and the storage-engine equivalence suites; the full
/// language (with algebraic expressions inside modify_state) lives in
/// src/lang.

struct DefineRelationCmd {
  std::string name;
  RelationType type;
  Schema schema;
};

struct ModifySnapshotCmd {
  std::string name;
  SnapshotState state;
};

struct ModifyHistoricalCmd {
  std::string name;
  HistoricalState state;
};

struct DeleteRelationCmd {
  std::string name;
};

struct ModifySchemaCmd {
  std::string name;
  Schema schema;
};

using Command = std::variant<DefineRelationCmd, ModifySnapshotCmd,
                             ModifyHistoricalCmd, DeleteRelationCmd,
                             ModifySchemaCmd>;

/// Applies one command; on error the database is unchanged (the paper's
/// `else d` branches).
Status ApplyCommand(Database& db, const Command& command);

/// The paper's sequencing C⟦C1, C2⟧: each command runs against the result
/// of the previous one; a failing command leaves the database unchanged
/// and evaluation *continues* (faithful to the denotations, which have no
/// error exit). Returns the first error encountered, if any.
Status ApplySentence(Database& db, const std::vector<Command>& sentence);

/// P⟦·⟧: evaluates the sentence against the EMPTY database.
Result<Database> EvalSentence(const std::vector<Command>& sentence,
                              DatabaseOptions options = {});

/// Binary codec for commands (the unit the write-ahead log stores): a
/// one-byte variant tag followed by the serialize.h encoding of the
/// fields. Decoding validates tags and returns kCorruption on malformed
/// input.
void EncodeCommand(const Command& command, std::string& out);
Result<Command> DecodeCommand(ByteReader& reader);

}  // namespace ttra

#endif  // TTRA_ROLLBACK_COMMANDS_H_
