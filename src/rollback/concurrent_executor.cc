#include "rollback/concurrent_executor.h"

#include <algorithm>
#include <utility>

namespace ttra {

Result<SnapshotState> Session::Rollback(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  if (txn.has_value() && *txn > epoch_) {
    return InvalidRollbackError("transaction " + std::to_string(*txn) +
                                " is beyond this session's epoch " +
                                std::to_string(epoch_));
  }
  return snapshot_->Rollback(name, txn);
}

Result<HistoricalState> Session::RollbackHistorical(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  if (txn.has_value() && *txn > epoch_) {
    return InvalidRollbackError("transaction " + std::to_string(*txn) +
                                " is beyond this session's epoch " +
                                std::to_string(epoch_));
  }
  return snapshot_->RollbackHistorical(name, txn);
}

ConcurrentExecutor::ConcurrentExecutor(Env* env, std::string dir,
                                       ConcurrentOptions options)
    : options_(options), durable_(env, std::move(dir), options.durable) {}

ConcurrentExecutor::~ConcurrentExecutor() { Stop(); }

Status ConcurrentExecutor::Start() {
  if (started_) return Status::Ok();
  TTRA_RETURN_IF_ERROR(durable_.Open());
  PublishSnapshot();
  {
    MutexLock lock(publish_mutex_);
    submitted_ = 0;
    completed_ = 0;
  }
  queue_ = std::make_unique<BoundedQueue<Pending>>(
      options_.group_commit.queue_capacity);
  writer_ = std::thread(&ConcurrentExecutor::WriterLoop, this);
  started_ = true;
  return Status::Ok();
}

void ConcurrentExecutor::Stop() {
  if (!started_) return;
  queue_->Close();
  if (writer_.joinable()) writer_.join();
  started_ = false;
}

std::future<Result<TransactionNumber>> ConcurrentExecutor::SubmitAsync(
    std::vector<Command> sentence, bool atomic) {
  Pending pending;
  pending.sentence = std::move(sentence);
  pending.atomic = atomic;
  std::future<Result<TransactionNumber>> future =
      pending.promise.get_future();
  BoundedQueue<Pending>* queue = queue_.get();
  if (queue == nullptr || !queue->Push(std::move(pending))) {
    // Not started, stopped, or closed mid-wait. Pending was either moved
    // into the queue (and will be answered by the writer's final drain)
    // or dropped — a dropped promise would surface as broken_promise, so
    // answer it here. Push returning false guarantees the drop.
    std::promise<Result<TransactionNumber>> refused;
    future = refused.get_future();
    refused.set_value(UnavailableError("concurrent executor is not running"));
    return future;
  }
  MutexLock lock(publish_mutex_);
  ++submitted_;
  return future;
}

Result<TransactionNumber> ConcurrentExecutor::Submit(
    std::vector<Command> sentence) {
  return SubmitAsync(std::move(sentence), /*atomic=*/false).get();
}

Result<TransactionNumber> ConcurrentExecutor::Submit(Command command) {
  std::vector<Command> sentence;
  sentence.push_back(std::move(command));
  return Submit(std::move(sentence));
}

Result<TransactionNumber> ConcurrentExecutor::SubmitAtomic(
    std::vector<Command> sentence) {
  return SubmitAsync(std::move(sentence), /*atomic=*/true).get();
}

Status ConcurrentExecutor::Drain() {
  MutexLock lock(publish_mutex_);
  const uint64_t target = submitted_;
  drained_.Wait(publish_mutex_, [this, target]() TTRA_REQUIRES(
                                    publish_mutex_) {
    return completed_ >= target;
  });
  return Status::Ok();
}

Session ConcurrentExecutor::OpenSession() const {
  MutexLock lock(publish_mutex_);
  return Session(published_, published_->transaction_number());
}

TransactionNumber ConcurrentExecutor::transaction_number() const {
  MutexLock lock(publish_mutex_);
  return published_->transaction_number();
}

Database ConcurrentExecutor::Snapshot() const {
  std::shared_ptr<const Database> snapshot;
  {
    MutexLock lock(publish_mutex_);
    snapshot = published_;
  }
  return snapshot->Clone();
}

Status ConcurrentExecutor::Checkpoint() { return durable_.Checkpoint(); }

ConcurrentExecutor::Stats ConcurrentExecutor::stats() const {
  MutexLock lock(publish_mutex_);
  Stats stats = stats_;
  stats.wal = durable_.wal_stats();
  return stats;
}

void ConcurrentExecutor::PublishSnapshot() {
  auto snapshot = std::make_shared<const Database>(durable_.Snapshot());
  MutexLock lock(publish_mutex_);
  published_ = std::move(snapshot);
}

void ConcurrentExecutor::WriterLoop() {
  for (;;) {
    std::vector<Pending> batch = queue_->PopBatch(
        options_.group_commit.max_batch, options_.group_commit.max_latency);
    if (batch.empty()) return;  // closed and fully drained

    std::vector<GroupEntry> entries;
    entries.reserve(batch.size());
    for (Pending& pending : batch) {
      entries.push_back(
          GroupEntry{std::move(pending.sentence), pending.atomic});
    }
    std::vector<Result<TransactionNumber>> results =
        durable_.SubmitGroup(entries);

    // Publish the post-batch snapshot BEFORE resolving promises:
    // read-your-writes — a producer whose commit is acknowledged opens
    // its next session at an epoch that includes it.
    PublishSnapshot();
    {
      MutexLock lock(publish_mutex_);
      stats_.commits += batch.size();
      stats_.batches += 1;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
    {
      MutexLock lock(publish_mutex_);
      completed_ += batch.size();
    }
    drained_.SignalAll();
  }
}

}  // namespace ttra
