#include "rollback/concurrent_executor.h"

#include <algorithm>
#include <utility>

namespace ttra {

Result<SnapshotState> Session::Rollback(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  if (txn.has_value() && *txn > epoch_) {
    return InvalidRollbackError("transaction " + std::to_string(*txn) +
                                " is beyond this session's epoch " +
                                std::to_string(epoch_));
  }
  return snapshot_->Rollback(name, txn);
}

Result<HistoricalState> Session::RollbackHistorical(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  if (txn.has_value() && *txn > epoch_) {
    return InvalidRollbackError("transaction " + std::to_string(*txn) +
                                " is beyond this session's epoch " +
                                std::to_string(epoch_));
  }
  return snapshot_->RollbackHistorical(name, txn);
}

ConcurrentExecutor::ConcurrentExecutor(Env* env, std::string dir,
                                       ConcurrentOptions options)
    : options_(options), durable_(env, std::move(dir), options.durable) {}

ConcurrentExecutor::~ConcurrentExecutor() { Stop(); }

Status ConcurrentExecutor::Start() {
  if (started_) return Status::Ok();
  TTRA_RETURN_IF_ERROR(durable_.Open());
  PublishSnapshot();
  {
    MutexLock lock(publish_mutex_);
    submitted_ = 0;
    completed_ = 0;
    degraded_ = false;
    degraded_reason_ = Status::Ok();
  }
  queue_ = std::make_unique<BoundedQueue<Pending>>(
      options_.group_commit.queue_capacity);
  writer_ = std::thread(&ConcurrentExecutor::WriterLoop, this);
  started_ = true;
  return Status::Ok();
}

void ConcurrentExecutor::Stop() {
  if (!started_) return;
  queue_->Close();
  if (writer_.joinable()) writer_.join();
  started_ = false;
}

std::future<Result<TransactionNumber>> ConcurrentExecutor::SubmitAsync(
    std::vector<Command> sentence, bool atomic) {
  {
    // Degraded mode rejects at the door: no queue traffic, no writer
    // round-trip, a clean kReadOnly the caller can distinguish from both
    // command errors and not-running (kUnavailable).
    MutexLock lock(publish_mutex_);
    if (degraded_) {
      ++stats_.rejected_read_only;
      std::promise<Result<TransactionNumber>> refused;
      refused.set_value(ReadOnlyError(
          "executor is in read-only degraded mode (" +
          degraded_reason_.ToString() + "); repair storage and reopen"));
      return refused.get_future();
    }
  }
  Pending pending;
  pending.sentence = std::move(sentence);
  pending.atomic = atomic;
  std::future<Result<TransactionNumber>> future =
      pending.promise.get_future();
  BoundedQueue<Pending>* queue = queue_.get();
  if (queue == nullptr || !queue->Push(std::move(pending))) {
    // Not started, stopped, or closed mid-wait. Pending was either moved
    // into the queue (and will be answered by the writer's final drain)
    // or dropped — a dropped promise would surface as broken_promise, so
    // answer it here. Push returning false guarantees the drop.
    std::promise<Result<TransactionNumber>> refused;
    future = refused.get_future();
    refused.set_value(UnavailableError("concurrent executor is not running"));
    return future;
  }
  MutexLock lock(publish_mutex_);
  ++submitted_;
  return future;
}

Result<TransactionNumber> ConcurrentExecutor::Submit(
    std::vector<Command> sentence) {
  return SubmitAsync(std::move(sentence), /*atomic=*/false).get();
}

Result<TransactionNumber> ConcurrentExecutor::Submit(Command command) {
  std::vector<Command> sentence;
  sentence.push_back(std::move(command));
  return Submit(std::move(sentence));
}

Result<TransactionNumber> ConcurrentExecutor::SubmitAtomic(
    std::vector<Command> sentence) {
  return SubmitAsync(std::move(sentence), /*atomic=*/true).get();
}

Status ConcurrentExecutor::Drain() {
  MutexLock lock(publish_mutex_);
  const uint64_t target = submitted_;
  drained_.Wait(publish_mutex_, [this, target]() TTRA_REQUIRES(
                                    publish_mutex_) {
    return completed_ >= target;
  });
  return Status::Ok();
}

Session ConcurrentExecutor::OpenSession() const {
  MutexLock lock(publish_mutex_);
  return Session(published_, published_->transaction_number());
}

TransactionNumber ConcurrentExecutor::transaction_number() const {
  MutexLock lock(publish_mutex_);
  return published_->transaction_number();
}

Database ConcurrentExecutor::Snapshot() const {
  std::shared_ptr<const Database> snapshot;
  {
    MutexLock lock(publish_mutex_);
    snapshot = published_;
  }
  return snapshot->Clone();
}

Status ConcurrentExecutor::Checkpoint() { return durable_.Checkpoint(); }

bool ConcurrentExecutor::degraded() const {
  MutexLock lock(publish_mutex_);
  return degraded_;
}

Status ConcurrentExecutor::degraded_reason() const {
  MutexLock lock(publish_mutex_);
  return degraded_reason_;
}

void ConcurrentExecutor::EnterDegraded(const Status& reason) {
  MutexLock lock(publish_mutex_);
  if (degraded_) return;
  degraded_ = true;
  degraded_reason_ = reason;
}

ConcurrentExecutor::Stats ConcurrentExecutor::stats() const {
  MutexLock lock(publish_mutex_);
  Stats stats = stats_;
  stats.degraded = degraded_;
  stats.wal = durable_.wal_stats();
  stats.health = durable_.health();
  return stats;
}

void ConcurrentExecutor::PublishSnapshot() {
  auto snapshot = std::make_shared<const Database>(durable_.Snapshot());
  MutexLock lock(publish_mutex_);
  published_ = std::move(snapshot);
}

void ConcurrentExecutor::WriterLoop() {
  for (;;) {
    std::vector<Pending> batch = queue_->PopBatch(
        options_.group_commit.max_batch, options_.group_commit.max_latency);
    if (batch.empty()) return;  // closed and fully drained

    if (degraded()) {
      // Permanent write failure already happened: drain the queue by
      // failing every pending sentence with the distinct read-only code.
      // The loop keeps running so Stop() still works and sessions keep
      // being served from the published snapshot.
      const Status refusal = ReadOnlyError(
          "executor is in read-only degraded mode (" +
          degraded_reason().ToString() + "); repair storage and reopen");
      {
        MutexLock lock(publish_mutex_);
        stats_.rejected_read_only += batch.size();
      }
      for (Pending& pending : batch) {
        pending.promise.set_value(refusal);
      }
      {
        MutexLock lock(publish_mutex_);
        completed_ += batch.size();
      }
      drained_.SignalAll();
      continue;
    }

    std::vector<GroupEntry> entries;
    entries.reserve(batch.size());
    for (Pending& pending : batch) {
      entries.push_back(
          GroupEntry{std::move(pending.sentence), pending.atomic});
    }
    std::vector<Result<TransactionNumber>> results =
        durable_.SubmitGroup(entries);

    if (!durable_.healthy()) {
      // The batch failed on I/O (every result carries the same status,
      // already the real error for these callers) and the durable layer
      // is failed-stop. Flip to read-only: later sentences get kReadOnly.
      Status reason = durable_.health().last_write_error;
      if (reason.ok() && !results.empty() && !results.front().ok()) {
        reason = results.front().status();
      }
      EnterDegraded(reason);
    }

    // Publish the post-batch snapshot BEFORE resolving promises:
    // read-your-writes — a producer whose commit is acknowledged opens
    // its next session at an epoch that includes it.
    PublishSnapshot();
    {
      MutexLock lock(publish_mutex_);
      stats_.commits += batch.size();
      stats_.batches += 1;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
    {
      MutexLock lock(publish_mutex_);
      completed_ += batch.size();
    }
    drained_.SignalAll();
  }
}

}  // namespace ttra
