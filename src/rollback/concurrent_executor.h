#ifndef TTRA_ROLLBACK_CONCURRENT_EXECUTOR_H_
#define TTRA_ROLLBACK_CONCURRENT_EXECUTOR_H_

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rollback/durable_executor.h"
#include "util/bounded_queue.h"
#include "util/mutex.h"

namespace ttra {

/// Group-commit accumulation knobs.
struct GroupCommitOptions {
  /// Most sentences committed per WAL record/sync.
  size_t max_batch = 64;
  /// How long the writer lingers for a partially-filled batch once at
  /// least one sentence is queued. Zero = commit whatever is queued
  /// immediately (lowest latency, smallest batches).
  std::chrono::microseconds max_latency{200};
  /// Bounded MPSC queue depth; producers block (backpressure) beyond it.
  size_t queue_capacity = 1024;
};

struct ConcurrentOptions {
  DurableOptions durable;
  GroupCommitOptions group_commit;
};

/// A reader session pinned at its opening epoch N (the transaction number
/// of the last group commit published when the session opened). The
/// session holds a shared immutable database snapshot, so every
/// evaluation inside it — ρ(I, n) for any n ≤ N, operator trees via
/// lang::EvalExpr over database() — observes exactly the paper's
/// ρ(·, N) world, no matter how far the writer advances concurrently.
/// This is snapshot isolation derived from the semantics: E⟦·⟧ is
/// side-effect-free, so a pinned (state, transaction-number) pair answers
/// every expression without coordination.
///
/// Sessions are value types: cheap to copy (two words + a refcount) and
/// safe to share across threads — the snapshot is immutable and FINDSTATE
/// caching inside it is internally synchronized.
class Session {
 public:
  TransactionNumber epoch() const { return epoch_; }

  /// The pinned database view, e.g. for lang::EvalExpr. All relation
  /// history up to the epoch is visible; nothing later exists here.
  const Database& database() const { return *snapshot_; }

  /// E⟦ρ(I, n)⟧ at the pinned epoch; nullopt = the session's own epoch
  /// (the snapshot's ∞). A transaction number beyond the epoch is an
  /// invalid-rollback error: that state may not even be committed yet,
  /// and the session's contract is to never observe past its pin.
  Result<SnapshotState> Rollback(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const;

  /// E⟦ρ̂(I, n)⟧, same epoch rules.
  Result<HistoricalState> RollbackHistorical(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const;

 private:
  friend class ConcurrentExecutor;
  Session(std::shared_ptr<const Database> snapshot, TransactionNumber epoch)
      : snapshot_(std::move(snapshot)), epoch_(epoch) {}

  std::shared_ptr<const Database> snapshot_;
  TransactionNumber epoch_ = 0;
};

/// Multi-session front-end realizing the MVCC split the paper's semantics
/// licenses: arbitrarily many readers evaluate E⟦·⟧ against immutable
/// pinned snapshots (Session), while a single writer thread serializes
/// C⟦·⟧ — it drains a bounded MPSC queue and applies batches through
/// DurableExecutor::SubmitGroup, one WAL record + one fsync per batch.
///
/// Semantics contract:
///  * every committed batch is equivalent to some serial C⟦·⟧ order (the
///    queue drain order, which the WAL records verbatim — the
///    differential oracle test replays it through SerialExecutor);
///  * a session pinned at epoch N observes exactly ρ(I, N) for every I:
///    the rollback operator doubles as the snapshot-isolation spec;
///  * an acknowledged sentence (future resolved OK) is durable per the
///    sync policy and visible to every session opened afterwards
///    (read-your-writes: the post-batch snapshot is published before
///    futures resolve).
///
/// Lifecycle — Start(), submit/read from any threads, Stop() — must be
/// driven from one owning thread; everything between is thread-safe.
class ConcurrentExecutor {
 public:
  /// `env` must outlive the executor. Call Start() before submitting.
  ConcurrentExecutor(Env* env, std::string dir,
                     ConcurrentOptions options = {});
  ~ConcurrentExecutor();

  ConcurrentExecutor(const ConcurrentExecutor&) = delete;
  ConcurrentExecutor& operator=(const ConcurrentExecutor&) = delete;

  /// Recovers durable state from the directory, publishes the initial
  /// snapshot, and starts the writer thread. Not idempotent while
  /// running; call again only after Stop() (e.g. to recover from an I/O
  /// fault, mirroring DurableExecutor::Open).
  Status Start();

  /// Closes the queue, commits everything already enqueued, and joins the
  /// writer. Safe to call twice. Sessions remain valid afterwards.
  void Stop();

  /// Enqueues a sentence for the writer to group-commit. The future
  /// resolves once the sentence is applied and its batch is durable per
  /// the sync policy — with the transaction number it committed at, the
  /// command-level error (paper sequencing: partial effects stand,
  /// atomic: no effect), or kUnavailable if the executor is stopped or
  /// failed-stop. Blocks only when the queue is full (backpressure).
  std::future<Result<TransactionNumber>> SubmitAsync(
      std::vector<Command> sentence, bool atomic = false);

  /// Synchronous conveniences: SubmitAsync + wait.
  Result<TransactionNumber> Submit(std::vector<Command> sentence);
  Result<TransactionNumber> Submit(Command command);
  Result<TransactionNumber> SubmitAtomic(std::vector<Command> sentence);

  /// Blocks until every sentence enqueued before the call has been
  /// committed (or refused) by the writer.
  Status Drain();

  /// Opens a reader session pinned at the current published epoch. O(1):
  /// shares the immutable post-batch snapshot, no copying.
  Session OpenSession() const;

  /// Epoch of the last published group commit (what a session opened now
  /// would pin).
  TransactionNumber transaction_number() const;

  /// Consistent deep copy of the published snapshot (export/persistence).
  Database Snapshot() const;

  /// Forwards to DurableExecutor::Checkpoint; safe concurrently with the
  /// writer (both honor the commit lock). Pinned sessions are unaffected:
  /// checkpointing truncates the on-disk log, not in-memory history.
  Status Checkpoint();

  bool healthy() const { return durable_.healthy(); }
  DurableExecutor::RecoveryInfo last_recovery() const {
    return durable_.last_recovery();
  }
  const std::string& dir() const { return durable_.dir(); }

  /// True once a permanent write failure has flipped the executor into
  /// read-only degraded mode: the writer fast-fails every queued and new
  /// sentence with kReadOnly while existing and new reader sessions keep
  /// serving the last published epoch. The way out is Stop() + Start()
  /// (re-recovery from disk) after the storage fault is repaired.
  bool degraded() const;

  /// The write failure that triggered degraded mode (OK when healthy).
  Status degraded_reason() const;

  /// Group-commit effectiveness counters.
  struct Stats {
    uint64_t commits = 0;       ///< sentences committed (or refused)
    uint64_t batches = 0;       ///< group commits (WAL records)
    uint64_t max_batch = 0;     ///< largest batch seen
    uint64_t rejected_read_only = 0;  ///< sentences refused in degraded mode
    bool degraded = false;      ///< currently in read-only degraded mode
    WalWriter::Stats wal;       ///< physical I/O accounting (syncs!)
    DurableExecutor::HealthStats health;  ///< retry/fail-stop detail
  };
  Stats stats() const;

 private:
  struct Pending {
    std::vector<Command> sentence;
    bool atomic = false;
    std::promise<Result<TransactionNumber>> promise;
  };

  void WriterLoop();
  void PublishSnapshot() TTRA_EXCLUDES(publish_mutex_);
  void EnterDegraded(const Status& reason) TTRA_EXCLUDES(publish_mutex_);

  ConcurrentOptions options_;
  DurableExecutor durable_;
  /// Recreated by each Start(): Stop() closes the queue for good (that is
  /// how the writer learns to exit), so a restart needs a fresh one.
  std::unique_ptr<BoundedQueue<Pending>> queue_;
  std::thread writer_;
  bool started_ = false;

  mutable Mutex publish_mutex_;
  std::shared_ptr<const Database> published_ TTRA_GUARDED_BY(publish_mutex_);
  uint64_t submitted_ TTRA_GUARDED_BY(publish_mutex_) = 0;
  uint64_t completed_ TTRA_GUARDED_BY(publish_mutex_) = 0;
  CondVar drained_;
  Stats stats_ TTRA_GUARDED_BY(publish_mutex_);
  bool degraded_ TTRA_GUARDED_BY(publish_mutex_) = false;
  Status degraded_reason_ TTRA_GUARDED_BY(publish_mutex_);
};

}  // namespace ttra

#endif  // TTRA_ROLLBACK_CONCURRENT_EXECUTOR_H_
