#include "rollback/database.h"

namespace ttra {

Database::Database(DatabaseOptions options) : options_(options) {}

Status Database::DefineRelation(const std::string& name, RelationType type,
                                Schema schema) {
  if (relations_.contains(name)) {
    return AlreadyDefinedError("relation already defined: " + name);
  }
  relations_.emplace(name,
                     Relation::Make(type, std::move(schema), txn_ + 1,
                                    options_.storage,
                                    options_.checkpoint_interval,
                                    options_.findstate_cache_capacity));
  ++txn_;
  return Status::Ok();
}

Status Database::ModifyState(const std::string& name,
                             const SnapshotState& state) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return UnknownIdentifierError("modify_state of undefined relation: " +
                                  name);
  }
  TTRA_RETURN_IF_ERROR(it->second.SetState(state, txn_ + 1));
  ++txn_;
  return Status::Ok();
}

Status Database::ModifyState(const std::string& name,
                             const HistoricalState& state) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return UnknownIdentifierError("modify_state of undefined relation: " +
                                  name);
  }
  TTRA_RETURN_IF_ERROR(it->second.SetState(state, txn_ + 1));
  ++txn_;
  return Status::Ok();
}

Status Database::DeleteRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return UnknownIdentifierError("delete_relation of undefined relation: " +
                                  name);
  }
  relations_.erase(it);
  ++txn_;
  return Status::Ok();
}

Status Database::ModifySchema(const std::string& name, Schema schema) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return UnknownIdentifierError("modify_schema of undefined relation: " +
                                  name);
  }
  TTRA_RETURN_IF_ERROR(it->second.SetSchema(std::move(schema), txn_ + 1));
  ++txn_;
  return Status::Ok();
}

Result<SnapshotState> Database::Rollback(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  const Relation* relation = Find(name);
  if (relation == nullptr) {
    return UnknownIdentifierError("rollback of undefined relation: " + name);
  }
  if (!txn.has_value()) {
    // N = ∞: the most recent state of a snapshot or rollback relation.
    return relation->SnapshotAt(txn_);
  }
  if (relation->type() != RelationType::kRollback) {
    return InvalidRollbackError(
        "rollback to a past transaction requires a rollback relation; '" +
        name + "' is " + std::string(RelationTypeName(relation->type())));
  }
  return relation->SnapshotAt(*txn);
}

Result<HistoricalState> Database::RollbackHistorical(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  const Relation* relation = Find(name);
  if (relation == nullptr) {
    return UnknownIdentifierError("rollback of undefined relation: " + name);
  }
  if (!txn.has_value()) {
    return relation->HistoricalAt(txn_);
  }
  if (relation->type() != RelationType::kTemporal) {
    return InvalidRollbackError(
        "historical rollback to a past transaction requires a temporal "
        "relation; '" +
        name + "' is " + std::string(RelationTypeName(relation->type())));
  }
  return relation->HistoricalAt(*txn);
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

size_t Database::ApproxBytes() const {
  size_t total = 0;
  for (const auto& [name, relation] : relations_) {
    total += name.size() + relation.ApproxBytes();
  }
  return total;
}

void Database::RestoreRelation(const std::string& name, Relation relation) {
  relations_.insert_or_assign(name, std::move(relation));
}

Database Database::Clone() const {
  Database copy(options_);
  copy.txn_ = txn_;
  for (const auto& [name, relation] : relations_) {
    copy.relations_.emplace(name, relation.Clone());
  }
  return copy;
}

}  // namespace ttra
