#ifndef TTRA_ROLLBACK_DATABASE_H_
#define TTRA_ROLLBACK_DATABASE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rollback/relation.h"

namespace ttra {

/// Storage configuration applied to relations created in a database.
struct DatabaseOptions {
  StorageKind storage = StorageKind::kFullCopy;
  size_t checkpoint_interval = 16;
  /// FINDSTATE reconstruction-cache capacity per relation log (0 disables
  /// caching; see kDefaultFindStateCacheCapacity).
  size_t findstate_cache_capacity = kDefaultFindStateCacheCapacity;
};

/// The paper's DATABASE semantic domain: a database state (identifier →
/// relation ∪ {⊥}) paired with the transaction number of the most recent
/// change. The mutating methods implement the command denotations C⟦·⟧
/// in-place (the efficient realization of "returns a new database"); use
/// Clone() where value semantics are needed.
///
/// Faithful to the paper: a failed command leaves the database — including
/// its transaction number — completely unchanged, and define_relation on a
/// bound identifier / modify_state on an unbound one are failures (the
/// paper's `else d` branches, surfaced as errors so callers can tell).
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  /// The paper's transaction counter n (0 in the EMPTY database).
  TransactionNumber transaction_number() const { return txn_; }

  // --- Commands (C⟦·⟧) --------------------------------------------------

  /// C⟦define_relation(I, Y)⟧ with a declared scheme: binds I to an empty
  /// relation of the given type and increments the transaction number.
  /// Fails (kAlreadyDefined) if I is already bound.
  Status DefineRelation(const std::string& name, RelationType type,
                        Schema schema);

  /// C⟦modify_state(I, E)⟧ with E already evaluated to a state: replaces
  /// (snapshot/historical) or appends (rollback/temporal) the state with
  /// transaction number n+1, then sets n := n+1.
  Status ModifyState(const std::string& name, const SnapshotState& state);
  Status ModifyState(const std::string& name, const HistoricalState& state);

  /// Extension (companion TR): removes the binding of I. The transaction
  /// number is incremented; the identifier may later be redefined.
  Status DeleteRelation(const std::string& name);

  /// Extension (scheme evolution): installs a new scheme for I effective
  /// at transaction n+1 and increments the transaction number. Past states
  /// keep their recorded schemes.
  Status ModifySchema(const std::string& name, Schema schema);

  // --- The rollback operators ρ and ρ̂ ------------------------------------

  /// E⟦ρ(I, N)⟧: the snapshot state of I current at transaction `txn`;
  /// nullopt means N = ∞ (the most recent state). Enforces the paper's
  /// typing rules: finite N requires a rollback relation; ∞ also allows
  /// snapshot relations.
  Result<SnapshotState> Rollback(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const;

  /// E⟦ρ̂(I, N)⟧: historical counterpart (temporal relations for finite N;
  /// ∞ also allows historical relations).
  Result<HistoricalState> RollbackHistorical(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const;

  // --- Introspection -----------------------------------------------------

  /// The relation bound to `name`, or nullptr (the paper's ⊥).
  const Relation* Find(const std::string& name) const;

  /// Bound identifiers in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t ApproxBytes() const;

  const DatabaseOptions& options() const { return options_; }

  /// Deep copy.
  Database Clone() const;

  // --- Restore API (persistence layer only) -------------------------------
  //
  // These bypass the command semantics to rebuild a database exactly as
  // serialized — transaction numbers included. Normal code must go
  // through DefineRelation/ModifyState.

  /// Installs a fully-built relation under `name`, replacing any binding.
  void RestoreRelation(const std::string& name, Relation relation);

  /// Forces the database's transaction counter.
  void RestoreTransactionNumber(TransactionNumber txn) { txn_ = txn; }

 private:
  DatabaseOptions options_;
  TransactionNumber txn_ = 0;
  std::map<std::string, Relation> relations_;
};

}  // namespace ttra

#endif  // TTRA_ROLLBACK_DATABASE_H_
