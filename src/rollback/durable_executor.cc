#include "rollback/durable_executor.h"

#include <algorithm>
#include <thread>

namespace ttra {

namespace {

enum RecordKind : uint8_t {
  kKindSentence = 0,
  kKindAtomic = 1,
  /// A group-committed batch: [u64 count] followed by `count` encoded
  /// entries. One record — and thus one checksum — frames the whole
  /// batch, so a crash can never surface part of it.
  kKindGroup = 2,
};

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// The per-sentence encoding shared by plain and group records:
/// [u8 atomic][u64 pre_txn][u64 n][n commands].
void EncodeEntry(bool atomic, TransactionNumber pre_txn,
                 const std::vector<Command>& sentence, std::string& out) {
  out.push_back(static_cast<char>(atomic ? 1 : 0));
  PutU64(pre_txn, out);
  PutU64(sentence.size(), out);
  for (const Command& command : sentence) EncodeCommand(command, out);
}

std::string EncodeRecord(bool atomic, TransactionNumber pre_txn,
                         const std::vector<Command>& sentence) {
  std::string out;
  out.push_back(static_cast<char>(atomic ? kKindAtomic : kKindSentence));
  PutU64(pre_txn, out);
  PutU64(sentence.size(), out);
  for (const Command& command : sentence) EncodeCommand(command, out);
  return out;
}

Result<LoggedSentence> DecodeEntry(ByteReader& reader) {
  LoggedSentence entry;
  TTRA_ASSIGN_OR_RETURN(uint8_t atomic, reader.ReadByte());
  if (atomic > 1) return CorruptionError("invalid group entry mode");
  entry.atomic = atomic != 0;
  TTRA_ASSIGN_OR_RETURN(entry.pre_txn, reader.ReadU64());
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  entry.sentence.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(Command command, DecodeCommand(reader));
    entry.sentence.push_back(std::move(command));
  }
  return entry;
}

}  // namespace

Result<std::vector<LoggedSentence>> DecodeWalRecord(std::string_view record) {
  ByteReader reader(record);
  TTRA_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadByte());
  std::vector<LoggedSentence> entries;
  if (kind == kKindSentence || kind == kKindAtomic) {
    // Legacy/plain framing: the kind byte doubles as the atomic flag and
    // the entry body follows without its own mode byte.
    LoggedSentence entry;
    entry.atomic = kind == kKindAtomic;
    TTRA_ASSIGN_OR_RETURN(entry.pre_txn, reader.ReadU64());
    TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
    entry.sentence.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      TTRA_ASSIGN_OR_RETURN(Command command, DecodeCommand(reader));
      entry.sentence.push_back(std::move(command));
    }
    entries.push_back(std::move(entry));
  } else if (kind == kKindGroup) {
    TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      TTRA_ASSIGN_OR_RETURN(LoggedSentence entry, DecodeEntry(reader));
      entries.push_back(std::move(entry));
    }
  } else {
    return CorruptionError("invalid wal record kind");
  }
  if (!reader.AtEnd()) {
    return CorruptionError("trailing bytes in wal record");
  }
  return entries;
}

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kAlways:
      return "always";
    case SyncPolicy::kBatch:
      return "batch";
    case SyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

DurableExecutor::DurableExecutor(Env* env, std::string dir,
                                 DurableOptions options)
    : env_(env),
      dir_(std::move(dir)),
      options_(options),
      exec_(options.db),
      wal_(env, dir_ + "/wal.log") {}

Status DurableExecutor::Open() {
  MutexLock lock(commit_mutex_);
  healthy_ = false;
  last_recovery_ = RecoveryInfo{};
  TTRA_RETURN_IF_ERROR(env_->CreateDir(dir_));

  // 1. Last checkpoint (or the empty database before the first one).
  Database db(options_.db);
  if (env_->Exists(checkpoint_path())) {
    TTRA_ASSIGN_OR_RETURN(db,
                          LoadDatabase(checkpoint_path(), options_.db, env_));
  }
  last_recovery_.checkpoint_txn = db.transaction_number();

  // 2. Replay the command suffix the WAL adds on top of it. A torn tail is
  // the expected signature of a crash mid-append and is simply dropped; a
  // record that passes its checksum but does not decode or line up with
  // the transaction sequence is genuine corruption.
  if (env_->Exists(wal_.path())) {
    TTRA_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(*env_, wal_.path()));
    if (wal.records_after_hole > 0) {
      // Intact records lie BEYOND the first damage. Power loss cannot
      // produce that shape — only mid-log corruption can — and replaying
      // just the prefix would silently drop acknowledged commits. Refuse;
      // the operator decides the cut with `ttra fsck --repair`.
      return CorruptionError(
          "wal has mid-log corruption at byte " +
          std::to_string(wal.invalid_offset) + " (" +
          std::string(WalCorruptionCauseName(wal.cause)) + ") with " +
          std::to_string(wal.records_after_hole) +
          " intact record(s) stranded after it; refusing to recover — run "
          "`ttra fsck --repair` to quarantine the damage");
    }
    last_recovery_.torn_tail = wal.torn_tail;
    for (const std::string& record : wal.records) {
      TTRA_RETURN_IF_ERROR(ReplayRecord(db, record));
      ++last_recovery_.replayed_records;
    }
  }

  // 3. Re-establish the on-disk invariant — checkpoint == current state,
  // empty WAL — so the next crash has a clean starting point.
  TTRA_RETURN_IF_ERROR(SaveDatabase(db, checkpoint_path(), env_));
  TTRA_RETURN_IF_ERROR(wal_.Create());

  exec_.Reset(std::move(db));
  commits_since_sync_ = 0;
  commits_since_checkpoint_ = 0;
  last_write_error_ = Status::Ok();
  healthy_ = true;
  return Status::Ok();
}

void DurableExecutor::FailStopLocked(const Status& status) {
  healthy_ = false;
  last_write_error_ = status;
}

Status DurableExecutor::RetryWalOp(const std::function<Status()>& op,
                                   bool reset_tail) {
  const RetryOptions& retry = options_.retry;
  const size_t max_attempts = std::max<size_t>(1, retry.max_attempts);
  std::chrono::microseconds backoff = retry.initial_backoff;
  bool retried = false;
  Status status = op();
  for (size_t attempt = 1; attempt < max_attempts; ++attempt) {
    if (status.ok()) break;
    // Only kIoError is transient. ENOSPC, corruption, etc. cannot heal by
    // waiting, so burning the retry budget on them just delays fail-stop.
    if (status.code() != ErrorCode::kIoError) return status;
    ++transient_retries_;
    retried = true;
    if (retry.sleeper) {
      retry.sleeper(backoff);
    } else {
      std::this_thread::sleep_for(backoff);
    }
    backoff = std::min(backoff * 2, retry.max_backoff);
    if (reset_tail) {
      // A failed append may have left a torn frame; cut back to the last
      // good boundary so the retried record is reachable. If the cut
      // itself fails (the outage is still on), skip the re-append — it
      // would land behind the torn bytes — and spend the attempt.
      if (!wal_.ResetTail().ok()) continue;
    }
    status = op();
  }
  if (status.ok() && retried) ++retry_successes_;
  return status;
}

Status DurableExecutor::ReplayRecord(Database& db, std::string_view record) {
  TTRA_ASSIGN_OR_RETURN(std::vector<LoggedSentence> entries,
                        DecodeWalRecord(record));
  for (const LoggedSentence& entry : entries) {
    if (entry.pre_txn < db.transaction_number()) {
      // Already covered by the checkpoint (crash between checkpoint
      // publication and WAL truncation).
      continue;
    }
    if (entry.pre_txn > db.transaction_number()) {
      return CorruptionError("gap in command log: record expects txn " +
                             std::to_string(entry.pre_txn) +
                             ", database is at " +
                             std::to_string(db.transaction_number()));
    }
    // Deterministic re-execution, mirroring the live Submit/SubmitAtomic
    // paths; command-level failures repeat exactly as they happened.
    if (!entry.atomic) {
      ApplySentence(db, entry.sentence);
    } else {
      Database scratch = db.Clone();
      if (ApplySentence(scratch, entry.sentence).ok()) db = std::move(scratch);
    }
  }
  return Status::Ok();
}

Result<TransactionNumber> DurableExecutor::SubmitInternal(
    const std::vector<Command>& sentence, bool atomic) {
  MutexLock lock(commit_mutex_);
  if (!healthy_) {
    return UnavailableError(
        "durable executor is failed-stop after an I/O error; reopen to "
        "recover");
  }

  // Log first: once the record is (per policy) on disk, applying it is
  // deterministic, so memory and log cannot diverge. Transient append
  // failures are retried after cutting any torn frame back.
  const TransactionNumber pre_txn = exec_.transaction_number();
  const std::string record = EncodeRecord(atomic, pre_txn, sentence);
  Status status = RetryWalOp([this, &record]() TTRA_REQUIRES(commit_mutex_) {
    return wal_.AddRecord(record);
  }, /*reset_tail=*/true);
  if (!status.ok()) {
    FailStopLocked(status);
    return status;
  }
  ++commits_since_sync_;
  const bool sync_now =
      options_.sync_policy == SyncPolicy::kAlways ||
      (options_.sync_policy == SyncPolicy::kBatch &&
       commits_since_sync_ >= options_.batch_size);
  if (sync_now) {
    status = RetryWalOp([this]() TTRA_REQUIRES(commit_mutex_) {
      return wal_.Sync();
    }, /*reset_tail=*/false);
    if (!status.ok()) {
      FailStopLocked(status);
      return status;
    }
    commits_since_sync_ = 0;
  }

  const auto body = [&sentence](Database& db) {
    return ApplySentence(db, sentence);
  };
  Result<TransactionNumber> result =
      atomic ? exec_.SubmitAtomic(body) : exec_.Submit(body);

  ++commits_since_checkpoint_;
  if (options_.checkpoint_every != 0 &&
      commits_since_checkpoint_ >= options_.checkpoint_every) {
    // Best effort: a failed checkpoint leaves the WAL authoritative, which
    // is safe; a failed WAL truncation inside flips healthy_ off.
    CheckpointLocked();
  }
  return result;
}

Result<TransactionNumber> DurableExecutor::Submit(
    const std::vector<Command>& sentence) {
  return SubmitInternal(sentence, /*atomic=*/false);
}

Result<TransactionNumber> DurableExecutor::Submit(const Command& command) {
  return SubmitInternal({command}, /*atomic=*/false);
}

Result<TransactionNumber> DurableExecutor::SubmitAtomic(
    const std::vector<Command>& sentence) {
  return SubmitInternal(sentence, /*atomic=*/true);
}

std::vector<Result<TransactionNumber>> DurableExecutor::SubmitGroup(
    const std::vector<GroupEntry>& entries) {
  std::vector<Result<TransactionNumber>> results;
  if (entries.empty()) return results;
  results.reserve(entries.size());

  MutexLock lock(commit_mutex_);
  const auto fail_all = [&](const Status& status) {
    results.assign(entries.size(), Result<TransactionNumber>(status));
  };
  if (!healthy_) {
    fail_all(UnavailableError(
        "durable executor is failed-stop after an I/O error; reopen to "
        "recover"));
    return results;
  }

  // Stage every entry on a private clone, recording per-entry pre-commit
  // transaction numbers (the replay framing) and results. Nothing is
  // visible to readers yet, so an I/O failure below can still abandon the
  // whole batch with memory untouched — exact log-before-apply.
  Database staged = exec_.Snapshot();
  std::string payload;
  payload.push_back(static_cast<char>(kKindGroup));
  PutU64(entries.size(), payload);
  for (const GroupEntry& entry : entries) {
    EncodeEntry(entry.atomic, staged.transaction_number(), entry.sentence,
                payload);
    Status applied;
    if (entry.atomic) {
      Database scratch = staged.Clone();
      applied = ApplySentence(scratch, entry.sentence);
      if (applied.ok()) staged = std::move(scratch);
    } else {
      applied = ApplySentence(staged, entry.sentence);
    }
    if (applied.ok()) {
      results.emplace_back(staged.transaction_number());
    } else {
      results.emplace_back(applied);
    }
  }

  // One record, one (policy-dependent) sync for the whole batch. The
  // single checksummed record is what makes the batch atomic across a
  // crash: recovery replays all of it or none of it. Transient failures
  // are retried (with the torn frame cut back) before giving up.
  Status io = RetryWalOp([this, &payload]() TTRA_REQUIRES(commit_mutex_) {
    return wal_.AddRecord(payload);
  }, /*reset_tail=*/true);
  if (io.ok()) {
    commits_since_sync_ += entries.size();
    const bool sync_now =
        options_.sync_policy == SyncPolicy::kAlways ||
        (options_.sync_policy == SyncPolicy::kBatch &&
         commits_since_sync_ >= options_.batch_size);
    if (sync_now) {
      io = RetryWalOp([this]() TTRA_REQUIRES(commit_mutex_) {
        return wal_.Sync();
      }, /*reset_tail=*/false);
      if (io.ok()) commits_since_sync_ = 0;
    }
  }
  if (!io.ok()) {
    FailStopLocked(io);
    fail_all(io);
    return results;
  }

  // Durable (per policy): install the staged database and acknowledge.
  exec_.Reset(std::move(staged));
  commits_since_checkpoint_ += entries.size();
  if (options_.checkpoint_every != 0 &&
      commits_since_checkpoint_ >= options_.checkpoint_every) {
    CheckpointLocked();
  }
  return results;
}

Status DurableExecutor::CheckpointLocked() {
  // Publishing the checkpoint (write temp, sync, durable rename) must
  // strictly precede truncating the WAL: a crash in between leaves both a
  // complete checkpoint and a WAL whose records the replay skips by
  // transaction number.
  TTRA_RETURN_IF_ERROR(
      SaveDatabase(exec_.Snapshot(), checkpoint_path(), env_));
  Status status = wal_.Create();
  if (!status.ok()) {
    // The WAL file is in an unknown state; stop accepting writes. The
    // checkpoint just written covers everything committed so far.
    FailStopLocked(status);
    return status;
  }
  commits_since_checkpoint_ = 0;
  commits_since_sync_ = 0;
  return Status::Ok();
}

Status DurableExecutor::Checkpoint() {
  MutexLock lock(commit_mutex_);
  if (!healthy_) {
    return UnavailableError("durable executor needs recovery; reopen");
  }
  return CheckpointLocked();
}

bool DurableExecutor::healthy() const {
  MutexLock lock(commit_mutex_);
  return healthy_;
}

DurableExecutor::HealthStats DurableExecutor::health() const {
  MutexLock lock(commit_mutex_);
  HealthStats stats;
  stats.healthy = healthy_;
  stats.transient_retries = transient_retries_;
  stats.retry_successes = retry_successes_;
  stats.last_write_error = last_write_error_;
  return stats;
}

WalWriter::Stats DurableExecutor::wal_stats() const {
  MutexLock lock(commit_mutex_);
  return wal_.stats();
}

DurableExecutor::RecoveryInfo DurableExecutor::last_recovery() const {
  MutexLock lock(commit_mutex_);
  return last_recovery_;
}

}  // namespace ttra
