#include "rollback/durable_executor.h"

namespace ttra {

namespace {

enum RecordKind : uint8_t {
  kKindSentence = 0,
  kKindAtomic = 1,
};

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::string EncodeRecord(bool atomic, TransactionNumber pre_txn,
                         const std::vector<Command>& sentence) {
  std::string out;
  out.push_back(static_cast<char>(atomic ? kKindAtomic : kKindSentence));
  PutU64(pre_txn, out);
  PutU64(sentence.size(), out);
  for (const Command& command : sentence) EncodeCommand(command, out);
  return out;
}

}  // namespace

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kAlways:
      return "always";
    case SyncPolicy::kBatch:
      return "batch";
    case SyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

DurableExecutor::DurableExecutor(Env* env, std::string dir,
                                 DurableOptions options)
    : env_(env),
      dir_(std::move(dir)),
      options_(options),
      exec_(options.db),
      wal_(env, dir_ + "/wal.log") {}

Status DurableExecutor::Open() {
  MutexLock lock(commit_mutex_);
  healthy_ = false;
  last_recovery_ = RecoveryInfo{};
  TTRA_RETURN_IF_ERROR(env_->CreateDir(dir_));

  // 1. Last checkpoint (or the empty database before the first one).
  Database db(options_.db);
  if (env_->Exists(checkpoint_path())) {
    TTRA_ASSIGN_OR_RETURN(db,
                          LoadDatabase(checkpoint_path(), options_.db, env_));
  }
  last_recovery_.checkpoint_txn = db.transaction_number();

  // 2. Replay the command suffix the WAL adds on top of it. A torn tail is
  // the expected signature of a crash mid-append and is simply dropped; a
  // record that passes its checksum but does not decode or line up with
  // the transaction sequence is genuine corruption.
  if (env_->Exists(wal_.path())) {
    TTRA_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(*env_, wal_.path()));
    last_recovery_.torn_tail = wal.torn_tail;
    for (const std::string& record : wal.records) {
      TTRA_RETURN_IF_ERROR(ReplayRecord(db, record));
      ++last_recovery_.replayed_records;
    }
  }

  // 3. Re-establish the on-disk invariant — checkpoint == current state,
  // empty WAL — so the next crash has a clean starting point.
  TTRA_RETURN_IF_ERROR(SaveDatabase(db, checkpoint_path(), env_));
  TTRA_RETURN_IF_ERROR(wal_.Create());

  exec_.Reset(std::move(db));
  commits_since_sync_ = 0;
  commits_since_checkpoint_ = 0;
  healthy_ = true;
  return Status::Ok();
}

Status DurableExecutor::ReplayRecord(Database& db, std::string_view record) {
  ByteReader reader(record);
  TTRA_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadByte());
  if (kind > kKindAtomic) {
    return CorruptionError("invalid wal record kind");
  }
  TTRA_ASSIGN_OR_RETURN(uint64_t pre_txn, reader.ReadU64());
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<Command> sentence;
  sentence.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(Command command, DecodeCommand(reader));
    sentence.push_back(std::move(command));
  }
  if (!reader.AtEnd()) {
    return CorruptionError("trailing bytes in wal record");
  }
  if (pre_txn < db.transaction_number()) {
    // Already covered by the checkpoint (crash between checkpoint
    // publication and WAL truncation).
    return Status::Ok();
  }
  if (pre_txn > db.transaction_number()) {
    return CorruptionError("gap in command log: record expects txn " +
                           std::to_string(pre_txn) + ", database is at " +
                           std::to_string(db.transaction_number()));
  }
  // Deterministic re-execution, mirroring the live Submit/SubmitAtomic
  // paths; command-level failures repeat exactly as they happened.
  if (kind == kKindSentence) {
    ApplySentence(db, sentence);
  } else {
    Database scratch = db.Clone();
    if (ApplySentence(scratch, sentence).ok()) db = std::move(scratch);
  }
  return Status::Ok();
}

Result<TransactionNumber> DurableExecutor::SubmitInternal(
    const std::vector<Command>& sentence, bool atomic) {
  MutexLock lock(commit_mutex_);
  if (!healthy_) {
    return UnavailableError(
        "durable executor is failed-stop after an I/O error; reopen to "
        "recover");
  }

  // Log first: once the record is (per policy) on disk, applying it is
  // deterministic, so memory and log cannot diverge.
  const TransactionNumber pre_txn = exec_.transaction_number();
  Status status = wal_.AddRecord(EncodeRecord(atomic, pre_txn, sentence));
  if (!status.ok()) {
    healthy_ = false;
    return status;
  }
  ++commits_since_sync_;
  const bool sync_now =
      options_.sync_policy == SyncPolicy::kAlways ||
      (options_.sync_policy == SyncPolicy::kBatch &&
       commits_since_sync_ >= options_.batch_size);
  if (sync_now) {
    status = wal_.Sync();
    if (!status.ok()) {
      healthy_ = false;
      return status;
    }
    commits_since_sync_ = 0;
  }

  const auto body = [&sentence](Database& db) {
    return ApplySentence(db, sentence);
  };
  Result<TransactionNumber> result =
      atomic ? exec_.SubmitAtomic(body) : exec_.Submit(body);

  ++commits_since_checkpoint_;
  if (options_.checkpoint_every != 0 &&
      commits_since_checkpoint_ >= options_.checkpoint_every) {
    // Best effort: a failed checkpoint leaves the WAL authoritative, which
    // is safe; a failed WAL truncation inside flips healthy_ off.
    CheckpointLocked();
  }
  return result;
}

Result<TransactionNumber> DurableExecutor::Submit(
    const std::vector<Command>& sentence) {
  return SubmitInternal(sentence, /*atomic=*/false);
}

Result<TransactionNumber> DurableExecutor::Submit(const Command& command) {
  return SubmitInternal({command}, /*atomic=*/false);
}

Result<TransactionNumber> DurableExecutor::SubmitAtomic(
    const std::vector<Command>& sentence) {
  return SubmitInternal(sentence, /*atomic=*/true);
}

Status DurableExecutor::CheckpointLocked() {
  // Publishing the checkpoint (write temp, sync, durable rename) must
  // strictly precede truncating the WAL: a crash in between leaves both a
  // complete checkpoint and a WAL whose records the replay skips by
  // transaction number.
  TTRA_RETURN_IF_ERROR(
      SaveDatabase(exec_.Snapshot(), checkpoint_path(), env_));
  Status status = wal_.Create();
  if (!status.ok()) {
    // The WAL file is in an unknown state; stop accepting writes. The
    // checkpoint just written covers everything committed so far.
    healthy_ = false;
    return status;
  }
  commits_since_checkpoint_ = 0;
  commits_since_sync_ = 0;
  return Status::Ok();
}

Status DurableExecutor::Checkpoint() {
  MutexLock lock(commit_mutex_);
  if (!healthy_) {
    return UnavailableError("durable executor needs recovery; reopen");
  }
  return CheckpointLocked();
}

bool DurableExecutor::healthy() const {
  MutexLock lock(commit_mutex_);
  return healthy_;
}

DurableExecutor::RecoveryInfo DurableExecutor::last_recovery() const {
  MutexLock lock(commit_mutex_);
  return last_recovery_;
}

}  // namespace ttra
