#ifndef TTRA_ROLLBACK_DURABLE_EXECUTOR_H_
#define TTRA_ROLLBACK_DURABLE_EXECUTOR_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "rollback/commands.h"
#include "util/mutex.h"
#include "rollback/persistence.h"
#include "rollback/serial_executor.h"
#include "storage/wal.h"

namespace ttra {

/// When the write-ahead log is fsync'ed relative to commit acknowledgement.
enum class SyncPolicy {
  /// Sync before acknowledging every commit: an acknowledged commit is
  /// never lost (the durability the paper's append-only transaction-time
  /// semantics implies).
  kAlways,
  /// Sync every `DurableOptions::batch_size` commits: bounded loss window,
  /// much higher throughput.
  kBatch,
  /// Never sync explicitly; the OS decides. Only the checkpoint is
  /// guaranteed after a crash.
  kNever,
};

std::string_view SyncPolicyName(SyncPolicy policy);

/// How WAL append/sync failures are retried before the executor gives up
/// and fails stop. Only kIoError is retried — it is the transient class
/// (a controller hiccup, an interrupted write); kResourceExhausted (disk
/// full) and kCorruption cannot heal on their own and fail immediately.
struct RetryOptions {
  /// Total attempts per WAL operation. 1 = no retry (the default: a
  /// single failure fails stop, the pre-retry behavior).
  size_t max_attempts = 1;
  /// Backoff before the k-th retry: initial_backoff * 2^k, capped at
  /// max_backoff.
  std::chrono::microseconds initial_backoff{100};
  std::chrono::microseconds max_backoff{10'000};
  /// Injectable sleep so tests drive backoff with a fake clock instead of
  /// wall-clock sleeps. Unset = std::this_thread::sleep_for.
  std::function<void(std::chrono::microseconds)> sleeper;
};

struct DurableOptions {
  DatabaseOptions db;
  SyncPolicy sync_policy = SyncPolicy::kAlways;
  /// Commits between syncs under SyncPolicy::kBatch.
  size_t batch_size = 32;
  /// Auto-checkpoint (and truncate the WAL) every N commits; 0 = only when
  /// Checkpoint() is called.
  size_t checkpoint_every = 0;
  /// Transient-failure retry policy for WAL appends and syncs.
  RetryOptions retry;
};

/// One entry of a group commit: a sentence plus its submit mode.
struct GroupEntry {
  std::vector<Command> sentence;
  bool atomic = false;
};

/// A sentence as recorded in the write-ahead log — the unit of the
/// committed order. Exposed so tests and tools (the differential
/// concurrency oracle, `ttra recover` forensics) can read back exactly
/// what the executor committed, in order.
struct LoggedSentence {
  std::vector<Command> sentence;
  TransactionNumber pre_txn = 0;  ///< transaction number before this apply
  bool atomic = false;
};

/// Decodes one WAL record payload (as returned by ReadWal) into its logged
/// sentences: one for a plain Submit/SubmitAtomic record, several for a
/// group-commit record. Malformed input → kCorruption.
Result<std::vector<LoggedSentence>> DecodeWalRecord(std::string_view record);

/// Durable front-end over SerialExecutor: every submitted sentence is
/// appended to a write-ahead log (and, per the sync policy, fsync'ed)
/// *before* it is applied in memory and acknowledged, so the sequence of
/// committed commands — the sole determinant of database state under the
/// paper's C⟦·⟧ semantics — survives a crash.
///
/// On-disk layout in `dir`: "checkpoint.db" (SaveDatabase output) plus
/// "wal.log" (commands committed since the checkpoint). Open() recovers:
/// load the checkpoint, replay the WAL suffix (tolerating a torn tail),
/// then re-establish the invariant by writing a fresh checkpoint and an
/// empty WAL.
///
/// Replay is deterministic re-execution: a record is applied exactly as it
/// was live (paper sequencing for Submit, all-or-nothing for
/// SubmitAtomic), and records whose pre-commit transaction number is
/// already covered by the checkpoint are skipped, so a crash between
/// checkpoint publication and WAL truncation is harmless.
///
/// After any WAL write failure the executor fails stop: the in-memory
/// state can no longer be proven equal to a replay of the log, so every
/// further submit returns kUnavailable until the executor is reopened
/// (which re-derives the state from disk).
class DurableExecutor {
 public:
  /// `env` must outlive the executor. Call Open() before submitting.
  DurableExecutor(Env* env, std::string dir, DurableOptions options = {});

  DurableExecutor(const DurableExecutor&) = delete;
  DurableExecutor& operator=(const DurableExecutor&) = delete;

  /// Recovers state from `dir` (creating it on first use) and arms the
  /// log. Idempotent; also the way back to health after a fault.
  Status Open();

  /// Durably logs and applies a sentence with the paper's sequencing
  /// semantics (failing commands are no-ops, later ones still run). The
  /// returned transaction number reflects every command that succeeded; a
  /// command-level error is returned after the sentence is already logged
  /// — deterministic replay reproduces the identical partial effect.
  Result<TransactionNumber> Submit(const std::vector<Command>& sentence);
  Result<TransactionNumber> Submit(const Command& command);

  /// Durably logs a sentence and applies it all-or-nothing.
  Result<TransactionNumber> SubmitAtomic(const std::vector<Command>& sentence);

  /// Group commit: applies the entries in order and logs the whole batch
  /// as ONE checksummed WAL record with ONE sync (under kAlways; kBatch
  /// counts each entry toward its window; kNever never syncs). The single
  /// record makes the batch atomic in durability — recovery replays either
  /// every sentence of the batch or none, never a torn batch — while each
  /// entry keeps its own commit semantics (paper sequencing vs atomic).
  ///
  /// Log-before-apply is preserved: entries are staged on a private clone,
  /// the record is appended and (per policy) synced, and only then is the
  /// staged database installed and the batch acknowledged. Any I/O error
  /// discards the staging clone and fails stop, leaving memory clean.
  /// Returns one result per entry, in order.
  std::vector<Result<TransactionNumber>> SubmitGroup(
      const std::vector<GroupEntry>& entries);

  /// Writes a fresh checkpoint of the current state and truncates the WAL.
  Status Checkpoint();

  // Read side (pass-through to the wrapped SerialExecutor).
  Status Read(const std::function<Status(const Database&)>& reader) const {
    return exec_.Read(reader);
  }
  TransactionNumber transaction_number() const {
    return exec_.transaction_number();
  }
  Result<SnapshotState> Rollback(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const {
    return exec_.Rollback(name, txn);
  }
  Result<HistoricalState> RollbackHistorical(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const {
    return exec_.RollbackHistorical(name, txn);
  }
  Database Snapshot() const { return exec_.Snapshot(); }

  /// False after a WAL write failure (submits return kUnavailable).
  bool healthy() const;

  /// Operator-facing health: whether the executor accepts writes, how
  /// hard the retry layer has been working, and what finally tripped
  /// fail-stop.
  struct HealthStats {
    bool healthy = false;
    uint64_t transient_retries = 0;  ///< individual WAL ops retried
    uint64_t retry_successes = 0;    ///< WAL ops that succeeded on a retry
    Status last_write_error;         ///< what tripped fail-stop (OK if none)
  };
  HealthStats health() const;

  /// Physical-I/O accounting of the write-ahead log since Open(): how many
  /// records, appends, and fsyncs the commit stream cost. The group-commit
  /// payoff is syncs << records.
  WalWriter::Stats wal_stats() const;

  /// What the last Open() found.
  struct RecoveryInfo {
    TransactionNumber checkpoint_txn = 0;  ///< txn restored from checkpoint
    size_t replayed_records = 0;           ///< WAL records applied on top
    bool torn_tail = false;                ///< trailing torn record dropped
  };
  RecoveryInfo last_recovery() const;

  std::string checkpoint_path() const { return dir_ + "/checkpoint.db"; }
  std::string wal_path() const { return dir_ + "/wal.log"; }
  const std::string& dir() const { return dir_; }

 private:
  Result<TransactionNumber> SubmitInternal(
      const std::vector<Command>& sentence, bool atomic);
  Status CheckpointLocked() TTRA_REQUIRES(commit_mutex_);
  Status ReplayRecord(Database& db, std::string_view record);

  /// Runs a WAL operation with the configured bounded-backoff retry.
  /// `reset_tail` cuts the log back to the last good record boundary
  /// before each retry — required for appends, whose failure may leave a
  /// torn frame that would strand the retried record behind a hole.
  Status RetryWalOp(const std::function<Status()>& op, bool reset_tail)
      TTRA_REQUIRES(commit_mutex_);

  /// Records a permanent write failure and flips fail-stop.
  void FailStopLocked(const Status& status) TTRA_REQUIRES(commit_mutex_);

  Env* env_;
  std::string dir_;
  DurableOptions options_;
  SerialExecutor exec_;

  // The commit lock serializes the log-before-apply protocol (WAL append,
  // sync bookkeeping, checkpoint scheduling) and the health state it
  // protects. Reads bypass it entirely (SerialExecutor's shared lock).
  mutable Mutex commit_mutex_;
  WalWriter wal_ TTRA_GUARDED_BY(commit_mutex_);
  bool healthy_ TTRA_GUARDED_BY(commit_mutex_) = false;
  size_t commits_since_sync_ TTRA_GUARDED_BY(commit_mutex_) = 0;
  size_t commits_since_checkpoint_ TTRA_GUARDED_BY(commit_mutex_) = 0;
  RecoveryInfo last_recovery_ TTRA_GUARDED_BY(commit_mutex_);
  uint64_t transient_retries_ TTRA_GUARDED_BY(commit_mutex_) = 0;
  uint64_t retry_successes_ TTRA_GUARDED_BY(commit_mutex_) = 0;
  Status last_write_error_ TTRA_GUARDED_BY(commit_mutex_);
};

}  // namespace ttra

#endif  // TTRA_ROLLBACK_DURABLE_EXECUTOR_H_
