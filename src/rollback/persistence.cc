#include "rollback/persistence.h"

#include "storage/serialize.h"

namespace ttra {

namespace {

constexpr uint64_t kDbMagic = 0x7474726144423031ULL;  // "ttraDB01"
constexpr uint8_t kDbVersion = 1;

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string_view s, std::string& out) {
  PutU64(s.size(), out);
  out.append(s);
}

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void EncodeRelation(const std::string& name, const Relation& relation,
                    std::string& out) {
  PutString(name, out);
  out.push_back(static_cast<char>(relation.type()));
  // Scheme-version history.
  PutU64(relation.schema_history().size(), out);
  for (const auto& [schema, txn] : relation.schema_history()) {
    PutU64(txn, out);
    EncodeSchema(schema, out);
  }
  // Logical state sequence.
  PutU64(relation.history_length(), out);
  for (size_t i = 0; i < relation.history_length(); ++i) {
    const TransactionNumber txn = relation.TxnAt(i);
    PutU64(txn, out);
    if (HoldsSnapshotStates(relation.type())) {
      EncodeSnapshotState(*relation.SnapshotAt(txn), out);
    } else {
      EncodeHistoricalState(*relation.HistoricalAt(txn), out);
    }
  }
}

Result<std::pair<std::string, Relation>> DecodeRelation(
    ByteReader& reader, const DatabaseOptions& options) {
  TTRA_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
  TTRA_ASSIGN_OR_RETURN(uint8_t type_tag, reader.ReadByte());
  if (type_tag > static_cast<uint8_t>(RelationType::kTemporal)) {
    return CorruptionError("invalid relation type tag");
  }
  const RelationType type = static_cast<RelationType>(type_tag);

  TTRA_ASSIGN_OR_RETURN(uint64_t schema_versions, reader.ReadU64());
  if (schema_versions == 0) {
    return CorruptionError("relation without a scheme");
  }
  std::vector<std::pair<Schema, TransactionNumber>> schemas;
  schemas.reserve(schema_versions);
  TransactionNumber last_schema_txn = 0;
  for (uint64_t i = 0; i < schema_versions; ++i) {
    TTRA_ASSIGN_OR_RETURN(uint64_t txn, reader.ReadU64());
    if (i > 0 && txn <= last_schema_txn) {
      return CorruptionError("non-increasing scheme-version txns");
    }
    last_schema_txn = txn;
    TTRA_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(reader));
    schemas.emplace_back(std::move(schema), txn);
  }

  Relation relation =
      Relation::Make(type, schemas.front().first, schemas.front().second,
                     options.storage, options.checkpoint_interval);

  TTRA_ASSIGN_OR_RETURN(uint64_t states, reader.ReadU64());
  size_t next_schema = 1;
  TransactionNumber last_state_txn = 0;
  for (uint64_t i = 0; i < states; ++i) {
    TTRA_ASSIGN_OR_RETURN(uint64_t txn, reader.ReadU64());
    if (i > 0 && txn <= last_state_txn) {
      return CorruptionError("non-increasing state txns");
    }
    last_state_txn = txn;
    // Install any scheme versions that took effect up to this state.
    while (next_schema < schemas.size() &&
           schemas[next_schema].second <= txn) {
      Status status = relation.SetSchema(schemas[next_schema].first,
                                         schemas[next_schema].second);
      if (!status.ok()) {
        return CorruptionError("invalid scheme version: " + status.message());
      }
      ++next_schema;
    }
    Status status;
    if (HoldsSnapshotStates(type)) {
      TTRA_ASSIGN_OR_RETURN(SnapshotState state, DecodeSnapshotState(reader));
      status = relation.SetState(state, txn);
    } else {
      TTRA_ASSIGN_OR_RETURN(HistoricalState state,
                            DecodeHistoricalState(reader));
      status = relation.SetState(state, txn);
    }
    if (!status.ok()) {
      return CorruptionError("invalid state entry: " + status.message());
    }
  }
  // Trailing scheme versions after the last state.
  while (next_schema < schemas.size()) {
    Status status = relation.SetSchema(schemas[next_schema].first,
                                       schemas[next_schema].second);
    if (!status.ok()) {
      return CorruptionError("invalid scheme version: " + status.message());
    }
    ++next_schema;
  }
  return std::make_pair(std::move(name), std::move(relation));
}

}  // namespace

std::string EncodeDatabase(const Database& db) {
  std::string payload;
  PutU64(db.transaction_number(), payload);
  const std::vector<std::string> names = db.RelationNames();
  PutU64(names.size(), payload);
  for (const std::string& name : names) {
    EncodeRelation(name, *db.Find(name), payload);
  }
  std::string out;
  PutU64(kDbMagic, out);
  out.push_back(static_cast<char>(kDbVersion));
  PutU64(Fnv1a(payload), out);
  PutU64(payload.size(), out);
  out += payload;
  return out;
}

Result<Database> DecodeDatabase(std::string_view data,
                                DatabaseOptions options) {
  ByteReader header(data);
  TTRA_ASSIGN_OR_RETURN(uint64_t magic, header.ReadU64());
  if (magic != kDbMagic) return CorruptionError("bad database magic");
  TTRA_ASSIGN_OR_RETURN(uint8_t version, header.ReadByte());
  if (version != kDbVersion) {
    return CorruptionError("unsupported database format version " +
                           std::to_string(version));
  }
  TTRA_ASSIGN_OR_RETURN(uint64_t checksum, header.ReadU64());
  TTRA_ASSIGN_OR_RETURN(uint64_t payload_size, header.ReadU64());
  if (header.position() + payload_size != data.size()) {
    return CorruptionError("database payload size mismatch");
  }
  std::string_view payload = data.substr(header.position());
  if (Fnv1a(payload) != checksum) {
    return CorruptionError("database checksum mismatch");
  }

  ByteReader reader(payload);
  TTRA_ASSIGN_OR_RETURN(uint64_t txn, reader.ReadU64());
  TTRA_ASSIGN_OR_RETURN(uint64_t relation_count, reader.ReadU64());
  Database db(options);
  for (uint64_t i = 0; i < relation_count; ++i) {
    TTRA_ASSIGN_OR_RETURN(auto entry, DecodeRelation(reader, options));
    db.RestoreRelation(entry.first, std::move(entry.second));
  }
  if (!reader.AtEnd()) {
    return CorruptionError("trailing bytes after database payload");
  }
  db.RestoreTransactionNumber(txn);
  return db;
}

Status SaveDatabase(const Database& db, const std::string& path, Env* env) {
  const std::string bytes = EncodeDatabase(db);
  const std::string tmp = path + ".tmp";
  // Write-sync-rename: the content must be durable *before* the rename
  // publishes it, and the rename must be durable before we acknowledge —
  // otherwise a crash after the rename can still lose the file contents.
  TTRA_RETURN_IF_ERROR(env->Truncate(tmp));
  TTRA_RETURN_IF_ERROR(env->Append(tmp, bytes));
  TTRA_RETURN_IF_ERROR(env->Sync(tmp));
  return env->Rename(tmp, path);
}

Result<Database> LoadDatabase(const std::string& path, DatabaseOptions options,
                              Env* env) {
  TTRA_ASSIGN_OR_RETURN(std::string bytes, env->Read(path));
  return DecodeDatabase(bytes, options);
}

}  // namespace ttra
