#ifndef TTRA_ROLLBACK_PERSISTENCE_H_
#define TTRA_ROLLBACK_PERSISTENCE_H_

#include <string>

#include "rollback/database.h"
#include "storage/env.h"

namespace ttra {

/// Whole-database persistence: every relation's type, scheme history, and
/// complete logical state sequence, plus the database's transaction
/// counter, in one checksummed frame. The storage engine is *not* part of
/// the format — it is an implementation choice, so a database saved from
/// a delta-engine process can be loaded into a checkpoint-engine one (the
/// paper's point that the semantics defines the information content, and
/// engines merely realize it).

/// Serializes the database to bytes.
std::string EncodeDatabase(const Database& db);

/// Rebuilds a database from EncodeDatabase output. Relations are stored
/// with the engines configured by `options`. Any corruption (bad magic,
/// checksum, truncation, invalid payload) yields kCorruption.
Result<Database> DecodeDatabase(std::string_view data,
                                DatabaseOptions options = {});

/// Writes EncodeDatabase output to a file, crash-safely: the bytes go to
/// `path + ".tmp"`, are synced, and the temp file is atomically renamed
/// over `path` with the rename itself made durable (directory fsync). A
/// crash at any point leaves either the old file or the new one, never a
/// mix or a disappearing file.
Status SaveDatabase(const Database& db, const std::string& path,
                    Env* env = Env::Default());

/// Reads and decodes a database file.
Result<Database> LoadDatabase(const std::string& path,
                              DatabaseOptions options = {},
                              Env* env = Env::Default());

}  // namespace ttra

#endif  // TTRA_ROLLBACK_PERSISTENCE_H_
