#include "rollback/relation.h"

#include <algorithm>

namespace ttra {

std::string_view RelationTypeName(RelationType type) {
  switch (type) {
    case RelationType::kSnapshot:
      return "snapshot";
    case RelationType::kRollback:
      return "rollback";
    case RelationType::kHistorical:
      return "historical";
    case RelationType::kTemporal:
      return "temporal";
  }
  return "unknown";
}

Result<RelationType> ParseRelationType(std::string_view name) {
  if (name == "snapshot") return RelationType::kSnapshot;
  if (name == "rollback") return RelationType::kRollback;
  if (name == "historical") return RelationType::kHistorical;
  if (name == "temporal") return RelationType::kTemporal;
  return InvalidArgumentError("unknown relation type: " + std::string(name));
}

bool HoldsSnapshotStates(RelationType type) {
  return type == RelationType::kSnapshot || type == RelationType::kRollback;
}

bool RetainsHistory(RelationType type) {
  return type == RelationType::kRollback || type == RelationType::kTemporal;
}

Relation Relation::Make(RelationType type, Schema schema,
                        TransactionNumber defined_at, StorageKind storage,
                        size_t checkpoint_interval, size_t cache_capacity) {
  Relation r;
  r.type_ = type;
  r.storage_ = storage;
  r.schema_history_.emplace_back(std::move(schema), defined_at);
  if (HoldsSnapshotStates(type)) {
    r.slog_ = MakeStateLog<SnapshotState>(storage, checkpoint_interval,
                                          cache_capacity);
  } else {
    r.hlog_ = MakeStateLog<HistoricalState>(storage, checkpoint_interval,
                                            cache_capacity);
  }
  return r;
}

const Schema& Relation::SchemaAt(TransactionNumber txn) const {
  // Last scheme whose installation txn is <= txn; the define-time scheme
  // if txn precedes every installation.
  auto it = std::upper_bound(
      schema_history_.begin(), schema_history_.end(), txn,
      [](TransactionNumber t, const auto& e) { return t < e.second; });
  if (it == schema_history_.begin()) return schema_history_.front().first;
  return std::prev(it)->first;
}

Status Relation::SetState(const SnapshotState& state, TransactionNumber txn) {
  if (!HoldsSnapshotStates(type_)) {
    return TypeMismatchError(
        "cannot store a snapshot state in a relation of type " +
        std::string(RelationTypeName(type_)));
  }
  if (state.schema() != schema()) {
    return SchemaMismatchError("state schema " + state.schema().ToString() +
                               " does not match relation schema " +
                               schema().ToString());
  }
  if (RetainsHistory(type_)) return slog_->Append(state, txn);
  return slog_->ReplaceLast(state, txn);
}

Status Relation::SetState(const HistoricalState& state,
                          TransactionNumber txn) {
  if (HoldsSnapshotStates(type_)) {
    return TypeMismatchError(
        "cannot store an historical state in a relation of type " +
        std::string(RelationTypeName(type_)));
  }
  if (state.schema() != schema()) {
    return SchemaMismatchError("state schema " + state.schema().ToString() +
                               " does not match relation schema " +
                               schema().ToString());
  }
  if (RetainsHistory(type_)) return hlog_->Append(state, txn);
  return hlog_->ReplaceLast(state, txn);
}

Result<SnapshotState> Relation::SnapshotAt(TransactionNumber txn) const {
  if (!HoldsSnapshotStates(type_)) {
    return InvalidRollbackError(
        "relation of type " + std::string(RelationTypeName(type_)) +
        " holds historical states, not snapshot states");
  }
  // States are copy-on-write, so dereferencing the shared pointer hands
  // back an O(1) handle to the stored tuples — no materialization.
  if (std::shared_ptr<const SnapshotState> state = slog_->StateAt(txn)) {
    return *state;
  }
  return SnapshotState::Empty(SchemaAt(txn));
}

Result<HistoricalState> Relation::HistoricalAt(TransactionNumber txn) const {
  if (HoldsSnapshotStates(type_)) {
    return InvalidRollbackError(
        "relation of type " + std::string(RelationTypeName(type_)) +
        " holds snapshot states, not historical states");
  }
  if (std::shared_ptr<const HistoricalState> state = hlog_->StateAt(txn)) {
    return *state;
  }
  return HistoricalState::Empty(SchemaAt(txn));
}

Status Relation::SetSchema(Schema schema, TransactionNumber txn) {
  if (!schema_history_.empty() && txn <= schema_history_.back().second &&
      !(schema_history_.size() == 1 && txn == schema_history_.back().second)) {
    return InternalError("non-increasing transaction number in SetSchema");
  }
  if (schema == this->schema()) return Status::Ok();  // no-op change
  schema_history_.emplace_back(std::move(schema), txn);
  return Status::Ok();
}

size_t Relation::history_length() const {
  return slog_ ? slog_->size() : hlog_->size();
}

TransactionNumber Relation::TxnAt(size_t i) const {
  return slog_ ? slog_->TxnAt(i) : hlog_->TxnAt(i);
}

size_t Relation::ApproxBytes() const {
  return slog_ ? slog_->ApproxBytes() : hlog_->ApproxBytes();
}

Relation Relation::Clone() const {
  Relation r;
  r.type_ = type_;
  r.storage_ = storage_;
  r.schema_history_ = schema_history_;
  if (slog_) r.slog_ = slog_->Clone();
  if (hlog_) r.hlog_ = hlog_->Clone();
  return r;
}

}  // namespace ttra
