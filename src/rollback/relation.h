#ifndef TTRA_ROLLBACK_RELATION_H_
#define TTRA_ROLLBACK_RELATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/serialize.h"
#include "storage/state_log.h"

namespace ttra {

/// The paper's RELATION TYPE domain (§3.2, extended in §4).
enum class RelationType : uint8_t {
  kSnapshot = 0,    ///< one snapshot state, replaced on update
  kRollback = 1,    ///< sequence of snapshot states indexed by txn time
  kHistorical = 2,  ///< one historical state, replaced on update
  kTemporal = 3,    ///< sequence of historical states indexed by txn time
};

std::string_view RelationTypeName(RelationType type);
Result<RelationType> ParseRelationType(std::string_view name);

/// True for snapshot/rollback (the relation's states are snapshot states).
bool HoldsSnapshotStates(RelationType type);
/// True for rollback/temporal (all past states are retained).
bool RetainsHistory(RelationType type);

/// An element of the paper's RELATION semantic domain: a relation type
/// paired with a sequence of (state, transaction-number) pairs. The
/// sequence lives behind a StateLog engine; FINDSTATE is `SnapshotAt` /
/// `HistoricalAt`.
///
/// Extension beyond the paper: relations carry a declared scheme (states
/// are self-describing in the paper; a declared scheme gives empty states
/// a type and enables static analysis), and the scheme itself is versioned
/// by transaction time (the scheme-evolution extension the paper assigns
/// to its companion TR).
class Relation {
 public:
  /// An unusable placeholder; use Make.
  Relation() = default;

  static Relation Make(RelationType type, Schema schema,
                       TransactionNumber defined_at,
                       StorageKind storage = StorageKind::kFullCopy,
                       size_t checkpoint_interval = 16,
                       size_t cache_capacity = kDefaultFindStateCacheCapacity);

  RelationType type() const { return type_; }

  /// The scheme current at the most recent transaction.
  const Schema& schema() const { return schema_history_.back().first; }

  /// The scheme current at transaction `txn` (scheme evolution: schemes
  /// are versioned by transaction time exactly like states).
  const Schema& SchemaAt(TransactionNumber txn) const;

  /// The paper's modify_state dispatch (§3.5): replaces the single state
  /// of snapshot/historical relations, appends for rollback/temporal.
  /// `txn` is the (already incremented) commit transaction number.
  /// Fails if the state kind or scheme does not match the relation.
  Status SetState(const SnapshotState& state, TransactionNumber txn);
  Status SetState(const HistoricalState& state, TransactionNumber txn);

  /// FINDSTATE for snapshot-state relations: the state current at `txn`,
  /// or the empty state over SchemaAt(txn) when none exists (the paper's
  /// "empty set"). Fails on historical/temporal relations.
  Result<SnapshotState> SnapshotAt(TransactionNumber txn) const;

  /// FINDSTATE for historical-state relations.
  Result<HistoricalState> HistoricalAt(TransactionNumber txn) const;

  /// Scheme evolution: installs a new scheme effective at `txn`.
  /// Subsequent SetState calls must conform to it; past states keep their
  /// recorded schemes.
  Status SetSchema(Schema schema, TransactionNumber txn);

  /// The full scheme-version history: (scheme, installed-at txn) pairs in
  /// increasing transaction order. Index 0 is the define-time scheme.
  const std::vector<std::pair<Schema, TransactionNumber>>& schema_history()
      const {
    return schema_history_;
  }

  /// Number of (state, txn) pairs currently recorded.
  size_t history_length() const;
  /// Transaction number of the i-th recorded pair.
  TransactionNumber TxnAt(size_t i) const;
  /// Storage-engine footprint (experiment E3).
  size_t ApproxBytes() const;
  StorageKind storage_kind() const { return storage_; }

  /// Deep copy (value semantics for Database::Clone).
  Relation Clone() const;

 private:
  RelationType type_ = RelationType::kSnapshot;
  StorageKind storage_ = StorageKind::kFullCopy;
  // Scheme versions in increasing transaction order; never empty after Make.
  std::vector<std::pair<Schema, TransactionNumber>> schema_history_;
  // Exactly one of these is non-null, matching HoldsSnapshotStates(type_).
  std::unique_ptr<StateLog<SnapshotState>> slog_;
  std::unique_ptr<StateLog<HistoricalState>> hlog_;
};

}  // namespace ttra

#endif  // TTRA_ROLLBACK_RELATION_H_
