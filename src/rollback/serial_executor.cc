#include "rollback/serial_executor.h"


namespace ttra {

Result<TransactionNumber> SerialExecutor::Submit(
    const std::function<Status(Database&)>& body) {
  WriterMutexLock lock(mutex_);
  TTRA_RETURN_IF_ERROR(body(db_));
  return db_.transaction_number();
}

Result<TransactionNumber> SerialExecutor::SubmitAtomic(
    const std::function<Status(Database&)>& body) {
  WriterMutexLock lock(mutex_);
  Database scratch = db_.Clone();
  TTRA_RETURN_IF_ERROR(body(scratch));
  db_ = std::move(scratch);
  return db_.transaction_number();
}

Status SerialExecutor::Read(
    const std::function<Status(const Database&)>& reader) const {
  ReaderMutexLock lock(mutex_);
  return reader(db_);
}

TransactionNumber SerialExecutor::transaction_number() const {
  ReaderMutexLock lock(mutex_);
  return db_.transaction_number();
}

Result<SnapshotState> SerialExecutor::Rollback(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  ReaderMutexLock lock(mutex_);
  return db_.Rollback(name, txn);
}

Result<HistoricalState> SerialExecutor::RollbackHistorical(
    const std::string& name, std::optional<TransactionNumber> txn) const {
  ReaderMutexLock lock(mutex_);
  return db_.RollbackHistorical(name, txn);
}

Database SerialExecutor::Snapshot() const {
  ReaderMutexLock lock(mutex_);
  return db_.Clone();
}

void SerialExecutor::Reset(Database db) {
  WriterMutexLock lock(mutex_);
  db_ = std::move(db);
}

}  // namespace ttra
