#ifndef TTRA_ROLLBACK_SERIAL_EXECUTOR_H_
#define TTRA_ROLLBACK_SERIAL_EXECUTOR_H_

#include <functional>
#include <string_view>

#include "rollback/database.h"
#include "util/mutex.h"

namespace ttra {

/// Thread-safe database front-end realizing the paper's §3.2 concurrency
/// remark: implementations "may permit concurrent transactions ... as long
/// as the semantics of sequential update with a monotonically increasing
/// transaction time is preserved". Writers are serialized by an exclusive
/// lock (commit order = transaction-number order); readers run
/// concurrently under a shared lock and always observe a committed state.
///
/// Two write modes:
///  * Submit — the paper's sequencing semantics: commands apply one at a
///    time; if one fails mid-body, earlier commands stay applied (each
///    command is individually atomic, bodies are not).
///  * SubmitAtomic — an extension: the body runs against a clone and is
///    swapped in only on success, making the whole body all-or-nothing.
class SerialExecutor {
 public:
  explicit SerialExecutor(DatabaseOptions options = {}) : db_(options) {}

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  /// Runs `body` under the exclusive commit lock. Returns the transaction
  /// number after the body completed (even if it failed part-way).
  Result<TransactionNumber> Submit(
      const std::function<Status(Database&)>& body);

  /// Runs `body` on a private clone; on success the clone replaces the
  /// database, on failure the database is untouched.
  Result<TransactionNumber> SubmitAtomic(
      const std::function<Status(Database&)>& body);

  /// Runs `reader` under the shared lock with a const view.
  Status Read(const std::function<Status(const Database&)>& reader) const;

  /// Convenience readers (shared lock).
  TransactionNumber transaction_number() const;
  Result<SnapshotState> Rollback(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const;
  Result<HistoricalState> RollbackHistorical(
      const std::string& name,
      std::optional<TransactionNumber> txn = std::nullopt) const;

  /// Consistent point-in-time copy of the whole database.
  Database Snapshot() const;

  /// Replaces the database wholesale under the exclusive lock. Reserved
  /// for DurableExecutor: recovery (installing a checkpoint + replayed
  /// WAL) and group commit (installing a staged batch after its record is
  /// durable). Normal code must go through Submit.
  void Reset(Database db);

 private:
  mutable SharedMutex mutex_;
  Database db_ TTRA_GUARDED_BY(mutex_);
};

}  // namespace ttra

#endif  // TTRA_ROLLBACK_SERIAL_EXECUTOR_H_
