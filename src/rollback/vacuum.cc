#include "rollback/vacuum.h"

#include "storage/serialize.h"

namespace ttra {

namespace {

constexpr char kArchiveMagic[] = "TTRAARC1";
constexpr size_t kMagicLen = 8;

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string_view s, std::string& out) {
  PutU64(s.size(), out);
  out.append(s);
}

/// Rebuilds a relation of the same type/scheme-history as `original` from
/// the given state sequences (snapshot or historical, depending on type),
/// replaying scheme versions at their recorded transactions.
template <typename StateT>
Relation RebuildRelation(
    const Relation& original, const DatabaseOptions& options,
    const std::vector<std::pair<StateT, TransactionNumber>>& sequence) {
  const auto& schemas = original.schema_history();
  Relation rebuilt =
      Relation::Make(original.type(), schemas.front().first,
                     schemas.front().second, options.storage,
                     options.checkpoint_interval);
  size_t next_schema = 1;
  for (const auto& [state, txn] : sequence) {
    while (next_schema < schemas.size() && schemas[next_schema].second <= txn) {
      (void)rebuilt.SetSchema(schemas[next_schema].first,
                              schemas[next_schema].second);
      ++next_schema;
    }
    (void)rebuilt.SetState(state, txn);
  }
  while (next_schema < schemas.size()) {
    (void)rebuilt.SetSchema(schemas[next_schema].first,
                            schemas[next_schema].second);
    ++next_schema;
  }
  return rebuilt;
}

template <typename StateT>
Result<VacuumResult> VacuumTyped(
    Database& db, const std::string& name, const Relation& relation,
    TransactionNumber before_txn,
    Result<StateT> (Relation::*state_at)(TransactionNumber) const) {
  std::vector<std::pair<StateT, TransactionNumber>> prefix;
  std::vector<std::pair<StateT, TransactionNumber>> suffix;
  for (size_t i = 0; i < relation.history_length(); ++i) {
    const TransactionNumber txn = relation.TxnAt(i);
    TTRA_ASSIGN_OR_RETURN(StateT state, (relation.*state_at)(txn));
    if (txn < before_txn) {
      prefix.emplace_back(std::move(state), txn);
    } else {
      suffix.emplace_back(std::move(state), txn);
    }
  }
  VacuumResult result;
  result.archived_states = prefix.size();
  if (!prefix.empty()) {
    result.archive.append(kArchiveMagic, kMagicLen);
    PutString(name, result.archive);
    result.archive.push_back(HoldsSnapshotStates(relation.type()) ? 0 : 1);
    result.archive += EncodeStateSequence(prefix);
    Relation rebuilt =
        RebuildRelation(relation, db.options(), suffix);
    db.RestoreRelation(name, std::move(rebuilt));
    db.RestoreTransactionNumber(db.transaction_number() + 1);
  }
  return result;
}

template <typename StateT>
Status AttachTyped(Database& db, const std::string& name,
                   const Relation& relation, std::string_view sequence_blob,
                   Result<StateT> (Relation::*state_at)(TransactionNumber)
                       const) {
  TTRA_ASSIGN_OR_RETURN(auto archived,
                        DecodeStateSequence<StateT>(sequence_blob));
  if (archived.empty()) return Status::Ok();
  if (relation.history_length() > 0 &&
      archived.back().second >= relation.TxnAt(0)) {
    return InvalidArgumentError(
        "archive overlaps the online history: archive ends at txn " +
        std::to_string(archived.back().second) + ", online starts at " +
        std::to_string(relation.TxnAt(0)));
  }
  // Full sequence = archive ++ online.
  for (size_t i = 0; i < relation.history_length(); ++i) {
    const TransactionNumber txn = relation.TxnAt(i);
    TTRA_ASSIGN_OR_RETURN(StateT state, (relation.*state_at)(txn));
    archived.emplace_back(std::move(state), txn);
  }
  Relation rebuilt = RebuildRelation(relation, db.options(), archived);
  db.RestoreRelation(name, std::move(rebuilt));
  db.RestoreTransactionNumber(db.transaction_number() + 1);
  return Status::Ok();
}

}  // namespace

Result<VacuumResult> VacuumRelation(Database& db, const std::string& name,
                                    TransactionNumber before_txn) {
  const Relation* relation = db.Find(name);
  if (relation == nullptr) {
    return UnknownIdentifierError("vacuum of undefined relation: " + name);
  }
  if (!RetainsHistory(relation->type())) {
    return InvalidArgumentError(
        "vacuum applies to rollback/temporal relations; '" + name + "' is " +
        std::string(RelationTypeName(relation->type())));
  }
  if (HoldsSnapshotStates(relation->type())) {
    return VacuumTyped<SnapshotState>(db, name, *relation, before_txn,
                                      &Relation::SnapshotAt);
  }
  return VacuumTyped<HistoricalState>(db, name, *relation, before_txn,
                                      &Relation::HistoricalAt);
}

Status AttachArchive(Database& db, const std::string& name,
                     std::string_view archive) {
  const Relation* relation = db.Find(name);
  if (relation == nullptr) {
    return UnknownIdentifierError("attach to undefined relation: " + name);
  }
  if (archive.size() < kMagicLen ||
      archive.substr(0, kMagicLen) != kArchiveMagic) {
    return CorruptionError("bad archive magic");
  }
  ByteReader reader(archive.substr(kMagicLen));
  TTRA_ASSIGN_OR_RETURN(std::string archived_name, reader.ReadString());
  if (archived_name != name) {
    return InvalidArgumentError("archive belongs to relation '" +
                                archived_name + "', not '" + name + "'");
  }
  TTRA_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadByte());
  const bool snapshot_kind = kind == 0;
  if (kind > 1) return CorruptionError("bad archive state kind");
  if (snapshot_kind != HoldsSnapshotStates(relation->type())) {
    return TypeMismatchError(
        "archive state kind does not match relation type");
  }
  std::string_view sequence_blob =
      archive.substr(kMagicLen + 8 + archived_name.size() + 1);
  if (snapshot_kind) {
    return AttachTyped<SnapshotState>(db, name, *relation, sequence_blob,
                                      &Relation::SnapshotAt);
  }
  return AttachTyped<HistoricalState>(db, name, *relation, sequence_blob,
                                      &Relation::HistoricalAt);
}

}  // namespace ttra
