#ifndef TTRA_ROLLBACK_VACUUM_H_
#define TTRA_ROLLBACK_VACUUM_H_

#include <string>

#include "rollback/database.h"

namespace ttra {

/// Archival ("migrate rollback relations to tape", paper §3.1 note): the
/// states of a rollback or temporal relation recorded strictly before a
/// cutoff transaction are split off into a checksummed archive blob and
/// removed from the online relation. The online relation keeps every
/// state at or after the cutoff; FINDSTATE for older transactions then
/// reports the relation as empty at that time (exactly as if the history
/// started at the cutoff), until the archive is re-attached.

struct VacuumResult {
  /// Serialized archive of the removed prefix (empty when nothing was cut).
  std::string archive;
  /// Number of states moved into the archive.
  size_t archived_states = 0;
};

/// Cuts the states of `name` with transaction number < `before_txn` into
/// an archive. Requires a rollback or temporal relation. The database's
/// transaction counter is incremented (vacuuming is a change to what the
/// database stores, so it is itself a transaction).
Result<VacuumResult> VacuumRelation(Database& db, const std::string& name,
                                    TransactionNumber before_txn);

/// Re-attaches an archive produced by VacuumRelation to the same relation:
/// the archived prefix is merged back in front of the online states. The
/// archive's last transaction must precede the online relation's first.
/// Increments the transaction counter.
Status AttachArchive(Database& db, const std::string& name,
                     std::string_view archive);

}  // namespace ttra

#endif  // TTRA_ROLLBACK_VACUUM_H_
