#include "snapshot/aggregate.h"

#include <map>

namespace ttra {

std::string_view AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "unknown";
}

Result<AggFunc> ParseAggFunc(std::string_view name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg") return AggFunc::kAvg;
  return InvalidArgumentError("unknown aggregate function: " +
                              std::string(name));
}

Result<ValueType> AggResultType(AggFunc func, ValueType input) {
  switch (func) {
    case AggFunc::kCount:
      return ValueType::kInt;
    case AggFunc::kSum:
      if (input == ValueType::kInt || input == ValueType::kDouble) {
        return input;
      }
      return TypeMismatchError("sum requires a numeric attribute; got " +
                               std::string(ValueTypeName(input)));
    case AggFunc::kAvg:
      if (input == ValueType::kInt || input == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return TypeMismatchError("avg requires a numeric attribute; got " +
                               std::string(ValueTypeName(input)));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input;  // any totally-ordered domain
  }
  return InternalError("unhandled aggregate function");
}

Result<Schema> AggregateSchema(const Schema& input,
                               const std::vector<std::string>& group_attrs,
                               const std::vector<AggregateDef>& aggregates) {
  TTRA_ASSIGN_OR_RETURN(Schema group_schema, input.Project(group_attrs));
  std::vector<Attribute> attrs = group_schema.attributes();
  for (const AggregateDef& def : aggregates) {
    ValueType input_type = ValueType::kInt;  // irrelevant for count
    if (def.func != AggFunc::kCount) {
      auto index = input.IndexOf(def.attr);
      if (!index.has_value()) {
        return SchemaMismatchError("aggregate over unknown attribute: " +
                                   def.attr);
      }
      input_type = input.attribute(*index).type;
    }
    TTRA_ASSIGN_OR_RETURN(ValueType out_type,
                          AggResultType(def.func, input_type));
    attrs.push_back(Attribute{def.name, out_type});
  }
  return Schema::Make(std::move(attrs));
}

namespace {

/// Streaming accumulator for one aggregate column over one group.
class Accumulator {
 public:
  Accumulator(AggFunc func, ValueType input_type)
      : func_(func), input_type_(input_type) {}

  void Add(const Value& v) {
    ++count_;
    switch (func_) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == ValueType::kInt) {
          int_sum_ += v.AsInt();
          double_sum_ += static_cast<double>(v.AsInt());
        } else {
          double_sum_ += v.AsDouble();
        }
        break;
      case AggFunc::kMin:
        if (count_ == 1 || v < best_) best_ = v;
        break;
      case AggFunc::kMax:
        if (count_ == 1 || best_ < v) best_ = v;
        break;
    }
  }

  Value Finish() const {
    switch (func_) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(count_));
      case AggFunc::kSum:
        return input_type_ == ValueType::kInt ? Value::Int(int_sum_)
                                              : Value::Double(double_sum_);
      case AggFunc::kAvg:
        return Value::Double(double_sum_ / static_cast<double>(count_));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return best_;
    }
    return Value::Int(0);
  }

 private:
  AggFunc func_;
  ValueType input_type_;
  size_t count_ = 0;
  int64_t int_sum_ = 0;
  double double_sum_ = 0.0;
  Value best_;
};

}  // namespace

Result<SnapshotState> Aggregate(const SnapshotState& state,
                                const std::vector<std::string>& group_attrs,
                                const std::vector<AggregateDef>& aggregates) {
  TTRA_ASSIGN_OR_RETURN(
      Schema schema, AggregateSchema(state.schema(), group_attrs, aggregates));
  // Resolve attribute positions once.
  std::vector<size_t> group_idx;
  group_idx.reserve(group_attrs.size());
  for (const std::string& name : group_attrs) {
    group_idx.push_back(*state.schema().IndexOf(name));
  }
  struct AggSlot {
    AggFunc func;
    size_t attr_idx;  // unused for count
    ValueType input_type;
  };
  std::vector<AggSlot> slots;
  slots.reserve(aggregates.size());
  for (const AggregateDef& def : aggregates) {
    AggSlot slot{def.func, 0, ValueType::kInt};
    if (def.func != AggFunc::kCount) {
      slot.attr_idx = *state.schema().IndexOf(def.attr);
      slot.input_type = state.schema().attribute(slot.attr_idx).type;
    }
    slots.push_back(slot);
  }

  std::map<std::vector<Value>, std::vector<Accumulator>> groups;
  for (const Tuple& tuple : state.tuples()) {
    std::vector<Value> key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(tuple.at(i));
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<Accumulator> accs;
      accs.reserve(slots.size());
      for (const AggSlot& slot : slots) {
        accs.emplace_back(slot.func, slot.input_type);
      }
      it = groups.emplace(std::move(key), std::move(accs)).first;
    }
    for (size_t a = 0; a < slots.size(); ++a) {
      it->second[a].Add(slots[a].func == AggFunc::kCount
                            ? Value::Int(0)
                            : tuple.at(slots[a].attr_idx));
    }
  }

  std::vector<Tuple> rows;
  rows.reserve(groups.size());
  for (const auto& [key, accs] : groups) {
    std::vector<Value> values = key;
    for (const Accumulator& acc : accs) values.push_back(acc.Finish());
    rows.emplace_back(std::move(values));
  }
  return SnapshotState::Make(std::move(schema), std::move(rows));
}

}  // namespace ttra
