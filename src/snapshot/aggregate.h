#ifndef TTRA_SNAPSHOT_AGGREGATE_H_
#define TTRA_SNAPSHOT_AGGREGATE_H_

#include <string>
#include <vector>

#include "snapshot/state.h"
#include "util/result.h"

namespace ttra {

/// Aggregate functions (the Quel aggregate vocabulary). `count` takes no
/// attribute; the others aggregate one attribute.
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggFuncName(AggFunc func);
Result<AggFunc> ParseAggFunc(std::string_view name);

/// One output column of a summarize: `name = func(attr)`.
struct AggregateDef {
  std::string name;
  AggFunc func = AggFunc::kCount;
  std::string attr;  // empty for count

  friend bool operator==(const AggregateDef&, const AggregateDef&) = default;
};

/// Result type of `func` applied to an attribute of type `input` —
/// count → int, sum preserves int/double, avg → double, min/max preserve
/// any totally-ordered type. Errors on non-aggregatable combinations.
Result<ValueType> AggResultType(AggFunc func, ValueType input);

/// Derives the summarize result scheme: the group attributes (in the
/// given order) followed by one column per aggregate definition.
Result<Schema> AggregateSchema(const Schema& input,
                               const std::vector<std::string>& group_attrs,
                               const std::vector<AggregateDef>& aggregates);

/// Groups the state's tuples by `group_attrs` and computes the aggregate
/// columns per group. A state with no tuples yields no groups (also for
/// the empty group list); this keeps the operator snapshot-reducible when
/// lifted to historical states.
Result<SnapshotState> Aggregate(const SnapshotState& state,
                                const std::vector<std::string>& group_attrs,
                                const std::vector<AggregateDef>& aggregates);

}  // namespace ttra

#endif  // TTRA_SNAPSHOT_AGGREGATE_H_
