#include "snapshot/csv.h"

#include <cctype>

namespace ttra {

namespace {

bool NeedsQuoting(std::string_view field) {
  if (field.empty()) return true;  // distinguish "" from a missing value
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string_view field, bool force_quotes,
                 std::string& out) {
  if (!force_quotes && !NeedsQuoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';  // RFC 4180: doubled quote
    out += c;
  }
  out += '"';
}

void AppendValue(const Value& value, std::string& out) {
  switch (value.type()) {
    case ValueType::kInt:
      out += std::to_string(value.AsInt());
      break;
    case ValueType::kDouble: {
      // Reuse the language literal (guaranteed to re-parse as double).
      out += value.ToString();
      break;
    }
    case ValueType::kString:
      // Always quote strings so "42" round-trips as a string visually.
      AppendField(value.AsString(), /*force_quotes=*/true, out);
      break;
    case ValueType::kBool:
      out += value.AsBool() ? "true" : "false";
      break;
    case ValueType::kUserTime:
      out += "@" + std::to_string(value.AsTime().ticks);
      break;
  }
}

/// Splits one CSV record (no trailing newline) into fields.
Result<std::vector<std::string>> SplitRecord(std::string_view line,
                                             size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return ParseError("unterminated quote in CSV line " +
                      std::to_string(line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseField(const std::string& field, ValueType type,
                         size_t line_no) {
  auto fail = [&](std::string_view what) {
    return ParseError("CSV line " + std::to_string(line_no) + ": '" + field +
                      "' is not a valid " + std::string(what));
  };
  try {
    switch (type) {
      case ValueType::kInt: {
        size_t used = 0;
        const int64_t v = std::stoll(field, &used);
        if (used != field.size()) return fail("int");
        return Value::Int(v);
      }
      case ValueType::kDouble: {
        size_t used = 0;
        const double v = std::stod(field, &used);
        if (used != field.size()) return fail("double");
        return Value::Double(v);
      }
      case ValueType::kString:
        return Value::String(field);
      case ValueType::kBool:
        if (field == "true") return Value::Bool(true);
        if (field == "false") return Value::Bool(false);
        return fail("bool");
      case ValueType::kUserTime: {
        if (field.empty() || field[0] != '@') return fail("usertime");
        size_t used = 0;
        const int64_t v = std::stoll(field.substr(1), &used);
        if (used != field.size() - 1) return fail("usertime");
        return Value::Time(v);
      }
    }
  } catch (const std::exception&) {
    return fail(ValueTypeName(type));
  }
  return InternalError("unhandled value type in CSV parse");
}

}  // namespace

std::string ToCsv(const SnapshotState& state) {
  std::string out;
  const Schema& schema = state.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += ',';
    AppendField(schema.attribute(i).name, /*force_quotes=*/false, out);
  }
  out += '\n';
  for (const Tuple& tuple : state.tuples()) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out += ',';
      AppendValue(tuple.at(i), out);
    }
    out += '\n';
  }
  return out;
}

Result<SnapshotState> FromCsv(const Schema& schema, std::string_view csv) {
  // Split into records with quote awareness: newlines inside quoted
  // fields (RFC 4180) do not terminate a record.
  std::vector<std::string_view> lines;
  size_t start = 0;
  bool in_quotes = false;
  for (size_t i = 0; i <= csv.size(); ++i) {
    if (i < csv.size() && csv[i] == '"') in_quotes = !in_quotes;
    if (i == csv.size() || (csv[i] == '\n' && !in_quotes)) {
      std::string_view line = csv.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) lines.push_back(line);
      start = i + 1;
    }
  }
  if (lines.empty()) return ParseError("CSV input has no header row");

  TTRA_ASSIGN_OR_RETURN(std::vector<std::string> header,
                        SplitRecord(lines[0], 1));
  if (header.size() != schema.size()) {
    return SchemaMismatchError(
        "CSV header has " + std::to_string(header.size()) +
        " column(s); schema expects " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.attribute(i).name) {
      return SchemaMismatchError("CSV column '" + header[i] +
                                 "' does not match schema attribute '" +
                                 schema.attribute(i).name + "'");
    }
  }

  std::vector<Tuple> tuples;
  tuples.reserve(lines.size() - 1);
  for (size_t l = 1; l < lines.size(); ++l) {
    TTRA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitRecord(lines[l], l + 1));
    if (fields.size() != schema.size()) {
      return SchemaMismatchError("CSV line " + std::to_string(l + 1) +
                                 " has " + std::to_string(fields.size()) +
                                 " field(s); expected " +
                                 std::to_string(schema.size()));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      TTRA_ASSIGN_OR_RETURN(
          Value v, ParseField(fields[i], schema.attribute(i).type, l + 1));
      values.push_back(std::move(v));
    }
    tuples.emplace_back(std::move(values));
  }
  return SnapshotState::Make(schema, std::move(tuples));
}

}  // namespace ttra
