#ifndef TTRA_SNAPSHOT_CSV_H_
#define TTRA_SNAPSHOT_CSV_H_

#include <string>
#include <string_view>

#include "snapshot/state.h"
#include "util/result.h"

namespace ttra {

/// CSV interop for snapshot states (RFC-4180 style quoting).
///
/// The header row carries the attribute names; values are rendered per
/// type: integers and doubles as plain numbers, bools as true/false,
/// user-defined time as @ticks, strings quoted whenever they contain a
/// comma, quote, newline, or look like another literal form.

/// Renders the state as CSV, header first, tuples in canonical order.
std::string ToCsv(const SnapshotState& state);

/// Parses CSV produced by ToCsv (or any conforming file) into a state
/// over `schema`. The header row must name exactly the schema's
/// attributes, in order. Value parsing follows the attribute types.
Result<SnapshotState> FromCsv(const Schema& schema, std::string_view csv);

}  // namespace ttra

#endif  // TTRA_SNAPSHOT_CSV_H_
