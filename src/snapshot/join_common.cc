#include "snapshot/join_common.h"

#include <optional>
#include <string>
#include <utility>

namespace ttra::snapshot_ops {

void CollectConjuncts(const Predicate& p, std::vector<Predicate>& out) {
  if (p.kind() == Predicate::Kind::kAnd) {
    CollectConjuncts(p.left(), out);
    CollectConjuncts(p.right(), out);
  } else {
    out.push_back(p);
  }
}

namespace {

struct EquiPair {
  size_t lhs_index;
  size_t rhs_index;
};

// An attr = attr conjunct usable as a hash-join key: one side resolves in
// the left scheme, the other in the right scheme, with identical types.
std::optional<EquiPair> AsEquiPair(const Predicate& p, const Schema& lhs,
                                   const Schema& rhs) {
  if (p.kind() != Predicate::Kind::kComparison || p.op() != CompareOp::kEq ||
      !p.lhs().is_attr() || !p.rhs().is_attr()) {
    return std::nullopt;
  }
  const std::string& a = p.lhs().attr_name();
  const std::string& b = p.rhs().attr_name();
  // Product schemes are name-disjoint, so each name resolves on one side.
  if (auto li = lhs.IndexOf(a)) {
    auto rj = rhs.IndexOf(b);
    if (rj && lhs.attribute(*li).type == rhs.attribute(*rj).type) {
      return EquiPair{*li, *rj};
    }
    return std::nullopt;
  }
  if (auto li = lhs.IndexOf(b)) {
    auto rj = rhs.IndexOf(a);
    if (rj && lhs.attribute(*li).type == rhs.attribute(*rj).type) {
      return EquiPair{*li, *rj};
    }
  }
  return std::nullopt;
}

}  // namespace

EquiJoinSplit SplitEquiJoin(const Predicate& predicate, const Schema& lhs,
                            const Schema& rhs) {
  std::vector<Predicate> conjuncts;
  CollectConjuncts(predicate, conjuncts);
  EquiJoinSplit split;
  for (const Predicate& c : conjuncts) {
    if (auto pair = AsEquiPair(c, lhs, rhs)) {
      split.lhs_keys.push_back(pair->lhs_index);
      split.rhs_keys.push_back(pair->rhs_index);
    } else if (!c.IsTrueLiteral()) {
      split.residual = split.residual.IsTrueLiteral()
                           ? c
                           : Predicate::And(std::move(split.residual), c);
    }
  }
  return split;
}

Tuple JoinKeyOf(const Tuple& t, const std::vector<size_t>& indices) {
  std::vector<Value> values;
  values.reserve(indices.size());
  for (size_t i : indices) values.push_back(t.at(i));
  return Tuple(std::move(values));
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  std::vector<Value> values = a.values();
  values.insert(values.end(), b.values().begin(), b.values().end());
  return Tuple(std::move(values));
}

}  // namespace ttra::snapshot_ops
