#ifndef TTRA_SNAPSHOT_JOIN_COMMON_H_
#define TTRA_SNAPSHOT_JOIN_COMMON_H_

#include <vector>

#include "snapshot/predicate.h"
#include "snapshot/schema.h"
#include "snapshot/tuple.h"

namespace ttra::snapshot_ops {

// Shared pieces of the snapshot and historical θ-join kernels. Both joins
// operate on value tuples over name-disjoint schemes (the historical one
// additionally intersects valid-time elements), so the predicate
// decomposition and key extraction are identical — this header is their
// single definition.

/// Splits a predicate into its top-level AND conjuncts.
void CollectConjuncts(const Predicate& p, std::vector<Predicate>& out);

/// The hash-join decomposition of a θ-join predicate: parallel key-column
/// lists (lhs_keys[i] equi-joins with rhs_keys[i]) plus the residual
/// conjunction applied per candidate pair.
struct EquiJoinSplit {
  std::vector<size_t> lhs_keys;
  std::vector<size_t> rhs_keys;
  Predicate residual = Predicate::True();

  bool has_keys() const { return !lhs_keys.empty(); }
  bool has_residual() const { return !residual.IsTrueLiteral(); }
};

/// Extracts every top-level `attr = attr` conjunct whose sides resolve in
/// opposite schemes with identical types; everything else (including
/// mixed int/double equality, which compares equal across types but
/// hashes differently) lands in the residual. True literals are dropped.
EquiJoinSplit SplitEquiJoin(const Predicate& predicate, const Schema& lhs,
                            const Schema& rhs);

/// The key tuple of `t` restricted to `indices`, in index-list order.
Tuple JoinKeyOf(const Tuple& t, const std::vector<size_t>& indices);

/// Tuple concatenation (the product/join combiner).
Tuple ConcatTuples(const Tuple& a, const Tuple& b);

}  // namespace ttra::snapshot_ops

#endif  // TTRA_SNAPSHOT_JOIN_COMMON_H_
