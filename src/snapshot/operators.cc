#include "snapshot/operators.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace ttra::snapshot_ops {

namespace {

Status RequireUnionCompatible(const SnapshotState& lhs,
                              const SnapshotState& rhs,
                              std::string_view op_name) {
  if (lhs.schema() != rhs.schema()) {
    return SchemaMismatchError(std::string(op_name) +
                               " requires identical schemas; got " +
                               lhs.schema().ToString() + " vs " +
                               rhs.schema().ToString());
  }
  return Status::Ok();
}

}  // namespace

Result<SnapshotState> Union(const SnapshotState& lhs,
                            const SnapshotState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "union"));
  std::vector<Tuple> merged;
  merged.reserve(lhs.size() + rhs.size());
  std::merge(lhs.tuples().begin(), lhs.tuples().end(), rhs.tuples().begin(),
             rhs.tuples().end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return SnapshotState::Make(lhs.schema(), std::move(merged));
}

Result<SnapshotState> Difference(const SnapshotState& lhs,
                                 const SnapshotState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "difference"));
  std::vector<Tuple> remaining;
  std::set_difference(lhs.tuples().begin(), lhs.tuples().end(),
                      rhs.tuples().begin(), rhs.tuples().end(),
                      std::back_inserter(remaining));
  return SnapshotState::Make(lhs.schema(), std::move(remaining));
}

Result<SnapshotState> Product(const SnapshotState& lhs,
                              const SnapshotState& rhs) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, lhs.schema().Concat(rhs.schema()));
  std::vector<Tuple> combined;
  combined.reserve(lhs.size() * rhs.size());
  for (const Tuple& a : lhs.tuples()) {
    for (const Tuple& b : rhs.tuples()) {
      std::vector<Value> values = a.values();
      values.insert(values.end(), b.values().begin(), b.values().end());
      combined.emplace_back(std::move(values));
    }
  }
  return SnapshotState::Make(std::move(schema), std::move(combined));
}

Result<SnapshotState> Project(const SnapshotState& state,
                              const std::vector<std::string>& attributes) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Project(attributes));
  std::vector<size_t> indices;
  indices.reserve(attributes.size());
  for (const std::string& name : attributes) {
    indices.push_back(*state.schema().IndexOf(name));
  }
  std::vector<Tuple> projected;
  projected.reserve(state.size());
  for (const Tuple& tuple : state.tuples()) {
    std::vector<Value> values;
    values.reserve(indices.size());
    for (size_t i : indices) values.push_back(tuple.at(i));
    projected.emplace_back(std::move(values));
  }
  return SnapshotState::Make(std::move(schema), std::move(projected));
}

Result<SnapshotState> Select(const SnapshotState& state,
                             const Predicate& predicate) {
  TTRA_RETURN_IF_ERROR(predicate.Validate(state.schema()));
  std::vector<Tuple> selected;
  for (const Tuple& tuple : state.tuples()) {
    TTRA_ASSIGN_OR_RETURN(bool keep, predicate.Eval(state.schema(), tuple));
    if (keep) selected.push_back(tuple);
  }
  return SnapshotState::Make(state.schema(), std::move(selected));
}

Result<SnapshotState> Intersect(const SnapshotState& lhs,
                                const SnapshotState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "intersect"));
  std::vector<Tuple> shared;
  std::set_intersection(lhs.tuples().begin(), lhs.tuples().end(),
                        rhs.tuples().begin(), rhs.tuples().end(),
                        std::back_inserter(shared));
  return SnapshotState::Make(lhs.schema(), std::move(shared));
}

Result<SnapshotState> ThetaJoin(const SnapshotState& lhs,
                                const SnapshotState& rhs,
                                const Predicate& predicate) {
  TTRA_ASSIGN_OR_RETURN(SnapshotState product, Product(lhs, rhs));
  return Select(product, predicate);
}

Result<SnapshotState> NaturalJoin(const SnapshotState& lhs,
                                  const SnapshotState& rhs) {
  // Shared attributes join positionally by name; result schema is lhs's
  // schema followed by rhs's non-shared attributes, as in Maier.
  std::vector<std::pair<size_t, size_t>> shared;  // (lhs index, rhs index)
  std::vector<size_t> rhs_only;
  for (size_t j = 0; j < rhs.schema().size(); ++j) {
    const Attribute& attr = rhs.schema().attribute(j);
    auto i = lhs.schema().IndexOf(attr.name);
    if (i.has_value()) {
      if (lhs.schema().attribute(*i).type != attr.type) {
        return SchemaMismatchError("natural join attribute '" + attr.name +
                                   "' has mismatched types");
      }
      shared.emplace_back(*i, j);
    } else {
      rhs_only.push_back(j);
    }
  }
  std::vector<Attribute> result_attrs = lhs.schema().attributes();
  for (size_t j : rhs_only) result_attrs.push_back(rhs.schema().attribute(j));
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(result_attrs)));

  std::vector<Tuple> joined;
  for (const Tuple& a : lhs.tuples()) {
    for (const Tuple& b : rhs.tuples()) {
      bool match = true;
      for (const auto& [i, j] : shared) {
        if (!(a.at(i) == b.at(j))) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Value> values = a.values();
      for (size_t j : rhs_only) values.push_back(b.at(j));
      joined.emplace_back(std::move(values));
    }
  }
  return SnapshotState::Make(std::move(schema), std::move(joined));
}

Result<SnapshotState> Rename(const SnapshotState& state, std::string_view from,
                             std::string_view to) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Rename(from, to));
  return SnapshotState::Make(std::move(schema), state.tuples());
}

}  // namespace ttra::snapshot_ops
