#include "snapshot/operators.h"

#include <algorithm>
#include <unordered_map>

#include "snapshot/join_common.h"
#include "util/string_util.h"

namespace ttra::snapshot_ops {

namespace {

Status RequireUnionCompatible(const SnapshotState& lhs,
                              const SnapshotState& rhs,
                              std::string_view op_name) {
  if (lhs.schema() != rhs.schema()) {
    return SchemaMismatchError(std::string(op_name) +
                               " requires identical schemas; got " +
                               lhs.schema().ToString() + " vs " +
                               rhs.schema().ToString());
  }
  return Status::Ok();
}

// Note on ordering: concatenation of two tuples drawn from sorted-unique
// operands compares lexicographically by the left part first (fixed
// arity), so emitting the left operand in order with right-side candidates
// in order yields the canonical (sorted, duplicate-free) form directly.
// ConcatTuples/JoinKeyOf/SplitEquiJoin live in join_common.h, shared with
// the historical kernel.

}  // namespace

Result<SnapshotState> Union(const SnapshotState& lhs,
                            const SnapshotState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "union"));
  std::vector<Tuple> merged;
  merged.reserve(lhs.size() + rhs.size());
  std::merge(lhs.tuples().begin(), lhs.tuples().end(), rhs.tuples().begin(),
             rhs.tuples().end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return SnapshotState::FromCanonical(lhs.schema(), std::move(merged));
}

Result<SnapshotState> Difference(const SnapshotState& lhs,
                                 const SnapshotState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "difference"));
  std::vector<Tuple> remaining;
  std::set_difference(lhs.tuples().begin(), lhs.tuples().end(),
                      rhs.tuples().begin(), rhs.tuples().end(),
                      std::back_inserter(remaining));
  return SnapshotState::FromCanonical(lhs.schema(), std::move(remaining));
}

Result<SnapshotState> Product(const SnapshotState& lhs,
                              const SnapshotState& rhs) {
  if (Result<Schema> schema = lhs.schema().Concat(rhs.schema()); schema.ok()) {
    std::vector<Tuple> combined;
    // Guard the n*m reservation: the multiplication can overflow size_t,
    // and even when it does not, a huge product should grow organically
    // instead of failing up front on one giant allocation.
    const size_t n = lhs.size(), m = rhs.size();
    constexpr size_t kReserveCap = size_t{1} << 22;
    if (m != 0 && n <= kReserveCap / m) {
      combined.reserve(n * m);
    }
    for (const Tuple& a : lhs.tuples()) {
      for (const Tuple& b : rhs.tuples()) {
        combined.push_back(ConcatTuples(a, b));
      }
    }
    return SnapshotState::FromCanonical(*std::move(schema),
                                        std::move(combined));
  } else {
    return SchemaMismatchError(
        "product requires attribute-name-disjoint schemas (rename first): " +
        schema.status().message());
  }
}

Result<SnapshotState> Project(const SnapshotState& state,
                              const std::vector<std::string>& attributes) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Project(attributes));
  std::vector<size_t> indices;
  indices.reserve(attributes.size());
  for (const std::string& name : attributes) {
    indices.push_back(*state.schema().IndexOf(name));
  }
  std::vector<Tuple> projected;
  projected.reserve(state.size());
  for (const Tuple& tuple : state.tuples()) {
    std::vector<Value> values;
    values.reserve(indices.size());
    for (size_t i : indices) values.push_back(tuple.at(i));
    projected.emplace_back(std::move(values));
  }
  return SnapshotState::Make(std::move(schema), std::move(projected));
}

Result<SnapshotState> Select(const SnapshotState& state,
                             const Predicate& predicate) {
  TTRA_RETURN_IF_ERROR(predicate.Validate(state.schema()));
  std::vector<Tuple> selected;
  for (const Tuple& tuple : state.tuples()) {
    TTRA_ASSIGN_OR_RETURN(bool keep, predicate.Eval(state.schema(), tuple));
    if (keep) selected.push_back(tuple);
  }
  // A predicate that kept everything returns the input unchanged — states
  // are copy-on-write, so this shares the representation.
  if (selected.size() == state.size()) return state;
  // A subsequence of a canonical tuple vector is canonical.
  return SnapshotState::FromCanonical(state.schema(), std::move(selected));
}

Result<SnapshotState> Intersect(const SnapshotState& lhs,
                                const SnapshotState& rhs) {
  TTRA_RETURN_IF_ERROR(RequireUnionCompatible(lhs, rhs, "intersect"));
  std::vector<Tuple> shared;
  std::set_intersection(lhs.tuples().begin(), lhs.tuples().end(),
                        rhs.tuples().begin(), rhs.tuples().end(),
                        std::back_inserter(shared));
  return SnapshotState::FromCanonical(lhs.schema(), std::move(shared));
}

Result<SnapshotState> ThetaJoin(const SnapshotState& lhs,
                                const SnapshotState& rhs,
                                const Predicate& predicate) {
  Result<Schema> concat = lhs.schema().Concat(rhs.schema());
  if (!concat.ok()) {
    // Same report as Product, so σ_F(E1 × E2) and its fused form agree.
    return SchemaMismatchError(
        "product requires attribute-name-disjoint schemas (rename first): " +
        concat.status().message());
  }
  Schema schema = *std::move(concat);
  TTRA_RETURN_IF_ERROR(predicate.Validate(schema));

  // Split the predicate into hash-join keys (top-level attr = attr
  // conjuncts across the operands) and a residual applied per candidate.
  const EquiJoinSplit split =
      SplitEquiJoin(predicate, lhs.schema(), rhs.schema());
  const std::vector<size_t>& lhs_keys = split.lhs_keys;
  const std::vector<size_t>& rhs_keys = split.rhs_keys;
  const Predicate& residual = split.residual;
  const bool check_residual = split.has_residual();

  std::vector<Tuple> joined;
  if (!split.has_keys()) {
    // No equality keys: block nested loop over the operands, evaluating
    // the predicate per pair without materializing the product state.
    for (const Tuple& a : lhs.tuples()) {
      for (const Tuple& b : rhs.tuples()) {
        Tuple combined = ConcatTuples(a, b);
        TTRA_ASSIGN_OR_RETURN(bool keep, predicate.Eval(schema, combined));
        if (keep) joined.push_back(std::move(combined));
      }
    }
    return SnapshotState::FromCanonical(std::move(schema), std::move(joined));
  }

  if (rhs.size() <= lhs.size()) {
    // Build on rhs, probe lhs in order: buckets hold rhs candidates in
    // sorted order, so the output is emitted canonically.
    std::unordered_map<Tuple, std::vector<size_t>> buckets;
    buckets.reserve(rhs.size());
    for (size_t j = 0; j < rhs.size(); ++j) {
      buckets[JoinKeyOf(rhs.tuples()[j], rhs_keys)].push_back(j);
    }
    for (const Tuple& a : lhs.tuples()) {
      auto it = buckets.find(JoinKeyOf(a, lhs_keys));
      if (it == buckets.end()) continue;
      for (size_t j : it->second) {
        Tuple combined = ConcatTuples(a, rhs.tuples()[j]);
        if (check_residual) {
          TTRA_ASSIGN_OR_RETURN(bool keep, residual.Eval(schema, combined));
          if (!keep) continue;
        }
        joined.push_back(std::move(combined));
      }
    }
    return SnapshotState::FromCanonical(std::move(schema), std::move(joined));
  }

  // lhs is smaller: build on it and probe rhs. Probing out of lhs order
  // scrambles the output, so restore canonical order with one sort of the
  // (unique) result — still O(result), never O(product).
  std::unordered_map<Tuple, std::vector<size_t>> buckets;
  buckets.reserve(lhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    buckets[JoinKeyOf(lhs.tuples()[i], lhs_keys)].push_back(i);
  }
  for (const Tuple& b : rhs.tuples()) {
    auto it = buckets.find(JoinKeyOf(b, rhs_keys));
    if (it == buckets.end()) continue;
    for (size_t i : it->second) {
      Tuple combined = ConcatTuples(lhs.tuples()[i], b);
      if (check_residual) {
        TTRA_ASSIGN_OR_RETURN(bool keep, residual.Eval(schema, combined));
        if (!keep) continue;
      }
      joined.push_back(std::move(combined));
    }
  }
  std::sort(joined.begin(), joined.end());
  return SnapshotState::FromCanonical(std::move(schema), std::move(joined));
}

Result<SnapshotState> NaturalJoin(const SnapshotState& lhs,
                                  const SnapshotState& rhs) {
  // Shared attributes join positionally by name; result schema is lhs's
  // schema followed by rhs's non-shared attributes, as in Maier.
  std::vector<size_t> lhs_keys, rhs_keys;
  std::vector<size_t> rhs_only;
  for (size_t j = 0; j < rhs.schema().size(); ++j) {
    const Attribute& attr = rhs.schema().attribute(j);
    auto i = lhs.schema().IndexOf(attr.name);
    if (i.has_value()) {
      if (lhs.schema().attribute(*i).type != attr.type) {
        return SchemaMismatchError("natural join attribute '" + attr.name +
                                   "' has mismatched types");
      }
      lhs_keys.push_back(*i);
      rhs_keys.push_back(j);
    } else {
      rhs_only.push_back(j);
    }
  }
  std::vector<Attribute> result_attrs = lhs.schema().attributes();
  for (size_t j : rhs_only) result_attrs.push_back(rhs.schema().attribute(j));
  TTRA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(result_attrs)));

  auto emit = [&](const Tuple& a, const Tuple& b, std::vector<Tuple>& out) {
    std::vector<Value> values = a.values();
    for (size_t j : rhs_only) values.push_back(b.at(j));
    out.emplace_back(std::move(values));
  };

  std::vector<Tuple> joined;
  if (lhs_keys.empty()) {
    // Disjoint schemes: degenerates to the product.
    for (const Tuple& a : lhs.tuples()) {
      for (const Tuple& b : rhs.tuples()) emit(a, b, joined);
    }
    return SnapshotState::FromCanonical(std::move(schema), std::move(joined));
  }

  // Hash the rhs on the shared attributes and probe lhs in order. Bucket
  // members agree on every shared column, so within a bucket the rhs sort
  // order equals the order of their rhs-only projections — the output is
  // emitted canonically.
  std::unordered_map<Tuple, std::vector<size_t>> buckets;
  buckets.reserve(rhs.size());
  for (size_t j = 0; j < rhs.size(); ++j) {
    buckets[JoinKeyOf(rhs.tuples()[j], rhs_keys)].push_back(j);
  }
  for (const Tuple& a : lhs.tuples()) {
    auto it = buckets.find(JoinKeyOf(a, lhs_keys));
    if (it == buckets.end()) continue;
    for (size_t j : it->second) emit(a, rhs.tuples()[j], joined);
  }
  return SnapshotState::FromCanonical(std::move(schema), std::move(joined));
}

Result<SnapshotState> Rename(const SnapshotState& state, std::string_view from,
                             std::string_view to) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, state.schema().Rename(from, to));
  // Renaming changes no tuple, so canonical order is preserved.
  return SnapshotState::FromCanonical(std::move(schema), state.tuples());
}

}  // namespace ttra::snapshot_ops
