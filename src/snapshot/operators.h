#ifndef TTRA_SNAPSHOT_OPERATORS_H_
#define TTRA_SNAPSHOT_OPERATORS_H_

#include <string>
#include <vector>

#include "snapshot/predicate.h"
#include "snapshot/state.h"
#include "util/result.h"

namespace ttra::snapshot_ops {

/// The five operators that define the snapshot algebra (paper §3.1), with
/// Maier's set semantics, plus the standard derived operators. All are
/// pure: they never modify their operands, mirroring the side-effect-free
/// semantic function E.

/// E1 ∪ E2. Operand schemas must be identical (union compatibility).
Result<SnapshotState> Union(const SnapshotState& lhs,
                            const SnapshotState& rhs);

/// E1 − E2. Operand schemas must be identical.
Result<SnapshotState> Difference(const SnapshotState& lhs,
                                 const SnapshotState& rhs);

/// E1 × E2. Attribute names must be disjoint (rename first otherwise).
Result<SnapshotState> Product(const SnapshotState& lhs,
                              const SnapshotState& rhs);

/// π_X(E). Projects onto the named attributes, eliminating duplicates.
Result<SnapshotState> Project(const SnapshotState& state,
                              const std::vector<std::string>& attributes);

/// σ_F(E). Keeps the tuples satisfying F.
Result<SnapshotState> Select(const SnapshotState& state,
                             const Predicate& predicate);

// ---- Derived operators (definable from the five primitives; provided ----
// ---- directly for convenience and efficiency).                       ----

/// E1 ∩ E2 = E1 − (E1 − E2).
Result<SnapshotState> Intersect(const SnapshotState& lhs,
                                const SnapshotState& rhs);

/// σ_F(E1 × E2); names must be disjoint.
Result<SnapshotState> ThetaJoin(const SnapshotState& lhs,
                                const SnapshotState& rhs,
                                const Predicate& predicate);

/// Equijoin on all shared attribute names; shared attributes appear once.
Result<SnapshotState> NaturalJoin(const SnapshotState& lhs,
                                  const SnapshotState& rhs);

/// Renames one attribute.
Result<SnapshotState> Rename(const SnapshotState& state, std::string_view from,
                             std::string_view to);

}  // namespace ttra::snapshot_ops

#endif  // TTRA_SNAPSHOT_OPERATORS_H_
