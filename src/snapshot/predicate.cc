#include "snapshot/predicate.h"

#include <cassert>

namespace ttra {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Operand Operand::Attr(std::string name) {
  Operand o;
  o.is_attr_ = true;
  o.name_ = std::move(name);
  return o;
}

Operand Operand::Const(Value value) {
  Operand o;
  o.is_attr_ = false;
  o.value_ = std::move(value);
  return o;
}

Result<Value> Operand::Resolve(const Schema& schema,
                               const Tuple& tuple) const {
  if (!is_attr_) return value_;
  auto index = schema.IndexOf(name_);
  if (!index.has_value()) {
    return SchemaMismatchError("predicate references unknown attribute: " +
                               name_);
  }
  return tuple.at(*index);
}

Result<ValueType> Operand::TypeIn(const Schema& schema) const {
  if (!is_attr_) return value_.type();
  auto index = schema.IndexOf(name_);
  if (!index.has_value()) {
    return SchemaMismatchError("predicate references unknown attribute: " +
                               name_);
  }
  return schema.attribute(*index).type;
}

std::string Operand::ToString() const {
  return is_attr_ ? name_ : value_.ToString();
}

struct Predicate::Node {
  Kind kind;
  // kConst
  bool const_value = false;
  // kComparison
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;
  // kAnd / kOr / kNot
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

Predicate::Predicate(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

Predicate::Predicate() : Predicate(True()) {}

Predicate Predicate::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = true;
  return Predicate(std::move(node));
}

Predicate Predicate::False() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = false;
  return Predicate(std::move(node));
}

Predicate Predicate::Comparison(Operand lhs, CompareOp op, Operand rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kComparison;
  node->lhs = std::move(lhs);
  node->op = op;
  node->rhs = std::move(rhs);
  return Predicate(std::move(node));
}

Predicate Predicate::And(Predicate lhs, Predicate rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::Or(Predicate lhs, Predicate rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = std::move(lhs.node_);
  node->right = std::move(rhs.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::Not(Predicate operand) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = std::move(operand.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::AttrCompare(std::string attr, CompareOp op,
                                 Value constant) {
  return Comparison(Operand::Attr(std::move(attr)), op,
                    Operand::Const(std::move(constant)));
}

namespace {

bool ApplyCompare(CompareOp op, int cmp, bool equal) {
  switch (op) {
    case CompareOp::kEq:
      return equal;
    case CompareOp::kNe:
      return !equal;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

Result<bool> Predicate::Eval(const Schema& schema, const Tuple& tuple) const {
  switch (node_->kind) {
    case Kind::kConst:
      return node_->const_value;
    case Kind::kComparison: {
      TTRA_ASSIGN_OR_RETURN(Value a, node_->lhs.Resolve(schema, tuple));
      TTRA_ASSIGN_OR_RETURN(Value b, node_->rhs.Resolve(schema, tuple));
      TTRA_ASSIGN_OR_RETURN(int cmp, Value::Compare(a, b));
      return ApplyCompare(node_->op, cmp, cmp == 0);
    }
    case Kind::kAnd: {
      TTRA_ASSIGN_OR_RETURN(bool a, Predicate(node_->left).Eval(schema, tuple));
      if (!a) return false;
      return Predicate(node_->right).Eval(schema, tuple);
    }
    case Kind::kOr: {
      TTRA_ASSIGN_OR_RETURN(bool a, Predicate(node_->left).Eval(schema, tuple));
      if (a) return true;
      return Predicate(node_->right).Eval(schema, tuple);
    }
    case Kind::kNot: {
      TTRA_ASSIGN_OR_RETURN(bool a, Predicate(node_->left).Eval(schema, tuple));
      return !a;
    }
  }
  return InternalError("unhandled predicate kind");
}

Status Predicate::Validate(const Schema& schema) const {
  switch (node_->kind) {
    case Kind::kConst:
      return Status::Ok();
    case Kind::kComparison: {
      auto lhs_type = node_->lhs.TypeIn(schema);
      if (!lhs_type.ok()) return lhs_type.status();
      auto rhs_type = node_->rhs.TypeIn(schema);
      if (!rhs_type.ok()) return rhs_type.status();
      const bool lhs_num = *lhs_type == ValueType::kInt ||
                           *lhs_type == ValueType::kDouble;
      const bool rhs_num = *rhs_type == ValueType::kInt ||
                           *rhs_type == ValueType::kDouble;
      if (*lhs_type != *rhs_type && !(lhs_num && rhs_num)) {
        return TypeMismatchError(
            "comparison between " + std::string(ValueTypeName(*lhs_type)) +
            " and " + std::string(ValueTypeName(*rhs_type)) + " in " +
            ToString());
      }
      return Status::Ok();
    }
    case Kind::kAnd:
    case Kind::kOr: {
      TTRA_RETURN_IF_ERROR(Predicate(node_->left).Validate(schema));
      return Predicate(node_->right).Validate(schema);
    }
    case Kind::kNot:
      return Predicate(node_->left).Validate(schema);
  }
  return InternalError("unhandled predicate kind");
}

std::set<std::string> Predicate::AttributeNames() const {
  std::set<std::string> names;
  switch (node_->kind) {
    case Kind::kConst:
      break;
    case Kind::kComparison:
      if (node_->lhs.is_attr()) names.insert(node_->lhs.attr_name());
      if (node_->rhs.is_attr()) names.insert(node_->rhs.attr_name());
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      names = Predicate(node_->left).AttributeNames();
      auto right = Predicate(node_->right).AttributeNames();
      names.insert(right.begin(), right.end());
      break;
    }
    case Kind::kNot:
      names = Predicate(node_->left).AttributeNames();
      break;
  }
  return names;
}

Predicate Predicate::RenameAttribute(std::string_view from,
                                     std::string_view to) const {
  auto rename_operand = [&](const Operand& o) {
    if (o.is_attr() && o.attr_name() == from) {
      return Operand::Attr(std::string(to));
    }
    return o;
  };
  switch (node_->kind) {
    case Kind::kConst:
      return *this;
    case Kind::kComparison:
      return Comparison(rename_operand(node_->lhs), node_->op,
                        rename_operand(node_->rhs));
    case Kind::kAnd:
      return And(Predicate(node_->left).RenameAttribute(from, to),
                 Predicate(node_->right).RenameAttribute(from, to));
    case Kind::kOr:
      return Or(Predicate(node_->left).RenameAttribute(from, to),
                Predicate(node_->right).RenameAttribute(from, to));
    case Kind::kNot:
      return Not(Predicate(node_->left).RenameAttribute(from, to));
  }
  return *this;
}

bool Predicate::IsTrueLiteral() const {
  return node_->kind == Kind::kConst && node_->const_value;
}

bool Predicate::IsFalseLiteral() const {
  return node_->kind == Kind::kConst && !node_->const_value;
}

std::string Predicate::ToString() const {
  switch (node_->kind) {
    case Kind::kConst:
      return node_->const_value ? "true" : "false";
    case Kind::kComparison:
      return node_->lhs.ToString() + " " +
             std::string(CompareOpName(node_->op)) + " " +
             node_->rhs.ToString();
    case Kind::kAnd:
      return "(" + Predicate(node_->left).ToString() + " and " +
             Predicate(node_->right).ToString() + ")";
    case Kind::kOr:
      return "(" + Predicate(node_->left).ToString() + " or " +
             Predicate(node_->right).ToString() + ")";
    case Kind::kNot:
      return "not (" + Predicate(node_->left).ToString() + ")";
  }
  return "?";
}

bool operator==(const Predicate& a, const Predicate& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Predicate::Kind::kConst:
      return a.const_value() == b.const_value();
    case Predicate::Kind::kComparison:
      return a.lhs() == b.lhs() && a.op() == b.op() && a.rhs() == b.rhs();
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return a.left() == b.left() && a.right() == b.right();
    case Predicate::Kind::kNot:
      return a.left() == b.left();
  }
  return false;
}

Predicate::Kind Predicate::kind() const { return node_->kind; }
bool Predicate::const_value() const {
  assert(node_->kind == Kind::kConst);
  return node_->const_value;
}
const Operand& Predicate::lhs() const {
  assert(node_->kind == Kind::kComparison);
  return node_->lhs;
}
const Operand& Predicate::rhs() const {
  assert(node_->kind == Kind::kComparison);
  return node_->rhs;
}
CompareOp Predicate::op() const {
  assert(node_->kind == Kind::kComparison);
  return node_->op;
}
Predicate Predicate::left() const {
  assert(node_->left != nullptr);
  return Predicate(node_->left);
}
Predicate Predicate::right() const {
  assert(node_->right != nullptr);
  return Predicate(node_->right);
}

std::ostream& operator<<(std::ostream& os, const Predicate& predicate) {
  return os << predicate.ToString();
}

}  // namespace ttra
