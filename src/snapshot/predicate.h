#ifndef TTRA_SNAPSHOT_PREDICATE_H_
#define TTRA_SNAPSHOT_PREDICATE_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/schema.h"
#include "snapshot/tuple.h"
#include "snapshot/value.h"
#include "util/result.h"

namespace ttra {

/// Comparison operators of the paper's boolean-expression domain 𝓕.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpName(CompareOp op);

/// One side of a comparison: either an attribute reference (an IDENTIFIER
/// in the paper's domain 𝓕) or a constant value.
class Operand {
 public:
  static Operand Attr(std::string name);
  static Operand Const(Value value);

  bool is_attr() const { return is_attr_; }
  const std::string& attr_name() const { return name_; }
  const Value& constant() const { return value_; }

  /// Resolves the operand against a tuple: the attribute's value, or the
  /// constant itself. Fails if the attribute is missing from the schema.
  Result<Value> Resolve(const Schema& schema, const Tuple& tuple) const;

  /// The operand's type under `schema`; fails on a missing attribute.
  Result<ValueType> TypeIn(const Schema& schema) const;

  std::string ToString() const;

  friend bool operator==(const Operand&, const Operand&) = default;

 private:
  bool is_attr_ = false;
  std::string name_;
  Value value_;
};

/// An immutable boolean expression over attribute names and constants —
/// the selection condition F of σ_F. Cheap to copy (shared tree).
class Predicate {
 public:
  /// Defaults to the constant `true` (σ_true is the identity).
  Predicate();

  static Predicate True();
  static Predicate False();
  static Predicate Comparison(Operand lhs, CompareOp op, Operand rhs);
  static Predicate And(Predicate lhs, Predicate rhs);
  static Predicate Or(Predicate lhs, Predicate rhs);
  static Predicate Not(Predicate operand);

  /// Convenience: attr <op> constant.
  static Predicate AttrCompare(std::string attr, CompareOp op, Value constant);

  /// Evaluates the predicate on one tuple. Errors on unknown attributes or
  /// uncomparable types (the "invalid expression" cases the paper defers).
  Result<bool> Eval(const Schema& schema, const Tuple& tuple) const;

  /// Static validation against a schema; OK iff Eval can never fail.
  Status Validate(const Schema& schema) const;

  /// Names of all attributes referenced (used by the optimizer's pushdown
  /// analysis).
  std::set<std::string> AttributeNames() const;

  /// Structurally replaces attribute name `from` with `to`.
  Predicate RenameAttribute(std::string_view from, std::string_view to) const;

  /// True if the node is the constant true/false literal.
  bool IsTrueLiteral() const;
  bool IsFalseLiteral() const;

  std::string ToString() const;

  /// Structural equality.
  friend bool operator==(const Predicate& a, const Predicate& b);

  // Node introspection for the optimizer and printer.
  enum class Kind : uint8_t { kConst, kComparison, kAnd, kOr, kNot };
  Kind kind() const;
  /// kConst only.
  bool const_value() const;
  /// kComparison only.
  const Operand& lhs() const;
  const Operand& rhs() const;
  CompareOp op() const;
  /// kAnd/kOr: children; kNot: left child only.
  Predicate left() const;
  Predicate right() const;

 private:
  struct Node;
  explicit Predicate(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const Predicate& predicate);

}  // namespace ttra

#endif  // TTRA_SNAPSHOT_PREDICATE_H_
