#include "snapshot/schema.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/string_util.h"

namespace ttra {

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::unordered_set<std::string_view> seen;
  for (const Attribute& attr : attributes) {
    if (!IsIdentifier(attr.name)) {
      return SchemaMismatchError("attribute name is not an identifier: '" +
                                 attr.name + "'");
    }
    if (!seen.insert(attr.name).second) {
      return SchemaMismatchError("duplicate attribute name: " + attr.name);
    }
  }
  return Schema(std::move(attributes));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) names.push_back(attr.name);
  return names;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> projected;
  projected.reserve(names.size());
  for (const std::string& name : names) {
    auto index = IndexOf(name);
    if (!index.has_value()) {
      return SchemaMismatchError("projection of unknown attribute: " + name);
    }
    projected.push_back(attributes_[*index]);
  }
  return Schema::Make(std::move(projected));
}

Result<Schema> Schema::Concat(const Schema& other) const {
  std::vector<Attribute> combined = attributes_;
  for (const Attribute& attr : other.attributes_) {
    if (IndexOf(attr.name).has_value()) {
      return SchemaMismatchError(
          "cartesian product would duplicate attribute: " + attr.name);
    }
    combined.push_back(attr);
  }
  return Schema::Make(std::move(combined));
}

Result<Schema> Schema::Rename(std::string_view from,
                              std::string_view to) const {
  auto index = IndexOf(from);
  if (!index.has_value()) {
    return SchemaMismatchError("rename of unknown attribute: " +
                               std::string(from));
  }
  if (IndexOf(to).has_value()) {
    return SchemaMismatchError("rename target already exists: " +
                               std::string(to));
  }
  std::vector<Attribute> renamed = attributes_;
  renamed[*index].name = std::string(to);
  return Schema::Make(std::move(renamed));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

size_t Schema::Hash() const {
  size_t seed = 0;
  for (const Attribute& attr : attributes_) {
    seed = HashCombine(seed, HashValue(attr.name));
    seed = HashCombine(seed, static_cast<size_t>(attr.type));
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Schema& schema) {
  return os << schema.ToString();
}

}  // namespace ttra
