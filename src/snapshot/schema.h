#ifndef TTRA_SNAPSHOT_SCHEMA_H_
#define TTRA_SNAPSHOT_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/value.h"
#include "util/result.h"

namespace ttra {

/// One named, typed attribute of a relation scheme.
struct Attribute {
  std::string name;
  ValueType type;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An ordered list of uniquely-named attributes. Schemas are value types;
/// the operators derive result schemas from operand schemas (projection,
/// product concatenation, rename).
class Schema {
 public:
  Schema() = default;

  /// Fails with kSchemaMismatch if names repeat or are not identifiers.
  static Result<Schema> Make(std::vector<Attribute> attributes);

  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }

  /// Position of the named attribute, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;

  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// All attribute names, in order.
  std::vector<std::string> Names() const;

  /// Result schema of projecting onto `names` (in the given order).
  /// Fails if any name is missing.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Result schema of a cartesian product: the concatenation of this and
  /// `other`. Fails if any attribute name would be duplicated (rename
  /// first, as in Maier's treatment).
  Result<Schema> Concat(const Schema& other) const;

  /// Result schema with attribute `from` renamed to `to`. Fails if `from`
  /// is missing or `to` already exists.
  Result<Schema> Rename(std::string_view from, std::string_view to) const;

  /// "(name: type, ...)" — the notation used by language constants.
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

std::ostream& operator<<(std::ostream& os, const Schema& schema);

}  // namespace ttra

#endif  // TTRA_SNAPSHOT_SCHEMA_H_
