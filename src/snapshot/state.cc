#include "snapshot/state.h"

#include <algorithm>

#include "util/hash.h"

namespace ttra {

Result<SnapshotState> SnapshotState::Make(Schema schema,
                                          std::vector<Tuple> tuples) {
  for (const Tuple& tuple : tuples) {
    TTRA_RETURN_IF_ERROR(tuple.ConformsTo(schema));
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return SnapshotState(std::move(schema), std::move(tuples));
}

SnapshotState SnapshotState::Empty(Schema schema) {
  return SnapshotState(std::move(schema), {});
}

bool SnapshotState::Contains(const Tuple& tuple) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple);
}

std::string SnapshotState::ToString() const {
  std::string out = schema_.ToString();
  out += " {";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples_[i].ToString();
  }
  out += "}";
  return out;
}

size_t SnapshotState::Hash() const {
  size_t seed = schema_.Hash();
  for (const Tuple& t : tuples_) seed = HashCombine(seed, t.Hash());
  return seed;
}

std::ostream& operator<<(std::ostream& os, const SnapshotState& state) {
  return os << state.ToString();
}

}  // namespace ttra
