#include "snapshot/state.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace ttra {

const std::shared_ptr<const SnapshotState::Rep>& SnapshotState::EmptyRep() {
  static const std::shared_ptr<const Rep> kEmpty = std::make_shared<Rep>();
  return kEmpty;
}

Result<SnapshotState> SnapshotState::Make(Schema schema,
                                          std::vector<Tuple> tuples) {
  for (const Tuple& tuple : tuples) {
    TTRA_RETURN_IF_ERROR(tuple.ConformsTo(schema));
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return SnapshotState(std::move(schema), std::move(tuples));
}

SnapshotState SnapshotState::FromCanonical(Schema schema,
                                           std::vector<Tuple> tuples) {
#ifndef NDEBUG
  assert(std::is_sorted(tuples.begin(), tuples.end()));
  assert(std::adjacent_find(tuples.begin(), tuples.end()) == tuples.end());
  for (const Tuple& tuple : tuples) assert(tuple.ConformsTo(schema).ok());
#endif
  return SnapshotState(std::move(schema), std::move(tuples));
}

SnapshotState SnapshotState::Empty(Schema schema) {
  return SnapshotState(std::move(schema), {});
}

bool SnapshotState::Contains(const Tuple& tuple) const {
  return std::binary_search(rep_->tuples.begin(), rep_->tuples.end(), tuple);
}

std::string SnapshotState::ToString() const {
  std::string out = rep_->schema.ToString();
  out += " {";
  for (size_t i = 0; i < rep_->tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += rep_->tuples[i].ToString();
  }
  out += "}";
  return out;
}

size_t SnapshotState::Hash() const {
  size_t seed = rep_->schema.Hash();
  for (const Tuple& t : rep_->tuples) seed = HashCombine(seed, t.Hash());
  return seed;
}

std::ostream& operator<<(std::ostream& os, const SnapshotState& state) {
  return os << state.ToString();
}

}  // namespace ttra
