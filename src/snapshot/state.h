#ifndef TTRA_SNAPSHOT_STATE_H_
#define TTRA_SNAPSHOT_STATE_H_

#include <ostream>
#include <string>
#include <vector>

#include "snapshot/schema.h"
#include "snapshot/tuple.h"
#include "util/result.h"

namespace ttra {

/// An element of the paper's SNAPSHOT STATE semantic domain: a relation
/// instance in Maier's sense — a scheme plus a *set* of conforming tuples.
///
/// The tuple set is kept canonical (sorted, deduplicated), which makes
/// state equality a linear scan. Canonical equality is load-bearing: the
/// delta storage engine diffs states, FINDSTATE tests compare against
/// oracles, and the property suites assert algebraic identities.
class SnapshotState {
 public:
  /// The empty state over the empty scheme (what FINDSTATE yields for a
  /// relation with no recorded states).
  SnapshotState() = default;

  /// Canonicalizes and validates: every tuple must conform to `schema`.
  static Result<SnapshotState> Make(Schema schema, std::vector<Tuple> tuples);

  /// The empty state over `schema`.
  static SnapshotState Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  /// Tuples in canonical (sorted) order, no duplicates.
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Contains(const Tuple& tuple) const;

  /// Language-literal form: "(a: int, b: string) {(1, "x"), (2, "y")}".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const SnapshotState&, const SnapshotState&) = default;

 private:
  SnapshotState(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  Schema schema_;
  std::vector<Tuple> tuples_;
};

std::ostream& operator<<(std::ostream& os, const SnapshotState& state);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::SnapshotState> {
  size_t operator()(const ttra::SnapshotState& s) const { return s.Hash(); }
};
}  // namespace std

#endif  // TTRA_SNAPSHOT_STATE_H_
