#ifndef TTRA_SNAPSHOT_STATE_H_
#define TTRA_SNAPSHOT_STATE_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "snapshot/schema.h"
#include "snapshot/tuple.h"
#include "util/result.h"

namespace ttra {

/// An element of the paper's SNAPSHOT STATE semantic domain: a relation
/// instance in Maier's sense — a scheme plus a *set* of conforming tuples.
///
/// The tuple set is kept canonical (sorted, deduplicated), which makes
/// state equality a linear scan. Canonical equality is load-bearing: the
/// delta storage engine diffs states, FINDSTATE tests compare against
/// oracles, and the property suites assert algebraic identities.
///
/// States are immutable and copy-on-write: the scheme and tuple vector
/// live in a shared representation, so copying a state (operator results,
/// FINDSTATE reads, Relation/Database clones) is a reference-count bump,
/// never a deep copy of the tuple vector.
class SnapshotState {
 public:
  /// The empty state over the empty scheme (what FINDSTATE yields for a
  /// relation with no recorded states).
  SnapshotState() = default;

  /// Canonicalizes and validates: every tuple must conform to `schema`.
  static Result<SnapshotState> Make(Schema schema, std::vector<Tuple> tuples);

  /// Trusted constructor for operator kernels: `tuples` must already be in
  /// canonical form (sorted, deduplicated) and conform to `schema`. Skips
  /// the O(n log n) re-sort and the per-tuple validation of Make; the
  /// invariants are asserted in debug builds.
  static SnapshotState FromCanonical(Schema schema, std::vector<Tuple> tuples);

  /// The empty state over `schema`.
  static SnapshotState Empty(Schema schema);

  const Schema& schema() const { return rep_->schema; }
  /// Tuples in canonical (sorted) order, no duplicates.
  const std::vector<Tuple>& tuples() const { return rep_->tuples; }
  size_t size() const { return rep_->tuples.size(); }
  bool empty() const { return rep_->tuples.empty(); }

  bool Contains(const Tuple& tuple) const;

  /// Language-literal form: "(a: int, b: string) {(1, "x"), (2, "y")}".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const SnapshotState& a, const SnapshotState& b) {
    return a.rep_ == b.rep_ || (a.rep_->schema == b.rep_->schema &&
                                a.rep_->tuples == b.rep_->tuples);
  }

 private:
  struct Rep {
    Schema schema;
    std::vector<Tuple> tuples;
  };

  /// Shared representation of the default (empty-scheme) state.
  static const std::shared_ptr<const Rep>& EmptyRep();

  SnapshotState(Schema schema, std::vector<Tuple> tuples)
      : rep_(std::make_shared<const Rep>(
            Rep{std::move(schema), std::move(tuples)})) {}

  std::shared_ptr<const Rep> rep_ = EmptyRep();
};

std::ostream& operator<<(std::ostream& os, const SnapshotState& state);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::SnapshotState> {
  size_t operator()(const ttra::SnapshotState& s) const { return s.Hash(); }
};
}  // namespace std

#endif  // TTRA_SNAPSHOT_STATE_H_
