#include "snapshot/tuple.h"

#include "util/hash.h"

namespace ttra {

Status Tuple::ConformsTo(const Schema& schema) const {
  if (values_.size() != schema.size()) {
    return SchemaMismatchError(
        "tuple arity " + std::to_string(values_.size()) +
        " does not match schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    // Allow an int literal to populate a double attribute: without this
    // every constant state with double attributes would need ".0" suffixes.
    if (values_[i].type() != schema.attribute(i).type) {
      return TypeMismatchError(
          "attribute '" + schema.attribute(i).name + "' expects " +
          std::string(ValueTypeName(schema.attribute(i).type)) + " but got " +
          std::string(ValueTypeName(values_[i].type())) + " (" +
          values_[i].ToString() + ")");
    }
  }
  return Status::Ok();
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

size_t Tuple::Hash() const {
  size_t seed = values_.size();
  for (const Value& v : values_) seed = HashCombine(seed, v.Hash());
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace ttra
