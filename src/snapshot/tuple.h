#ifndef TTRA_SNAPSHOT_TUPLE_H_
#define TTRA_SNAPSHOT_TUPLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "snapshot/schema.h"
#include "snapshot/value.h"
#include "util/result.h"

namespace ttra {

/// An ordered list of attribute values. A tuple is positional; its meaning
/// is given by the schema of the state that contains it.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  const std::vector<Value>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }

  /// OK iff arity and per-position value types match the schema.
  Status ConformsTo(const Schema& schema) const;

  /// "(v1, v2, ...)".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Tuple&, const Tuple&) = default;
  /// Canonical lexicographic order (by Value's canonical order).
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::Tuple> {
  size_t operator()(const ttra::Tuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // TTRA_SNAPSHOT_TUPLE_H_
