#include "snapshot/value.h"

#include <cmath>
#include <sstream>

#include "util/hash.h"
#include "util/string_util.h"

namespace ttra {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
    case ValueType::kUserTime:
      return "usertime";
  }
  return "unknown";
}

Result<ValueType> ParseValueType(std::string_view name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  if (name == "usertime") return ValueType::kUserTime;
  return InvalidArgumentError("unknown value type name: " + std::string(name));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      const double d = AsDouble();
      os << d;
      std::string s = os.str();
      // Ensure the literal round-trips as a double, not an int.
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find_first_of("in") == std::string::npos) {  // inf/nan
        s += ".0";
      }
      return s;
    }
    case ValueType::kString:
      return "\"" + EscapeString(AsString()) + "\"";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kUserTime:
      return "@" + std::to_string(AsTime().ticks);
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = HashCombine(0, static_cast<size_t>(type()));
  switch (type()) {
    case ValueType::kInt:
      return HashCombine(seed, HashValue(AsInt()));
    case ValueType::kDouble:
      return HashCombine(seed, HashValue(AsDouble()));
    case ValueType::kString:
      return HashCombine(seed, HashValue(AsString()));
    case ValueType::kBool:
      return HashCombine(seed, HashValue(AsBool()));
    case ValueType::kUserTime:
      return HashCombine(seed, HashValue(AsTime().ticks));
  }
  return seed;
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  auto sign = [](auto x, auto y) { return x < y ? -1 : (y < x ? 1 : 0); };
  // Numeric types compare with each other.
  const bool a_num =
      a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  const bool b_num =
      b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (a_num && b_num) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      return sign(a.AsInt(), b.AsInt());
    }
    const double x = a.type() == ValueType::kInt
                         ? static_cast<double>(a.AsInt())
                         : a.AsDouble();
    const double y = b.type() == ValueType::kInt
                         ? static_cast<double>(b.AsInt())
                         : b.AsDouble();
    return sign(x, y);
  }
  if (a.type() != b.type()) {
    return TypeMismatchError(
        std::string("cannot compare ") + std::string(ValueTypeName(a.type())) +
        " with " + std::string(ValueTypeName(b.type())));
  }
  switch (a.type()) {
    case ValueType::kString:
      return sign(a.AsString(), b.AsString());
    case ValueType::kBool:
      return sign(a.AsBool(), b.AsBool());
    case ValueType::kUserTime:
      return sign(a.AsTime().ticks, b.AsTime().ticks);
    default:
      return InternalError("unhandled type in Value::Compare");
  }
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace ttra
