#ifndef TTRA_SNAPSHOT_VALUE_H_
#define TTRA_SNAPSHOT_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "util/result.h"

namespace ttra {

/// The attribute domains D_1 ... D_m of the paper's semantic model. The
/// paper leaves them abstract; we provide the domains a practical engine
/// needs, including *user-defined time*, which the paper notes is "simply
/// another domain ... provided by the DBMS" supporting input, output, and
/// comparison.
enum class ValueType : uint8_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
  kUserTime = 4,
};

/// Stable lowercase name: "int", "double", "string", "bool", "usertime".
std::string_view ValueTypeName(ValueType type);

/// Parses a type name produced by ValueTypeName.
Result<ValueType> ParseValueType(std::string_view name);

/// User-defined time: an uninterpreted totally-ordered tick count. The
/// DBMS supports input, output, and comparison only (paper §1).
struct UserTime {
  int64_t ticks = 0;

  friend bool operator==(const UserTime&, const UserTime&) = default;
  friend auto operator<=>(const UserTime&, const UserTime&) = default;
};

/// A single attribute value. Values are immutable once constructed and
/// totally ordered within a type; cross-type comparison is a type error
/// surfaced by the predicate evaluator, while the internal canonical order
/// (used only to sort states) falls back to ordering by type tag.
class Value {
 public:
  /// Defaults to the integer 0.
  Value() : value_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Time(int64_t ticks) { return Value(Rep(UserTime{ticks})); }

  ValueType type() const { return static_cast<ValueType>(value_.index()); }

  // Accessors; precondition: the value holds the requested type.
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }
  UserTime AsTime() const { return std::get<UserTime>(value_); }

  /// Renders the value as a language literal: 42, 3.5, "text", true,
  /// @1234 (user time).
  std::string ToString() const;

  size_t Hash() const;

  /// Canonical total order across all values: first by type tag, then by
  /// the natural order within the type. Used to keep states sorted.
  friend bool operator==(const Value& a, const Value& b) {
    return a.value_ == b.value_;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.value_ < b.value_;
  }

  /// Three-way comparison *within* a type for predicate evaluation;
  /// returns a type error if the types differ (the only implicit
  /// conversion is int-vs-double, which compares numerically).
  static Result<int> Compare(const Value& a, const Value& b);

 private:
  using Rep = std::variant<int64_t, double, std::string, bool, UserTime>;
  explicit Value(Rep rep) : value_(std::move(rep)) {}

  Rep value_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace ttra

namespace std {
template <>
struct hash<ttra::Value> {
  size_t operator()(const ttra::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // TTRA_SNAPSHOT_VALUE_H_
