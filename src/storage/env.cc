#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ttra {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return IoError(op + " failed for " + path + ": " + std::strerror(errno));
}

/// Directory part of `path` ("" if none).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return Errno("open for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync", path);
  return Status::Ok();
}

}  // namespace

// --- PosixEnv --------------------------------------------------------------

PosixEnv::~PosixEnv() {
  for (auto& [path, fd] : fds_) ::close(fd);
}

Result<int> PosixEnv::OpenForAppendLocked(const std::string& path) {
  auto it = fds_.find(path);
  if (it != fds_.end()) return it->second;
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  fds_[path] = fd;
  return fd;
}

void PosixEnv::DropFdLocked(const std::string& path) {
  auto it = fds_.find(path);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
}

Status PosixEnv::Truncate(const std::string& path) {
  MutexLock lock(mutex_);
  DropFdLocked(path);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return Errno("truncate", path);
  fds_[path] = fd;  // O_WRONLY fd still appends correctly: offset is at 0
  return Status::Ok();
}

Status PosixEnv::TruncateTo(const std::string& path, uint64_t size) {
  {
    MutexLock lock(mutex_);
    // The cached descriptor is O_APPEND, so later appends land after the
    // cut regardless, but drop it anyway: its idea of the file is stale.
    DropFdLocked(path);
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  if (static_cast<uint64_t>(st.st_size) < size) {
    return InvalidArgumentError("truncate-to beyond end of " + path);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  // Make the new length durable before anyone appends after the cut.
  return FsyncPath(path, O_WRONLY);
}

Status PosixEnv::Append(const std::string& path, std::string_view data) {
  MutexLock lock(mutex_);
  TTRA_ASSIGN_OR_RETURN(int fd, OpenForAppendLocked(path));
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status PosixEnv::Sync(const std::string& path) {
  MutexLock lock(mutex_);
  TTRA_ASSIGN_OR_RETURN(int fd, OpenForAppendLocked(path));
  if (::fsync(fd) != 0) return Errno("fsync", path);
  return Status::Ok();
}

Result<std::string> PosixEnv::Read(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open for read", path);
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status PosixEnv::Rename(const std::string& from, const std::string& to) {
  {
    MutexLock lock(mutex_);
    DropFdLocked(from);
    DropFdLocked(to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename", from + " -> " + to);
  }
  // The rename is only durable once the directory entry is on disk.
  return FsyncPath(DirName(to), O_RDONLY | O_DIRECTORY);
}

Status PosixEnv::Remove(const std::string& path) {
  {
    MutexLock lock(mutex_);
    DropFdLocked(path);
  }
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::Ok();
}

Result<std::vector<std::string>> PosixEnv::List(const std::string& dir) const {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status PosixEnv::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", dir);
  }
  return FsyncPath(DirName(dir), O_RDONLY | O_DIRECTORY);
}

bool PosixEnv::Exists(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// --- InMemoryEnv -----------------------------------------------------------

Status InMemoryEnv::Truncate(const std::string& path) {
  MutexLock lock(mutex_);
  files_[path] = FileState{};
  return Status::Ok();
}

Status InMemoryEnv::TruncateTo(const std::string& path, uint64_t size) {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return IoError("no such file: " + path);
  FileState& file = it->second;
  if (size > file.data.size()) {
    return InvalidArgumentError("truncate-to beyond end of " + path);
  }
  file.data.resize(size);
  file.synced_size = std::min<size_t>(file.synced_size, size);
  return Status::Ok();
}

Status InMemoryEnv::Append(const std::string& path, std::string_view data) {
  MutexLock lock(mutex_);
  files_[path].data.append(data);
  return Status::Ok();
}

Status InMemoryEnv::Sync(const std::string& path) {
  MutexLock lock(mutex_);
  FileState& file = files_[path];
  file.synced_size = file.data.size();
  return Status::Ok();
}

Result<std::string> InMemoryEnv::Read(const std::string& path) const {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return IoError("no such file: " + path);
  return it->second.data;
}

Status InMemoryEnv::Rename(const std::string& from, const std::string& to) {
  MutexLock lock(mutex_);
  auto it = files_.find(from);
  if (it == files_.end()) return IoError("no such file: " + from);
  FileState moved = std::move(it->second);
  // Rename is modeled as durable (the POSIX backend fsyncs the directory),
  // so the moved content survives a crash in full.
  moved.synced_size = moved.data.size();
  files_.erase(it);
  files_[to] = std::move(moved);
  return Status::Ok();
}

Status InMemoryEnv::Remove(const std::string& path) {
  MutexLock lock(mutex_);
  if (files_.erase(path) == 0) return IoError("no such file: " + path);
  return Status::Ok();
}

Result<std::vector<std::string>> InMemoryEnv::List(
    const std::string& dir) const {
  MutexLock lock(mutex_);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, file] : files_) {
    if (path.rfind(prefix, 0) == 0) {
      const std::string rest = path.substr(prefix.size());
      if (rest.find('/') == std::string::npos) names.push_back(rest);
    }
  }
  return names;
}

Status InMemoryEnv::CreateDir(const std::string& dir) {
  MutexLock lock(mutex_);
  if (std::find(dirs_.begin(), dirs_.end(), dir) == dirs_.end()) {
    dirs_.push_back(dir);
  }
  return Status::Ok();
}

bool InMemoryEnv::Exists(const std::string& path) const {
  MutexLock lock(mutex_);
  return files_.count(path) > 0 ||
         std::find(dirs_.begin(), dirs_.end(), path) != dirs_.end();
}

void InMemoryEnv::DropUnsynced() {
  MutexLock lock(mutex_);
  for (auto& [path, file] : files_) {
    file.data.resize(file.synced_size);
  }
}

// --- FaultInjectionEnv -----------------------------------------------------

void FaultInjectionEnv::ArmPlan(uint64_t seed, const FaultPlanOptions& plan) {
  MutexLock lock(mutex_);
  plan_rng_.emplace(seed);
  plan_ = plan;
  transient_remaining_ = 0;
}

void FaultInjectionEnv::DisarmPlan() {
  MutexLock lock(mutex_);
  plan_rng_.reset();
  transient_remaining_ = 0;
}

bool FaultInjectionEnv::NextOpFaults(FaultMode* mode) {
  MutexLock lock(mutex_);
  ++op_count_;
  if (fault_at_ != 0 && op_count_ >= fault_at_) {
    fault_at_ = 0;  // one-shot
    triggered_ = true;
    if (mode != nullptr) *mode = mode_;
    return true;
  }
  if (plan_rng_.has_value()) {
    if (transient_remaining_ > 0) {
      // Inside an EIO burst: keep failing until it runs out.
      --transient_remaining_;
      ++plan_stats_.transient_failures;
      if (mode != nullptr) *mode = FaultMode::kFailOp;
      return true;
    }
    if (plan_.transient_error_rate > 0.0 &&
        plan_rng_->Bernoulli(plan_.transient_error_rate)) {
      const uint64_t max_burst = std::max<uint32_t>(1, plan_.max_transient_burst);
      transient_remaining_ =
          static_cast<uint32_t>(plan_rng_->Uniform(max_burst));  // burst - 1
      ++plan_stats_.transient_failures;
      if (mode != nullptr) *mode = FaultMode::kFailOp;
      return true;
    }
  }
  return false;
}

void FaultInjectionEnv::MaybeDamageForRead(const std::string& path) {
  MutexLock lock(mutex_);
  if (!plan_rng_.has_value()) return;
  auto it = files_.find(path);
  if (it == files_.end() || it->second.data.empty()) return;
  FileState& file = it->second;
  if (plan_.read_bit_flip_rate > 0.0 &&
      plan_rng_->Bernoulli(plan_.read_bit_flip_rate)) {
    const uint64_t offset = plan_rng_->Uniform(file.data.size());
    file.data[offset] ^= static_cast<char>(1u << plan_rng_->Uniform(8));
    ++plan_stats_.bit_flips;
    damage_log_.push_back(DamageEvent{path, offset, 1});
  }
  if (plan_.read_truncate_rate > 0.0 && !file.data.empty() &&
      plan_rng_->Bernoulli(plan_.read_truncate_rate)) {
    const uint64_t keep = plan_rng_->Uniform(file.data.size());
    const uint64_t lost = file.data.size() - keep;
    file.data.resize(keep);
    file.synced_size = std::min<size_t>(file.synced_size, file.data.size());
    ++plan_stats_.media_truncations;
    damage_log_.push_back(DamageEvent{path, keep, lost});
  }
}

Status FaultInjectionEnv::Truncate(const std::string& path) {
  if (NextOpFaults()) return IoError("injected fault: truncate " + path);
  return InMemoryEnv::Truncate(path);
}

Status FaultInjectionEnv::TruncateTo(const std::string& path, uint64_t size) {
  if (NextOpFaults()) return IoError("injected fault: truncate-to " + path);
  return InMemoryEnv::TruncateTo(path, size);
}

Status FaultInjectionEnv::Append(const std::string& path,
                                 std::string_view data) {
  FaultMode mode = FaultMode::kFailOp;
  if (NextOpFaults(&mode)) {
    if (mode == FaultMode::kTornAppend && !data.empty()) {
      // Half the record reaches the file: a torn write.
      InMemoryEnv::Append(path, data.substr(0, data.size() / 2));
    }
    return IoError("injected fault: append " + path);
  }
  {
    MutexLock lock(mutex_);
    if (plan_rng_.has_value()) {
      if (plan_.capacity_bytes > 0) {
        uint64_t total = 0;
        for (const auto& [p, file] : files_) total += file.data.size();
        if (total + data.size() > plan_.capacity_bytes) {
          ++plan_stats_.enospc_failures;
          return ResourceExhaustedError("no space left on device: " + path);
        }
      }
      if (plan_.torn_append_rate > 0.0 && !data.empty() &&
          plan_rng_->Bernoulli(plan_.torn_append_rate)) {
        // A strict prefix lands; the op still reports failure. TruncateTo
        // back to the pre-append size makes the retry clean.
        const uint64_t landed = plan_rng_->Uniform(data.size());
        files_[path].data.append(data.substr(0, landed));
        ++plan_stats_.torn_appends;
        return IoError("injected torn append: " + path);
      }
    }
  }
  return InMemoryEnv::Append(path, data);
}

Status FaultInjectionEnv::Sync(const std::string& path) {
  if (NextOpFaults()) return IoError("injected fault: sync " + path);
  {
    MutexLock lock(mutex_);
    if (plan_rng_.has_value() && plan_.lying_sync_rate > 0.0 &&
        plan_rng_->Bernoulli(plan_.lying_sync_rate)) {
      // Report success without advancing synced_size: the bytes evaporate
      // at the next Crash() even though the caller was told they are safe.
      ++plan_stats_.lying_syncs;
      return Status::Ok();
    }
  }
  return InMemoryEnv::Sync(path);
}

Result<std::string> FaultInjectionEnv::Read(const std::string& path) const {
  // Reads are not counted ops (the one-shot crash sweep only walks
  // mutations), but the plan's media damage lands before the bytes are
  // served. Damage mutates stored state, hence the const_cast.
  const_cast<FaultInjectionEnv*>(this)->MaybeDamageForRead(path);
  return InMemoryEnv::Read(path);
}

Status FaultInjectionEnv::Rename(const std::string& from,
                                 const std::string& to) {
  if (NextOpFaults()) return IoError("injected fault: rename " + from);
  return InMemoryEnv::Rename(from, to);
}

Status FaultInjectionEnv::Remove(const std::string& path) {
  if (NextOpFaults()) return IoError("injected fault: remove " + path);
  return InMemoryEnv::Remove(path);
}

}  // namespace ttra
