#ifndef TTRA_STORAGE_ENV_H_
#define TTRA_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/random.h"
#include "util/result.h"

namespace ttra {

/// Injectable filesystem abstraction used by everything that touches disk
/// (the WAL, checkpoints, recovery). Keeping the interface path-based and
/// tiny — append / sync / rename / read / list — makes it possible to slot
/// in a deterministic in-memory backend and a fault-injecting backend, so
/// crash behaviour can be tested at every single write point instead of
/// hoping kill -9 lands somewhere interesting.
///
/// Durability contract implementations must honor:
///  * Append(path, data) creates the file if needed and appends; the data
///    is NOT durable until Sync(path) returns OK.
///  * Rename(from, to) atomically replaces `to` and durably records the
///    rename itself (POSIX: fsync the containing directory).
///  * After a crash, a file may hold any prefix of its appended bytes that
///    is at least its content as of the last successful Sync.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates `path` as an empty file (truncating any existing content).
  virtual Status Truncate(const std::string& path) = 0;

  /// Truncates `path` to exactly `size` bytes (must not exceed the current
  /// file size). The write-path repair primitive: a failed append may
  /// leave a torn frame, and truncating back to the last known-good
  /// boundary makes the append retryable; `ttra fsck --repair` uses it to
  /// cut a corrupt tail after quarantining it.
  virtual Status TruncateTo(const std::string& path, uint64_t size) = 0;

  /// Appends `data` to `path`, creating it if absent.
  virtual Status Append(const std::string& path, std::string_view data) = 0;

  /// Durably flushes all appended data of `path` to storage.
  virtual Status Sync(const std::string& path) = 0;

  /// Reads the entire file.
  virtual Result<std::string> Read(const std::string& path) const = 0;

  /// Atomically replaces `to` with `from` and makes the rename durable.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// File names (not paths) in `dir`, sorted; "." and ".." excluded.
  virtual Result<std::vector<std::string>> List(const std::string& dir)
      const = 0;

  /// Creates `dir` (OK if it already exists) and makes it durable.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual bool Exists(const std::string& path) const = 0;

  /// Process-wide PosixEnv singleton.
  static Env* Default();
};

/// Real filesystem backend. Append/Sync keep an open-descriptor cache so a
/// WAL append does not pay an open(2) per record.
class PosixEnv : public Env {
 public:
  PosixEnv() = default;
  ~PosixEnv() override;

  Status Truncate(const std::string& path) override;
  Status TruncateTo(const std::string& path, uint64_t size) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Result<std::string> Read(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) const override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) const override;

 private:
  /// Returns a cached O_APPEND descriptor for `path`, opening (and creating
  /// the file) on first use. Caller holds mutex_.
  Result<int> OpenForAppendLocked(const std::string& path)
      TTRA_REQUIRES(mutex_);
  void DropFdLocked(const std::string& path) TTRA_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, int> fds_ TTRA_GUARDED_BY(mutex_);
};

/// Deterministic in-memory backend. Tracks, per file, how much of the
/// content has been Sync()ed, so a simulated crash (DropUnsynced) can
/// discard exactly the bytes a real power loss is allowed to lose.
class InMemoryEnv : public Env {
 public:
  Status Truncate(const std::string& path) override;
  Status TruncateTo(const std::string& path, uint64_t size) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Result<std::string> Read(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) const override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) const override;

  /// Simulates power loss: every file loses all bytes appended after its
  /// last successful Sync. Renames and removes are considered durable at
  /// the moment they succeed (the POSIX backend fsyncs the directory).
  void DropUnsynced();

 protected:
  struct FileState {
    std::string data;
    size_t synced_size = 0;
  };

  mutable Mutex mutex_;
  std::map<std::string, FileState> files_ TTRA_GUARDED_BY(mutex_);
  std::vector<std::string> dirs_ TTRA_GUARDED_BY(mutex_);
};

/// Seeded, probabilistic fault schedule for FaultInjectionEnv. Every rate
/// is a per-operation Bernoulli probability; drawing from a fixed seed
/// makes each schedule reproducible, so a failing torture-test seed
/// replays the exact same failure history.
struct FaultPlanOptions {
  /// Per counted mutating op: probability of starting a transient-EIO
  /// burst. The op fails with kIoError, as do the next `burst - 1`
  /// counted ops (burst drawn uniformly from [1, max_transient_burst]);
  /// then the env heals — the schedule a bounded retry loop rides out.
  double transient_error_rate = 0.0;
  uint32_t max_transient_burst = 3;
  /// Per Append: probability the write tears — a prefix of the data
  /// lands, kIoError is returned. Transient: TruncateTo back to the last
  /// good boundary followed by a retry succeeds.
  double torn_append_rate = 0.0;
  /// Per Sync: probability the fsync lies — it reports OK without making
  /// anything durable (the bytes vanish at the next Crash()). Models
  /// firmware that acknowledges flushes it never performed.
  double lying_sync_rate = 0.0;
  /// Per Read: probability one stored byte of the file is flipped before
  /// the read — sticky media damage (bit rot), recorded in damage_log().
  double read_bit_flip_rate = 0.0;
  /// Per Read: probability the stored file loses a random suffix before
  /// the read — sticky partial-media loss, recorded in damage_log().
  double read_truncate_rate = 0.0;
  /// Total bytes the backing store holds across all files; appends that
  /// would exceed it fail with kResourceExhausted (persistent ENOSPC)
  /// until space is freed. 0 = unlimited.
  uint64_t capacity_bytes = 0;
};

/// In-memory backend that injects failures, simulating the whole failure
/// matrix instead of hoping kill -9 or a dying disk lands somewhere
/// interesting. Two mechanisms compose:
///
///  * One-shot faults (InjectFault): fail — or tear — the Nth counted
///    mutating op (Truncate, TruncateTo, Append, Sync, Rename, Remove),
///    then disarm. The crash-sweep primitive: arm n = 1..op_count().
///  * Fault plans (ArmPlan): a seeded probabilistic schedule of transient
///    EIO bursts, torn appends, lying fsyncs, read-path media damage and
///    ENOSPC — see FaultPlanOptions. The torture-test primitive.
///
/// Media damage (bit flips, lost suffixes) is sticky: it mutates the
/// stored bytes, exactly like rot on a platter, and every event is
/// recorded in damage_log() so an oracle can reason about which commits
/// the damage may legally have destroyed.
class FaultInjectionEnv : public InMemoryEnv {
 public:
  enum class FaultMode { kFailOp, kTornAppend };

  /// Arms the fault at the `nth` future counted op; 0 disarms.
  void InjectFault(uint64_t nth, FaultMode mode) {
    MutexLock lock(mutex_);
    fault_at_ = op_count_ + nth;
    mode_ = mode;
    triggered_ = false;
  }

  void ClearFault() {
    MutexLock lock(mutex_);
    fault_at_ = 0;
  }

  /// Arms a seeded probabilistic fault plan (replacing any armed plan).
  /// Composes with InjectFault: the one-shot fault is checked first.
  void ArmPlan(uint64_t seed, const FaultPlanOptions& plan);

  /// Disarms the plan. Sticky media damage already dealt stays.
  void DisarmPlan();

  /// One sticky media-damage event dealt by the plan's read-path faults.
  struct DamageEvent {
    std::string path;
    uint64_t offset = 0;  ///< first damaged byte
    uint64_t bytes = 0;   ///< 1 for a bit flip, suffix length for a cut
  };
  std::vector<DamageEvent> damage_log() const {
    MutexLock lock(mutex_);
    return damage_log_;
  }

  /// Plan bookkeeping, for oracles that must know which fault classes
  /// actually fired on a given seed.
  struct PlanStats {
    uint64_t transient_failures = 0;  ///< ops failed by EIO bursts
    uint64_t torn_appends = 0;
    uint64_t lying_syncs = 0;  ///< syncs acknowledged but not performed
    uint64_t bit_flips = 0;
    uint64_t media_truncations = 0;
    uint64_t enospc_failures = 0;
  };
  PlanStats plan_stats() const {
    MutexLock lock(mutex_);
    return plan_stats_;
  }

  /// Total counted ops so far (use a fault-free run to size the fault
  /// sweep).
  uint64_t op_count() const {
    MutexLock lock(mutex_);
    return op_count_;
  }

  /// True once the armed one-shot fault has fired.
  bool fault_triggered() const {
    MutexLock lock(mutex_);
    return triggered_;
  }

  /// Simulate the crash that follows a fault: disarm everything (a new
  /// process starts with a healthy environment; media damage stays) and
  /// drop unsynced bytes — including bytes a lying fsync claimed durable.
  void Crash() {
    ClearFault();
    DisarmPlan();
    DropUnsynced();
  }

  Status Truncate(const std::string& path) override;
  Status TruncateTo(const std::string& path, uint64_t size) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Result<std::string> Read(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;

 private:
  /// Advances the op counter; returns true if this op must fail, storing
  /// the armed mode in `*mode`. Caller must NOT hold mutex_.
  bool NextOpFaults(FaultMode* mode = nullptr) TTRA_EXCLUDES(mutex_);

  /// Plan's read-path faults: possibly deals sticky damage to `path`'s
  /// stored bytes before a Read.
  void MaybeDamageForRead(const std::string& path) TTRA_EXCLUDES(mutex_);

  uint64_t op_count_ TTRA_GUARDED_BY(mutex_) = 0;
  uint64_t fault_at_ TTRA_GUARDED_BY(mutex_) = 0;  // 0 = disarmed
  FaultMode mode_ TTRA_GUARDED_BY(mutex_) = FaultMode::kFailOp;
  bool triggered_ TTRA_GUARDED_BY(mutex_) = false;

  std::optional<Rng> plan_rng_ TTRA_GUARDED_BY(mutex_);  // armed iff set
  FaultPlanOptions plan_ TTRA_GUARDED_BY(mutex_);
  uint32_t transient_remaining_ TTRA_GUARDED_BY(mutex_) = 0;
  std::vector<DamageEvent> damage_log_ TTRA_GUARDED_BY(mutex_);
  PlanStats plan_stats_ TTRA_GUARDED_BY(mutex_);
};

}  // namespace ttra

#endif  // TTRA_STORAGE_ENV_H_
