#ifndef TTRA_STORAGE_ENV_H_
#define TTRA_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"

namespace ttra {

/// Injectable filesystem abstraction used by everything that touches disk
/// (the WAL, checkpoints, recovery). Keeping the interface path-based and
/// tiny — append / sync / rename / read / list — makes it possible to slot
/// in a deterministic in-memory backend and a fault-injecting backend, so
/// crash behaviour can be tested at every single write point instead of
/// hoping kill -9 lands somewhere interesting.
///
/// Durability contract implementations must honor:
///  * Append(path, data) creates the file if needed and appends; the data
///    is NOT durable until Sync(path) returns OK.
///  * Rename(from, to) atomically replaces `to` and durably records the
///    rename itself (POSIX: fsync the containing directory).
///  * After a crash, a file may hold any prefix of its appended bytes that
///    is at least its content as of the last successful Sync.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates `path` as an empty file (truncating any existing content).
  virtual Status Truncate(const std::string& path) = 0;

  /// Appends `data` to `path`, creating it if absent.
  virtual Status Append(const std::string& path, std::string_view data) = 0;

  /// Durably flushes all appended data of `path` to storage.
  virtual Status Sync(const std::string& path) = 0;

  /// Reads the entire file.
  virtual Result<std::string> Read(const std::string& path) const = 0;

  /// Atomically replaces `to` with `from` and makes the rename durable.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// File names (not paths) in `dir`, sorted; "." and ".." excluded.
  virtual Result<std::vector<std::string>> List(const std::string& dir)
      const = 0;

  /// Creates `dir` (OK if it already exists) and makes it durable.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual bool Exists(const std::string& path) const = 0;

  /// Process-wide PosixEnv singleton.
  static Env* Default();
};

/// Real filesystem backend. Append/Sync keep an open-descriptor cache so a
/// WAL append does not pay an open(2) per record.
class PosixEnv : public Env {
 public:
  PosixEnv() = default;
  ~PosixEnv() override;

  Status Truncate(const std::string& path) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Result<std::string> Read(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) const override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) const override;

 private:
  /// Returns a cached O_APPEND descriptor for `path`, opening (and creating
  /// the file) on first use. Caller holds mutex_.
  Result<int> OpenForAppendLocked(const std::string& path)
      TTRA_REQUIRES(mutex_);
  void DropFdLocked(const std::string& path) TTRA_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, int> fds_ TTRA_GUARDED_BY(mutex_);
};

/// Deterministic in-memory backend. Tracks, per file, how much of the
/// content has been Sync()ed, so a simulated crash (DropUnsynced) can
/// discard exactly the bytes a real power loss is allowed to lose.
class InMemoryEnv : public Env {
 public:
  Status Truncate(const std::string& path) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Result<std::string> Read(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) const override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) const override;

  /// Simulates power loss: every file loses all bytes appended after its
  /// last successful Sync. Renames and removes are considered durable at
  /// the moment they succeed (the POSIX backend fsyncs the directory).
  void DropUnsynced();

 protected:
  struct FileState {
    std::string data;
    size_t synced_size = 0;
  };

  mutable Mutex mutex_;
  std::map<std::string, FileState> files_ TTRA_GUARDED_BY(mutex_);
  std::vector<std::string> dirs_ TTRA_GUARDED_BY(mutex_);
};

/// In-memory backend that can fail — or tear — the Nth mutating I/O
/// operation, simulating a crash at every write point of a workload.
///
/// Counted operations: Truncate, Append, Sync, Rename, Remove. The fault
/// fires once, on the `nth` counted op (1-based), and then disarms:
///  * kFailOp     — the op does nothing and returns kIoError.
///  * kTornAppend — an Append writes only a prefix of its data before
///                  returning kIoError (non-append ops fall back to
///                  kFailOp). Models a torn write mid-record.
class FaultInjectionEnv : public InMemoryEnv {
 public:
  enum class FaultMode { kFailOp, kTornAppend };

  /// Arms the fault at the `nth` future counted op; 0 disarms.
  void InjectFault(uint64_t nth, FaultMode mode) {
    MutexLock lock(mutex_);
    fault_at_ = op_count_ + nth;
    mode_ = mode;
    triggered_ = false;
  }

  void ClearFault() {
    MutexLock lock(mutex_);
    fault_at_ = 0;
  }

  /// Total counted ops so far (use a fault-free run to size the fault
  /// sweep).
  uint64_t op_count() const {
    MutexLock lock(mutex_);
    return op_count_;
  }

  /// True once the armed fault has fired.
  bool fault_triggered() const {
    MutexLock lock(mutex_);
    return triggered_;
  }

  /// Fault fired (or was about to): simulate the crash that follows —
  /// disarm and drop unsynced bytes.
  void Crash() {
    ClearFault();
    DropUnsynced();
  }

  Status Truncate(const std::string& path) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;

 private:
  /// Advances the op counter; returns true if this op must fail, storing
  /// the armed mode in `*mode`. Caller must NOT hold mutex_.
  bool NextOpFaults(FaultMode* mode = nullptr) TTRA_EXCLUDES(mutex_);

  uint64_t op_count_ TTRA_GUARDED_BY(mutex_) = 0;
  uint64_t fault_at_ TTRA_GUARDED_BY(mutex_) = 0;  // 0 = disarmed
  FaultMode mode_ TTRA_GUARDED_BY(mutex_) = FaultMode::kFailOp;
  bool triggered_ TTRA_GUARDED_BY(mutex_) = false;
};

}  // namespace ttra

#endif  // TTRA_STORAGE_ENV_H_
