#ifndef TTRA_STORAGE_LOGS_H_
#define TTRA_STORAGE_LOGS_H_

#include <algorithm>
#include <cassert>

#include "storage/state_log.h"

namespace ttra {

/// Direct realization of the paper's semantics: every (state, txn) pair is
/// stored in full. Fast FINDSTATE, O(history × state) space.
template <typename StateT>
class FullCopyLog final : public StateLog<StateT> {
 public:
  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!entries_.empty() && txn <= entries_.back().second) {
      return InternalError("non-increasing transaction number in Append");
    }
    entries_.emplace_back(state, txn);
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    entries_.clear();
    entries_.emplace_back(state, txn);
    return Status::Ok();
  }

  std::optional<StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), txn,
        [](TransactionNumber t, const auto& e) { return t < e.second; });
    if (it == entries_.begin()) return std::nullopt;
    return std::prev(it)->first;
  }

  size_t size() const override { return entries_.size(); }

  TransactionNumber TxnAt(size_t i) const override {
    return entries_[i].second;
  }

  size_t ApproxBytes() const override {
    size_t total = 0;
    for (const auto& [state, txn] : entries_) {
      total += ApproxSize(state) + sizeof(TransactionNumber);
    }
    return total;
  }

  StorageKind kind() const override { return StorageKind::kFullCopy; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<FullCopyLog<StateT>>(*this);
  }

 private:
  std::vector<std::pair<StateT, TransactionNumber>> entries_;
};

/// Differential ("backlog") engine: each entry stores the rows added and
/// removed relative to the previous state. FINDSTATE replays from the
/// start; space is proportional to change volume, not state size.
template <typename StateT>
class DeltaLog final : public StateLog<StateT> {
 public:
  using Row = typename StateTraits<StateT>::Row;

  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!entries_.empty() && txn <= entries_.back().txn) {
      return InternalError("non-increasing transaction number in Append");
    }
    Entry entry;
    entry.txn = txn;
    entry.schema = state.schema();
    const std::vector<Row>& new_rows = StateTraits<StateT>::Rows(state);
    if (!entries_.empty() && entries_.back().schema != state.schema()) {
      // Scheme change: rebase with a full snapshot of the new rows.
      entry.removed = tail_rows_;
      entry.added = new_rows;
    } else {
      std::set_difference(new_rows.begin(), new_rows.end(),
                          tail_rows_.begin(), tail_rows_.end(),
                          std::back_inserter(entry.added));
      std::set_difference(tail_rows_.begin(), tail_rows_.end(),
                          new_rows.begin(), new_rows.end(),
                          std::back_inserter(entry.removed));
    }
    tail_rows_ = new_rows;
    entries_.push_back(std::move(entry));
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    entries_.clear();
    tail_rows_.clear();
    return Append(state, txn);
  }

  std::optional<StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), txn,
        [](TransactionNumber t, const Entry& e) { return t < e.txn; });
    if (it == entries_.begin()) return std::nullopt;
    const size_t last = static_cast<size_t>(it - entries_.begin()) - 1;
    std::vector<Row> rows;
    for (size_t i = 0; i <= last; ++i) ApplyEntry(entries_[i], rows);
    return StateTraits<StateT>::FromRows(entries_[last].schema,
                                         std::move(rows));
  }

  size_t size() const override { return entries_.size(); }

  TransactionNumber TxnAt(size_t i) const override { return entries_[i].txn; }

  size_t ApproxBytes() const override {
    size_t total = 0;
    for (const Entry& e : entries_) {
      total += sizeof(TransactionNumber) + 32;  // entry overhead
      for (const Row& r : e.added) total += ApproxSize(r);
      for (const Row& r : e.removed) total += ApproxSize(r);
    }
    return total;
  }

  StorageKind kind() const override { return StorageKind::kDelta; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<DeltaLog<StateT>>(*this);
  }

 private:
  struct Entry {
    TransactionNumber txn = 0;
    Schema schema;
    std::vector<Row> added;
    std::vector<Row> removed;
  };

  static void ApplyEntry(const Entry& entry, std::vector<Row>& rows) {
    if (!entry.removed.empty()) {
      std::vector<Row> kept;
      kept.reserve(rows.size());
      std::set_difference(rows.begin(), rows.end(), entry.removed.begin(),
                          entry.removed.end(), std::back_inserter(kept));
      rows = std::move(kept);
    }
    if (!entry.added.empty()) {
      std::vector<Row> merged;
      merged.reserve(rows.size() + entry.added.size());
      std::merge(rows.begin(), rows.end(), entry.added.begin(),
                 entry.added.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
  }

  std::vector<Entry> entries_;
  std::vector<Row> tail_rows_;  // rows of the most recent state
};

/// Delta engine with periodic full checkpoints: every `interval`-th entry
/// stores the complete state, bounding FINDSTATE replay to `interval`
/// entries — the classic space/time dial between kFullCopy (interval 1)
/// and kDelta (interval ∞).
template <typename StateT>
class CheckpointLog final : public StateLog<StateT> {
 public:
  using Row = typename StateTraits<StateT>::Row;

  explicit CheckpointLog(size_t interval) : interval_(interval < 1 ? 1 : interval) {}

  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!entries_.empty() && txn <= entries_.back().txn) {
      return InternalError("non-increasing transaction number in Append");
    }
    Entry entry;
    entry.txn = txn;
    entry.schema = state.schema();
    const std::vector<Row>& new_rows = StateTraits<StateT>::Rows(state);
    const bool checkpoint =
        entries_.empty() || entries_.size() % interval_ == 0 ||
        entries_.back().schema != state.schema();
    if (checkpoint) {
      entry.is_checkpoint = true;
      entry.added = new_rows;
    } else {
      std::set_difference(new_rows.begin(), new_rows.end(),
                          tail_rows_.begin(), tail_rows_.end(),
                          std::back_inserter(entry.added));
      std::set_difference(tail_rows_.begin(), tail_rows_.end(),
                          new_rows.begin(), new_rows.end(),
                          std::back_inserter(entry.removed));
    }
    tail_rows_ = new_rows;
    entries_.push_back(std::move(entry));
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    entries_.clear();
    tail_rows_.clear();
    return Append(state, txn);
  }

  std::optional<StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), txn,
        [](TransactionNumber t, const Entry& e) { return t < e.txn; });
    if (it == entries_.begin()) return std::nullopt;
    const size_t last = static_cast<size_t>(it - entries_.begin()) - 1;
    size_t start = last;
    while (!entries_[start].is_checkpoint) {
      assert(start > 0);
      --start;
    }
    std::vector<Row> rows;
    for (size_t i = start; i <= last; ++i) {
      if (entries_[i].is_checkpoint) {
        rows = entries_[i].added;
      } else {
        ApplyDelta(entries_[i], rows);
      }
    }
    return StateTraits<StateT>::FromRows(entries_[last].schema,
                                         std::move(rows));
  }

  size_t size() const override { return entries_.size(); }

  TransactionNumber TxnAt(size_t i) const override { return entries_[i].txn; }

  size_t ApproxBytes() const override {
    size_t total = 0;
    for (const Entry& e : entries_) {
      total += sizeof(TransactionNumber) + 32;
      for (const Row& r : e.added) total += ApproxSize(r);
      for (const Row& r : e.removed) total += ApproxSize(r);
    }
    return total;
  }

  StorageKind kind() const override { return StorageKind::kCheckpoint; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<CheckpointLog<StateT>>(*this);
  }

  size_t interval() const { return interval_; }

 private:
  struct Entry {
    TransactionNumber txn = 0;
    Schema schema;
    bool is_checkpoint = false;
    std::vector<Row> added;    // full rows when is_checkpoint
    std::vector<Row> removed;  // empty when is_checkpoint
  };

  static void ApplyDelta(const Entry& entry, std::vector<Row>& rows) {
    if (!entry.removed.empty()) {
      std::vector<Row> kept;
      kept.reserve(rows.size());
      std::set_difference(rows.begin(), rows.end(), entry.removed.begin(),
                          entry.removed.end(), std::back_inserter(kept));
      rows = std::move(kept);
    }
    if (!entry.added.empty()) {
      std::vector<Row> merged;
      merged.reserve(rows.size() + entry.added.size());
      std::merge(rows.begin(), rows.end(), entry.added.begin(),
                 entry.added.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
  }

  size_t interval_;
  std::vector<Entry> entries_;
  std::vector<Row> tail_rows_;
};

/// Reverse-delta engine (the RCS layout): the most recent state is stored
/// in full and each older state is reachable through a *backward* delta.
/// ρ(R, ∞) reads the stored state directly; rolling back to the k-th most
/// recent state replays k backward deltas. The natural complement of
/// DeltaLog when queries skew towards the present.
template <typename StateT>
class ReverseDeltaLog final : public StateLog<StateT> {
 public:
  using Row = typename StateTraits<StateT>::Row;

  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!txns_.empty() && txn <= txns_.back()) {
      return InternalError("non-increasing transaction number in Append");
    }
    const std::vector<Row>& new_rows = StateTraits<StateT>::Rows(state);
    if (!txns_.empty()) {
      // Record how to get the *previous* state back from the new one.
      BackEntry entry;
      entry.schema = current_schema_;
      if (current_schema_ != state.schema()) {
        // Scheme boundary: keep the previous rows verbatim.
        entry.is_full = true;
        entry.added = current_rows_;
      } else {
        std::set_difference(current_rows_.begin(), current_rows_.end(),
                            new_rows.begin(), new_rows.end(),
                            std::back_inserter(entry.added));
        std::set_difference(new_rows.begin(), new_rows.end(),
                            current_rows_.begin(), current_rows_.end(),
                            std::back_inserter(entry.removed));
      }
      back_deltas_.push_back(std::move(entry));
    }
    txns_.push_back(txn);
    current_rows_ = new_rows;
    current_schema_ = state.schema();
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    txns_.clear();
    back_deltas_.clear();
    current_rows_.clear();
    return Append(state, txn);
  }

  std::optional<StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(txns_.begin(), txns_.end(), txn);
    if (it == txns_.begin()) return std::nullopt;
    const size_t target = static_cast<size_t>(it - txns_.begin()) - 1;
    std::vector<Row> rows = current_rows_;
    Schema schema = current_schema_;
    // Walk backwards from the newest version (index size-1) to `target`;
    // back_deltas_[k] recovers version k from version k+1.
    for (size_t k = txns_.size() - 1; k > target; --k) {
      const BackEntry& entry = back_deltas_[k - 1];
      if (entry.is_full) {
        rows = entry.added;
      } else {
        ApplyBack(entry, rows);
      }
      schema = entry.schema;
    }
    return StateTraits<StateT>::FromRows(schema, std::move(rows));
  }

  size_t size() const override { return txns_.size(); }

  TransactionNumber TxnAt(size_t i) const override { return txns_[i]; }

  size_t ApproxBytes() const override {
    size_t total = 64;
    for (const Row& r : current_rows_) total += ApproxSize(r);
    for (const BackEntry& e : back_deltas_) {
      total += 32;
      for (const Row& r : e.added) total += ApproxSize(r);
      for (const Row& r : e.removed) total += ApproxSize(r);
    }
    total += txns_.size() * sizeof(TransactionNumber);
    return total;
  }

  StorageKind kind() const override { return StorageKind::kReverseDelta; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<ReverseDeltaLog<StateT>>(*this);
  }

 private:
  struct BackEntry {
    Schema schema;   // scheme of the *older* state this entry recovers
    bool is_full = false;
    std::vector<Row> added;    // rows to restore (all rows when is_full)
    std::vector<Row> removed;  // rows the newer state introduced
  };

  static void ApplyBack(const BackEntry& entry, std::vector<Row>& rows) {
    if (!entry.removed.empty()) {
      std::vector<Row> kept;
      kept.reserve(rows.size());
      std::set_difference(rows.begin(), rows.end(), entry.removed.begin(),
                          entry.removed.end(), std::back_inserter(kept));
      rows = std::move(kept);
    }
    if (!entry.added.empty()) {
      std::vector<Row> merged;
      merged.reserve(rows.size() + entry.added.size());
      std::merge(rows.begin(), rows.end(), entry.added.begin(),
                 entry.added.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
  }

  std::vector<TransactionNumber> txns_;
  std::vector<BackEntry> back_deltas_;  // size = txns_.size() - 1
  std::vector<Row> current_rows_;
  Schema current_schema_;
};

}  // namespace ttra

#endif  // TTRA_STORAGE_LOGS_H_
