#ifndef TTRA_STORAGE_LOGS_H_
#define TTRA_STORAGE_LOGS_H_

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "storage/state_log.h"
#include "util/mutex.h"

namespace ttra {

/// Small thread-safe LRU of reconstructed states, keyed by entry index.
/// The replay-based engines (delta/checkpoint/reverse-delta) consult it so
/// repeated FINDSTATE reads of the same or nearby transactions skip the
/// replay; readers may probe one log concurrently (SerialExecutor holds
/// only a shared lock), hence the internal mutex. Cached states are
/// immutable and shared, so Clone copies the cache by reference.
/// A capacity of 0 disables caching entirely.
template <typename StateT>
class FindStateCache {
 public:
  explicit FindStateCache(size_t capacity) : capacity_(capacity) {}

  FindStateCache(const FindStateCache& other) : capacity_(other.capacity_) {
    MutexLock lock(other.mutex_);
    slots_ = other.slots_;
    clock_ = other.clock_;
  }
  FindStateCache& operator=(const FindStateCache&) = delete;

  size_t capacity() const { return capacity_; }

  /// The cached state for exactly `index`, or nullptr.
  std::shared_ptr<const StateT> Get(size_t index) const {
    MutexLock lock(mutex_);
    for (Slot& slot : slots_) {
      if (slot.index == index) {
        slot.stamp = ++clock_;
        return slot.state;
      }
    }
    return nullptr;
  }

  /// The cached entry with the greatest index <= `index` (replay seed for
  /// forward-delta engines), or nullopt.
  std::optional<std::pair<size_t, std::shared_ptr<const StateT>>> Floor(
      size_t index) const {
    MutexLock lock(mutex_);
    Slot* best = nullptr;
    for (Slot& slot : slots_) {
      if (slot.index <= index && (best == nullptr || slot.index > best->index)) {
        best = &slot;
      }
    }
    if (best == nullptr) return std::nullopt;
    best->stamp = ++clock_;
    return std::make_pair(best->index, best->state);
  }

  /// The cached entry with the least index >= `index` (replay seed for the
  /// backward-walking reverse-delta engine), or nullopt.
  std::optional<std::pair<size_t, std::shared_ptr<const StateT>>> Ceil(
      size_t index) const {
    MutexLock lock(mutex_);
    Slot* best = nullptr;
    for (Slot& slot : slots_) {
      if (slot.index >= index && (best == nullptr || slot.index < best->index)) {
        best = &slot;
      }
    }
    if (best == nullptr) return std::nullopt;
    best->stamp = ++clock_;
    return std::make_pair(best->index, best->state);
  }

  void Put(size_t index, std::shared_ptr<const StateT> state) const {
    if (capacity_ == 0) return;
    MutexLock lock(mutex_);
    Slot* victim = nullptr;
    for (Slot& slot : slots_) {
      if (slot.index == index) {
        slot.state = std::move(state);
        slot.stamp = ++clock_;
        return;
      }
      if (victim == nullptr || slot.stamp < victim->stamp) victim = &slot;
    }
    if (slots_.size() < capacity_) {
      slots_.push_back(Slot{index, std::move(state), ++clock_});
      return;
    }
    *victim = Slot{index, std::move(state), ++clock_};
  }

  /// Invalidates everything (called on Append/ReplaceLast and by vacuum's
  /// rebuild, which starts from a fresh log anyway).
  void Clear() const {
    MutexLock lock(mutex_);
    slots_.clear();
  }

 private:
  struct Slot {
    size_t index = 0;
    std::shared_ptr<const StateT> state;
    uint64_t stamp = 0;
  };

  size_t capacity_;
  mutable Mutex mutex_;
  mutable std::vector<Slot> slots_ TTRA_GUARDED_BY(mutex_);
  mutable uint64_t clock_ TTRA_GUARDED_BY(mutex_) = 0;
};

/// Direct realization of the paper's semantics: every (state, txn) pair is
/// stored in full. Entries are shared immutable states, so FINDSTATE and
/// Clone are allocation-free — O(1) and O(history) pointer copies.
template <typename StateT>
class FullCopyLog final : public StateLog<StateT> {
 public:
  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!entries_.empty() && txn <= entries_.back().second) {
      return InternalError("non-increasing transaction number in Append");
    }
    entries_.emplace_back(std::make_shared<const StateT>(state), txn);
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    entries_.clear();
    entries_.emplace_back(std::make_shared<const StateT>(state), txn);
    return Status::Ok();
  }

  std::shared_ptr<const StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), txn,
        [](TransactionNumber t, const auto& e) { return t < e.second; });
    if (it == entries_.begin()) return nullptr;
    return std::prev(it)->first;
  }

  size_t size() const override { return entries_.size(); }

  TransactionNumber TxnAt(size_t i) const override {
    return entries_[i].second;
  }

  size_t ApproxBytes() const override {
    size_t total = 0;
    for (const auto& [state, txn] : entries_) {
      total += ApproxSize(*state) + sizeof(TransactionNumber);
    }
    return total;
  }

  StorageKind kind() const override { return StorageKind::kFullCopy; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<FullCopyLog<StateT>>(*this);
  }

 private:
  std::vector<std::pair<std::shared_ptr<const StateT>, TransactionNumber>>
      entries_;
};

/// Differential ("backlog") engine: each entry stores the rows added and
/// removed relative to the previous state. FINDSTATE replays from the
/// nearest cached reconstruction (or the start); the tail state is kept
/// shared so ρ(R, ∞) is O(1). Space is proportional to change volume.
template <typename StateT>
class DeltaLog final : public StateLog<StateT> {
 public:
  using Row = typename StateTraits<StateT>::Row;

  explicit DeltaLog(size_t cache_capacity = kDefaultFindStateCacheCapacity)
      : cache_(cache_capacity) {}

  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!entries_.empty() && txn <= entries_.back().txn) {
      return InternalError("non-increasing transaction number in Append");
    }
    Entry entry;
    entry.txn = txn;
    entry.schema = state.schema();
    const std::vector<Row>& new_rows = StateTraits<StateT>::Rows(state);
    if (!entries_.empty() && entries_.back().schema != state.schema()) {
      // Scheme change: rebase with a full snapshot of the new rows.
      entry.removed = StateTraits<StateT>::Rows(*tail_state_);
      entry.added = new_rows;
    } else {
      const std::vector<Row> no_rows;
      const std::vector<Row>& old_rows =
          tail_state_ ? StateTraits<StateT>::Rows(*tail_state_) : no_rows;
      std::set_difference(new_rows.begin(), new_rows.end(), old_rows.begin(),
                          old_rows.end(), std::back_inserter(entry.added));
      std::set_difference(old_rows.begin(), old_rows.end(), new_rows.begin(),
                          new_rows.end(), std::back_inserter(entry.removed));
    }
    tail_state_ = std::make_shared<const StateT>(state);
    entries_.push_back(std::move(entry));
    cache_.Clear();
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    entries_.clear();
    tail_state_.reset();
    cache_.Clear();
    return Append(state, txn);
  }

  std::shared_ptr<const StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), txn,
        [](TransactionNumber t, const Entry& e) { return t < e.txn; });
    if (it == entries_.begin()) return nullptr;
    const size_t last = static_cast<size_t>(it - entries_.begin()) - 1;
    if (last + 1 == entries_.size()) return tail_state_;
    if (auto cached = cache_.Get(last)) return cached;
    // Seed the replay from the nearest cached reconstruction at or before
    // `last` (only if its scheme epoch matches — a rebase entry in between
    // resets the rows anyway, so any seed is safe to replay through).
    size_t start = 0;
    std::vector<Row> rows;
    if (auto seed = cache_.Floor(last)) {
      start = seed->first + 1;
      rows = StateTraits<StateT>::Rows(*seed->second);
    }
    for (size_t i = start; i <= last; ++i) ApplyEntry(entries_[i], rows);
    auto state = std::make_shared<const StateT>(
        StateTraits<StateT>::FromRows(entries_[last].schema, std::move(rows)));
    cache_.Put(last, state);
    return state;
  }

  size_t size() const override { return entries_.size(); }

  TransactionNumber TxnAt(size_t i) const override { return entries_[i].txn; }

  size_t ApproxBytes() const override {
    size_t total = 0;
    for (const Entry& e : entries_) {
      total += sizeof(TransactionNumber) + 32;  // entry overhead
      for (const Row& r : e.added) total += ApproxSize(r);
      for (const Row& r : e.removed) total += ApproxSize(r);
    }
    return total;
  }

  StorageKind kind() const override { return StorageKind::kDelta; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<DeltaLog<StateT>>(*this);
  }

 private:
  struct Entry {
    TransactionNumber txn = 0;
    Schema schema;
    std::vector<Row> added;
    std::vector<Row> removed;
  };

  static void ApplyEntry(const Entry& entry, std::vector<Row>& rows) {
    if (!entry.removed.empty()) {
      std::vector<Row> kept;
      kept.reserve(rows.size());
      std::set_difference(rows.begin(), rows.end(), entry.removed.begin(),
                          entry.removed.end(), std::back_inserter(kept));
      rows = std::move(kept);
    }
    if (!entry.added.empty()) {
      std::vector<Row> merged;
      merged.reserve(rows.size() + entry.added.size());
      std::merge(rows.begin(), rows.end(), entry.added.begin(),
                 entry.added.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
  }

  std::vector<Entry> entries_;
  std::shared_ptr<const StateT> tail_state_;  // most recent state, shared
  FindStateCache<StateT> cache_;
};

/// Delta engine with periodic full checkpoints: every `interval`-th entry
/// stores the complete state, bounding FINDSTATE replay to `interval`
/// entries — the classic space/time dial between kFullCopy (interval 1)
/// and kDelta (interval ∞). Checkpoint entries are shared immutable
/// states, so appending a checkpoint and serving one are O(1) copies.
template <typename StateT>
class CheckpointLog final : public StateLog<StateT> {
 public:
  using Row = typename StateTraits<StateT>::Row;

  explicit CheckpointLog(
      size_t interval,
      size_t cache_capacity = kDefaultFindStateCacheCapacity)
      : interval_(interval < 1 ? 1 : interval), cache_(cache_capacity) {}

  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!entries_.empty() && txn <= entries_.back().txn) {
      return InternalError("non-increasing transaction number in Append");
    }
    Entry entry;
    entry.txn = txn;
    entry.schema = state.schema();
    auto shared = std::make_shared<const StateT>(state);
    const bool checkpoint =
        entries_.empty() || entries_.size() % interval_ == 0 ||
        entries_.back().schema != state.schema();
    if (checkpoint) {
      entry.full = shared;
    } else {
      const std::vector<Row>& new_rows = StateTraits<StateT>::Rows(state);
      const std::vector<Row>& old_rows = StateTraits<StateT>::Rows(*tail_state_);
      std::set_difference(new_rows.begin(), new_rows.end(), old_rows.begin(),
                          old_rows.end(), std::back_inserter(entry.added));
      std::set_difference(old_rows.begin(), old_rows.end(), new_rows.begin(),
                          new_rows.end(), std::back_inserter(entry.removed));
    }
    tail_state_ = std::move(shared);
    entries_.push_back(std::move(entry));
    cache_.Clear();
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    entries_.clear();
    tail_state_.reset();
    cache_.Clear();
    return Append(state, txn);
  }

  std::shared_ptr<const StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), txn,
        [](TransactionNumber t, const Entry& e) { return t < e.txn; });
    if (it == entries_.begin()) return nullptr;
    const size_t last = static_cast<size_t>(it - entries_.begin()) - 1;
    if (last + 1 == entries_.size()) return tail_state_;
    if (entries_[last].full != nullptr) return entries_[last].full;
    if (auto cached = cache_.Get(last)) return cached;
    size_t start = last;
    while (entries_[start].full == nullptr) {
      assert(start > 0);
      --start;
    }
    // Prefer a cached reconstruction inside the same checkpoint segment
    // over replaying from the checkpoint itself.
    std::vector<Row> rows;
    size_t next = start;
    if (auto seed = cache_.Floor(last); seed && seed->first > start) {
      rows = StateTraits<StateT>::Rows(*seed->second);
      next = seed->first + 1;
    } else {
      rows = StateTraits<StateT>::Rows(*entries_[start].full);
      next = start + 1;
    }
    for (size_t i = next; i <= last; ++i) ApplyDelta(entries_[i], rows);
    auto state = std::make_shared<const StateT>(
        StateTraits<StateT>::FromRows(entries_[last].schema, std::move(rows)));
    cache_.Put(last, state);
    return state;
  }

  size_t size() const override { return entries_.size(); }

  TransactionNumber TxnAt(size_t i) const override { return entries_[i].txn; }

  size_t ApproxBytes() const override {
    size_t total = 0;
    for (const Entry& e : entries_) {
      total += sizeof(TransactionNumber) + 32;
      if (e.full != nullptr) total += ApproxSize(*e.full);
      for (const Row& r : e.added) total += ApproxSize(r);
      for (const Row& r : e.removed) total += ApproxSize(r);
    }
    return total;
  }

  StorageKind kind() const override { return StorageKind::kCheckpoint; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<CheckpointLog<StateT>>(*this);
  }

  size_t interval() const { return interval_; }

 private:
  struct Entry {
    TransactionNumber txn = 0;
    Schema schema;
    std::shared_ptr<const StateT> full;  // non-null iff checkpoint entry
    std::vector<Row> added;              // delta entries only
    std::vector<Row> removed;
  };

  static void ApplyDelta(const Entry& entry, std::vector<Row>& rows) {
    if (!entry.removed.empty()) {
      std::vector<Row> kept;
      kept.reserve(rows.size());
      std::set_difference(rows.begin(), rows.end(), entry.removed.begin(),
                          entry.removed.end(), std::back_inserter(kept));
      rows = std::move(kept);
    }
    if (!entry.added.empty()) {
      std::vector<Row> merged;
      merged.reserve(rows.size() + entry.added.size());
      std::merge(rows.begin(), rows.end(), entry.added.begin(),
                 entry.added.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
  }

  size_t interval_;
  std::vector<Entry> entries_;
  std::shared_ptr<const StateT> tail_state_;
  FindStateCache<StateT> cache_;
};

/// Reverse-delta engine (the RCS layout): the most recent state is stored
/// in full and each older state is reachable through a *backward* delta.
/// ρ(R, ∞) hands out the shared current state in O(1); rolling back to the
/// k-th most recent state replays backward deltas from the nearest cached
/// reconstruction. The natural complement of DeltaLog when queries skew
/// towards the present.
template <typename StateT>
class ReverseDeltaLog final : public StateLog<StateT> {
 public:
  using Row = typename StateTraits<StateT>::Row;

  explicit ReverseDeltaLog(
      size_t cache_capacity = kDefaultFindStateCacheCapacity)
      : cache_(cache_capacity) {}

  Status Append(const StateT& state, TransactionNumber txn) override {
    if (!txns_.empty() && txn <= txns_.back()) {
      return InternalError("non-increasing transaction number in Append");
    }
    const std::vector<Row>& new_rows = StateTraits<StateT>::Rows(state);
    if (!txns_.empty()) {
      // Record how to get the *previous* state back from the new one.
      const std::vector<Row>& current_rows =
          StateTraits<StateT>::Rows(*current_state_);
      BackEntry entry;
      entry.schema = current_state_->schema();
      if (current_state_->schema() != state.schema()) {
        // Scheme boundary: keep the previous rows verbatim.
        entry.is_full = true;
        entry.added = current_rows;
      } else {
        std::set_difference(current_rows.begin(), current_rows.end(),
                            new_rows.begin(), new_rows.end(),
                            std::back_inserter(entry.added));
        std::set_difference(new_rows.begin(), new_rows.end(),
                            current_rows.begin(), current_rows.end(),
                            std::back_inserter(entry.removed));
      }
      back_deltas_.push_back(std::move(entry));
    }
    txns_.push_back(txn);
    current_state_ = std::make_shared<const StateT>(state);
    cache_.Clear();
    return Status::Ok();
  }

  Status ReplaceLast(const StateT& state, TransactionNumber txn) override {
    txns_.clear();
    back_deltas_.clear();
    current_state_.reset();
    cache_.Clear();
    return Append(state, txn);
  }

  std::shared_ptr<const StateT> StateAt(TransactionNumber txn) const override {
    auto it = std::upper_bound(txns_.begin(), txns_.end(), txn);
    if (it == txns_.begin()) return nullptr;
    const size_t target = static_cast<size_t>(it - txns_.begin()) - 1;
    if (target + 1 == txns_.size()) return current_state_;
    if (auto cached = cache_.Get(target)) return cached;
    // Walk backwards towards `target` from the nearest reconstruction at
    // or after it (cached, or the current state); back_deltas_[k] recovers
    // version k from version k+1.
    size_t from = txns_.size() - 1;
    std::vector<Row> rows;
    Schema schema;
    if (auto seed = cache_.Ceil(target); seed && seed->first < from) {
      from = seed->first;
      rows = StateTraits<StateT>::Rows(*seed->second);
      schema = seed->second->schema();
    } else {
      rows = StateTraits<StateT>::Rows(*current_state_);
      schema = current_state_->schema();
    }
    for (size_t k = from; k > target; --k) {
      const BackEntry& entry = back_deltas_[k - 1];
      if (entry.is_full) {
        rows = entry.added;
      } else {
        ApplyBack(entry, rows);
      }
      schema = entry.schema;
    }
    auto state = std::make_shared<const StateT>(
        StateTraits<StateT>::FromRows(schema, std::move(rows)));
    cache_.Put(target, state);
    return state;
  }

  size_t size() const override { return txns_.size(); }

  TransactionNumber TxnAt(size_t i) const override { return txns_[i]; }

  size_t ApproxBytes() const override {
    size_t total = 64;
    if (current_state_ != nullptr) total += ApproxSize(*current_state_);
    for (const BackEntry& e : back_deltas_) {
      total += 32;
      for (const Row& r : e.added) total += ApproxSize(r);
      for (const Row& r : e.removed) total += ApproxSize(r);
    }
    total += txns_.size() * sizeof(TransactionNumber);
    return total;
  }

  StorageKind kind() const override { return StorageKind::kReverseDelta; }

  std::unique_ptr<StateLog<StateT>> Clone() const override {
    return std::make_unique<ReverseDeltaLog<StateT>>(*this);
  }

 private:
  struct BackEntry {
    Schema schema;   // scheme of the *older* state this entry recovers
    bool is_full = false;
    std::vector<Row> added;    // rows to restore (all rows when is_full)
    std::vector<Row> removed;  // rows the newer state introduced
  };

  static void ApplyBack(const BackEntry& entry, std::vector<Row>& rows) {
    if (!entry.removed.empty()) {
      std::vector<Row> kept;
      kept.reserve(rows.size());
      std::set_difference(rows.begin(), rows.end(), entry.removed.begin(),
                          entry.removed.end(), std::back_inserter(kept));
      rows = std::move(kept);
    }
    if (!entry.added.empty()) {
      std::vector<Row> merged;
      merged.reserve(rows.size() + entry.added.size());
      std::merge(rows.begin(), rows.end(), entry.added.begin(),
                 entry.added.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
  }

  std::vector<TransactionNumber> txns_;
  std::vector<BackEntry> back_deltas_;  // size = txns_.size() - 1
  std::shared_ptr<const StateT> current_state_;
  FindStateCache<StateT> cache_;
};

}  // namespace ttra

#endif  // TTRA_STORAGE_LOGS_H_
