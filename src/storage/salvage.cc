#include "storage/salvage.h"

#include <algorithm>

namespace ttra {

namespace {

/// Verdicts are ordered by severity, so "worst so far" is a max.
void Worsen(SalvageVerdict& verdict, SalvageVerdict candidate) {
  verdict = std::max(verdict, candidate);
}

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view SalvageVerdictName(SalvageVerdict verdict) {
  switch (verdict) {
    case SalvageVerdict::kClean:
      return "clean";
    case SalvageVerdict::kTruncatedTail:
      return "truncated-tail";
    case SalvageVerdict::kNeedsRepair:
      return "needs-repair";
    case SalvageVerdict::kUnrecoverable:
      return "unrecoverable";
  }
  return "unknown";
}

Result<SalvageReport> ScanStorage(Env* env, const std::string& dir,
                                  const SalvageOptions& options) {
  SalvageReport report;
  const std::string checkpoint = dir + "/" + options.checkpoint_file;
  const std::string wal = dir + "/" + options.wal_file;

  if (env->Exists(checkpoint)) {
    report.checkpoint_present = true;
    Result<std::string> data = env->Read(checkpoint);
    if (!data.ok()) {
      report.findings.push_back(SalvageFinding{
          checkpoint, 0, "io-error", data.status().message()});
      Worsen(report.verdict, SalvageVerdict::kUnrecoverable);
    } else {
      Status valid = options.validate_checkpoint
                         ? options.validate_checkpoint(*data)
                         : Status::Ok();
      if (valid.ok()) {
        report.checkpoint_valid = true;
      } else {
        report.findings.push_back(SalvageFinding{
            checkpoint, 0, "checkpoint-invalid", valid.message()});
        Worsen(report.verdict, SalvageVerdict::kUnrecoverable);
      }
    }
  }

  if (!env->Exists(wal)) return report;  // fresh dir or checkpoint-only
  report.wal_present = true;
  {
    // Size the file independently of ReadWal so even a bad-header report
    // can state how many bytes are at stake.
    Result<std::string> raw = env->Read(wal);
    if (raw.ok()) report.wal_size = raw->size();
  }

  Result<WalReadResult> read = ReadWal(*env, wal);
  if (!read.ok()) {
    // Bad magic or unsupported version: the file is not (any longer) a
    // WAL. Salvageable prefix is empty — repair quarantines it whole.
    report.findings.push_back(
        SalvageFinding{wal, 0, "bad-header", read.status().message()});
    report.wal_valid_size = 0;
    Worsen(report.verdict, SalvageVerdict::kNeedsRepair);
    return report;
  }

  const WalReadResult& r = *read;
  report.wal_valid_size = r.valid_size;
  report.wal_valid_records = r.records.size();
  report.wal_records_after_hole = r.records_after_hole;

  // Semantic pass: a frame can checksum cleanly yet not decode as a
  // command record (a checksummed write of wrong bytes). The salvageable
  // prefix ends at the first such record.
  if (options.validate_record) {
    for (size_t i = 0; i < r.records.size(); ++i) {
      Status valid = options.validate_record(r.records[i]);
      if (valid.ok()) continue;
      report.findings.push_back(SalvageFinding{
          wal, r.record_offsets[i], "invalid-record",
          "record #" + std::to_string(i) + ": " + valid.message()});
      report.wal_valid_size = r.record_offsets[i];
      report.wal_valid_records = i;
      // Frame-intact records beyond this one are stranded behind the cut.
      report.wal_records_after_hole += r.records.size() - i - 1;
      Worsen(report.verdict, SalvageVerdict::kNeedsRepair);
      break;
    }
  }

  if (r.cause != WalCorruptionCause::kNone) {
    report.findings.push_back(SalvageFinding{
        wal, r.invalid_offset, std::string(WalCorruptionCauseName(r.cause)),
        "record #" + std::to_string(r.invalid_record_index) +
            " is invalid at byte " + std::to_string(r.invalid_offset)});
    if (r.records_after_hole > 0) {
      report.findings.push_back(SalvageFinding{
          wal, r.resync_offset, "stranded-records",
          std::to_string(r.records_after_hole) +
              " intact record(s) resync after the hole at byte " +
              std::to_string(r.resync_offset) +
              "; truncating without repair would drop them"});
      Worsen(report.verdict, SalvageVerdict::kNeedsRepair);
    } else {
      Worsen(report.verdict, SalvageVerdict::kTruncatedTail);
    }
  }
  return report;
}

Result<SalvageReport> RepairStorage(Env* env, const std::string& dir,
                                    const SalvageOptions& options) {
  TTRA_ASSIGN_OR_RETURN(SalvageReport report, ScanStorage(env, dir, options));
  if (report.verdict == SalvageVerdict::kClean ||
      report.verdict == SalvageVerdict::kUnrecoverable ||
      !report.wal_present) {
    return report;  // nothing to repair, or nothing repair could restore
  }

  const std::string wal = dir + "/" + options.wal_file;
  const std::string quarantine = wal + ".quarantine";
  TTRA_ASSIGN_OR_RETURN(std::string data, env->Read(wal));
  if (report.wal_valid_size >= data.size() && report.wal_valid_size > 0) {
    // The damage healed between scan and repair (or the scan raced a
    // writer); nothing to cut.
    report.repaired = true;
    return report;
  }

  // Quarantine first, truncate second: a crash between the two leaves the
  // damaged bytes in both places, never in neither.
  const std::string tail = data.substr(report.wal_valid_size);
  TTRA_RETURN_IF_ERROR(env->Truncate(quarantine));
  TTRA_RETURN_IF_ERROR(env->Append(quarantine, tail));
  TTRA_RETURN_IF_ERROR(env->Sync(quarantine));
  if (report.wal_valid_size == 0) {
    // The WAL header itself is damaged: replace the whole file with a
    // fresh, durably-empty log.
    WalWriter writer(env, wal);
    TTRA_RETURN_IF_ERROR(writer.Create());
  } else {
    TTRA_RETURN_IF_ERROR(env->TruncateTo(wal, report.wal_valid_size));
    TTRA_RETURN_IF_ERROR(env->Sync(wal));
  }
  report.repaired = true;
  report.quarantine_path = quarantine;
  report.quarantined_bytes = tail.size();
  return report;
}

std::string FormatSalvageReport(const SalvageReport& report) {
  std::string out;
  out += "verdict: " + std::string(SalvageVerdictName(report.verdict)) + "\n";
  out += "checkpoint: ";
  out += !report.checkpoint_present ? "absent"
         : report.checkpoint_valid  ? "valid"
                                    : "INVALID";
  out += "\n";
  if (report.wal_present) {
    out += "wal: " + std::to_string(report.wal_size) + " byte(s), " +
           std::to_string(report.wal_valid_records) +
           " valid record(s), valid prefix " +
           std::to_string(report.wal_valid_size) + " byte(s)\n";
    if (report.wal_records_after_hole > 0) {
      out += "wal: " + std::to_string(report.wal_records_after_hole) +
             " intact record(s) stranded after the damage\n";
    }
  } else {
    out += "wal: absent\n";
  }
  for (const SalvageFinding& f : report.findings) {
    out += f.file + " @" + std::to_string(f.offset) + " [" + f.cause +
           "]: " + f.detail + "\n";
  }
  if (report.repaired) {
    out += "repaired: " + std::to_string(report.quarantined_bytes) +
           " byte(s) quarantined to " + report.quarantine_path + "\n";
  }
  return out;
}

std::string SalvageReportToJson(const SalvageReport& report) {
  std::string findings;
  for (const SalvageFinding& f : report.findings) {
    if (!findings.empty()) findings += ",";
    findings += "\n    {\"file\": \"" + EscapeJson(f.file) +
                "\", \"offset\": " + std::to_string(f.offset) +
                ", \"cause\": \"" + EscapeJson(f.cause) +
                "\", \"detail\": \"" + EscapeJson(f.detail) + "\"}";
  }
  std::string out = "{\n";
  out += "  \"verdict\": \"" + std::string(SalvageVerdictName(report.verdict)) +
         "\",\n";
  out += "  \"exitCode\": " + std::to_string(SalvageExitCode(report)) + ",\n";
  out += "  \"checkpointPresent\": " +
         std::string(report.checkpoint_present ? "true" : "false") + ",\n";
  out += "  \"checkpointValid\": " +
         std::string(report.checkpoint_valid ? "true" : "false") + ",\n";
  out += "  \"walPresent\": " +
         std::string(report.wal_present ? "true" : "false") + ",\n";
  out += "  \"walSize\": " + std::to_string(report.wal_size) + ",\n";
  out += "  \"walValidSize\": " + std::to_string(report.wal_valid_size) + ",\n";
  out += "  \"walValidRecords\": " + std::to_string(report.wal_valid_records) +
         ",\n";
  out += "  \"walRecordsAfterHole\": " +
         std::to_string(report.wal_records_after_hole) + ",\n";
  out += "  \"repaired\": " +
         std::string(report.repaired ? "true" : "false") + ",\n";
  if (report.repaired) {
    out += "  \"quarantinePath\": \"" + EscapeJson(report.quarantine_path) +
           "\",\n";
    out += "  \"quarantinedBytes\": " +
           std::to_string(report.quarantined_bytes) + ",\n";
  }
  out += "  \"findings\": [" + findings;
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

int SalvageExitCode(const SalvageReport& report) {
  if (report.repaired) return 1;
  switch (report.verdict) {
    case SalvageVerdict::kClean:
      return 0;
    case SalvageVerdict::kTruncatedTail:
      return 1;
    case SalvageVerdict::kNeedsRepair:
      return 3;
    case SalvageVerdict::kUnrecoverable:
      return 4;
  }
  return 4;
}

}  // namespace ttra
