#ifndef TTRA_STORAGE_SALVAGE_H_
#define TTRA_STORAGE_SALVAGE_H_

#include <functional>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/wal.h"

namespace ttra {

/// Offline inspection and repair of a DurableExecutor storage directory —
/// the engine behind `ttra fsck`. The scan is read-only and classifies the
/// damage; repair quarantines the damaged bytes (nothing is ever deleted,
/// an operator can always reconstruct what was cut) and truncates the WAL
/// to its last valid prefix so `ttra recover` succeeds.
///
/// This layer knows framing and checksums only. Semantic validation — "is
/// this payload a decodable command record", "do these bytes decode as a
/// database" — is injected via SalvageOptions callbacks so storage/ never
/// depends on the rollback layer above it.

/// Overall verdict of a scan, ordered by severity. Maps onto the
/// documented `ttra fsck` / `ttra recover` exit codes via
/// SalvageExitCode().
enum class SalvageVerdict {
  /// Checkpoint and WAL fully intact.
  kClean = 0,
  /// Only a torn tail (the suffix power loss is allowed to take):
  /// recovery may truncate-and-continue without operator involvement.
  kTruncatedTail,
  /// Mid-log corruption, a semantically-bad checksummed record, or a
  /// damaged WAL header: intact data may lie beyond the damage, so
  /// recovery refuses until `fsck --repair` decides the cut.
  kNeedsRepair,
  /// The checkpoint itself is damaged: there is no base state to rebuild
  /// from, and repair will not fabricate one.
  kUnrecoverable,
};

/// Stable lowercase name, e.g. "needs-repair".
std::string_view SalvageVerdictName(SalvageVerdict verdict);

/// One damaged region found by the scan.
struct SalvageFinding {
  std::string file;     ///< path of the damaged file
  uint64_t offset = 0;  ///< byte offset of the damage
  std::string cause;    ///< stable slug (WalCorruptionCauseName, ...)
  std::string detail;   ///< human-readable explanation
};

struct SalvageOptions {
  /// File names inside the directory (the DurableExecutor layout).
  std::string checkpoint_file = "checkpoint.db";
  std::string wal_file = "wal.log";
  /// Semantic validation of one intact WAL record payload; non-OK flags
  /// the record as corrupt even though its checksum matches. Unset =
  /// framing/checksum validation only.
  std::function<Status(std::string_view payload)> validate_record;
  /// Semantic validation of the checkpoint bytes. Unset = presence only.
  std::function<Status(std::string_view data)> validate_checkpoint;
};

struct SalvageReport {
  SalvageVerdict verdict = SalvageVerdict::kClean;
  std::vector<SalvageFinding> findings;

  bool checkpoint_present = false;
  bool checkpoint_valid = false;
  bool wal_present = false;
  uint64_t wal_size = 0;
  /// End of the salvageable prefix: header + every record that is both
  /// frame-intact and semantically valid. Repair truncates here.
  uint64_t wal_valid_size = 0;
  uint64_t wal_valid_records = 0;
  /// Intact frames stranded beyond the first damage (mid-log hole).
  uint64_t wal_records_after_hole = 0;

  /// Set by RepairStorage only.
  bool repaired = false;
  std::string quarantine_path;
  uint64_t quarantined_bytes = 0;
};

/// Scans `dir` without modifying anything.
Result<SalvageReport> ScanStorage(Env* env, const std::string& dir,
                                  const SalvageOptions& options = {});

/// Scan, then repair what is repairable: damaged WAL bytes are moved to
/// "<wal>.quarantine" (overwriting any previous quarantine) and the WAL is
/// truncated to wal_valid_size. A WAL whose own header is damaged is
/// quarantined whole and re-created empty. kClean needs nothing;
/// kUnrecoverable (corrupt checkpoint) is reported but never "repaired".
Result<SalvageReport> RepairStorage(Env* env, const std::string& dir,
                                    const SalvageOptions& options = {});

/// Multi-line human rendering of the report.
std::string FormatSalvageReport(const SalvageReport& report);

/// Stable JSON rendering of the report (for `ttra fsck --json`).
std::string SalvageReportToJson(const SalvageReport& report);

/// Documented exit code: 0 clean, 1 torn tail (or successfully repaired),
/// 3 corruption-needs-repair, 4 unrecoverable. 2 is reserved for usage
/// errors, mirroring `ttra check`.
int SalvageExitCode(const SalvageReport& report);

}  // namespace ttra

#endif  // TTRA_STORAGE_SALVAGE_H_
