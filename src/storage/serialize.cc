#include "storage/serialize.h"

#include <cstring>

namespace ttra {

namespace {

constexpr uint64_t kMagic = 0x7474726153455131ULL;  // "ttraSEQ1"
constexpr uint8_t kFormatVersion = 1;

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(int64_t v, std::string& out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutDouble(double v, std::string& out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(std::string_view s, std::string& out) {
  PutU64(s.size(), out);
  out.append(s);
}

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

void EncodeValue(const Value& value, std::string& out) {
  out.push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case ValueType::kInt:
      PutI64(value.AsInt(), out);
      break;
    case ValueType::kDouble:
      PutDouble(value.AsDouble(), out);
      break;
    case ValueType::kString:
      PutString(value.AsString(), out);
      break;
    case ValueType::kBool:
      out.push_back(value.AsBool() ? 1 : 0);
      break;
    case ValueType::kUserTime:
      PutI64(value.AsTime().ticks, out);
      break;
  }
}

void EncodeTuple(const Tuple& tuple, std::string& out) {
  PutU64(tuple.size(), out);
  for (const Value& v : tuple.values()) EncodeValue(v, out);
}

void EncodeSchema(const Schema& schema, std::string& out) {
  PutU64(schema.size(), out);
  for (const Attribute& attr : schema.attributes()) {
    PutString(attr.name, out);
    out.push_back(static_cast<char>(attr.type));
  }
}

void EncodeSnapshotState(const SnapshotState& state, std::string& out) {
  EncodeSchema(state.schema(), out);
  PutU64(state.size(), out);
  for (const Tuple& t : state.tuples()) EncodeTuple(t, out);
}

void EncodeTemporalElement(const TemporalElement& element, std::string& out) {
  PutU64(element.intervals().size(), out);
  for (const Interval& i : element.intervals()) {
    PutI64(i.begin, out);
    PutI64(i.end, out);
  }
}

void EncodeHistoricalState(const HistoricalState& state, std::string& out) {
  EncodeSchema(state.schema(), out);
  PutU64(state.size(), out);
  for (const HistoricalTuple& ht : state.tuples()) {
    EncodeTuple(ht.tuple, out);
    EncodeTemporalElement(ht.valid, out);
  }
}

Result<uint8_t> ByteReader::ReadByte() {
  if (pos_ >= data_.size()) return CorruptionError("truncated input (byte)");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint64_t> ByteReader::ReadU64() {
  if (pos_ + 8 > data_.size()) return CorruptionError("truncated input (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  TTRA_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::ReadDouble() {
  TTRA_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> ByteReader::ReadString() {
  TTRA_ASSIGN_OR_RETURN(uint64_t length, ReadU64());
  if (pos_ + length > data_.size()) {
    return CorruptionError("truncated input (string of length " +
                           std::to_string(length) + ")");
  }
  std::string s(data_.substr(pos_, length));
  pos_ += length;
  return s;
}

Result<Value> DecodeValue(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadByte());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt: {
      TTRA_ASSIGN_OR_RETURN(int64_t v, reader.ReadI64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      TTRA_ASSIGN_OR_RETURN(double v, reader.ReadDouble());
      return Value::Double(v);
    }
    case ValueType::kString: {
      TTRA_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
      return Value::String(std::move(v));
    }
    case ValueType::kBool: {
      TTRA_ASSIGN_OR_RETURN(uint8_t v, reader.ReadByte());
      if (v > 1) return CorruptionError("invalid bool payload");
      return Value::Bool(v != 0);
    }
    case ValueType::kUserTime: {
      TTRA_ASSIGN_OR_RETURN(int64_t v, reader.ReadI64());
      return Value::Time(v);
    }
  }
  return CorruptionError("invalid value tag " + std::to_string(tag));
}

Result<Tuple> DecodeTuple(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<Value> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(Value v, DecodeValue(reader));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

Result<Schema> DecodeSchema(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<Attribute> attrs;
  attrs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    TTRA_ASSIGN_OR_RETURN(uint8_t type, reader.ReadByte());
    if (type > static_cast<uint8_t>(ValueType::kUserTime)) {
      return CorruptionError("invalid attribute type tag");
    }
    attrs.push_back(Attribute{std::move(name), static_cast<ValueType>(type)});
  }
  auto schema = Schema::Make(std::move(attrs));
  if (!schema.ok()) {
    return CorruptionError("invalid schema: " + schema.status().message());
  }
  return std::move(schema).value();
}

Result<SnapshotState> DecodeSnapshotState(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(reader));
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(reader));
    tuples.push_back(std::move(t));
  }
  auto state = SnapshotState::Make(std::move(schema), std::move(tuples));
  if (!state.ok()) {
    return CorruptionError("invalid snapshot state: " +
                           state.status().message());
  }
  return std::move(state).value();
}

Result<TemporalElement> DecodeTemporalElement(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<Interval> intervals;
  intervals.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(int64_t begin, reader.ReadI64());
    TTRA_ASSIGN_OR_RETURN(int64_t end, reader.ReadI64());
    intervals.push_back(Interval::Make(begin, end));
  }
  return TemporalElement::Of(std::move(intervals));
}

Result<HistoricalState> DecodeHistoricalState(ByteReader& reader) {
  TTRA_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(reader));
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<HistoricalTuple> tuples;
  tuples.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(reader));
    TTRA_ASSIGN_OR_RETURN(TemporalElement e, DecodeTemporalElement(reader));
    tuples.push_back(HistoricalTuple{std::move(t), std::move(e)});
  }
  auto state = HistoricalState::Make(std::move(schema), std::move(tuples));
  if (!state.ok()) {
    return CorruptionError("invalid historical state: " +
                           state.status().message());
  }
  return std::move(state).value();
}

namespace {

void EncodeState(const SnapshotState& state, std::string& out) {
  EncodeSnapshotState(state, out);
}
void EncodeState(const HistoricalState& state, std::string& out) {
  EncodeHistoricalState(state, out);
}

template <typename StateT>
Result<StateT> DecodeState(ByteReader& reader);

template <>
Result<SnapshotState> DecodeState<SnapshotState>(ByteReader& reader) {
  return DecodeSnapshotState(reader);
}
template <>
Result<HistoricalState> DecodeState<HistoricalState>(ByteReader& reader) {
  return DecodeHistoricalState(reader);
}

}  // namespace

template <typename StateT>
std::string EncodeStateSequence(
    const std::vector<std::pair<StateT, TransactionNumber>>& sequence) {
  std::string payload;
  PutU64(sequence.size(), payload);
  for (const auto& [state, txn] : sequence) {
    PutU64(txn, payload);
    EncodeState(state, payload);
  }
  std::string out;
  PutU64(kMagic, out);
  out.push_back(static_cast<char>(kFormatVersion));
  PutU64(Fnv1a(payload), out);
  PutU64(payload.size(), out);
  out += payload;
  return out;
}

template <typename StateT>
Result<std::vector<std::pair<StateT, TransactionNumber>>> DecodeStateSequence(
    std::string_view data) {
  ByteReader header(data);
  TTRA_ASSIGN_OR_RETURN(uint64_t magic, header.ReadU64());
  if (magic != kMagic) return CorruptionError("bad magic number");
  TTRA_ASSIGN_OR_RETURN(uint8_t version, header.ReadByte());
  if (version != kFormatVersion) {
    return CorruptionError("unsupported format version " +
                           std::to_string(version));
  }
  TTRA_ASSIGN_OR_RETURN(uint64_t checksum, header.ReadU64());
  TTRA_ASSIGN_OR_RETURN(uint64_t payload_size, header.ReadU64());
  if (header.position() + payload_size != data.size()) {
    return CorruptionError("payload size mismatch");
  }
  std::string_view payload = data.substr(header.position());
  if (Fnv1a(payload) != checksum) return CorruptionError("checksum mismatch");

  ByteReader reader(payload);
  TTRA_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<std::pair<StateT, TransactionNumber>> sequence;
  sequence.reserve(count);
  TransactionNumber last_txn = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TTRA_ASSIGN_OR_RETURN(uint64_t txn, reader.ReadU64());
    if (i > 0 && txn <= last_txn) {
      return CorruptionError("non-increasing transaction numbers");
    }
    last_txn = txn;
    TTRA_ASSIGN_OR_RETURN(StateT state, DecodeState<StateT>(reader));
    sequence.emplace_back(std::move(state), txn);
  }
  if (!reader.AtEnd()) return CorruptionError("trailing bytes after payload");
  return sequence;
}

template <typename StateT>
std::vector<std::pair<StateT, TransactionNumber>> MaterializeSequence(
    const StateLog<StateT>& log) {
  std::vector<std::pair<StateT, TransactionNumber>> sequence;
  sequence.reserve(log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    const TransactionNumber txn = log.TxnAt(i);
    sequence.emplace_back(*log.StateAt(txn), txn);
  }
  return sequence;
}

template <typename StateT>
Result<std::unique_ptr<StateLog<StateT>>> RebuildLog(
    const std::vector<std::pair<StateT, TransactionNumber>>& sequence,
    StorageKind kind, size_t checkpoint_interval) {
  auto log = MakeStateLog<StateT>(kind, checkpoint_interval);
  for (const auto& [state, txn] : sequence) {
    TTRA_RETURN_IF_ERROR(log->Append(state, txn));
  }
  return log;
}

// Explicit instantiations for the two state kinds.
template std::string EncodeStateSequence<SnapshotState>(
    const std::vector<std::pair<SnapshotState, TransactionNumber>>&);
template std::string EncodeStateSequence<HistoricalState>(
    const std::vector<std::pair<HistoricalState, TransactionNumber>>&);
template Result<std::vector<std::pair<SnapshotState, TransactionNumber>>>
DecodeStateSequence<SnapshotState>(std::string_view);
template Result<std::vector<std::pair<HistoricalState, TransactionNumber>>>
DecodeStateSequence<HistoricalState>(std::string_view);
template std::vector<std::pair<SnapshotState, TransactionNumber>>
MaterializeSequence<SnapshotState>(const StateLog<SnapshotState>&);
template std::vector<std::pair<HistoricalState, TransactionNumber>>
MaterializeSequence<HistoricalState>(const StateLog<HistoricalState>&);
template Result<std::unique_ptr<StateLog<SnapshotState>>>
RebuildLog<SnapshotState>(
    const std::vector<std::pair<SnapshotState, TransactionNumber>>&,
    StorageKind, size_t);
template Result<std::unique_ptr<StateLog<HistoricalState>>>
RebuildLog<HistoricalState>(
    const std::vector<std::pair<HistoricalState, TransactionNumber>>&,
    StorageKind, size_t);

}  // namespace ttra
