#ifndef TTRA_STORAGE_SERIALIZE_H_
#define TTRA_STORAGE_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "storage/state_log.h"

namespace ttra {

/// Binary codec for the semantic-domain value types. The on-disk form of a
/// relation is its *logical* state sequence (engine-independent), framed
/// with a magic number, version, and a 64-bit FNV-1a checksum; decoding
/// verifies the frame and fails with kCorruption instead of misreading.

void EncodeValue(const Value& value, std::string& out);
void EncodeTuple(const Tuple& tuple, std::string& out);
void EncodeSchema(const Schema& schema, std::string& out);
void EncodeSnapshotState(const SnapshotState& state, std::string& out);
void EncodeTemporalElement(const TemporalElement& element, std::string& out);
void EncodeHistoricalState(const HistoricalState& state, std::string& out);

/// Sequential reader over an encoded buffer; every accessor checks bounds
/// and returns kCorruption on truncated or malformed input.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadByte();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Result<Value> DecodeValue(ByteReader& reader);
Result<Tuple> DecodeTuple(ByteReader& reader);
Result<Schema> DecodeSchema(ByteReader& reader);
Result<SnapshotState> DecodeSnapshotState(ByteReader& reader);
Result<TemporalElement> DecodeTemporalElement(ByteReader& reader);
Result<HistoricalState> DecodeHistoricalState(ByteReader& reader);

/// Framed encoding of a relation's full logical state sequence.
template <typename StateT>
std::string EncodeStateSequence(
    const std::vector<std::pair<StateT, TransactionNumber>>& sequence);

/// Inverse of EncodeStateSequence; checksum/magic failures → kCorruption.
template <typename StateT>
Result<std::vector<std::pair<StateT, TransactionNumber>>> DecodeStateSequence(
    std::string_view data);

/// Extracts the logical sequence from any engine (via FINDSTATE replay).
template <typename StateT>
std::vector<std::pair<StateT, TransactionNumber>> MaterializeSequence(
    const StateLog<StateT>& log);

/// Rebuilds an engine of the given kind from a logical sequence.
template <typename StateT>
Result<std::unique_ptr<StateLog<StateT>>> RebuildLog(
    const std::vector<std::pair<StateT, TransactionNumber>>& sequence,
    StorageKind kind, size_t checkpoint_interval = 16);

}  // namespace ttra

#endif  // TTRA_STORAGE_SERIALIZE_H_
