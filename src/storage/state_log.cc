#include "storage/state_log.h"

#include "storage/logs.h"

namespace ttra {

std::string_view StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kFullCopy:
      return "full-copy";
    case StorageKind::kDelta:
      return "delta";
    case StorageKind::kCheckpoint:
      return "checkpoint";
    case StorageKind::kReverseDelta:
      return "reverse-delta";
  }
  return "unknown";
}

size_t ApproxSize(const Value& value) {
  size_t base = 16;  // tag + discriminated-union payload
  if (value.type() == ValueType::kString) base += value.AsString().size();
  return base;
}

size_t ApproxSize(const Tuple& tuple) {
  size_t total = 24;  // vector header
  for (const Value& v : tuple.values()) total += ApproxSize(v);
  return total;
}

size_t ApproxSize(const SnapshotState& state) {
  size_t total = 64;  // schema + headers
  for (const Tuple& t : state.tuples()) total += ApproxSize(t);
  return total;
}

size_t ApproxSize(const HistoricalTuple& tuple) {
  return ApproxSize(tuple.tuple) + 24 +
         tuple.valid.intervals().size() * sizeof(Interval);
}

size_t ApproxSize(const HistoricalState& state) {
  size_t total = 64;
  for (const HistoricalTuple& t : state.tuples()) total += ApproxSize(t);
  return total;
}

template <typename StateT>
std::unique_ptr<StateLog<StateT>> MakeStateLog(StorageKind kind,
                                               size_t checkpoint_interval,
                                               size_t cache_capacity) {
  switch (kind) {
    case StorageKind::kFullCopy:
      return std::make_unique<FullCopyLog<StateT>>();
    case StorageKind::kDelta:
      return std::make_unique<DeltaLog<StateT>>(cache_capacity);
    case StorageKind::kCheckpoint:
      return std::make_unique<CheckpointLog<StateT>>(checkpoint_interval,
                                                     cache_capacity);
    case StorageKind::kReverseDelta:
      return std::make_unique<ReverseDeltaLog<StateT>>(cache_capacity);
  }
  return nullptr;
}

template std::unique_ptr<StateLog<SnapshotState>> MakeStateLog<SnapshotState>(
    StorageKind, size_t, size_t);
template std::unique_ptr<StateLog<HistoricalState>>
MakeStateLog<HistoricalState>(StorageKind, size_t, size_t);

}  // namespace ttra
