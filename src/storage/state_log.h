#ifndef TTRA_STORAGE_STATE_LOG_H_
#define TTRA_STORAGE_STATE_LOG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "historical/hstate.h"
#include "snapshot/state.h"
#include "util/result.h"

namespace ttra {

/// The paper's TRANSACTION NUMBER domain: non-negative integers assigned at
/// commit, strictly increasing along every relation's state sequence.
using TransactionNumber = uint64_t;

/// Storage-engine choice for a relation's state sequence. The paper's
/// denotational semantics corresponds to kFullCopy; kDelta and kCheckpoint
/// are the "more efficient implementations using optimization strategies
/// for both storage and retrieval" it anticipates (§2), proven equivalent
/// by the engine-equivalence property suite.
enum class StorageKind : uint8_t {
  kFullCopy = 0,
  kDelta = 1,
  kCheckpoint = 2,
  /// Current state stored in full plus *backward* deltas (the RCS layout):
  /// ρ(R, ∞) is O(1), and rollback cost grows with the distance into the
  /// past — matching the access pattern where recent states dominate.
  kReverseDelta = 3,
};

std::string_view StorageKindName(StorageKind kind);

/// Generic row access used by the differential engines. A state is a
/// canonical sorted set of rows over a schema, so diffs are set diffs.
template <typename StateT>
struct StateTraits;

template <>
struct StateTraits<SnapshotState> {
  using Row = Tuple;
  static const std::vector<Row>& Rows(const SnapshotState& state) {
    return state.tuples();
  }
  static SnapshotState FromRows(const Schema& schema, std::vector<Row> rows) {
    // Rows originate from validated states and delta replay preserves
    // canonical order, so the trusted constructor applies.
    return SnapshotState::FromCanonical(schema, std::move(rows));
  }
};

template <>
struct StateTraits<HistoricalState> {
  using Row = HistoricalTuple;
  static const std::vector<Row>& Rows(const HistoricalState& state) {
    return state.tuples();
  }
  static HistoricalState FromRows(const Schema& schema,
                                  std::vector<Row> rows) {
    return HistoricalState::FromCanonical(schema, std::move(rows));
  }
};

/// A relation's sequence of (state, transaction-number) pairs — the
/// `[STATE × TRANSACTION NUMBER]*` component of the paper's RELATION
/// domain — behind a storage-engine interface. FINDSTATE (`StateAt`) is the
/// only read path, so engines are free to store anything that can
/// reconstruct the sequence.
template <typename StateT>
class StateLog {
 public:
  virtual ~StateLog() = default;

  /// Appends (state, txn) at the end of the sequence. Requires txn to be
  /// strictly greater than the last recorded transaction number.
  virtual Status Append(const StateT& state, TransactionNumber txn) = 0;

  /// Replaces the single element of the sequence (snapshot/historical
  /// relations keep exactly one element). Creates it if the sequence is
  /// empty.
  virtual Status ReplaceLast(const StateT& state, TransactionNumber txn) = 0;

  /// FINDSTATE: the state whose transaction number is the largest one
  /// <= txn, or nullptr if the sequence is empty or txn precedes it.
  /// States are immutable and shared: full-copy entries, the tail state,
  /// and cached reconstructions are returned without copying tuples.
  virtual std::shared_ptr<const StateT> StateAt(
      TransactionNumber txn) const = 0;

  /// Number of (state, txn) pairs in the logical sequence.
  virtual size_t size() const = 0;

  /// Transaction number of the i-th pair (0-based).
  virtual TransactionNumber TxnAt(size_t i) const = 0;

  /// Estimated resident bytes — the storage-cost metric of experiment E3.
  virtual size_t ApproxBytes() const = 0;

  virtual StorageKind kind() const = 0;

  virtual std::unique_ptr<StateLog<StateT>> Clone() const = 0;
};

/// Estimated in-memory footprint of values/tuples/states, used by
/// ApproxBytes. Deliberately simple and deterministic.
size_t ApproxSize(const Value& value);
size_t ApproxSize(const Tuple& tuple);
size_t ApproxSize(const SnapshotState& state);
size_t ApproxSize(const HistoricalTuple& tuple);
size_t ApproxSize(const HistoricalState& state);

/// Default capacity of the per-log FINDSTATE reconstruction cache (the
/// retrieval half of the E3 tradeoff): recently reconstructed states are
/// kept alive so repeated rollbacks to the same or nearby transactions
/// are O(1) instead of O(replay).
inline constexpr size_t kDefaultFindStateCacheCapacity = 8;

/// Factory for the engine implementations in this module.
/// `checkpoint_interval` applies to kCheckpoint only (a full state is
/// stored every `checkpoint_interval` entries; deltas in between).
/// `cache_capacity` sizes the FINDSTATE reconstruction cache of the
/// replay-based engines (delta/checkpoint/reverse-delta); 0 disables it.
template <typename StateT>
std::unique_ptr<StateLog<StateT>> MakeStateLog(
    StorageKind kind, size_t checkpoint_interval = 16,
    size_t cache_capacity = kDefaultFindStateCacheCapacity);

}  // namespace ttra

#endif  // TTRA_STORAGE_STATE_LOG_H_
