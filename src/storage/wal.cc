#include "storage/wal.h"

namespace ttra {

namespace {

constexpr uint64_t kWalMagic = 0x7474726157414c31ULL;  // "ttraWAL1"
constexpr uint8_t kWalVersion = 1;
constexpr size_t kHeaderSize = 9;
constexpr size_t kRecordHeaderSize = 16;  // u64 length + u64 checksum

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t GetU64(std::string_view data, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string Header() {
  std::string out;
  PutU64(kWalMagic, out);
  out.push_back(static_cast<char>(kWalVersion));
  return out;
}

}  // namespace

Status WalWriter::Create() {
  TTRA_RETURN_IF_ERROR(env_->Truncate(path_));
  TTRA_RETURN_IF_ERROR(env_->Append(path_, Header()));
  TTRA_RETURN_IF_ERROR(env_->Sync(path_));
  good_size_ = kHeaderSize;
  return Status::Ok();
}

Status WalWriter::OpenForAppend() {
  if (!env_->Exists(path_)) {
    return IoError("wal does not exist: " + path_);
  }
  // The caller has validated the file with ReadWal, so its current size IS
  // a record boundary — the initial known-good boundary for ResetTail().
  TTRA_ASSIGN_OR_RETURN(std::string data, env_->Read(path_));
  good_size_ = data.size();
  return Status::Ok();
}

Status WalWriter::ResetTail() {
  return env_->TruncateTo(path_, good_size_);
}

namespace {

void FrameRecord(std::string_view payload, std::string& out) {
  PutU64(payload.size(), out);
  PutU64(Fnv1a(payload), out);
  out.append(payload);
}

}  // namespace

Status WalWriter::AddRecord(std::string_view payload) {
  std::string frame;
  frame.reserve(kRecordHeaderSize + payload.size());
  FrameRecord(payload, frame);
  TTRA_RETURN_IF_ERROR(env_->Append(path_, frame));
  stats_.records += 1;
  stats_.appends += 1;
  stats_.bytes_appended += frame.size();
  good_size_ += frame.size();
  return Status::Ok();
}

Status WalWriter::AddRecords(const std::vector<std::string>& payloads) {
  if (payloads.empty()) return Status::Ok();
  size_t total = 0;
  for (const std::string& payload : payloads) {
    total += kRecordHeaderSize + payload.size();
  }
  std::string frames;
  frames.reserve(total);
  for (const std::string& payload : payloads) FrameRecord(payload, frames);
  TTRA_RETURN_IF_ERROR(env_->Append(path_, frames));
  stats_.records += payloads.size();
  stats_.appends += 1;
  stats_.bytes_appended += frames.size();
  good_size_ += frames.size();
  return Status::Ok();
}

Status WalWriter::Sync() {
  TTRA_RETURN_IF_ERROR(env_->Sync(path_));
  stats_.syncs += 1;
  return Status::Ok();
}

std::string_view WalCorruptionCauseName(WalCorruptionCause cause) {
  switch (cause) {
    case WalCorruptionCause::kNone:
      return "none";
    case WalCorruptionCause::kTornFileHeader:
      return "torn-file-header";
    case WalCorruptionCause::kTornRecordHeader:
      return "torn-record-header";
    case WalCorruptionCause::kTornPayload:
      return "torn-payload";
    case WalCorruptionCause::kChecksumMismatch:
      return "checksum-mismatch";
  }
  return "unknown";
}

namespace {

/// Tries to parse one framed record starting at `pos`; returns the frame's
/// total size, or 0 if no valid record starts there. A false positive
/// needs 8 garbage bytes that happen to be a plausible length plus 8 more
/// matching the payload's FNV-1a — ~2^-64, negligible.
size_t TryParseRecord(std::string_view data, size_t pos) {
  if (data.size() - pos < kRecordHeaderSize) return 0;
  const uint64_t length = GetU64(data, pos);
  if (length > data.size() - pos - kRecordHeaderSize) return 0;
  const std::string_view payload = data.substr(pos + kRecordHeaderSize, length);
  if (Fnv1a(payload) != GetU64(data, pos + 8)) return 0;
  return kRecordHeaderSize + length;
}

}  // namespace

Result<WalReadResult> ReadWal(const Env& env, const std::string& path) {
  TTRA_ASSIGN_OR_RETURN(std::string data, env.Read(path));
  WalReadResult result;
  if (data.size() < kHeaderSize) {
    // The header itself never reached disk: an empty (torn-at-birth) log.
    result.torn_tail = !data.empty();
    if (result.torn_tail) result.cause = WalCorruptionCause::kTornFileHeader;
    return result;
  }
  if (GetU64(data, 0) != kWalMagic) {
    return CorruptionError("bad wal magic in " + path);
  }
  if (static_cast<uint8_t>(data[8]) != kWalVersion) {
    return CorruptionError("unsupported wal version in " + path);
  }
  size_t pos = kHeaderSize;
  result.valid_size = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kRecordHeaderSize) {
      result.cause = WalCorruptionCause::kTornRecordHeader;
      break;
    }
    const uint64_t length = GetU64(data, pos);
    const uint64_t checksum = GetU64(data, pos + 8);
    if (length > data.size() - pos - kRecordHeaderSize) {
      result.cause = WalCorruptionCause::kTornPayload;
      break;
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + kRecordHeaderSize, length);
    if (Fnv1a(payload) != checksum) {
      result.cause = WalCorruptionCause::kChecksumMismatch;
      break;
    }
    result.records.emplace_back(payload);
    result.record_offsets.push_back(pos);
    pos += kRecordHeaderSize + length;
    result.valid_size = pos;
  }
  result.torn_tail = result.valid_size != data.size();
  if (!result.torn_tail) return result;

  result.invalid_offset = result.valid_size;
  result.invalid_record_index = result.records.size();
  // Scan the damaged remainder for a re-synchronizing valid frame. Power
  // loss only ever tears the *tail*, so any intact frame past the hole is
  // proof of mid-log corruption (bit rot, a torn-then-overwritten retry):
  // truncating at valid_size would drop committed records.
  for (size_t p = result.valid_size + 1;
       p + kRecordHeaderSize <= data.size(); ++p) {
    const size_t first = TryParseRecord(data, p);
    if (first == 0) continue;
    result.resync_offset = p;
    size_t q = p;
    while (q < data.size()) {
      const size_t frame = TryParseRecord(data, q);
      if (frame == 0) break;
      ++result.records_after_hole;
      q += frame;
    }
    break;
  }
  return result;
}

}  // namespace ttra
