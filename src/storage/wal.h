#ifndef TTRA_STORAGE_WAL_H_
#define TTRA_STORAGE_WAL_H_

#include <string>
#include <vector>

#include "storage/env.h"

namespace ttra {

/// Write-ahead log of opaque records over an Env.
///
/// File layout: a 9-byte header (8-byte magic + 1-byte format version)
/// followed by length-prefixed, checksummed records:
///
///   [u64 payload length][u64 FNV-1a of payload][payload bytes]
///
/// A crash may leave any suffix of appended-but-unsynced bytes missing, so
/// the reader treats an incomplete or checksum-failing trailing record as
/// a *torn tail*: it stops there and reports the records before it. A bad
/// header on a non-empty file, by contrast, is real corruption — the file
/// is not a WAL — and fails loudly.

/// Appender. Typical lifecycle: Create() a fresh log (or OpenForAppend()
/// after recovery), then AddRecord()/Sync() per the caller's policy.
///
/// Not internally synchronized: callers serialize access (DurableExecutor
/// holds its commit lock around every member, stats() included).
class WalWriter {
 public:
  WalWriter(Env* env, std::string path) : env_(env), path_(std::move(path)) {}

  /// Starts a fresh, durably-empty log, discarding any existing file.
  [[nodiscard]] Status Create();

  /// Positions for appending to an existing log previously validated by
  /// ReadWal (the file must end at a record boundary).
  [[nodiscard]] Status OpenForAppend();

  /// Appends one framed record. NOT durable until Sync().
  [[nodiscard]] Status AddRecord(std::string_view payload);

  /// Appends several framed records with a single underlying Env append —
  /// the group-commit write path: one I/O for the whole batch, one later
  /// Sync() covering all of it.
  [[nodiscard]] Status AddRecords(const std::vector<std::string>& payloads);

  /// Durably flushes all appended records.
  [[nodiscard]] Status Sync();

  /// Byte size of the log through the last frame this writer successfully
  /// appended — the known-good boundary ResetTail() cuts back to.
  uint64_t good_size() const { return good_size_; }

  /// Cuts the file back to the last known-good record boundary, discarding
  /// whatever a failed append left behind (a torn frame, or nothing). The
  /// repair step between a transient append failure and its retry: without
  /// it the retried record would land *after* the torn bytes and be
  /// unreachable to the reader, which stops at the first bad frame.
  [[nodiscard]] Status ResetTail();

  /// Group-commit accounting: how the record stream maps onto physical
  /// I/O. `appends` counts Env::Append calls (batching collapses these
  /// below `records`); `syncs` counts fsyncs. syncs/records is the
  /// per-commit durability cost the group-commit policies amortize.
  struct Stats {
    uint64_t records = 0;         ///< framed records appended
    uint64_t appends = 0;         ///< Env::Append calls issued
    uint64_t syncs = 0;           ///< Env::Sync calls issued
    uint64_t bytes_appended = 0;  ///< framed bytes (header + payloads)
  };
  const Stats& stats() const { return stats_; }

  const std::string& path() const { return path_; }

 private:
  Env* env_;
  std::string path_;
  Stats stats_;
  uint64_t good_size_ = 0;
};

/// Why the reader stopped before the end of the file.
enum class WalCorruptionCause {
  kNone = 0,          ///< every byte parsed
  kTornFileHeader,    ///< file shorter than the 9-byte WAL header
  kTornRecordHeader,  ///< fewer than 16 frame-header bytes at the tail
  kTornPayload,       ///< length field points past the end of the file
  kChecksumMismatch,  ///< payload present but its FNV-1a disagrees
};

/// Stable lowercase name, e.g. "checksum-mismatch".
std::string_view WalCorruptionCauseName(WalCorruptionCause cause);

struct WalReadResult {
  /// Payloads of all intact records, in append order.
  std::vector<std::string> records;
  /// Byte offset of each intact record's frame (parallel to `records`) —
  /// lets fsck name the exact location of a semantically-bad record.
  std::vector<uint64_t> record_offsets;
  /// True if trailing bytes (a torn record) were dropped.
  bool torn_tail = false;
  /// File size covered by the header plus the intact records.
  size_t valid_size = 0;

  /// Why the first invalid record is invalid (kNone if the whole file
  /// parsed). The fields below are meaningful only when this is not kNone.
  WalCorruptionCause cause = WalCorruptionCause::kNone;
  /// Byte offset of the first invalid record (== valid_size: the invalid
  /// frame starts where the valid prefix ends).
  uint64_t invalid_offset = 0;
  /// Zero-based index the first invalid record would have had.
  uint64_t invalid_record_index = 0;

  /// Post-hole resync: frames that parse and checksum cleanly *after* the
  /// first invalid record. Zero means the damage is a pure torn tail —
  /// consistent with power loss, safe to truncate and continue. Nonzero
  /// means mid-log corruption: intact committed records lie beyond the
  /// hole, so truncating silently would drop acked commits; recovery must
  /// refuse and send the operator to `ttra fsck`.
  uint64_t records_after_hole = 0;
  /// Byte offset of the first post-hole valid frame (0 when none).
  uint64_t resync_offset = 0;
};

/// Reads every intact record of the log. Missing file → kIoError; header
/// that is present-but-wrong → kCorruption; torn tail → reported, not an
/// error (recovery truncates there, in line with the durability contract
/// that unsynced bytes may vanish). When the reader stops early it scans
/// the remainder for re-synchronizing valid frames (records_after_hole),
/// letting callers tell a torn tail from a mid-log hole.
Result<WalReadResult> ReadWal(const Env& env, const std::string& path);

}  // namespace ttra

#endif  // TTRA_STORAGE_WAL_H_
