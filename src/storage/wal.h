#ifndef TTRA_STORAGE_WAL_H_
#define TTRA_STORAGE_WAL_H_

#include <string>
#include <vector>

#include "storage/env.h"

namespace ttra {

/// Write-ahead log of opaque records over an Env.
///
/// File layout: a 9-byte header (8-byte magic + 1-byte format version)
/// followed by length-prefixed, checksummed records:
///
///   [u64 payload length][u64 FNV-1a of payload][payload bytes]
///
/// A crash may leave any suffix of appended-but-unsynced bytes missing, so
/// the reader treats an incomplete or checksum-failing trailing record as
/// a *torn tail*: it stops there and reports the records before it. A bad
/// header on a non-empty file, by contrast, is real corruption — the file
/// is not a WAL — and fails loudly.

/// Appender. Typical lifecycle: Create() a fresh log (or OpenForAppend()
/// after recovery), then AddRecord()/Sync() per the caller's policy.
///
/// Not internally synchronized: callers serialize access (DurableExecutor
/// holds its commit lock around every member, stats() included).
class WalWriter {
 public:
  WalWriter(Env* env, std::string path) : env_(env), path_(std::move(path)) {}

  /// Starts a fresh, durably-empty log, discarding any existing file.
  [[nodiscard]] Status Create();

  /// Positions for appending to an existing log previously validated by
  /// ReadWal (the file must end at a record boundary).
  [[nodiscard]] Status OpenForAppend();

  /// Appends one framed record. NOT durable until Sync().
  [[nodiscard]] Status AddRecord(std::string_view payload);

  /// Appends several framed records with a single underlying Env append —
  /// the group-commit write path: one I/O for the whole batch, one later
  /// Sync() covering all of it.
  [[nodiscard]] Status AddRecords(const std::vector<std::string>& payloads);

  /// Durably flushes all appended records.
  [[nodiscard]] Status Sync();

  /// Group-commit accounting: how the record stream maps onto physical
  /// I/O. `appends` counts Env::Append calls (batching collapses these
  /// below `records`); `syncs` counts fsyncs. syncs/records is the
  /// per-commit durability cost the group-commit policies amortize.
  struct Stats {
    uint64_t records = 0;         ///< framed records appended
    uint64_t appends = 0;         ///< Env::Append calls issued
    uint64_t syncs = 0;           ///< Env::Sync calls issued
    uint64_t bytes_appended = 0;  ///< framed bytes (header + payloads)
  };
  const Stats& stats() const { return stats_; }

  const std::string& path() const { return path_; }

 private:
  Env* env_;
  std::string path_;
  Stats stats_;
};

struct WalReadResult {
  /// Payloads of all intact records, in append order.
  std::vector<std::string> records;
  /// True if trailing bytes (a torn record) were dropped.
  bool torn_tail = false;
  /// File size covered by the header plus the intact records.
  size_t valid_size = 0;
};

/// Reads every intact record of the log. Missing file → kIoError; header
/// that is present-but-wrong → kCorruption; torn tail → reported, not an
/// error (recovery truncates there, in line with the durability contract
/// that unsynced bytes may vanish).
Result<WalReadResult> ReadWal(const Env& env, const std::string& path);

}  // namespace ttra

#endif  // TTRA_STORAGE_WAL_H_
