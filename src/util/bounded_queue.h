#ifndef TTRA_UTIL_BOUNDED_QUEUE_H_
#define TTRA_UTIL_BOUNDED_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <vector>

#include "util/mutex.h"

namespace ttra {

/// Bounded multi-producer queue built on the annotated Mutex/CondVar
/// primitives. Producers block while the queue is full (backpressure, so a
/// burst of sessions cannot exhaust memory); the consumer drains in
/// batches, optionally lingering up to a latency bound to let a batch fill
/// — the group-commit accumulation pattern. All waits are predicate-based:
/// there is no sleep/poll loop anywhere, so the queue is immune to the
/// spurious-wakeup and lost-notify flakiness sleeps paper over.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false — dropping `item` — if
  /// the queue is (or becomes) closed before space opens up.
  bool Push(T item) {
    MutexLock lock(mutex_);
    not_full_.Wait(mutex_, [this]() TTRA_REQUIRES(mutex_) {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.Signal();
    return true;
  }

  /// Pops up to `max` items. Blocks until at least one item is available;
  /// if fewer than `max` are queued at that point, waits up to `linger`
  /// for the batch to fill before taking what is there. An empty result
  /// means the queue is closed and fully drained — the consumer's
  /// termination signal.
  std::vector<T> PopBatch(size_t max,
                          std::chrono::microseconds linger =
                              std::chrono::microseconds::zero()) {
    std::vector<T> batch;
    if (max == 0) return batch;
    MutexLock lock(mutex_);
    not_empty_.Wait(mutex_, [this]() TTRA_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.size() < max && !closed_ && linger.count() > 0) {
      not_empty_.WaitFor(mutex_, linger, [this, max]() TTRA_REQUIRES(mutex_) {
        return closed_ || items_.size() >= max;
      });
    }
    const size_t take = std::min(max, items_.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (take > 0) not_full_.SignalAll();
    return batch;
  }

  /// Closes the queue: every blocked producer fails its Push, and the
  /// consumer drains the remaining items before seeing empty batches.
  void Close() {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.SignalAll();
    not_full_.SignalAll();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ TTRA_GUARDED_BY(mutex_);
  bool closed_ TTRA_GUARDED_BY(mutex_) = false;
};

}  // namespace ttra

#endif  // TTRA_UTIL_BOUNDED_QUEUE_H_
