#ifndef TTRA_UTIL_HASH_H_
#define TTRA_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ttra {

/// Order-dependent hash combiner (boost-style). Used to hash tuples and
/// states for the delta storage engine and for container keys.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

template <typename T>
size_t HashValue(const T& value) {
  return std::hash<T>{}(value);
}

}  // namespace ttra

#endif  // TTRA_UTIL_HASH_H_
