#ifndef TTRA_UTIL_MUTEX_H_
#define TTRA_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace ttra {

// Annotated wrappers over the standard mutexes. Clang's thread-safety
// analysis only tracks capabilities whose acquire/release functions are
// annotated, and the standard library's are not — so guarded code holds
// these instead. Zero overhead: every method is a single inlined forward.

class TTRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TTRA_ACQUIRE() { m_.lock(); }
  void Unlock() TTRA_RELEASE() { m_.unlock(); }
  bool TryLock() TTRA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

class TTRA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TTRA_ACQUIRE() { m_.lock(); }
  void Unlock() TTRA_RELEASE() { m_.unlock(); }
  void ReaderLock() TTRA_ACQUIRE_SHARED() { m_.lock_shared(); }
  void ReaderUnlock() TTRA_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// std::lock_guard for Mutex.
class TTRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TTRA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() TTRA_RELEASE() { mutex_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Exclusive (writer) scoped lock for SharedMutex.
class TTRA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) TTRA_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.Lock();
  }
  ~WriterMutexLock() TTRA_RELEASE() { mutex_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable usable with the annotated Mutex. Waits release the
/// mutex atomically and reacquire it before returning, so TTRA_REQUIRES
/// call sites remain sound: the caller provably holds the mutex on both
/// sides of the wait. Prefer the predicate overloads — they are immune to
/// spurious wakeups and make the wait condition explicit (no sleep-based
/// polling anywhere in guarded code).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously); prefer the predicate overload.
  void Wait(Mutex& mutex) TTRA_REQUIRES(mutex) {
    LockFacade lockable{mutex};
    cv_.wait(lockable);
  }

  /// Blocks until `predicate()` is true.
  template <typename Predicate>
  void Wait(Mutex& mutex, Predicate predicate) TTRA_REQUIRES(mutex) {
    LockFacade lockable{mutex};
    cv_.wait(lockable, std::move(predicate));
  }

  /// Blocks until `predicate()` is true or `timeout` elapses; returns the
  /// predicate's final value (false = timed out with it still false).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mutex, std::chrono::duration<Rep, Period> timeout,
               Predicate predicate) TTRA_REQUIRES(mutex) {
    LockFacade lockable{mutex};
    return cv_.wait_for(lockable, timeout, std::move(predicate));
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  // BasicLockable view of Mutex for condition_variable_any. The analysis
  // is suppressed inside: wait() toggles the lock in a pattern the static
  // checker cannot follow, but the capability is held again on return.
  struct LockFacade {
    Mutex& mutex;
    void lock() TTRA_NO_THREAD_SAFETY_ANALYSIS { mutex.Lock(); }
    void unlock() TTRA_NO_THREAD_SAFETY_ANALYSIS { mutex.Unlock(); }
  };

  std::condition_variable_any cv_;
};

/// Shared (reader) scoped lock for SharedMutex.
class TTRA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) TTRA_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.ReaderLock();
  }
  ~ReaderMutexLock() TTRA_RELEASE() { mutex_.ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace ttra

#endif  // TTRA_UTIL_MUTEX_H_
