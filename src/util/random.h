#ifndef TTRA_UTIL_RANDOM_H_
#define TTRA_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace ttra {

/// Deterministic, seedable PRNG (xoshiro256** with a splitmix64 seeder).
/// Used by the workload generators and property tests so that every
/// randomized failure is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Lowercase alphanumeric string of the given length.
  std::string AlphaNum(size_t length);

 private:
  uint64_t s_[4];
};

}  // namespace ttra

#endif  // TTRA_UTIL_RANDOM_H_
