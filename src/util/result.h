#ifndef TTRA_UTIL_RESULT_H_
#define TTRA_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ttra {

/// Value-or-Status carrier, the return type of every fallible operation in
/// the library (the semantic functions E, C, P are made total by returning
/// Result instead of being partial functions as in the paper).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: allows `return some_state;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: allows `return SomeError(...);`.
  /// Must not be an OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

/// Propagates an error status out of the current function.
///
///   TTRA_RETURN_IF_ERROR(DoSomething());
#define TTRA_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::ttra::Status ttra_status__ = (expr);    \
    if (!ttra_status__.ok()) return ttra_status__; \
  } while (false)

/// Unwraps a Result into a local variable, propagating errors.
///
///   TTRA_ASSIGN_OR_RETURN(auto state, EvalExpr(expr, db));
#define TTRA_ASSIGN_OR_RETURN(decl, expr)                 \
  TTRA_ASSIGN_OR_RETURN_IMPL_(                            \
      TTRA_RESULT_CONCAT_(ttra_result__, __LINE__), decl, expr)

#define TTRA_ASSIGN_OR_RETURN_IMPL_(result_var, decl, expr) \
  auto result_var = (expr);                                 \
  if (!result_var.ok()) return result_var.status();         \
  decl = std::move(result_var).value()

#define TTRA_RESULT_CONCAT_INNER_(a, b) a##b
#define TTRA_RESULT_CONCAT_(a, b) TTRA_RESULT_CONCAT_INNER_(a, b)

}  // namespace ttra

#endif  // TTRA_UTIL_RESULT_H_
