#include "util/status.h"

namespace ttra {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kUnknownIdentifier:
      return "unknown-identifier";
    case ErrorCode::kAlreadyDefined:
      return "already-defined";
    case ErrorCode::kSchemaMismatch:
      return "schema-mismatch";
    case ErrorCode::kTypeMismatch:
      return "type-mismatch";
    case ErrorCode::kInvalidRollback:
      return "invalid-rollback";
    case ErrorCode::kParseError:
      return "parse-error";
    case ErrorCode::kCorruption:
      return "corruption";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::kReadOnly:
      return "read-only";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status UnknownIdentifierError(std::string_view message) {
  return Status(ErrorCode::kUnknownIdentifier, std::string(message));
}
Status AlreadyDefinedError(std::string_view message) {
  return Status(ErrorCode::kAlreadyDefined, std::string(message));
}
Status SchemaMismatchError(std::string_view message) {
  return Status(ErrorCode::kSchemaMismatch, std::string(message));
}
Status TypeMismatchError(std::string_view message) {
  return Status(ErrorCode::kTypeMismatch, std::string(message));
}
Status InvalidRollbackError(std::string_view message) {
  return Status(ErrorCode::kInvalidRollback, std::string(message));
}
Status ParseError(std::string_view message) {
  return Status(ErrorCode::kParseError, std::string(message));
}
Status CorruptionError(std::string_view message) {
  return Status(ErrorCode::kCorruption, std::string(message));
}
Status InvalidArgumentError(std::string_view message) {
  return Status(ErrorCode::kInvalidArgument, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(ErrorCode::kInternal, std::string(message));
}
Status IoError(std::string_view message) {
  return Status(ErrorCode::kIoError, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(ErrorCode::kUnavailable, std::string(message));
}
Status ResourceExhaustedError(std::string_view message) {
  return Status(ErrorCode::kResourceExhausted, std::string(message));
}
Status ReadOnlyError(std::string_view message) {
  return Status(ErrorCode::kReadOnly, std::string(message));
}

}  // namespace ttra
