#ifndef TTRA_UTIL_STATUS_H_
#define TTRA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ttra {

/// Machine-readable classification of an error produced anywhere in the
/// library. The language layer maps these onto the "invalid expression"
/// handling the paper defers to its companion technical report.
enum class ErrorCode {
  kOk = 0,
  /// An identifier is not bound to a relation in the database state
  /// (the paper's DATABASE STATE maps it to ⊥).
  kUnknownIdentifier,
  /// An identifier is already bound (e.g. define_relation on an existing
  /// name). The paper's semantics make this a no-op; callers may choose to
  /// surface it instead.
  kAlreadyDefined,
  /// Operand schemas are incompatible (union/difference of states with
  /// different schemas, projection of a missing attribute, ...).
  kSchemaMismatch,
  /// A value or expression has the wrong type (comparing int to string,
  /// boolean expression evaluating a non-boolean, ...).
  kTypeMismatch,
  /// Rollback ρ(I, N) with finite N applied to a snapshot relation, or a
  /// snapshot operator applied to an historical state (and vice versa).
  kInvalidRollback,
  /// Malformed concrete syntax.
  kParseError,
  /// Serialized state-log bytes failed validation.
  kCorruption,
  /// A command or operator argument is outside its domain (e.g. negative
  /// transaction number literal).
  kInvalidArgument,
  /// Internal invariant violated; indicates a bug in the library.
  kInternal,
  /// A filesystem operation (write, sync, rename, ...) failed. The
  /// operation had no effect or a partial effect; durability code treats
  /// the affected bytes as lost.
  kIoError,
  /// The component is in a failed state and refuses new work until it is
  /// recovered (e.g. a durable executor after a log-write failure).
  kUnavailable,
  /// A storage resource is exhausted (disk full). Unlike kIoError this is
  /// not transient: retrying cannot help until space is freed, so retry
  /// policies treat it as a permanent failure.
  kResourceExhausted,
  /// The executor is in read-only degraded mode after a permanent write
  /// failure: reads keep being served from the published state, writes
  /// are rejected until the operator repairs storage and reopens.
  kReadOnly,
};

/// Returns a stable lowercase name, e.g. "schema-mismatch".
std::string_view ErrorCodeName(ErrorCode code);

/// Result-of-an-operation carrier: either OK or an ErrorCode plus a
/// human-readable message. Modeled on the Status idiom used by large C++
/// database codebases; cheap to copy in the OK case. [[nodiscard]]:
/// silently dropping a Status hides failures (most dangerously a failed
/// WAL append or sync acknowledged as committed), so every call site must
/// consume or explicitly void-cast it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, one per error code.
Status UnknownIdentifierError(std::string_view message);
Status AlreadyDefinedError(std::string_view message);
Status SchemaMismatchError(std::string_view message);
Status TypeMismatchError(std::string_view message);
Status InvalidRollbackError(std::string_view message);
Status ParseError(std::string_view message);
Status CorruptionError(std::string_view message);
Status InvalidArgumentError(std::string_view message);
Status InternalError(std::string_view message);
Status IoError(std::string_view message);
Status UnavailableError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status ReadOnlyError(std::string_view message);

}  // namespace ttra

#endif  // TTRA_UTIL_STATUS_H_
