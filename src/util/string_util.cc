#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace ttra {

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string EscapeString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string UnescapeString(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out.push_back(escaped[i]);
      continue;
    }
    ++i;
    switch (escaped[i]) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'x': {
        if (i + 2 < escaped.size() && std::isxdigit(escaped[i + 1]) &&
            std::isxdigit(escaped[i + 2])) {
          const std::string hex(escaped.substr(i + 1, 2));
          out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
          i += 2;
        } else {
          out += "\\x";
        }
        break;
      }
      default:
        out.push_back('\\');
        out.push_back(escaped[i]);
    }
  }
  return out;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  for (char c : text.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace ttra
