#ifndef TTRA_UTIL_STRING_UTIL_H_
#define TTRA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ttra {

/// Joins the pieces with the separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Splits on a single-character separator; no trimming, empty pieces kept.
std::vector<std::string> Split(std::string_view text, char separator);

/// Escapes a string for inclusion in the language's double-quoted string
/// literals (backslash-escapes `"` and `\`, encodes control characters).
std::string EscapeString(std::string_view raw);

/// Inverse of EscapeString. Invalid escapes are passed through verbatim.
std::string UnescapeString(std::string_view escaped);

/// True if `text` is a valid language identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

}  // namespace ttra

#endif  // TTRA_UTIL_STRING_UTIL_H_
