#ifndef TTRA_UTIL_THREAD_ANNOTATIONS_H_
#define TTRA_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations, compiled to no-ops everywhere
// else (GCC/MSVC). The lock discipline documented in EXPERIMENTS.md E13 is
// enforced at compile time by tools/check.sh --tidy, which runs a clang
// -Wthread-safety -Werror=thread-safety pass over the tree (and a negative
// compile test that must fail).
//
// Standard-library mutexes are not annotated, so annotated code must hold
// capabilities through the wrappers in util/mutex.h.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TTRA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef TTRA_THREAD_ANNOTATION_
#define TTRA_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Class is a lockable capability ("mutex", "shared_mutex", ...).
#define TTRA_CAPABILITY(x) TTRA_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define TTRA_SCOPED_CAPABILITY TTRA_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define TTRA_GUARDED_BY(x) TTRA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose pointee is guarded by `x`.
#define TTRA_PT_GUARDED_BY(x) TTRA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (exclusively / shared) and does not
/// release it.
#define TTRA_ACQUIRE(...) \
  TTRA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define TTRA_ACQUIRE_SHARED(...) \
  TTRA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define TTRA_RELEASE(...) \
  TTRA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TTRA_RELEASE_SHARED(...) \
  TTRA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function may acquire the capability; the boolean result reports success.
#define TTRA_TRY_ACQUIRE(...) \
  TTRA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared) on entry.
#define TTRA_REQUIRES(...) \
  TTRA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define TTRA_REQUIRES_SHARED(...) \
  TTRA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability on entry (deadlock prevention).
#define TTRA_EXCLUDES(...) TTRA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define TTRA_RETURN_CAPABILITY(x) TTRA_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function is exempt from analysis.
#define TTRA_NO_THREAD_SAFETY_ANALYSIS \
  TTRA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TTRA_UTIL_THREAD_ANNOTATIONS_H_
