#include "workload/generator.h"

#include <algorithm>

namespace ttra::workload {

Generator::Generator(uint64_t seed, GeneratorOptions options)
    : rng_(seed), options_(options) {}

Schema Generator::RandomSchema() {
  const size_t arity =
      options_.min_attributes +
      rng_.Uniform(options_.max_attributes - options_.min_attributes + 1);
  return RandomSchema(arity);
}

Schema Generator::RandomSchema(size_t arity) {
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    const ValueType type = static_cast<ValueType>(rng_.Uniform(5));
    attrs.push_back(Attribute{"a" + std::to_string(i), type});
  }
  return *Schema::Make(std::move(attrs));
}

Value Generator::RandomValue(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return Value::Int(rng_.UniformInt(0, options_.value_range - 1));
    case ValueType::kDouble:
      return Value::Double(
          static_cast<double>(rng_.UniformInt(0, options_.value_range - 1)) /
          2.0);
    case ValueType::kString:
      return Value::String(
          rng_.AlphaNum(1 + rng_.Uniform(options_.max_string_length)));
    case ValueType::kBool:
      return Value::Bool(rng_.Bernoulli(0.5));
    case ValueType::kUserTime:
      return Value::Time(rng_.UniformInt(0, options_.time_horizon - 1));
  }
  return Value::Int(0);
}

Tuple Generator::RandomTuple(const Schema& schema) {
  std::vector<Value> values;
  values.reserve(schema.size());
  for (const Attribute& attr : schema.attributes()) {
    values.push_back(RandomValue(attr.type));
  }
  return Tuple(std::move(values));
}

SnapshotState Generator::RandomState(const Schema& schema, size_t tuples) {
  std::vector<Tuple> rows;
  rows.reserve(tuples);
  for (size_t i = 0; i < tuples; ++i) rows.push_back(RandomTuple(schema));
  return *SnapshotState::Make(schema, std::move(rows));
}

TemporalElement Generator::RandomElement() {
  const size_t n = 1 + rng_.Uniform(options_.max_intervals_per_element);
  std::vector<Interval> intervals;
  intervals.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Chronon begin = rng_.UniformInt(0, options_.time_horizon - 2);
    const Chronon length =
        rng_.UniformInt(1, std::max<Chronon>(1, options_.time_horizon / 4));
    intervals.push_back(
        Interval::Make(begin, std::min(begin + length,
                                       options_.time_horizon)));
  }
  return TemporalElement::Of(std::move(intervals));
}

HistoricalState Generator::RandomHistoricalState(const Schema& schema,
                                                 size_t tuples) {
  std::vector<HistoricalTuple> rows;
  rows.reserve(tuples);
  for (size_t i = 0; i < tuples; ++i) {
    rows.push_back(HistoricalTuple{RandomTuple(schema), RandomElement()});
  }
  return *HistoricalState::Make(schema, std::move(rows));
}

Predicate Generator::RandomPredicate(const Schema& schema, size_t depth) {
  if (schema.empty()) return Predicate::True();
  if (depth == 0 || rng_.Bernoulli(0.4)) {
    // Leaf: attr <op> constant of the attribute's type.
    const size_t i = rng_.Uniform(schema.size());
    const Attribute& attr = schema.attribute(i);
    const CompareOp op = static_cast<CompareOp>(rng_.Uniform(6));
    return Predicate::AttrCompare(attr.name, op, RandomValue(attr.type));
  }
  switch (rng_.Uniform(3)) {
    case 0:
      return Predicate::And(RandomPredicate(schema, depth - 1),
                            RandomPredicate(schema, depth - 1));
    case 1:
      return Predicate::Or(RandomPredicate(schema, depth - 1),
                           RandomPredicate(schema, depth - 1));
    default:
      return Predicate::Not(RandomPredicate(schema, depth - 1));
  }
}

SnapshotState Generator::MutateState(const SnapshotState& state,
                                     double change_fraction) {
  std::vector<Tuple> rows;
  rows.reserve(state.size() + 4);
  size_t removed = 0;
  for (const Tuple& t : state.tuples()) {
    if (rng_.Bernoulli(change_fraction)) {
      ++removed;
    } else {
      rows.push_back(t);
    }
  }
  const size_t inserted = removed + (rng_.Bernoulli(0.5) ? 1 : 0);
  for (size_t i = 0; i < inserted; ++i) {
    rows.push_back(RandomTuple(state.schema()));
  }
  return *SnapshotState::Make(state.schema(), std::move(rows));
}

HistoricalState Generator::MutateState(const HistoricalState& state,
                                       double change_fraction) {
  std::vector<HistoricalTuple> rows;
  rows.reserve(state.size() + 4);
  size_t removed = 0;
  for (const HistoricalTuple& ht : state.tuples()) {
    if (rng_.Bernoulli(change_fraction)) {
      ++removed;
    } else if (rng_.Bernoulli(change_fraction)) {
      // Keep the fact but extend/alter its history.
      rows.push_back(
          HistoricalTuple{ht.tuple, ht.valid.Union(RandomElement())});
    } else {
      rows.push_back(ht);
    }
  }
  const size_t inserted = removed + (rng_.Bernoulli(0.5) ? 1 : 0);
  for (size_t i = 0; i < inserted; ++i) {
    rows.push_back(
        HistoricalTuple{RandomTuple(state.schema()), RandomElement()});
  }
  return *HistoricalState::Make(state.schema(), std::move(rows));
}

std::vector<Command> Generator::RandomCommandStream(const std::string& name,
                                                    RelationType type,
                                                    size_t updates,
                                                    size_t state_size,
                                                    double change_fraction) {
  std::vector<Command> commands;
  commands.reserve(updates + 1);
  const Schema schema = RandomSchema();
  commands.push_back(DefineRelationCmd{name, type, schema});
  if (HoldsSnapshotStates(type)) {
    SnapshotState state = RandomState(schema, state_size);
    for (size_t i = 0; i < updates; ++i) {
      commands.push_back(ModifySnapshotCmd{name, state});
      state = MutateState(state, change_fraction);
    }
  } else {
    HistoricalState state = RandomHistoricalState(schema, state_size);
    for (size_t i = 0; i < updates; ++i) {
      commands.push_back(ModifyHistoricalCmd{name, state});
      state = MutateState(state, change_fraction);
    }
  }
  return commands;
}

lang::Expr Generator::RandomExpr(const std::vector<lang::Expr>& bases,
                                 const Schema& schema, size_t depth) {
  if (depth == 0 || bases.empty()) {
    if (bases.empty()) return lang::Expr::Const(SnapshotState::Empty(schema));
    return bases[rng_.Uniform(bases.size())];
  }
  switch (rng_.Uniform(5)) {
    case 0:
      return lang::Expr::Binary(lang::BinaryOp::kUnion,
                                RandomExpr(bases, schema, depth - 1),
                                RandomExpr(bases, schema, depth - 1));
    case 1:
      return lang::Expr::Binary(lang::BinaryOp::kMinus,
                                RandomExpr(bases, schema, depth - 1),
                                RandomExpr(bases, schema, depth - 1));
    case 2:
      return lang::Expr::Binary(lang::BinaryOp::kIntersect,
                                RandomExpr(bases, schema, depth - 1),
                                RandomExpr(bases, schema, depth - 1));
    case 3:
      return lang::Expr::Select(RandomPredicate(schema),
                                RandomExpr(bases, schema, depth - 1));
    default:
      return lang::Expr::Project(schema.Names(),
                                 RandomExpr(bases, schema, depth - 1));
  }
}

}  // namespace ttra::workload
