#ifndef TTRA_WORKLOAD_GENERATOR_H_
#define TTRA_WORKLOAD_GENERATOR_H_

#include <vector>

#include "historical/hstate.h"
#include "lang/ast.h"
#include "rollback/commands.h"
#include "snapshot/predicate.h"
#include "snapshot/state.h"
#include "util/random.h"

namespace ttra::workload {

/// Knobs for the synthetic workloads driving the property suites and the
/// benchmark harness (the paper has no datasets; these generators stand in
/// for them — see DESIGN.md "Substitutions").
struct GeneratorOptions {
  size_t min_attributes = 1;
  size_t max_attributes = 4;
  /// Integer attribute values are drawn from [0, value_range).
  int64_t value_range = 100;
  /// Valid-time chronons are drawn from [0, time_horizon).
  Chronon time_horizon = 1000;
  size_t max_intervals_per_element = 3;
  size_t max_string_length = 8;
};

/// Deterministic generator of schemas, states, predicates, expressions,
/// and command streams. Every artifact is a pure function of the seed.
class Generator {
 public:
  explicit Generator(uint64_t seed, GeneratorOptions options = {});

  Rng& rng() { return rng_; }

  /// Random scheme with min..max attributes of random types.
  Schema RandomSchema();
  /// Random scheme with exactly `arity` attributes.
  Schema RandomSchema(size_t arity);

  Value RandomValue(ValueType type);
  Tuple RandomTuple(const Schema& schema);
  SnapshotState RandomState(const Schema& schema, size_t tuples);

  TemporalElement RandomElement();
  HistoricalState RandomHistoricalState(const Schema& schema, size_t tuples);

  /// A random comparison/and/or/not tree over the scheme's attributes,
  /// guaranteed to validate against `schema`.
  Predicate RandomPredicate(const Schema& schema, size_t depth = 2);

  /// New state derived from `state` by deleting and inserting roughly
  /// `change_fraction` of its tuples (the update-ratio dial of E3).
  SnapshotState MutateState(const SnapshotState& state,
                            double change_fraction);
  HistoricalState MutateState(const HistoricalState& state,
                              double change_fraction);

  /// A define_relation followed by `updates` modify_state commands whose
  /// states evolve by `change_fraction` per step. Type must be snapshot or
  /// rollback (pass historical/temporal for historical states).
  std::vector<Command> RandomCommandStream(const std::string& name,
                                           RelationType type, size_t updates,
                                           size_t state_size,
                                           double change_fraction);

  /// Random well-typed algebraic expression over `bases` (all of which
  /// must share one scheme): union/minus/intersect/select/project nodes.
  /// Projections keep the full scheme so operands stay union-compatible.
  lang::Expr RandomExpr(const std::vector<lang::Expr>& bases,
                        const Schema& schema, size_t depth);

 private:
  Rng rng_;
  GeneratorOptions options_;
};

}  // namespace ttra::workload

#endif  // TTRA_WORKLOAD_GENERATOR_H_
