// Unit tests for the abstract interpreter (lang/absint.h): the interval
// lattice, the per-statement transfer function, seeding from a live
// database, and the provability queries the optimizer and the W006..W009
// warnings are built on.

#include "lang/absint.h"

#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "lang/parser.h"

namespace ttra::lang {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? *program : Program{};
}

std::vector<AbsState> InterpretSource(const std::string& source,
                                      const std::vector<bool>* errors =
                                          nullptr) {
  const Program program = MustParse(source);
  return Interpret(program, InitialAbsState(Catalog(), 0), errors);
}

// --- TxnInterval lattice -----------------------------------------------------

TEST(TxnInterval, JoinIsHull) {
  const TxnInterval a = TxnInterval::Range(2, 5);
  const TxnInterval b = TxnInterval::Range(4, 9);
  EXPECT_EQ(a.Join(b), TxnInterval::Range(2, 9));
  EXPECT_EQ(b.Join(a), TxnInterval::Range(2, 9));
  EXPECT_EQ(a.Join(TxnInterval::AtLeast(3)), TxnInterval::AtLeast(2));
  EXPECT_EQ(a.Join(a), a);
}

TEST(TxnInterval, PlusShiftsBounds) {
  EXPECT_EQ(TxnInterval::Exact(3).Plus(1, 1), TxnInterval::Exact(4));
  EXPECT_EQ(TxnInterval::Range(2, 5).Plus(0, 1), TxnInterval::Range(2, 6));
  EXPECT_EQ(TxnInterval::AtLeast(2).Plus(1, 1), TxnInterval::AtLeast(3));
}

TEST(TxnInterval, ProvabilityNeedsTheRightBound) {
  const TxnInterval exact = TxnInterval::Exact(5);
  EXPECT_TRUE(exact.ProvablyLt(6));
  EXPECT_TRUE(exact.ProvablyGt(4));
  EXPECT_TRUE(exact.ProvablyLe(5));
  EXPECT_TRUE(exact.ProvablyGe(5));
  EXPECT_FALSE(exact.ProvablyLt(5));
  EXPECT_FALSE(exact.ProvablyGt(5));

  const TxnInterval open = TxnInterval::AtLeast(3);
  EXPECT_FALSE(open.ProvablyLt(100));  // no upper bound, nothing < provable
  EXPECT_FALSE(open.ProvablyLe(100));
  EXPECT_TRUE(open.ProvablyGt(2));
  EXPECT_TRUE(open.ProvablyGe(3));
}

TEST(TxnInterval, ToStringForms) {
  EXPECT_EQ(TxnInterval::Exact(3).ToString(), "3");
  EXPECT_EQ(TxnInterval::Range(3, 7).ToString(), "[3,7]");
  EXPECT_EQ(TxnInterval::AtLeast(3).ToString(), "[3,inf)");
}

// --- Transfer function -------------------------------------------------------

TEST(Interpret, CountsCommitsExactly) {
  const auto states = InterpretSource(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
    show(rho(r, inf));
    modify_state(r, (n: int) {(2)});
  )");
  ASSERT_EQ(states.size(), 5u);
  EXPECT_EQ(states[0].counter, TxnInterval::Exact(0));
  EXPECT_EQ(states[1].counter, TxnInterval::Exact(1));  // after define
  EXPECT_EQ(states[2].counter, TxnInterval::Exact(2));  // after modify
  EXPECT_EQ(states[3].counter, TxnInterval::Exact(2));  // show commits nothing
  EXPECT_EQ(states[4].counter, TxnInterval::Exact(3));
}

TEST(Interpret, RollbackRelationsAppendStates) {
  const auto states = InterpretSource(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
    modify_state(r, (n: int) {(2)});
  )");
  const AbsRelation* r = states.back().Find("r");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->states_complete);
  ASSERT_EQ(r->state_txns.size(), 2u);
  EXPECT_EQ(r->state_txns[0], TxnInterval::Exact(2));
  EXPECT_EQ(r->state_txns[1], TxnInterval::Exact(3));
  EXPECT_EQ(r->defined_at, TxnInterval::Exact(1));
}

TEST(Interpret, SnapshotRelationsReplaceTheirState) {
  const auto states = InterpretSource(R"(
    define_relation(s, snapshot, (n: int));
    modify_state(s, (n: int) {(1)});
    modify_state(s, (n: int) {(2)});
  )");
  const AbsRelation* s = states.back().Find("s");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->state_txns.size(), 1u);
  EXPECT_EQ(s->state_txns[0], TxnInterval::Exact(3));
}

TEST(Interpret, TemporalRelationsAppendLikeRollback) {
  const auto states = InterpretSource(R"(
    define_relation(t, temporal, (n: int));
    modify_state(t, (n: int) {(1) @ [0, 10)});
    modify_state(t, hrho(t, inf) union (n: int) {(2) @ [20, 30)});
  )");
  const AbsRelation* t = states.back().Find("t");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->state_txns.size(), 2u);
  EXPECT_EQ(t->state_txns[1], TxnInterval::Exact(3));
}

TEST(Interpret, DeleteErasesAndSchemaChangeAppendsHistory) {
  const auto states = InterpretSource(R"(
    define_relation(e, rollback, (a: int));
    modify_schema(e, (a: int, b: int));
    delete_relation(e);
  )");
  const AbsRelation* mid = states[1].Find("e");
  ASSERT_NE(mid, nullptr);
  ASSERT_EQ(mid->schema_history.size(), 1u);
  const AbsRelation* evolved = states[2].Find("e");
  ASSERT_NE(evolved, nullptr);
  ASSERT_EQ(evolved->schema_history.size(), 2u);
  EXPECT_EQ(evolved->schema_history[1].second, TxnInterval::Exact(2));
  EXPECT_EQ(states.back().Find("e"), nullptr);
}

TEST(Interpret, RejectedStatementsHaveNoEffect) {
  // A failing command leaves the database — including the counter —
  // unchanged, so a statically-rejected statement is abstractly a no-op.
  const Program program = MustParse(R"(
    define_relation(r, rollback, (n: int));
    modify_state(ghost, (n: int) {(1)});
    modify_state(r, (n: int) {(2)});
  )");
  const std::vector<bool> errors = {false, true, false};
  const auto states = Interpret(program, InitialAbsState(Catalog(), 0),
                                &errors);
  EXPECT_EQ(states[2].counter, TxnInterval::Exact(1));
  EXPECT_EQ(states[3].counter, TxnInterval::Exact(2));
  const AbsRelation* r = states.back().Find("r");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->state_txns.size(), 1u);
  EXPECT_EQ(r->state_txns[0], TxnInterval::Exact(2));
}

TEST(Interpret, UnknownInitialCounterStaysAnInterval) {
  const Program program = MustParse(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
  )");
  const auto states =
      Interpret(program, InitialAbsState(Catalog(), std::nullopt), nullptr);
  EXPECT_EQ(states[0].counter, TxnInterval::AtLeast(0));
  EXPECT_EQ(states[2].counter, TxnInterval::AtLeast(2));
  const AbsRelation* r = states.back().Find("r");
  ASSERT_NE(r, nullptr);
  // The state's transaction is only bounded from below — and the relation
  // can still never be provably empty at any probe above the bound.
  EXPECT_FALSE(r->ProvablyEmptyAt(2));
  EXPECT_TRUE(r->ProvablyEmptyAt(0));
}

TEST(Interpret, PreexistingCatalogRelationsHaveUnknownHistory) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("old", RelationType::kRollback,
                                *Schema::Make({{"n", ValueType::kInt}}))
                  .ok());
  const Catalog catalog(db);
  const AbsState initial = InitialAbsState(catalog, db.transaction_number());
  const AbsRelation* old = initial.Find("old");
  ASSERT_NE(old, nullptr);
  EXPECT_FALSE(old->states_complete);
  EXPECT_FALSE(old->ProvablyEmptyAt(0));  // history invisible: no claims
  EXPECT_EQ(old->ProvableSchemaAt(0), nullptr);
  EXPECT_EQ(old->ProvableObservedSchemaAt(std::nullopt), nullptr);
}

// --- Seeding from a live database -------------------------------------------

TEST(AbsStateFromDatabase, IsExact) {
  Database db;
  Status status = ttra::lang::Run(R"(
    define_relation(r, rollback, (a: int));
    modify_state(r, (a: int) {(1)});
    modify_schema(r, (a: int, b: int));
    modify_state(r, (a: int, b: int) {(1, 2)});
  )",
                      db);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const AbsState state = AbsStateFromDatabase(db);
  EXPECT_EQ(state.counter, TxnInterval::Exact(4));
  const AbsRelation* r = state.Find("r");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->states_complete);
  ASSERT_EQ(r->state_txns.size(), 2u);
  EXPECT_EQ(r->state_txns[0], TxnInterval::Exact(2));
  EXPECT_EQ(r->state_txns[1], TxnInterval::Exact(4));
  ASSERT_EQ(r->schema_history.size(), 2u);
  EXPECT_EQ(r->schema_history[1].second, TxnInterval::Exact(3));
}

// --- Provability queries -----------------------------------------------------

TEST(Provability, EmptinessAndSchemaResolution) {
  const auto states = InterpretSource(R"(
    define_relation(e, rollback, (a: int));
    modify_state(e, (a: int) {(1)});
    modify_schema(e, (a: int, b: int));
    modify_state(e, (a: int, b: int) {(1, 2)});
  )");
  const AbsRelation* e = states.back().Find("e");
  ASSERT_NE(e, nullptr);
  // States recorded at 2 and 4; schemas installed at 1 and 3.
  EXPECT_TRUE(e->ProvablyEmptyAt(0));
  EXPECT_TRUE(e->ProvablyEmptyAt(1));
  EXPECT_FALSE(e->ProvablyEmptyAt(2));

  const Schema old_schema = e->schema_history[0].first;
  ASSERT_NE(e->ProvableSchemaAt(2), nullptr);
  EXPECT_EQ(*e->ProvableSchemaAt(2), old_schema);
  ASSERT_NE(e->ProvableSchemaAt(3), nullptr);
  EXPECT_EQ(*e->ProvableSchemaAt(3), e->schema);
  // Before the first install, SchemaAt clamps to the define-time scheme.
  EXPECT_EQ(*e->ProvableSchemaAt(0), old_schema);
}

TEST(Provability, ObservedSchemaTracksTheStateNotTheProbe) {
  const auto states = InterpretSource(R"(
    define_relation(e, rollback, (a: int));
    modify_state(e, (a: int) {(1)});
    modify_schema(e, (a: int, b: int));
    modify_state(e, (a: int, b: int) {(1, 2)});
  )");
  const AbsRelation* e = states.back().Find("e");
  ASSERT_NE(e, nullptr);
  const Schema old_schema = e->schema_history[0].first;
  // A probe at 3 lands between the old-scheme state (txn 2) and the new
  // one (txn 4): FINDSTATE observes the txn-2 state, recorded under the
  // old scheme, even though the probe's own scheme epoch is the new one.
  ASSERT_NE(e->ProvableObservedSchemaAt(3), nullptr);
  EXPECT_EQ(*e->ProvableObservedSchemaAt(3), old_schema);
  ASSERT_NE(e->ProvableObservedSchemaAt(std::nullopt), nullptr);
  EXPECT_EQ(*e->ProvableObservedSchemaAt(std::nullopt), e->schema);
  // A probe before any state observes the empty state under the scheme
  // current at the probe.
  ASSERT_NE(e->ProvableObservedSchemaAt(0), nullptr);
  EXPECT_EQ(*e->ProvableObservedSchemaAt(0), old_schema);
}

TEST(Provability, NeverEvolvedRelationObservesItsOnlySchema) {
  const auto states = InterpretSource(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
  )");
  const AbsRelation* r = states.back().Find("r");
  ASSERT_NE(r, nullptr);
  for (const auto probe :
       {std::optional<TransactionNumber>(0),
        std::optional<TransactionNumber>(100),
        std::optional<TransactionNumber>()}) {
    ASSERT_NE(r->ProvableObservedSchemaAt(probe), nullptr);
    EXPECT_EQ(*r->ProvableObservedSchemaAt(probe), r->schema);
  }
}

}  // namespace
}  // namespace ttra::lang
