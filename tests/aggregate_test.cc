#include <gtest/gtest.h>

#include "historical/haggregate.h"
#include "lang/analyzer.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "snapshot/aggregate.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Schema EmpSchema() {
  return *Schema::Make({{"dept", ValueType::kString},
                        {"salary", ValueType::kInt}});
}

SnapshotState Emps(std::vector<std::pair<std::string, int64_t>> rows) {
  std::vector<Tuple> tuples;
  for (auto& [dept, salary] : rows) {
    tuples.push_back(Tuple{Value::String(dept), Value::Int(salary)});
  }
  return *SnapshotState::Make(EmpSchema(), std::move(tuples));
}

// --- Snapshot aggregation ------------------------------------------------------

TEST(AggregateTest, CountSumMinMaxAvgGrouped) {
  SnapshotState state = Emps(
      {{"cs", 10}, {"cs", 30}, {"ee", 20}, {"ee", 40}, {"ee", 60}});
  auto result = Aggregate(state, {"dept"},
                          {{"n", AggFunc::kCount, ""},
                           {"total", AggFunc::kSum, "salary"},
                           {"lo", AggFunc::kMin, "salary"},
                           {"hi", AggFunc::kMax, "salary"},
                           {"mean", AggFunc::kAvg, "salary"}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema().ToString(),
            "(dept: string, n: int, total: int, lo: int, hi: int, "
            "mean: double)");
  ASSERT_EQ(result->size(), 2u);
  EXPECT_TRUE(result->Contains(Tuple{Value::String("cs"), Value::Int(2),
                                     Value::Int(40), Value::Int(10),
                                     Value::Int(30), Value::Double(20.0)}));
  EXPECT_TRUE(result->Contains(Tuple{Value::String("ee"), Value::Int(3),
                                     Value::Int(120), Value::Int(20),
                                     Value::Int(60), Value::Double(40.0)}));
}

TEST(AggregateTest, GlobalAggregation) {
  SnapshotState state = Emps({{"cs", 10}, {"ee", 20}});
  auto result = Aggregate(state, {}, {{"n", AggFunc::kCount, ""}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuples()[0], Tuple{Value::Int(2)});
}

TEST(AggregateTest, EmptyInputYieldsNoGroups) {
  auto result = Aggregate(Emps({}), {}, {{"n", AggFunc::kCount, ""}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(AggregateTest, MinMaxOnStrings) {
  SnapshotState state = Emps({{"cs", 1}, {"ee", 2}});
  auto result = Aggregate(state, {},
                          {{"first", AggFunc::kMin, "dept"},
                           {"last", AggFunc::kMax, "dept"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples()[0],
            (Tuple{Value::String("cs"), Value::String("ee")}));
}

TEST(AggregateTest, TypeRules) {
  SnapshotState state = Emps({{"cs", 1}});
  EXPECT_EQ(Aggregate(state, {}, {{"s", AggFunc::kSum, "dept"}})
                .status()
                .code(),
            ErrorCode::kTypeMismatch);
  EXPECT_EQ(Aggregate(state, {}, {{"s", AggFunc::kAvg, "dept"}})
                .status()
                .code(),
            ErrorCode::kTypeMismatch);
  EXPECT_EQ(Aggregate(state, {}, {{"s", AggFunc::kSum, "ghost"}})
                .status()
                .code(),
            ErrorCode::kSchemaMismatch);
  EXPECT_EQ(Aggregate(state, {"ghost"}, {{"n", AggFunc::kCount, ""}})
                .status()
                .code(),
            ErrorCode::kSchemaMismatch);
  // Output name colliding with a group attribute.
  EXPECT_FALSE(Aggregate(state, {"dept"}, {{"dept", AggFunc::kCount, ""}})
                   .ok());
}

TEST(AggregateTest, SumOfDoublesStaysDouble) {
  Schema schema = *Schema::Make({{"x", ValueType::kDouble}});
  SnapshotState state = *SnapshotState::Make(
      schema, {Tuple{Value::Double(1.5)}, Tuple{Value::Double(2.25)}});
  auto result = Aggregate(state, {}, {{"s", AggFunc::kSum, "x"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples()[0], Tuple{Value::Double(3.75)});
}

TEST(AggregateTest, AggFuncNamesRoundTrip) {
  for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin,
                    AggFunc::kMax, AggFunc::kAvg}) {
    auto parsed = ParseAggFunc(AggFuncName(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(ParseAggFunc("median").ok());
}

// --- Temporal aggregation (snapshot reducibility) ---------------------------------

HistoricalState HEmps(
    std::vector<std::tuple<std::string, int64_t, Interval>> rows) {
  std::vector<HistoricalTuple> tuples;
  for (auto& [dept, salary, valid] : rows) {
    tuples.push_back(
        HistoricalTuple{Tuple{Value::String(dept), Value::Int(salary)},
                        TemporalElement::Of({valid})});
  }
  return *HistoricalState::Make(EmpSchema(), std::move(tuples));
}

TEST(TemporalAggregateTest, PiecewiseCount) {
  // Two facts overlapping on [5, 10): count is 1, 2, 1 across the axis.
  HistoricalState state = HEmps({{"cs", 10, Interval::Make(0, 10)},
                                 {"cs", 20, Interval::Make(5, 15)}});
  auto result =
      historical_ops::Aggregate(state, {}, {{"n", AggFunc::kCount, ""}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Of({Interval::Make(0, 5),
                                 Interval::Make(10, 15)}));
  EXPECT_EQ(result->ValidTimeOf(Tuple{Value::Int(2)}),
            TemporalElement::Span(5, 10));
}

TEST(TemporalAggregateTest, CoalescesConstantStretches) {
  // Disjoint facts with the same per-slab aggregate value merge into one
  // element.
  HistoricalState state = HEmps({{"cs", 10, Interval::Make(0, 5)},
                                 {"cs", 10, Interval::Make(5, 10)}});
  auto result =
      historical_ops::Aggregate(state, {}, {{"n", AggFunc::kCount, ""}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(0, 10));
}

TEST(TemporalAggregateTest, EmptyInput) {
  auto result = historical_ops::Aggregate(HEmps({}), {},
                                          {{"n", AggFunc::kCount, ""}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

class TemporalAggregatePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, TemporalAggregatePropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST_P(TemporalAggregatePropertyTest, SnapshotReducible) {
  workload::Generator gen(GetParam());
  HistoricalState state = gen.RandomHistoricalState(EmpSchema(), 20);
  const std::vector<AggregateDef> defs = {
      {"n", AggFunc::kCount, ""},
      {"total", AggFunc::kSum, "salary"},
      {"hi", AggFunc::kMax, "salary"},
  };
  auto temporal = historical_ops::Aggregate(state, {"dept"}, defs);
  ASSERT_TRUE(temporal.ok()) << temporal.status();
  for (Chronon t = 0; t < 1000; t += 37) {
    auto direct = Aggregate(state.SnapshotAt(t), {"dept"}, defs);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(temporal->SnapshotAt(t), *direct) << "at chronon " << t;
  }
}

// --- Through the language -----------------------------------------------------------

TEST(SummarizeLanguageTest, ParsesAndRoundTrips) {
  const char* sources[] = {
      "summarize[dept; n = count](rho(emp, inf))",
      "summarize[; total = sum(salary)](rho(emp, inf))",
      "summarize[a, b; lo = min(x), hi = max(x), m = avg(x)]"
      "(rho(r, inf))",
  };
  for (const char* source : sources) {
    auto first = lang::ParseExpr(source);
    ASSERT_TRUE(first.ok()) << source << " → " << first.status();
    const std::string printed = first->ToString();
    auto second = lang::ParseExpr(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(*first, *second);
    EXPECT_EQ(second->ToString(), printed);
  }
  // count() with parens parses to the same node.
  auto a = lang::ParseExpr("summarize[; n = count](rho(r, inf))");
  auto b = lang::ParseExpr("summarize[; n = count()](rho(r, inf))");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SummarizeLanguageTest, EvaluatesOverRollback) {
  auto db = lang::EvalSentence(R"(
    define_relation(emp, rollback, (dept: string, salary: int));
    modify_state(emp, (dept: string, salary: int)
                      {("cs", 10), ("cs", 30), ("ee", 20)});
    modify_state(emp, select[salary > 15](rho(emp, inf)));
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  std::vector<lang::StateValue> outputs;
  ASSERT_TRUE(lang::Run(
      "show(summarize[dept; n = count, total = sum(salary)](rho(emp, 2)));"
      "show(summarize[dept; n = count, total = sum(salary)](rho(emp, inf)));",
      *db, &outputs).ok());
  ASSERT_EQ(outputs.size(), 2u);
  const auto& past = std::get<SnapshotState>(outputs[0]);
  EXPECT_TRUE(past.Contains(Tuple{Value::String("cs"), Value::Int(2),
                                  Value::Int(40)}));
  const auto& now = std::get<SnapshotState>(outputs[1]);
  EXPECT_TRUE(now.Contains(Tuple{Value::String("cs"), Value::Int(1),
                                 Value::Int(30)}));
}

TEST(SummarizeLanguageTest, EvaluatesOverTemporal) {
  auto db = lang::EvalSentence(R"(
    define_relation(t, temporal, (dept: string, salary: int));
    modify_state(t, (dept: string, salary: int)
                    {("cs", 10) @ [0, 10), ("cs", 20) @ [5, 15)});
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  std::vector<lang::StateValue> outputs;
  ASSERT_TRUE(lang::Run(
      "show(summarize[; total = sum(salary)](hrho(t, inf)));", *db,
      &outputs).ok());
  const auto& state = std::get<HistoricalState>(outputs[0]);
  EXPECT_EQ(state.ValidTimeOf(Tuple{Value::Int(10)}),
            TemporalElement::Span(0, 5));
  EXPECT_EQ(state.ValidTimeOf(Tuple{Value::Int(30)}),
            TemporalElement::Span(5, 10));
  EXPECT_EQ(state.ValidTimeOf(Tuple{Value::Int(20)}),
            TemporalElement::Span(10, 15));
}

TEST(SummarizeLanguageTest, AnalyzerTypesAndErrors) {
  auto db = lang::EvalSentence(
      "define_relation(emp, rollback, (dept: string, salary: int));");
  ASSERT_TRUE(db.ok());
  lang::Catalog catalog(*db);
  auto good = lang::ParseExpr(
      "summarize[dept; m = avg(salary)](rho(emp, inf))");
  ASSERT_TRUE(good.ok());
  auto type = lang::Analyze(*good, catalog);
  ASSERT_TRUE(type.ok()) << type.status();
  EXPECT_EQ(type->schema.ToString(), "(dept: string, m: double)");

  auto bad = lang::ParseExpr(
      "summarize[dept; m = sum(dept)](rho(emp, inf))");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(lang::Analyze(*bad, catalog).status().code(),
            ErrorCode::kTypeMismatch);
}

}  // namespace
}  // namespace ttra
