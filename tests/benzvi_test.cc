#include <gtest/gtest.h>

#include "benzvi/trm.h"
#include "lang/evaluator.h"
#include "workload/generator.h"

namespace ttra::benzvi {
namespace {

Schema NameSchema() { return *Schema::Make({{"name", ValueType::kString}}); }

HistoricalState Facts(
    std::vector<std::pair<std::string, Interval>> rows) {
  std::vector<HistoricalTuple> tuples;
  for (auto& [name, valid] : rows) {
    tuples.push_back(HistoricalTuple{Tuple{Value::String(name)},
                                     TemporalElement::Of({valid})});
  }
  return *HistoricalState::Make(NameSchema(), std::move(tuples));
}

TEST(TrmTest, ApplyVersionOpensAndClosesRows) {
  TrmRelation trm(NameSchema());
  ASSERT_TRUE(
      trm.ApplyVersion(Facts({{"ed", Interval::Make(0, 10)}}), 1).ok());
  ASSERT_TRUE(trm.ApplyVersion(Facts({{"ed", Interval::Make(0, 10)},
                                      {"rick", Interval::Make(5, 15)}}),
                               2)
                  .ok());
  ASSERT_TRUE(
      trm.ApplyVersion(Facts({{"rick", Interval::Make(5, 15)}}), 3).ok());
  ASSERT_EQ(trm.size(), 2u);  // ed's row closed, not removed
  const TrmTuple& ed = trm.tuples()[0];
  EXPECT_EQ(ed.trans_begin, 1u);
  EXPECT_EQ(ed.trans_end, 3u);
  const TrmTuple& rick = trm.tuples()[1];
  EXPECT_EQ(rick.trans_begin, 2u);
  EXPECT_EQ(rick.trans_end, kOpenTransaction);
}

TEST(TrmTest, VersionsMustIncrease) {
  TrmRelation trm(NameSchema());
  ASSERT_TRUE(trm.ApplyVersion(Facts({}), 5).ok());
  EXPECT_FALSE(trm.ApplyVersion(Facts({}), 5).ok());
  EXPECT_FALSE(trm.ApplyVersion(Facts({}), 4).ok());
}

TEST(TrmTest, SchemaChecked) {
  TrmRelation trm(NameSchema());
  HistoricalState wrong = *HistoricalState::Make(
      *Schema::Make({{"x", ValueType::kInt}}), {});
  EXPECT_EQ(trm.ApplyVersion(wrong, 1).code(), ErrorCode::kSchemaMismatch);
}

size_t TimeViewSize(const TrmRelation& trm, Chronon tv,
                    TransactionNumber tt) {
  auto view = trm.TimeView(tv, tt);
  EXPECT_TRUE(view.ok());
  return view.ok() ? view->size() : SIZE_MAX;
}

TEST(TrmTest, TimeViewSlicesBothTimes) {
  TrmRelation trm(NameSchema());
  ASSERT_TRUE(
      trm.ApplyVersion(Facts({{"ed", Interval::Make(0, 10)}}), 1).ok());
  ASSERT_TRUE(trm.ApplyVersion(Facts({{"ed", Interval::Make(0, 20)}}), 2)
                  .ok());  // history revised at txn 2
  // As of txn 1, ed is valid only until 10.
  EXPECT_EQ(TimeViewSize(trm, 15, 1), 0u);
  // As of txn 2, the revision extends validity to 20.
  EXPECT_EQ(TimeViewSize(trm, 15, 2), 1u);
  // Valid-time slicing.
  EXPECT_EQ(TimeViewSize(trm, 5, 1), 1u);
  EXPECT_EQ(TimeViewSize(trm, 25, 2), 0u);
}

TEST(TrmTest, FromTemporalRequiresTemporalRelation) {
  Relation snap = Relation::Make(RelationType::kSnapshot, NameSchema(), 1);
  EXPECT_EQ(TrmRelation::FromTemporal(snap).status().code(),
            ErrorCode::kTypeMismatch);
}

// --- The paper's §5 comparison, as an executable equivalence (E8) --------------
//
// For a temporal relation R:
//   TimeView(R, tv, tt)  ==  snapshot-at-tv( ρ̂(R, tt) )
// and the TRM reconstruction of the full history at tt matches ρ̂(R, tt).

class TrmEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, TrmEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST_P(TrmEquivalenceTest, TimeViewMatchesRollbackPlusTimeslice) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("t", RelationType::kTemporal, schema).ok());
  HistoricalState state = gen.RandomHistoricalState(schema, 12);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(db.ModifyState("t", state).ok());
    state = gen.MutateState(state, 0.3);
  }
  auto trm = TrmRelation::FromTemporal(*db.Find("t"));
  ASSERT_TRUE(trm.ok()) << trm.status();

  for (TransactionNumber tt = 0; tt <= db.transaction_number() + 1; ++tt) {
    auto rolled = db.Find("t")->HistoricalAt(tt);
    ASSERT_TRUE(rolled.ok());
    // Full-history equivalence.
    auto reconstructed = trm->HistoricalAsOf(tt);
    ASSERT_TRUE(reconstructed.ok());
    EXPECT_EQ(*reconstructed, *rolled) << "at transaction " << tt;
    // Pointwise Time-View equivalence.
    for (Chronon tv = 0; tv < 1000; tv += 173) {
      auto view = trm->TimeView(tv, tt);
      ASSERT_TRUE(view.ok());
      EXPECT_EQ(*view, rolled->SnapshotAt(tv))
          << "tv=" << tv << " tt=" << tt;
    }
  }
}

TEST_P(TrmEquivalenceTest, IncrementalMatchesBulkConversion) {
  workload::Generator gen(GetParam() + 400);
  const Schema schema = gen.RandomSchema();
  TrmRelation incremental(schema);
  Database db;
  ASSERT_TRUE(db.DefineRelation("t", RelationType::kTemporal, schema).ok());
  HistoricalState state = gen.RandomHistoricalState(schema, 10);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.ModifyState("t", state).ok());
    ASSERT_TRUE(
        incremental.ApplyVersion(state, db.transaction_number()).ok());
    state = gen.MutateState(state, 0.4);
  }
  auto bulk = TrmRelation::FromTemporal(*db.Find("t"));
  ASSERT_TRUE(bulk.ok());
  for (TransactionNumber tt = 0; tt <= db.transaction_number(); ++tt) {
    EXPECT_EQ(*incremental.HistoricalAsOf(tt), *bulk->HistoricalAsOf(tt));
  }
}

// The structural limitation the paper points out: Time-View yields only a
// snapshot (tuples valid at one instant), while ρ̂ returns the whole
// historical state, which composes with any historical operator.
TEST(TrmTest, TimeViewIsStrictlyLessInformative) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("t", RelationType::kTemporal, NameSchema()).ok());
  ASSERT_TRUE(
      db.ModifyState("t", Facts({{"ed", Interval::Make(0, 10)},
                                 {"rick", Interval::Make(20, 30)}}))
          .ok());
  auto trm = TrmRelation::FromTemporal(*db.Find("t"));
  ASSERT_TRUE(trm.ok());
  // ρ̂ gives both facts with their full histories.
  auto rolled = db.RollbackHistorical("t");
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->size(), 2u);
  // A single Time-View can never show both (no instant has both valid).
  for (Chronon tv = -5; tv < 40; ++tv) {
    auto view = trm->TimeView(tv, db.transaction_number());
    ASSERT_TRUE(view.ok());
    EXPECT_LE(view->size(), 1u);
  }
}

}  // namespace
}  // namespace ttra::benzvi
