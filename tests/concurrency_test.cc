#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lang/evaluator.h"
#include "rollback/serial_executor.h"

namespace ttra {
namespace {

Schema CounterSchema() {
  return *Schema::Make({{"worker", ValueType::kInt},
                        {"step", ValueType::kInt}});
}

TEST(SerialExecutorTest, SubmitAppliesAndReportsTxn) {
  SerialExecutor exec;
  auto txn = exec.Submit([](Database& db) {
    return db.DefineRelation("r", RelationType::kRollback, CounterSchema());
  });
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(*txn, 1u);
  EXPECT_EQ(exec.transaction_number(), 1u);
}

TEST(SerialExecutorTest, SubmitIsNotAtomicAcrossCommands) {
  // The paper's sequencing: the first command lands even though the body
  // fails later.
  SerialExecutor exec;
  auto txn = exec.Submit([](Database& db) {
    TTRA_RETURN_IF_ERROR(
        db.DefineRelation("r", RelationType::kRollback, CounterSchema()));
    return db.DeleteRelation("ghost");  // fails
  });
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(exec.transaction_number(), 1u);  // define committed
  EXPECT_TRUE(exec.Rollback("r").ok());
}

TEST(SerialExecutorTest, SubmitAtomicRollsBackWholeBody) {
  SerialExecutor exec;
  auto txn = exec.SubmitAtomic([](Database& db) {
    TTRA_RETURN_IF_ERROR(
        db.DefineRelation("r", RelationType::kRollback, CounterSchema()));
    return db.DeleteRelation("ghost");  // fails → whole body discarded
  });
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(exec.transaction_number(), 0u);
  EXPECT_FALSE(exec.Rollback("r").ok());
  // And a successful atomic body commits in full.
  ASSERT_TRUE(exec.SubmitAtomic([](Database& db) {
                    return db.DefineRelation("r", RelationType::kRollback,
                                             CounterSchema());
                  })
                  .ok());
  EXPECT_EQ(exec.transaction_number(), 1u);
}

TEST(SerialExecutorTest, ConcurrentWritersSerialize) {
  SerialExecutor exec;
  ASSERT_TRUE(exec.Submit([](Database& db) {
                    return db.DefineRelation("log", RelationType::kRollback,
                                             CounterSchema());
                  })
                  .ok());
  constexpr int kThreads = 8;
  constexpr int kStepsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&exec, &failures, w] {
      for (int step = 0; step < kStepsPerThread; ++step) {
        auto txn = exec.Submit([w, step](Database& db) {
          auto current = db.Rollback("log");
          if (!current.ok()) return current.status();
          std::vector<Tuple> rows = current->tuples();
          rows.push_back(Tuple{Value::Int(w), Value::Int(step)});
          auto next = SnapshotState::Make(current->schema(), std::move(rows));
          if (!next.ok()) return next.status();
          return db.ModifyState("log", *next);
        });
        if (!txn.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every update committed exactly once, in strict serial order.
  EXPECT_EQ(exec.transaction_number(),
            1u + static_cast<TransactionNumber>(kThreads * kStepsPerThread));
  auto final_state = exec.Rollback("log");
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(final_state->size(),
            static_cast<size_t>(kThreads * kStepsPerThread));
  // Transaction numbers along the log strictly increase and history depth
  // equals the number of modify_state commits (append-only invariant under
  // concurrency).
  Database snapshot = exec.Snapshot();
  const Relation* log = snapshot.Find("log");
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(log->history_length(),
            static_cast<size_t>(kThreads * kStepsPerThread));
  for (size_t i = 1; i < log->history_length(); ++i) {
    EXPECT_LT(log->TxnAt(i - 1), log->TxnAt(i));
  }
  // Each committed state grows by exactly one tuple.
  for (size_t i = 0; i < log->history_length(); ++i) {
    EXPECT_EQ(log->SnapshotAt(log->TxnAt(i))->size(), i + 1);
  }
}

TEST(SerialExecutorTest, ReadersSeeCommittedStatesOnly) {
  SerialExecutor exec;
  ASSERT_TRUE(exec.Submit([](Database& db) {
                    return db.DefineRelation("log", RelationType::kRollback,
                                             CounterSchema());
                  })
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      Status status = exec.Read([&](const Database& db) {
        auto state = db.Rollback("log");
        if (!state.ok()) return state.status();
        // Invariant maintained by every writer: tuple count equals the
        // number of modify_state commits so far (txn - 1).
        const size_t commits =
            static_cast<size_t>(db.transaction_number() - 1);
        if (state->size() != commits) {
          return InternalError("torn read: " + std::to_string(state->size()) +
                               " tuples at txn " +
                               std::to_string(db.transaction_number()));
        }
        return Status::Ok();
      });
      if (!status.ok()) reader_errors.fetch_add(1);
    }
  });
  for (int step = 0; step < 200; ++step) {
    ASSERT_TRUE(exec.Submit([step](Database& db) {
                      auto current = db.Rollback("log");
                      std::vector<Tuple> rows = current->tuples();
                      rows.push_back(Tuple{Value::Int(0), Value::Int(step)});
                      return db.ModifyState(
                          "log",
                          *SnapshotState::Make(current->schema(),
                                               std::move(rows)));
                    })
                    .ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

TEST(SerialExecutorTest, LanguageSentencesThroughExecutor) {
  SerialExecutor exec;
  auto txn = exec.Submit([](Database& db) {
    return lang::Run(R"(
      define_relation(emp, rollback, (name: string, salary: int));
      modify_state(emp, (name: string, salary: int) {("ed", 100)});
    )", db);
  });
  ASSERT_TRUE(txn.ok()) << txn.status();
  EXPECT_EQ(*txn, 2u);
  auto state = exec.Rollback("emp");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->size(), 1u);
}

}  // namespace
}  // namespace ttra
