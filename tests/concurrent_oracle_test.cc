#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "rollback/concurrent_executor.h"
#include "rollback/persistence.h"
#include "storage/env.h"
#include "storage/serialize.h"
#include "workload/generator.h"

namespace ttra {
namespace {

// Differential concurrency oracle. Many producer threads push random
// sentences through ConcurrentExecutor (group commit enabled) while many
// reader threads sample pinned sessions. Afterwards the write-ahead log —
// which records the writer's committed order verbatim — is read back and
// replayed through a plain SerialExecutor. The contract under test:
//
//  1. the concurrent final database equals the serial replay of the
//     committed order (every batch is equivalent to some serial C⟦·⟧
//     order, and the WAL names that order);
//  2. every view a session observed at epoch N equals ρ(I, N) evaluated
//     against the replayed database (epoch pinning = the rollback
//     operator as snapshot-isolation spec);
//  3. the logged pre-commit transaction numbers chain: each sentence's
//     pre_txn is exactly the replay executor's transaction number when
//     the sentence is reached.
//
// The suite runs as 10 fixed shards (so ctest parallelizes it) that
// together sweep TTRA_ORACLE_SEEDS seeds (read at RUN time; default 50 —
// tools/check.sh --stress raises it). Designed to run under TSan: fixed
// iteration counts, no sleeps, all waiting via futures/Drain.

constexpr int kOracleShards = 10;

constexpr int kProducers = 4;
constexpr int kReaders = 4;
constexpr int kSentencesPerProducer = 10;
constexpr int kReadsPerReader = 24;

int OracleSeedCount() {
  const char* env = std::getenv("TTRA_ORACLE_SEEDS");
  if (env == nullptr) return 50;
  int n = std::atoi(env);
  return n > 0 ? n : 50;
}

struct Relation {
  std::string name;
  RelationType type;
  Schema schema;
};

// What one reader observed: relation `rel` through a session pinned at
// `epoch`. The state is kept encoded so views are cheap to store and
// compare exactly.
struct View {
  TransactionNumber epoch = 0;
  size_t rel = 0;
  bool ok = false;
  std::string error;    // status message when !ok (for diagnostics)
  std::string encoded;  // EncodeSnapshotState / EncodeHistoricalState
};

std::string EncodeState(const SnapshotState& state) {
  std::string out;
  EncodeSnapshotState(state, out);
  return out;
}

std::string EncodeState(const HistoricalState& state) {
  std::string out;
  EncodeHistoricalState(state, out);
  return out;
}

void RunOracleSeed(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));

  InMemoryEnv env;
  ConcurrentOptions options;
  // Rotate storage engines and shrink the FINDSTATE cache on odd seeds so
  // reconstruction paths (not just cached hits) serve reader sessions.
  const StorageKind kinds[] = {StorageKind::kFullCopy, StorageKind::kDelta,
                               StorageKind::kCheckpoint,
                               StorageKind::kReverseDelta};
  options.durable.db.storage = kinds[seed % 4];
  options.durable.db.checkpoint_interval = 4;
  if (seed % 2 == 1) options.durable.db.findstate_cache_capacity = 2;
  options.durable.sync_policy = SyncPolicy::kAlways;
  options.group_commit.max_batch = 8;
  options.group_commit.max_latency = std::chrono::microseconds(500);

  ConcurrentExecutor exec(&env, "db", options);
  ASSERT_TRUE(exec.Start().ok());

  // Fixed catalog: three rollback relations plus one temporal, seeded
  // synchronously so every reader view is over a defined relation.
  workload::GeneratorOptions gen_options;
  gen_options.value_range = 10;  // small domain → frequent equal states
  workload::Generator setup(seed, gen_options);
  std::vector<Relation> catalog;
  for (int i = 0; i < 3; ++i) {
    catalog.push_back(Relation{"r" + std::to_string(i),
                               RelationType::kRollback,
                               setup.RandomSchema(2)});
  }
  catalog.push_back(Relation{"t0", RelationType::kTemporal,
                             setup.RandomSchema(2)});
  for (const Relation& rel : catalog) {
    ASSERT_TRUE(
        exec.Submit(Command{DefineRelationCmd{rel.name, rel.type, rel.schema}})
            .ok());
    Command initial =
        rel.type == RelationType::kTemporal
            ? Command{ModifyHistoricalCmd{
                  rel.name, setup.RandomHistoricalState(rel.schema, 3)}}
            : Command{ModifySnapshotCmd{rel.name,
                                        setup.RandomState(rel.schema, 3)}};
    ASSERT_TRUE(exec.Submit(std::move(initial)).ok());
  }

  // Producers: random sentences mixing plain/atomic submits, successful
  // updates, and deliberate failures (duplicate defines). Results are not
  // synchronized with readers — that interleaving is the point.
  std::vector<std::thread> producers;
  std::atomic<uint64_t> acked_ok{0};
  std::atomic<uint64_t> acked_err{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      workload::Generator gen(seed * 1000 + static_cast<uint64_t>(p) + 1,
                              gen_options);
      std::vector<std::future<Result<TransactionNumber>>> futures;
      for (int i = 0; i < kSentencesPerProducer; ++i) {
        const Relation& rel = catalog[gen.rng().Uniform(catalog.size())];
        std::vector<Command> sentence;
        bool atomic = false;
        const uint64_t kind = gen.rng().Uniform(10);
        auto modify = [&](const Relation& r) -> Command {
          if (r.type == RelationType::kTemporal) {
            return ModifyHistoricalCmd{
                r.name,
                gen.RandomHistoricalState(r.schema, gen.rng().Uniform(5))};
          }
          return ModifySnapshotCmd{
              r.name, gen.RandomState(r.schema, gen.rng().Uniform(5))};
        };
        if (kind < 6) {
          sentence.push_back(modify(rel));
        } else if (kind < 8) {
          // Multi-command sentence; the middle command fails (duplicate
          // define). Plain submit → paper sequencing keeps the flanking
          // effects; atomic submit → all three roll back.
          atomic = gen.rng().Bernoulli(0.5);
          sentence.push_back(modify(rel));
          sentence.push_back(
              DefineRelationCmd{rel.name, rel.type, rel.schema});
          sentence.push_back(modify(catalog[gen.rng().Uniform(3)]));
        } else {
          // Pure error sentence: no effect either way.
          sentence.push_back(
              DefineRelationCmd{rel.name, rel.type, rel.schema});
        }
        futures.push_back(exec.SubmitAsync(std::move(sentence), atomic));
        if (gen.rng().Bernoulli(0.25)) {
          // Occasionally wait inline so this producer's next sentence
          // lands in a later batch (read-your-writes pressure).
          futures.back().get().ok() ? ++acked_ok : ++acked_err;
          futures.pop_back();
        }
      }
      for (auto& f : futures) f.get().ok() ? ++acked_ok : ++acked_err;
    });
  }

  // Readers: sample sessions concurrently with commits. Each view must be
  // internally consistent now, and must match the serial oracle later.
  std::vector<std::vector<View>> observed(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      for (int i = 0; i < kReadsPerReader; ++i) {
        Session session = exec.OpenSession();
        const size_t rel_index =
            (static_cast<size_t>(r) + static_cast<size_t>(i)) %
            catalog.size();
        const Relation& rel = catalog[rel_index];
        View view;
        view.epoch = session.epoch();
        view.rel = rel_index;
        if (rel.type == RelationType::kTemporal) {
          Result<HistoricalState> now = session.RollbackHistorical(rel.name);
          Result<HistoricalState> pinned =
              session.RollbackHistorical(rel.name, session.epoch());
          ASSERT_EQ(now.ok(), pinned.ok());
          if (now.ok()) {
            // nullopt ("current") and the explicit epoch must agree: the
            // snapshot's present IS the epoch.
            ASSERT_EQ(EncodeState(*now), EncodeState(*pinned));
            view.ok = true;
            view.encoded = EncodeState(*now);
          } else {
            view.error = now.status().message();
          }
          // Beyond the pin is rejected, never answered.
          ASSERT_FALSE(
              session.RollbackHistorical(rel.name, session.epoch() + 1).ok());
        } else {
          Result<SnapshotState> now = session.Rollback(rel.name);
          Result<SnapshotState> pinned =
              session.Rollback(rel.name, session.epoch());
          ASSERT_EQ(now.ok(), pinned.ok());
          if (now.ok()) {
            ASSERT_EQ(EncodeState(*now), EncodeState(*pinned));
            view.ok = true;
            view.encoded = EncodeState(*now);
          } else {
            view.error = now.status().message();
          }
          ASSERT_FALSE(session.Rollback(rel.name, session.epoch() + 1).ok());
        }
        observed[static_cast<size_t>(r)].push_back(std::move(view));
      }
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : readers) t.join();
  ASSERT_TRUE(exec.Drain().ok());
  ASSERT_TRUE(exec.healthy());

  const uint64_t total_submitted =
      static_cast<uint64_t>(2 * catalog.size()) +
      static_cast<uint64_t>(kProducers) * kSentencesPerProducer;
  EXPECT_EQ(acked_ok.load() + acked_err.load(),
            static_cast<uint64_t>(kProducers) * kSentencesPerProducer);

  ConcurrentExecutor::Stats stats = exec.stats();
  EXPECT_EQ(stats.commits, total_submitted);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.commits);
  // Group commit's whole point: one record and one fsync per batch.
  EXPECT_EQ(stats.wal.records, stats.batches);
  EXPECT_EQ(stats.wal.syncs, stats.batches);

  const Database final_db = exec.Snapshot();
  exec.Stop();

  // Read the committed order back from the log and replay it serially.
  Result<WalReadResult> wal = ReadWal(env, "db/wal.log");
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_FALSE(wal->torn_tail);

  SerialExecutor serial(options.durable.db);
  uint64_t replayed = 0;
  for (const std::string& record : wal->records) {
    Result<std::vector<LoggedSentence>> sentences = DecodeWalRecord(record);
    ASSERT_TRUE(sentences.ok()) << sentences.status();
    for (const LoggedSentence& logged : *sentences) {
      // Contract 3: the log IS a serial history — pre-commit transaction
      // numbers chain exactly through the replay.
      ASSERT_EQ(logged.pre_txn, serial.transaction_number());
      if (logged.atomic) {
        (void)serial.SubmitAtomic([&](Database& db) {
          return ApplySentence(db, logged.sentence);
        });
      } else {
        (void)serial.Submit([&](Database& db) {
          return ApplySentence(db, logged.sentence);
        });
      }
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, total_submitted);

  // Contract 1: identical final databases (logical encoding is
  // engine-independent, so this also holds across storage kinds).
  const Database replay_db = serial.Snapshot();
  EXPECT_EQ(replay_db.transaction_number(), final_db.transaction_number());
  ASSERT_EQ(EncodeDatabase(replay_db), EncodeDatabase(final_db));

  // Contract 2: every observed view equals ρ(I, N) against the replayed
  // history. Nothing was deleted, so the final database answers every
  // epoch the readers pinned.
  for (const auto& per_reader : observed) {
    for (const View& view : per_reader) {
      const Relation& rel = catalog[view.rel];
      SCOPED_TRACE("rel=" + rel.name +
                   " epoch=" + std::to_string(view.epoch));
      if (rel.type == RelationType::kTemporal) {
        Result<HistoricalState> oracle =
            replay_db.RollbackHistorical(rel.name, view.epoch);
        ASSERT_EQ(oracle.ok(), view.ok)
            << (view.ok ? oracle.status().message() : view.error);
        if (oracle.ok()) {
          ASSERT_EQ(EncodeState(*oracle), view.encoded);
        }
      } else {
        Result<SnapshotState> oracle = replay_db.Rollback(rel.name, view.epoch);
        ASSERT_EQ(oracle.ok(), view.ok)
            << (view.ok ? oracle.status().message() : view.error);
        if (oracle.ok()) {
          ASSERT_EQ(EncodeState(*oracle), view.encoded);
        }
      }
    }
  }
}

class ConcurrentOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentOracleTest, MatchesSerialReplayOfCommittedOrder) {
  const int shard = GetParam();
  const int total = OracleSeedCount();
  for (int seed = shard; seed < total; seed += kOracleShards) {
    RunOracleSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ConcurrentOracleTest,
                         ::testing::Range(0, kOracleShards));

}  // namespace
}  // namespace ttra
