#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "rollback/concurrent_executor.h"
#include "rollback/durable_executor.h"
#include "rollback/persistence.h"
#include "storage/env.h"

namespace ttra {
namespace {

// The crash-recovery contract under SyncPolicy::kAlways, verified against
// the paper's semantics: the database is a pure function of its committed
// command sequence (C⟦·⟧), so after a crash at ANY write point, the
// recovered database must equal the oracle evaluation of some *prefix* of
// the submitted sentence sequence — and that prefix must contain every
// sentence whose submission was acknowledged before the crash.

struct Step {
  std::vector<Command> sentence;
  bool atomic = false;
};

Schema MakeSchema(std::vector<Attribute> attributes) {
  return *Schema::Make(std::move(attributes));
}

Schema EmpSchema() {
  return MakeSchema(
      {{"name", ValueType::kString}, {"salary", ValueType::kInt}});
}

SnapshotState EmpState(
    std::initializer_list<std::pair<const char*, int64_t>> rows) {
  std::vector<Tuple> tuples;
  for (const auto& [name, salary] : rows) {
    tuples.push_back(Tuple{Value::String(name), Value::Int(salary)});
  }
  return *SnapshotState::Make(EmpSchema(), std::move(tuples));
}

HistoricalState HistState(
    std::initializer_list<std::tuple<const char*, Chronon, Chronon>> rows) {
  std::vector<HistoricalTuple> tuples;
  for (const auto& [name, from, to] : rows) {
    tuples.push_back(HistoricalTuple{Tuple{Value::String(name)},
                                     TemporalElement::Span(from, to)});
  }
  return *HistoricalState::Make(MakeSchema({{"name", ValueType::kString}}),
                                std::move(tuples));
}

/// A workload exercising every command form, both submit modes, and —
/// deliberately — command-level failures, whose exact partial effects must
/// also survive recovery.
std::vector<Step> Workload() {
  std::vector<Step> steps;
  steps.push_back(
      {{DefineRelationCmd{"emp", RelationType::kRollback, EmpSchema()}}});
  steps.push_back({{ModifySnapshotCmd{"emp", EmpState({{"ed", 100}})}}});
  steps.push_back({{ModifySnapshotCmd{
      "emp", EmpState({{"ed", 100}, {"amy", 200}})}}});
  // One multi-command sentence, applied atomically.
  steps.push_back(
      {{DefineRelationCmd{"hist", RelationType::kTemporal,
                          MakeSchema({{"name", ValueType::kString}})},
        ModifyHistoricalCmd{"hist", HistState({{"x", 0, 10}})}},
       /*atomic=*/true});
  // Paper sequencing with a failing command in the middle: define_relation
  // on a bound identifier fails, the rest of the sentence still applies.
  steps.push_back(
      {{ModifySnapshotCmd{"emp", EmpState({{"amy", 250}})},
        DefineRelationCmd{"emp", RelationType::kSnapshot, EmpSchema()},
        ModifyHistoricalCmd{"hist", HistState({{"x", 0, 20}})}}});
  // An atomic sentence that fails: must leave no trace, before and after
  // recovery.
  steps.push_back(
      {{ModifySnapshotCmd{"emp", EmpState({{"ghost", 1}})},
        ModifySnapshotCmd{"missing", EmpState({})}},
       /*atomic=*/true});
  steps.push_back({{ModifySchemaCmd{
      "emp", MakeSchema({{"name", ValueType::kString},
                        {"salary", ValueType::kInt},
                        {"dept", ValueType::kString}})}}});
  steps.push_back({{DeleteRelationCmd{"hist"}}});
  steps.push_back(
      {{DefineRelationCmd{"now", RelationType::kSnapshot,
                          MakeSchema({{"n", ValueType::kInt}})},
        ModifySnapshotCmd{"now",
                          *SnapshotState::Make(
                              MakeSchema({{"n", ValueType::kInt}}),
                              {Tuple{Value::Int(7)}})}}});
  return steps;
}

/// Oracle: the paper semantics applied directly to a Database, mirroring
/// the executor's two submit modes. Returns the canonical encoding of the
/// database after each prefix of the workload (index k = k steps applied).
std::vector<std::string> OraclePrefixStates(const std::vector<Step>& steps) {
  Database db;
  std::vector<std::string> states;
  states.push_back(EncodeDatabase(db));
  for (const Step& step : steps) {
    if (step.atomic) {
      Database scratch = db.Clone();
      if (ApplySentence(scratch, step.sentence).ok()) db = std::move(scratch);
    } else {
      ApplySentence(db, step.sentence);
    }
    states.push_back(EncodeDatabase(db));
  }
  return states;
}

bool IsIoFailure(const Status& status) {
  return status.code() == ErrorCode::kIoError ||
         status.code() == ErrorCode::kUnavailable;
}

/// Runs the workload against a fresh FaultInjectionEnv with a fault armed
/// at op `fault_at` (0 = no fault), crashes at the first I/O failure (or
/// at the end), recovers with a brand-new executor, and checks the
/// recovered database against the oracle prefixes.
void RunCrashPoint(uint64_t fault_at, FaultInjectionEnv::FaultMode mode,
                   const DurableOptions& options,
                   const std::vector<Step>& steps,
                   const std::vector<std::string>& oracle,
                   uint64_t* total_ops = nullptr) {
  SCOPED_TRACE("fault at op " + std::to_string(fault_at) +
               (mode == FaultInjectionEnv::FaultMode::kFailOp ? " (fail)"
                                                              : " (torn)"));
  FaultInjectionEnv env;
  auto exec =
      std::make_unique<DurableExecutor>(&env, "walled-garden", options);
  ASSERT_TRUE(exec->Open().ok());
  if (fault_at != 0) env.InjectFault(fault_at, mode);

  // `acked` = number of leading workload steps whose submission returned a
  // non-I/O status: those sentences are durably logged (kAlways policy)
  // and MUST be reflected by recovery. Command-level errors still count as
  // acknowledged — the sentence is in the log, its (partial or null)
  // effect is deterministic.
  size_t acked = 0;
  for (const Step& step : steps) {
    Result<TransactionNumber> result =
        step.atomic ? exec->SubmitAtomic(step.sentence)
                    : exec->Submit(step.sentence);
    if (!result.ok() && IsIoFailure(result.status())) break;  // "crash"
    ++acked;
  }
  if (total_ops != nullptr) *total_ops = env.op_count();

  // Power loss: unsynced bytes vanish; then a new process recovers.
  exec.reset();
  env.Crash();
  DurableExecutor recovered(&env, "walled-garden", options);
  ASSERT_TRUE(recovered.Open().ok());

  // Largest matching prefix: sentences that fail (atomically or entirely)
  // leave the state unchanged, so consecutive prefixes can be identical
  // and the first match would under-count.
  const std::string state = EncodeDatabase(recovered.Snapshot());
  size_t matched = oracle.size();
  for (size_t k = oracle.size(); k-- > 0;) {
    if (state == oracle[k]) {
      matched = k;
      break;
    }
  }
  ASSERT_LT(matched, oracle.size())
      << "recovered database matches no prefix of the command sequence";
  EXPECT_GE(matched, acked)
      << "recovery lost an acknowledged commit: recovered prefix " << matched
      << " < acknowledged " << acked;

  // The recovered executor keeps working and numbers new transactions
  // strictly above everything it recovered.
  const TransactionNumber resumed = recovered.transaction_number();
  auto txn = recovered.Submit(Command(DefineRelationCmd{
      "post_recovery", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_TRUE(txn.ok()) << txn.status();
  EXPECT_EQ(*txn, resumed + 1);
}

class CrashRecoveryTest
    : public ::testing::TestWithParam<FaultInjectionEnv::FaultMode> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, CrashRecoveryTest,
    ::testing::Values(FaultInjectionEnv::FaultMode::kFailOp,
                      FaultInjectionEnv::FaultMode::kTornAppend),
    [](const auto& info) {
      return info.param == FaultInjectionEnv::FaultMode::kFailOp
                 ? "FailOp"
                 : "TornAppend";
    });

TEST_P(CrashRecoveryTest, EveryFaultPointRecoversToAnAckedPrefix) {
  const std::vector<Step> steps = Workload();
  const std::vector<std::string> oracle = OraclePrefixStates(steps);
  DurableOptions options;  // kAlways

  // The fault-free run sizes the sweep. Faults are armed relative to the
  // op counter after Open(), so high n values run the workload to
  // completion and just re-verify clean recovery.
  uint64_t total_ops = 0;
  RunCrashPoint(0, GetParam(), options, steps, oracle, &total_ops);
  ASSERT_GT(total_ops, 0u);

  for (uint64_t n = 1; n <= total_ops; ++n) {
    RunCrashPoint(n, GetParam(), options, steps, oracle);
  }
}

TEST_P(CrashRecoveryTest, EveryFaultPointWithAutoCheckpoint) {
  const std::vector<Step> steps = Workload();
  const std::vector<std::string> oracle = OraclePrefixStates(steps);
  DurableOptions options;
  options.checkpoint_every = 2;  // exercise checkpoint + truncation faults

  uint64_t total_ops = 0;
  RunCrashPoint(0, GetParam(), options, steps, oracle, &total_ops);
  ASSERT_GT(total_ops, 0u);

  for (uint64_t n = 1; n <= total_ops; ++n) {
    RunCrashPoint(n, GetParam(), options, steps, oracle);
  }
}

TEST(CrashRecoveryTest, FaultDuringRecoveryItselfIsRetryable) {
  const std::vector<Step> steps = Workload();
  const std::vector<std::string> oracle = OraclePrefixStates(steps);

  // Populate a directory, then sweep faults over recovery's own writes
  // (checkpoint republication, WAL truncation): a failed Open must leave
  // the on-disk state recoverable by a later, fault-free Open.
  FaultInjectionEnv env;
  {
    DurableExecutor exec(&env, "d", DurableOptions{});
    ASSERT_TRUE(exec.Open().ok());
    for (const Step& step : steps) {
      auto r = step.atomic ? exec.SubmitAtomic(step.sentence)
                           : exec.Submit(step.sentence);
      if (!r.ok()) ASSERT_FALSE(IsIoFailure(r.status())) << r.status();
    }
  }
  const uint64_t ops_before = env.op_count();
  // Measure how many ops one recovery takes.
  {
    DurableExecutor probe(&env, "d", DurableOptions{});
    ASSERT_TRUE(probe.Open().ok());
  }
  const uint64_t recovery_ops = env.op_count() - ops_before;
  ASSERT_GT(recovery_ops, 0u);

  for (uint64_t n = 1; n <= recovery_ops; ++n) {
    SCOPED_TRACE("recovery fault at op " + std::to_string(n));
    env.InjectFault(n, FaultInjectionEnv::FaultMode::kFailOp);
    DurableExecutor exec(&env, "d", DurableOptions{});
    Status first = exec.Open();
    if (!first.ok()) {
      env.Crash();
      ASSERT_TRUE(exec.Open().ok()) << "retry after recovery fault failed";
    }
    EXPECT_EQ(EncodeDatabase(exec.Snapshot()), oracle.back());
  }
}

TEST(CrashRecoveryTest, RecoveryIsIdempotent) {
  InMemoryEnv env;
  DurableOptions options;
  DurableExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Open().ok());
  const std::vector<Step> steps = Workload();
  for (const Step& step : steps) {
    auto r = step.atomic ? exec.SubmitAtomic(step.sentence)
                         : exec.Submit(step.sentence);
    if (!r.ok()) ASSERT_FALSE(IsIoFailure(r.status())) << r.status();
  }
  const std::string want = EncodeDatabase(exec.Snapshot());
  // Recover twice in a row without any crash: state must be stable.
  for (int round = 0; round < 2; ++round) {
    DurableExecutor again(&env, "d", options);
    ASSERT_TRUE(again.Open().ok());
    EXPECT_EQ(EncodeDatabase(again.Snapshot()), want) << "round " << round;
  }
}

TEST(CrashRecoveryTest, FailedExecutorRejectsWorkUntilReopened) {
  FaultInjectionEnv env;
  DurableExecutor exec(&env, "d", DurableOptions{});
  ASSERT_TRUE(exec.Open().ok());
  env.InjectFault(1, FaultInjectionEnv::FaultMode::kFailOp);
  auto failed = exec.Submit(Command(DefineRelationCmd{
      "r", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), ErrorCode::kIoError);
  EXPECT_FALSE(exec.healthy());
  // Fail-stop: even though the env works again, the executor refuses.
  auto rejected = exec.Submit(Command(DefineRelationCmd{
      "r", RelationType::kSnapshot, EmpSchema()}));
  EXPECT_EQ(rejected.status().code(), ErrorCode::kUnavailable);
  // Reopen re-derives state from disk and resumes service.
  ASSERT_TRUE(exec.Open().ok());
  EXPECT_TRUE(exec.healthy());
  EXPECT_TRUE(exec.Submit(Command(DefineRelationCmd{
                       "r", RelationType::kSnapshot, EmpSchema()}))
                  .ok());
}

// --- Transient-error retry and read-only degraded mode ---------------------

TEST(RetryTest, RetryRidesOutAOneShotWriteFault) {
  FaultInjectionEnv env;
  DurableOptions options;
  options.retry.max_attempts = 3;
  options.retry.sleeper = [](std::chrono::microseconds) {};
  DurableExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Open().ok());
  env.InjectFault(1, FaultInjectionEnv::FaultMode::kFailOp);
  // Without retry this exact schedule fails stop (see
  // FailedExecutorRejectsWorkUntilReopened); with it the commit lands.
  auto result = exec.Submit(Command(DefineRelationCmd{
      "r", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(exec.healthy());
  const auto health = exec.health();
  EXPECT_EQ(health.transient_retries, 1u);
  EXPECT_EQ(health.retry_successes, 1u);
  EXPECT_TRUE(health.last_write_error.ok());
  // The log is intact: recovery replays the retried commit.
  DurableExecutor recovered(&env, "d", DurableOptions{});
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(EncodeDatabase(recovered.Snapshot()), EncodeDatabase(exec.Snapshot()));
}

TEST(RetryTest, TornAppendIsCutBackBeforeTheRetry) {
  FaultInjectionEnv env;
  DurableOptions options;
  options.retry.max_attempts = 2;
  options.retry.sleeper = [](std::chrono::microseconds) {};
  DurableExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Open().ok());
  env.InjectFault(1, FaultInjectionEnv::FaultMode::kTornAppend);
  auto result = exec.Submit(Command(DefineRelationCmd{
      "r", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_TRUE(result.ok()) << result.status();
  // The torn frame must NOT be in the log: ResetTail cut it before the
  // re-append, so the file parses cleanly end to end.
  auto wal = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->torn_tail);
  EXPECT_EQ(wal->records.size(), 1u);
}

TEST(RetryTest, BackoffDoublesUpToTheCapOnPersistentFailure) {
  FaultInjectionEnv env;
  DurableOptions options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = std::chrono::microseconds(100);
  options.retry.max_backoff = std::chrono::microseconds(300);
  std::vector<std::chrono::microseconds> sleeps;
  options.retry.sleeper = [&](std::chrono::microseconds d) {
    sleeps.push_back(d);
  };
  DurableExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Open().ok());
  FaultPlanOptions plan;
  plan.transient_error_rate = 1.0;  // a "transient" fault that never heals
  env.ArmPlan(1, plan);
  auto result = exec.Submit(Command(DefineRelationCmd{
      "r", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kIoError);
  EXPECT_FALSE(exec.healthy());
  EXPECT_EQ(exec.health().last_write_error.code(), ErrorCode::kIoError);
  EXPECT_EQ(sleeps, (std::vector<std::chrono::microseconds>{
                        std::chrono::microseconds(100),
                        std::chrono::microseconds(200),
                        std::chrono::microseconds(300)}));  // capped, not 400
}

TEST(RetryTest, ResourceExhaustionIsNotRetried) {
  FaultInjectionEnv env;
  DurableOptions options;
  options.retry.max_attempts = 5;
  // A sleeper that fails the test if it is ever consulted: disk-full must
  // fail immediately, not burn retries that cannot succeed.
  options.retry.sleeper = [](std::chrono::microseconds) {
    FAIL() << "kResourceExhausted must not be retried";
  };
  DurableExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Open().ok());
  FaultPlanOptions plan;
  plan.capacity_bytes = 1;  // store already over quota: every append fails
  env.ArmPlan(1, plan);
  auto result = exec.Submit(Command(DefineRelationCmd{
      "r", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_FALSE(exec.healthy());
  EXPECT_EQ(exec.health().transient_retries, 0u);
}

TEST(DegradedModeTest, ReadersKeepServingWhileWritesAreRefused) {
  FaultInjectionEnv env;
  ConcurrentOptions options;
  ConcurrentExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Start().ok());
  ASSERT_TRUE(exec.Submit(Command{DefineRelationCmd{
                       "emp", RelationType::kRollback, EmpSchema()}})
                  .ok());
  ASSERT_TRUE(
      exec.Submit(Command{ModifySnapshotCmd{"emp", EmpState({{"ed", 100}})}})
          .ok());
  Session before = exec.OpenSession();
  const TransactionNumber epoch = before.epoch();
  ASSERT_EQ(epoch, 2u);

  // A permanent write failure flips the executor into read-only mode.
  FaultPlanOptions plan;
  plan.transient_error_rate = 1.0;
  env.ArmPlan(1, plan);
  auto failing =
      exec.Submit(Command{ModifySnapshotCmd{"emp", EmpState({{"amy", 1}})}});
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.status().code(), ErrorCode::kIoError);
  EXPECT_TRUE(exec.degraded());
  EXPECT_EQ(exec.degraded_reason().code(), ErrorCode::kIoError);

  // New writes are refused with the DISTINCT read-only code — callers can
  // tell "storage is broken" from "command was wrong" and "not running".
  auto refused =
      exec.Submit(Command{ModifySnapshotCmd{"emp", EmpState({{"bob", 2}})}});
  EXPECT_EQ(refused.status().code(), ErrorCode::kReadOnly);
  EXPECT_NE(refused.status().message().find("read-only"), std::string::npos);
  EXPECT_GE(exec.stats().rejected_read_only, 1u);
  EXPECT_TRUE(exec.stats().degraded);

  // Reader sessions — both pre-existing and new — keep answering at the
  // published epoch as if nothing happened.
  auto pre = before.Rollback("emp", epoch);
  ASSERT_TRUE(pre.ok()) << pre.status();
  Session after = exec.OpenSession();
  EXPECT_EQ(after.epoch(), epoch);  // the failed write published nothing
  auto post = after.Rollback("emp");
  ASSERT_TRUE(post.ok()) << post.status();
  EXPECT_EQ(exec.transaction_number(), epoch);

  // The documented way out: repair the fault, Stop() + Start().
  env.DisarmPlan();
  exec.Stop();
  ASSERT_TRUE(exec.Start().ok());
  EXPECT_FALSE(exec.degraded());
  EXPECT_TRUE(
      exec.Submit(Command{ModifySnapshotCmd{"emp", EmpState({{"amy", 1}})}})
          .ok());
}

TEST(DegradedModeTest, QueuedSentencesAreDrainedWithReadOnly) {
  // Sentences already in flight when the writer degrades must still get
  // answers (no broken promises), with the read-only code.
  FaultInjectionEnv env;
  ConcurrentOptions options;
  options.group_commit.max_batch = 1;  // one sentence per batch: the first
                                       // fails, the rest hit degraded mode
  ConcurrentExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Start().ok());
  ASSERT_TRUE(exec.Submit(Command{DefineRelationCmd{
                       "emp", RelationType::kRollback, EmpSchema()}})
                  .ok());
  FaultPlanOptions plan;
  plan.transient_error_rate = 1.0;
  env.ArmPlan(1, plan);

  std::vector<std::future<Result<TransactionNumber>>> futures;
  for (int i = 0; i < 8; ++i) {
    std::vector<Command> sentence;
    sentence.push_back(ModifySnapshotCmd{"emp", EmpState({{"x", i}})});
    futures.push_back(exec.SubmitAsync(std::move(sentence)));
  }
  size_t io_failures = 0, read_only = 0;
  for (auto& f : futures) {
    const Status status = f.get().status();
    if (status.code() == ErrorCode::kIoError) ++io_failures;
    if (status.code() == ErrorCode::kReadOnly) ++read_only;
  }
  // Exactly one sentence observed the real fault; every other one was
  // cleanly refused (queue-drain or at-the-door).
  EXPECT_EQ(io_failures, 1u);
  EXPECT_EQ(read_only, 7u);
  ASSERT_TRUE(exec.Drain().ok());
  EXPECT_EQ(exec.stats().rejected_read_only, 7u);
}

TEST(CrashRecoveryTest, TornTailIsReportedByRecovery) {
  InMemoryEnv env;
  DurableExecutor exec(&env, "d", DurableOptions{});
  ASSERT_TRUE(exec.Open().ok());
  ASSERT_TRUE(exec.Submit(Command(DefineRelationCmd{
                       "emp", RelationType::kRollback, EmpSchema()}))
                  .ok());
  // Hand-tear the log: append garbage that a crash could have left.
  ASSERT_TRUE(env.Append("d/wal.log", "torn-half-record").ok());
  DurableExecutor recovered(&env, "d", DurableOptions{});
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_TRUE(recovered.last_recovery().torn_tail);
  EXPECT_EQ(recovered.last_recovery().replayed_records, 1u);
  EXPECT_EQ(recovered.transaction_number(), 1u);
}

TEST(CrashRecoveryTest, CheckpointTruncatesWalAndPreservesState) {
  InMemoryEnv env;
  DurableExecutor exec(&env, "d", DurableOptions{});
  ASSERT_TRUE(exec.Open().ok());
  const std::vector<Step> steps = Workload();
  for (const Step& step : steps) {
    auto r = step.atomic ? exec.SubmitAtomic(step.sentence)
                         : exec.Submit(step.sentence);
    if (!r.ok()) ASSERT_FALSE(IsIoFailure(r.status())) << r.status();
  }
  const std::string want = EncodeDatabase(exec.Snapshot());
  ASSERT_TRUE(exec.Checkpoint().ok());
  auto wal = ReadWal(env, "d/wal.log");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->records.empty());  // all state now in the checkpoint

  DurableExecutor recovered(&env, "d", DurableOptions{});
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.last_recovery().replayed_records, 0u);
  EXPECT_EQ(EncodeDatabase(recovered.Snapshot()), want);
}

TEST(CrashRecoveryTest, SyncPolicyBatchMayLoseOnlyUnsyncedSuffix) {
  const std::vector<Step> steps = Workload();
  const std::vector<std::string> oracle = OraclePrefixStates(steps);
  DurableOptions options;
  options.sync_policy = SyncPolicy::kBatch;
  options.batch_size = 4;

  FaultInjectionEnv env;
  DurableExecutor exec(&env, "d", options);
  ASSERT_TRUE(exec.Open().ok());
  for (const Step& step : steps) {
    auto r = step.atomic ? exec.SubmitAtomic(step.sentence)
                         : exec.Submit(step.sentence);
    if (!r.ok()) ASSERT_FALSE(IsIoFailure(r.status())) << r.status();
  }
  env.Crash();  // power loss with unsynced commits in flight
  DurableExecutor recovered(&env, "d", options);
  ASSERT_TRUE(recovered.Open().ok());
  const std::string state = EncodeDatabase(recovered.Snapshot());
  // Still a consistent prefix — just not necessarily the full workload.
  bool is_prefix = false;
  for (const std::string& prefix : oracle) is_prefix |= (state == prefix);
  EXPECT_TRUE(is_prefix);
}

TEST(CrashRecoveryTest, RunsOnTheRealFilesystemToo) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/ttra_crash_posix";
  // Start from a clean directory: TempDir persists across test runs.
  for (const char* file : {"/wal.log", "/checkpoint.db", "/checkpoint.db.tmp"}) {
    if (env->Exists(dir + file)) ASSERT_TRUE(env->Remove(dir + file).ok());
  }
  DurableOptions options;
  {
    DurableExecutor exec(env, dir, options);
    ASSERT_TRUE(exec.Open().ok());
    const std::vector<Step> steps = Workload();
    for (const Step& step : steps) {
      auto r = step.atomic ? exec.SubmitAtomic(step.sentence)
                           : exec.Submit(step.sentence);
      if (!r.ok()) ASSERT_FALSE(IsIoFailure(r.status())) << r.status();
    }
  }  // executor destroyed without checkpoint: WAL is the only truth
  DurableExecutor recovered(env, dir, options);
  ASSERT_TRUE(recovered.Open().ok());
  const std::vector<std::string> oracle = OraclePrefixStates(Workload());
  EXPECT_EQ(EncodeDatabase(recovered.Snapshot()), oracle.back());
  EXPECT_GT(recovered.last_recovery().replayed_records, 0u);
}

// --- Group commit ---------------------------------------------------------
//
// A group commit is ONE checksummed WAL record, so its durability contract
// is stronger than "prefix of sentences": recovery must land on a prefix
// of WHOLE batches — a crash mid-batch yields the state before the batch,
// never a torn one — and every acknowledged batch (kAlways) survives.

std::vector<std::vector<GroupEntry>> WorkloadBatches(
    const std::vector<Step>& steps, size_t batch_size) {
  std::vector<std::vector<GroupEntry>> batches;
  for (size_t i = 0; i < steps.size(); i += batch_size) {
    std::vector<GroupEntry> batch;
    for (size_t j = i; j < std::min(i + batch_size, steps.size()); ++j) {
      batch.push_back(GroupEntry{steps[j].sentence, steps[j].atomic});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Prefix indices (into OraclePrefixStates output) that fall on batch
/// boundaries: 0 steps, batch_size steps, 2*batch_size steps, ...
std::vector<size_t> BatchBoundaries(size_t total_steps, size_t batch_size) {
  std::vector<size_t> boundaries;
  for (size_t k = 0; k <= total_steps; k += batch_size) boundaries.push_back(k);
  if (boundaries.back() != total_steps) boundaries.push_back(total_steps);
  return boundaries;
}

void RunGroupCrashPoint(uint64_t fault_at, FaultInjectionEnv::FaultMode mode,
                        const DurableOptions& options,
                        const std::vector<std::vector<GroupEntry>>& batches,
                        const std::vector<std::string>& oracle,
                        const std::vector<size_t>& boundaries,
                        uint64_t* total_ops = nullptr) {
  SCOPED_TRACE("group fault at op " + std::to_string(fault_at) +
               (mode == FaultInjectionEnv::FaultMode::kFailOp ? " (fail)"
                                                              : " (torn)"));
  FaultInjectionEnv env;
  auto exec = std::make_unique<DurableExecutor>(&env, "g", options);
  ASSERT_TRUE(exec->Open().ok());
  if (fault_at != 0) env.InjectFault(fault_at, mode);

  size_t acked_batches = 0;
  for (const auto& batch : batches) {
    std::vector<Result<TransactionNumber>> results = exec->SubmitGroup(batch);
    ASSERT_EQ(results.size(), batch.size());
    bool io_failed = false;
    for (const auto& r : results) {
      if (!r.ok() && IsIoFailure(r.status())) io_failed = true;
    }
    if (io_failed) break;  // "crash": the whole batch is unacknowledged
    ++acked_batches;
  }
  if (total_ops != nullptr) *total_ops = env.op_count();

  exec.reset();
  env.Crash();
  DurableExecutor recovered(&env, "g", options);
  ASSERT_TRUE(recovered.Open().ok());

  // The recovered state must sit on a batch boundary — matching a
  // mid-batch prefix whose state differs from every boundary state would
  // mean a torn batch was half-replayed.
  const std::string state = EncodeDatabase(recovered.Snapshot());
  size_t matched_boundary = boundaries.size();
  for (size_t b = boundaries.size(); b-- > 0;) {
    if (state == oracle[boundaries[b]]) {
      matched_boundary = b;
      break;
    }
  }
  ASSERT_LT(matched_boundary, boundaries.size())
      << "recovered database is not a whole-batch prefix (torn batch?)";
  EXPECT_GE(matched_boundary, acked_batches)
      << "recovery lost an acknowledged group commit";

  const TransactionNumber resumed = recovered.transaction_number();
  auto txn = recovered.Submit(Command(DefineRelationCmd{
      "post_recovery", RelationType::kSnapshot, EmpSchema()}));
  ASSERT_TRUE(txn.ok()) << txn.status();
  EXPECT_EQ(*txn, resumed + 1);
}

TEST_P(CrashRecoveryTest, EveryGroupFaultPointRecoversWholeBatches) {
  const std::vector<Step> steps = Workload();
  const std::vector<std::string> oracle = OraclePrefixStates(steps);
  constexpr size_t kBatchSize = 3;
  const auto batches = WorkloadBatches(steps, kBatchSize);
  const auto boundaries = BatchBoundaries(steps.size(), kBatchSize);
  DurableOptions options;  // kAlways

  uint64_t total_ops = 0;
  RunGroupCrashPoint(0, GetParam(), options, batches, oracle, boundaries,
                     &total_ops);
  ASSERT_GT(total_ops, 0u);
  for (uint64_t n = 1; n <= total_ops; ++n) {
    RunGroupCrashPoint(n, GetParam(), options, batches, oracle, boundaries);
  }
}

TEST_P(CrashRecoveryTest, EveryGroupFaultPointWithAutoCheckpoint) {
  const std::vector<Step> steps = Workload();
  const std::vector<std::string> oracle = OraclePrefixStates(steps);
  constexpr size_t kBatchSize = 3;
  const auto batches = WorkloadBatches(steps, kBatchSize);
  const auto boundaries = BatchBoundaries(steps.size(), kBatchSize);
  DurableOptions options;
  options.checkpoint_every = 2;  // checkpoint + WAL truncation mid-stream

  uint64_t total_ops = 0;
  RunGroupCrashPoint(0, GetParam(), options, batches, oracle, boundaries,
                     &total_ops);
  ASSERT_GT(total_ops, 0u);
  for (uint64_t n = 1; n <= total_ops; ++n) {
    RunGroupCrashPoint(n, GetParam(), options, batches, oracle, boundaries);
  }
}

// Crash under full concurrency: producers race the group-commit writer
// when the I/O fault fires. Whatever survives on disk, recovery must
// equal a by-hand replay of the surviving checkpoint + WAL — the same
// differential the concurrency oracle applies to crash-free runs.
TEST(GroupCommitCrashTest, ConcurrentCrashRecoversToWalReplay) {
  Schema schema = MakeSchema({{"n", ValueType::kInt}});
  auto state_of = [&](int64_t v, size_t n) {
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(Tuple{Value::Int(v + static_cast<int64_t>(i))});
    }
    return *SnapshotState::Make(schema, std::move(rows));
  };

  for (uint64_t fault_at = 1; fault_at <= 40; ++fault_at) {
    SCOPED_TRACE("fault at op " + std::to_string(fault_at));
    FaultInjectionEnv env;
    ConcurrentOptions options;
    options.group_commit.max_batch = 4;
    options.group_commit.max_latency = std::chrono::microseconds(200);
    {
      ConcurrentExecutor exec(&env, "c", options);
      ASSERT_TRUE(exec.Start().ok());
      ASSERT_TRUE(exec.Submit(Command{DefineRelationCmd{
                          "r", RelationType::kRollback, schema}})
                      .ok());
      env.InjectFault(fault_at, FaultInjectionEnv::FaultMode::kFailOp);

      std::vector<std::thread> producers;
      for (int p = 0; p < 2; ++p) {
        producers.emplace_back([&, p]() {
          for (int i = 0; i < 8; ++i) {
            std::vector<Command> sentence;
            sentence.push_back(ModifySnapshotCmd{
                "r", state_of(p * 100 + i, static_cast<size_t>(i % 4))});
            // I/O failures after the fault fires are expected; losing
            // those unacknowledged sentences is the contract.
            (void)exec.SubmitAsync(std::move(sentence)).get();
          }
        });
      }
      for (auto& t : producers) t.join();
      exec.Stop();
    }
    env.Crash();

    // By-hand recovery oracle: checkpoint + decoded WAL suffix.
    DurableOptions plain;
    Database oracle_db(plain.db);
    if (env.Exists("c/checkpoint.db")) {
      auto loaded = LoadDatabase("c/checkpoint.db", plain.db, &env);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
      oracle_db = *std::move(loaded);
    }
    if (env.Exists("c/wal.log")) {
      auto wal = ReadWal(env, "c/wal.log");
      ASSERT_TRUE(wal.ok()) << wal.status();
      for (const std::string& record : wal->records) {
        auto sentences = DecodeWalRecord(record);
        ASSERT_TRUE(sentences.ok()) << sentences.status();
        for (const LoggedSentence& logged : *sentences) {
          if (logged.pre_txn < oracle_db.transaction_number()) continue;
          ASSERT_EQ(logged.pre_txn, oracle_db.transaction_number());
          if (logged.atomic) {
            Database scratch = oracle_db.Clone();
            if (ApplySentence(scratch, logged.sentence).ok()) {
              oracle_db = std::move(scratch);
            }
          } else {
            ApplySentence(oracle_db, logged.sentence);
          }
        }
      }
    }

    DurableExecutor recovered(&env, "c", DurableOptions{});
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_EQ(EncodeDatabase(recovered.Snapshot()), EncodeDatabase(oracle_db));
  }
}

}  // namespace
}  // namespace ttra
