#include <gtest/gtest.h>

#include "snapshot/csv.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Schema MixedSchema() {
  return *Schema::Make({{"id", ValueType::kInt},
                        {"name", ValueType::kString},
                        {"score", ValueType::kDouble},
                        {"active", ValueType::kBool},
                        {"seen", ValueType::kUserTime}});
}

TEST(CsvTest, WritesHeaderAndRows) {
  SnapshotState state = *SnapshotState::Make(
      MixedSchema(),
      {Tuple{Value::Int(1), Value::String("ed"), Value::Double(2.5),
             Value::Bool(true), Value::Time(7)}});
  EXPECT_EQ(ToCsv(state),
            "id,name,score,active,seen\n"
            "1,\"ed\",2.5,true,@7\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  Schema schema = *Schema::Make({{"s", ValueType::kString}});
  SnapshotState state = *SnapshotState::Make(
      schema, {Tuple{Value::String("a,b")}, Tuple{Value::String("q\"uote")},
               Tuple{Value::String("")}});
  const std::string csv = ToCsv(state);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
  auto back = FromCsv(schema, csv);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, state);
}

TEST(CsvTest, EmbeddedNewlinesRoundTrip) {
  Schema schema = *Schema::Make({{"s", ValueType::kString},
                                 {"n", ValueType::kInt}});
  SnapshotState state = *SnapshotState::Make(
      schema, {Tuple{Value::String("line1\nline2"), Value::Int(1)},
               Tuple{Value::String("plain"), Value::Int(2)}});
  auto back = FromCsv(schema, ToCsv(state));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, state);
}

TEST(CsvTest, EmptyStateRoundTrips) {
  SnapshotState state = SnapshotState::Empty(MixedSchema());
  auto back = FromCsv(MixedSchema(), ToCsv(state));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, state);
}

TEST(CsvTest, RejectsHeaderMismatch) {
  Schema schema = *Schema::Make({{"a", ValueType::kInt}});
  EXPECT_EQ(FromCsv(schema, "b\n1\n").status().code(),
            ErrorCode::kSchemaMismatch);
  EXPECT_EQ(FromCsv(schema, "a,b\n1,2\n").status().code(),
            ErrorCode::kSchemaMismatch);
  EXPECT_EQ(FromCsv(schema, "").status().code(), ErrorCode::kParseError);
}

TEST(CsvTest, RejectsMalformedValues) {
  Schema schema = *Schema::Make({{"a", ValueType::kInt},
                                 {"b", ValueType::kBool}});
  EXPECT_FALSE(FromCsv(schema, "a,b\nxyz,true\n").ok());
  EXPECT_FALSE(FromCsv(schema, "a,b\n1,maybe\n").ok());
  EXPECT_FALSE(FromCsv(schema, "a,b\n1\n").ok());          // arity
  EXPECT_FALSE(FromCsv(schema, "a,b\n1,true,9\n").ok());   // arity
  EXPECT_FALSE(FromCsv(schema, "a,b\n\"unterminated,true\n").ok());
}

TEST(CsvTest, HandlesCrLf) {
  Schema schema = *Schema::Make({{"a", ValueType::kInt}});
  auto state = FromCsv(schema, "a\r\n1\r\n2\r\n");
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_EQ(state->size(), 2u);
}

class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST_P(CsvPropertyTest, RandomStatesRoundTrip) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  SnapshotState state = gen.RandomState(schema, 25);
  auto back = FromCsv(schema, ToCsv(state));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, state);
}

}  // namespace
}  // namespace ttra
