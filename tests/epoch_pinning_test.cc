#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "rollback/concurrent_executor.h"
#include "storage/env.h"

namespace ttra {
namespace {

// Epoch-pinning property suite: a Session opened at transaction number N
// must answer every query from exactly ρ(·, N) — never observing a later
// commit — across storage engines, FINDSTATE cache hits/evictions,
// checkpoints, and executor restarts. The workload is the counter trick:
// the state committed at transaction n has a size that is a pure function
// of n, so "never observes beyond the epoch" becomes a size equation any
// thread can check without synchronizing with the writer.

Schema CounterSchema() {
  return *Schema::Make({{"id", ValueType::kInt}});
}

SnapshotState StateOfSize(size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple{Value::Int(static_cast<int64_t>(i))});
  }
  return *SnapshotState::Make(CounterSchema(), std::move(rows));
}

// Size committed at transaction n (modify_state commits start at txn 2:
// txn 1 is the define). Kept non-monotonic so a stale cache entry serving
// the wrong transaction is a visible size mismatch, not a plausible value.
size_t SizeAt(TransactionNumber n) { return static_cast<size_t>(n % 7); }

ConcurrentOptions OptionsFor(int variant) {
  const StorageKind kinds[] = {StorageKind::kFullCopy, StorageKind::kDelta,
                               StorageKind::kCheckpoint,
                               StorageKind::kReverseDelta};
  ConcurrentOptions options;
  options.durable.db.storage = kinds[variant % 4];
  options.durable.db.checkpoint_interval = 3;
  // Odd variants: a 2-entry FINDSTATE cache, so most pinned reads
  // reconstruct from the log instead of hitting a cached state.
  if (variant % 2 == 1) options.durable.db.findstate_cache_capacity = 2;
  options.group_commit.max_batch = 4;
  options.group_commit.max_latency = std::chrono::microseconds(200);
  return options;
}

class EpochPinningTest : public ::testing::TestWithParam<int> {};

// Serial phase: sessions captured at increasing epochs stay pinned while
// the executor commits on, checkpoints (truncating the on-disk log), and
// even stops/restarts (recovery). Every stored session must keep
// answering from its own epoch.
TEST_P(EpochPinningTest, PinnedSessionsSurviveCommitsCheckpointsAndRestart) {
  InMemoryEnv env;
  ConcurrentExecutor exec(&env, "db", OptionsFor(GetParam()));
  ASSERT_TRUE(exec.Start().ok());
  ASSERT_TRUE(exec.Submit(Command{DefineRelationCmd{
                      "c", RelationType::kRollback, CounterSchema()}})
                  .ok());

  std::vector<Session> pinned;
  for (int i = 0; i < 30; ++i) {
    const TransactionNumber expect_txn = exec.transaction_number() + 1;
    Result<TransactionNumber> txn = exec.Submit(
        Command{ModifySnapshotCmd{"c", StateOfSize(SizeAt(expect_txn))}});
    ASSERT_TRUE(txn.ok()) << txn.status();
    ASSERT_EQ(*txn, expect_txn);
    if (i % 5 == 0) pinned.push_back(exec.OpenSession());
    if (i % 7 == 0) {
      ASSERT_TRUE(exec.Checkpoint().ok());
    }
    if (i == 15) {
      // Cross a full recovery: stop, restart (checkpoint + WAL replay).
      // Sessions opened before the restart hold immutable snapshots and
      // must be unaffected.
      exec.Stop();
      ASSERT_TRUE(exec.Start().ok());
    }
  }
  const TransactionNumber final_txn = exec.transaction_number();

  for (const Session& session : pinned) {
    SCOPED_TRACE("epoch=" + std::to_string(session.epoch()));
    ASSERT_LT(session.epoch(), final_txn);
    // The pinned present: current state == state at the epoch, sized by
    // the epoch — not by anything committed since.
    ASSERT_EQ(session.database().transaction_number(), session.epoch());
    Result<SnapshotState> now = session.Rollback("c");
    ASSERT_TRUE(now.ok()) << now.status();
    EXPECT_EQ(now->size(), SizeAt(session.epoch()));
    // Every historical state up to the epoch, twice: the second pass hits
    // (or, with the tiny cache, re-fills) the FINDSTATE cache and must
    // not change the answer.
    for (int pass = 0; pass < 2; ++pass) {
      for (TransactionNumber n = 2; n <= session.epoch(); ++n) {
        Result<SnapshotState> at = session.Rollback("c", n);
        ASSERT_TRUE(at.ok()) << at.status();
        ASSERT_EQ(at->size(), SizeAt(n)) << "txn " << n << " pass " << pass;
      }
    }
    // Beyond the pin — committed by now, but after this session opened —
    // is rejected outright.
    for (TransactionNumber n = session.epoch() + 1; n <= final_txn; ++n) {
      EXPECT_FALSE(session.Rollback("c", n).ok());
    }
  }
}

// Concurrent phase: readers open sessions while the writer commits. The
// size equation must hold for every transaction a session can see, at the
// moment it is checked — no reader/writer synchronization beyond the
// executor's own publication.
TEST_P(EpochPinningTest, ConcurrentReadersNeverObserveBeyondEpoch) {
  constexpr int kReaderThreads = 4;
  constexpr int kCommits = 48;
  constexpr int kReadsPerThread = 120;

  InMemoryEnv env;
  ConcurrentExecutor exec(&env, "db", OptionsFor(GetParam()));
  ASSERT_TRUE(exec.Start().ok());
  ASSERT_TRUE(exec.Submit(Command{DefineRelationCmd{
                      "c", RelationType::kRollback, CounterSchema()}})
                  .ok());
  // One committed modify_state before readers start, so txn 2 exists.
  ASSERT_TRUE(
      exec.Submit(Command{ModifySnapshotCmd{"c", StateOfSize(SizeAt(2))}})
          .ok());

  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&exec, &errors, t] {
      uint64_t salt = static_cast<uint64_t>(t) + 1;
      TransactionNumber last_epoch = 0;
      for (int i = 0; i < kReadsPerThread; ++i) {
        Session session = exec.OpenSession();
        // Published epochs are monotone: a later session never travels
        // backwards in transaction time.
        if (session.epoch() < last_epoch) errors.fetch_add(1);
        last_epoch = session.epoch();
        // A pseudo-random committed transaction in [2, epoch].
        salt = salt * 6364136223846793005u + 1442695040888963407u;
        const TransactionNumber txn =
            2 + (salt >> 33) % (session.epoch() - 1);
        auto at = session.Rollback("c", txn);
        if (!at.ok() || at->size() != SizeAt(txn)) errors.fetch_add(1);
        auto now = session.Rollback("c");
        if (!now.ok() || now->size() != SizeAt(session.epoch())) {
          errors.fetch_add(1);
        }
        if (session.Rollback("c", session.epoch() + 1).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }

  // The writer keeps the epoch moving while readers sample it; each
  // commit's size is the pure function of its (asserted) transaction
  // number, so reader checks stay valid at any interleaving.
  for (int i = 0; i < kCommits; ++i) {
    const TransactionNumber expect_txn = exec.transaction_number() + 1;
    Result<TransactionNumber> txn = exec.Submit(
        Command{ModifySnapshotCmd{"c", StateOfSize(SizeAt(expect_txn))}});
    ASSERT_TRUE(txn.ok()) << txn.status();
    ASSERT_EQ(*txn, expect_txn);
    if (i % 9 == 0) {
      ASSERT_TRUE(exec.Checkpoint().ok());
    }
  }

  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(exec.Drain().ok());
  ASSERT_TRUE(exec.healthy());
}

INSTANTIATE_TEST_SUITE_P(Variants, EpochPinningTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace ttra
