#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "rollback/concurrent_executor.h"
#include "rollback/durable_executor.h"
#include "rollback/persistence.h"
#include "storage/env.h"
#include "storage/salvage.h"
#include "util/random.h"

namespace ttra {
namespace {

// Fault-schedule torture oracle. Each seed derives a probabilistic fault
// plan (transient-EIO bursts, torn appends, lying fsyncs, ENOSPC), runs a
// sequential workload through the ConcurrentExecutor with retry enabled,
// then crashes, optionally deals post-crash bit rot, salvages with the
// same validators `ttra fsck` uses, and recovers. The invariants checked
// on EVERY seed:
//
//  * an acknowledged commit extends the transaction chain by exactly one
//    (gap-free), and — absent lying fsyncs and post-crash rot — survives
//    recovery (durable-or-cleanly-failed);
//  * after the first permanent failure every later submit is refused with
//    the distinct kReadOnly code while reader sessions keep answering
//    ρ(·, epoch) at their pinned epoch;
//  * `fsck --repair` turns every corrupted schedule into a successful
//    recovery, and the recovered state is some exact prefix of the
//    committed sentence sequence — never a torn or reordered one.
//
// Seed count: TTRA_FAULT_SEEDS (CI's faults job sets 200); default 25.

size_t SeedCount() {
  const char* setting = std::getenv("TTRA_FAULT_SEEDS");
  if (setting == nullptr) return 25;
  const long parsed = std::strtol(setting, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : 25;
}

Schema OneIntSchema() { return *Schema::Make({{"n", ValueType::kInt}}); }

std::vector<Command> NthSentence(int i) {
  std::vector<Tuple> rows;
  for (int k = 0; k <= i % 5; ++k) {
    rows.push_back(Tuple{Value::Int(i * 100 + k)});
  }
  std::vector<Command> sentence;
  sentence.push_back(ModifySnapshotCmd{
      "r", *SnapshotState::Make(OneIntSchema(), std::move(rows))});
  return sentence;
}

FaultPlanOptions PlanForSeed(uint64_t seed, Rng& rng) {
  FaultPlanOptions plan;
  plan.transient_error_rate = 0.25 * rng.UniformDouble();
  plan.max_transient_burst = 1 + static_cast<uint32_t>(rng.Uniform(3));
  plan.torn_append_rate = 0.15 * rng.UniformDouble();
  // Every third seed: firmware that acknowledges fsyncs it never performs.
  plan.lying_sync_rate = (seed % 3 == 0) ? 0.25 * rng.UniformDouble() : 0.0;
  // Every fourth seed: a store small enough to fill mid-run (ENOSPC).
  plan.capacity_bytes = (seed % 4 == 0) ? 2000 + rng.Uniform(6000) : 0;
  return plan;
}

/// The CLI's fsck configuration: semantic validation via rollback decoders.
SalvageOptions FsckOptions() {
  SalvageOptions options;
  options.validate_record = [](std::string_view payload) {
    return DecodeWalRecord(payload).status();
  };
  options.validate_checkpoint = [](std::string_view data) {
    return DecodeDatabase(data).status();
  };
  return options;
}

void RunSeed(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Rng rng(seed);

  // The workload and its oracle: canonical state after each prefix.
  std::vector<std::vector<Command>> sentences;
  {
    std::vector<Command> define;
    define.push_back(
        DefineRelationCmd{"r", RelationType::kRollback, OneIntSchema()});
    sentences.push_back(std::move(define));
  }
  for (int i = 0; i < 30; ++i) sentences.push_back(NthSentence(i));
  std::vector<std::string> prefix_states;
  {
    Database db{DatabaseOptions{}};
    prefix_states.push_back(EncodeDatabase(db));
    for (const auto& sentence : sentences) {
      ASSERT_TRUE(ApplySentence(db, sentence).ok());
      prefix_states.push_back(EncodeDatabase(db));
    }
  }

  FaultInjectionEnv env;
  ConcurrentOptions options;
  options.durable.retry.max_attempts = 1 + rng.Uniform(4);  // 1..4
  options.durable.retry.initial_backoff = std::chrono::microseconds(1);
  options.durable.retry.max_backoff = std::chrono::microseconds(8);
  size_t sleeper_calls = 0;  // fake clock: no wall-clock sleeps in tests
  options.durable.retry.sleeper = [&sleeper_calls](std::chrono::microseconds) {
    ++sleeper_calls;
  };
  options.group_commit.max_latency = std::chrono::microseconds(0);

  ConcurrentExecutor exec(&env, "t", options);
  ASSERT_TRUE(exec.Start().ok());
  env.ArmPlan(seed * 0x9e3779b97f4a7c15ULL + 1, PlanForSeed(seed, rng));

  // --- Live phase: sequential submits, acked-or-cleanly-failed ----------
  size_t acked = 0;
  size_t refused = 0;
  bool failed = false;
  TransactionNumber last_txn = 0;
  for (const auto& sentence : sentences) {
    Result<TransactionNumber> result = exec.Submit(sentence);
    if (result.ok()) {
      ASSERT_FALSE(failed) << "write accepted after the executor degraded";
      ASSERT_EQ(*result, last_txn + 1) << "transaction chain has a gap";
      last_txn = *result;
      ++acked;
    } else if (!failed) {
      failed = true;
      // The sentence that hit the permanent fault carries the real cause.
      EXPECT_TRUE(result.status().code() == ErrorCode::kIoError ||
                  result.status().code() == ErrorCode::kResourceExhausted)
          << result.status();
    } else {
      // Everyone after it gets the distinct read-only refusal.
      ++refused;
      EXPECT_EQ(result.status().code(), ErrorCode::kReadOnly)
          << result.status();
    }
  }

  const auto stats = exec.stats();
  EXPECT_EQ(stats.health.transient_retries, sleeper_calls)
      << "every retry must go through the injected (fake) clock";
  EXPECT_LE(stats.health.retry_successes, stats.health.transient_retries);
  EXPECT_EQ(exec.degraded(), failed);

  if (failed) {
    EXPECT_FALSE(exec.degraded_reason().ok());
    // Every post-failure submit — and nothing else — got the refusal. When
    // the permanent fault lands on the very last sentence this is zero.
    EXPECT_EQ(stats.rejected_read_only, refused);
    // Degraded mode is read-only, not down: sessions opened NOW still
    // answer ρ(·, epoch) at the last published epoch.
    Session session = exec.OpenSession();
    EXPECT_EQ(session.epoch(), last_txn);
    EXPECT_EQ(EncodeDatabase(session.database()), prefix_states[acked]);
    if (acked >= 1) {
      auto rollback = session.Rollback("r", session.epoch());
      EXPECT_TRUE(rollback.ok()) << rollback.status();
      EXPECT_EQ(session.Rollback("r", session.epoch() + 1).status().code(),
                ErrorCode::kInvalidRollback);
    }
  }

  // --- Crash, rot, salvage, recover -------------------------------------
  const auto plan_stats = env.plan_stats();
  exec.Stop();
  env.Crash();

  // Odd seeds: bit rot strikes the surviving WAL body after the crash —
  // the schedule `fsck --repair` exists for.
  bool rotted = false;
  if (seed % 2 == 1 && env.Exists("t/wal.log")) {
    std::string image = *env.Read("t/wal.log");
    if (image.size() > 9) {
      const uint64_t at = 9 + rng.Uniform(image.size() - 9);
      image[at] ^= static_cast<char>(1u << rng.Uniform(8));
      ASSERT_TRUE(env.Truncate("t/wal.log").ok());
      ASSERT_TRUE(env.Append("t/wal.log", image).ok());
      ASSERT_TRUE(env.Sync("t/wal.log").ok());
      rotted = true;
    }
  }

  auto scan = ScanStorage(&env, "t", FsckOptions());
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_NE(scan->verdict, SalvageVerdict::kUnrecoverable)
      << "the checkpoint is never written under the fault plan";
  if (scan->verdict == SalvageVerdict::kNeedsRepair) {
    auto repaired = RepairStorage(&env, "t", FsckOptions());
    ASSERT_TRUE(repaired.ok()) << repaired.status();
    EXPECT_TRUE(repaired->repaired);
    EXPECT_TRUE(env.Exists("t/wal.log.quarantine"));
  }

  // After (at most) one repair, recovery must succeed...
  DurableExecutor recovered(&env, "t", DurableOptions{});
  ASSERT_TRUE(recovered.Open().ok());

  // ...to an exact prefix of the committed sentence sequence.
  const std::string state = EncodeDatabase(recovered.Snapshot());
  size_t matched = prefix_states.size();
  for (size_t k = prefix_states.size(); k-- > 0;) {
    if (state == prefix_states[k]) {
      matched = k;
      break;
    }
  }
  ASSERT_LT(matched, prefix_states.size())
      << "recovered state matches no prefix (torn or reordered replay)";
  EXPECT_LE(matched, acked) << "recovery invented unacknowledged commits";
  // Durable-or-cleanly-failed: unless an fsync lied or rot destroyed
  // records after the fact, every acked commit survives.
  if (plan_stats.lying_syncs == 0 && !rotted) {
    EXPECT_GE(matched, acked) << "recovery lost an acknowledged commit";
  }

  // The salvaged directory is healthy and writable again.
  auto rescan = ScanStorage(&env, "t", FsckOptions());
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->verdict, SalvageVerdict::kClean);
  // If even the define was lost, re-run it; either way new writes work.
  auto resumed = recovered.Submit(matched >= 1 ? NthSentence(99)
                                               : sentences[0]);
  EXPECT_TRUE(resumed.ok()) << resumed.status();
}

TEST(FaultTortureTest, SeededScheduleSweep) {
  const size_t seeds = SeedCount();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RunSeed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace ttra
