// Randomized robustness suites: print→parse round-trips over generated
// ASTs, parser behaviour on garbage input, and deep-nesting stress.

#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "lang/parser.h"
#include "workload/generator.h"

namespace ttra::lang {
namespace {

// --- Generated-AST round trips -----------------------------------------------

class ExprRoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTripFuzz,
                         ::testing::Range<uint64_t>(0, 30));

TEST_P(ExprRoundTripFuzz, RandomExprsPrintParseStable) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  std::vector<Expr> bases = {
      Expr::Rollback("r", std::nullopt, false),
      Expr::Rollback("r", 1 + gen.rng().Uniform(100), false),
      Expr::Const(gen.RandomState(schema, 5)),
  };
  for (int trial = 0; trial < 10; ++trial) {
    Expr original = gen.RandomExpr(bases, schema, 5);
    const std::string printed = original.ToString();
    auto reparsed = ParseExpr(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << " → " << reparsed.status();
    EXPECT_EQ(*reparsed, original) << printed;
    EXPECT_EQ(reparsed->ToString(), printed);
  }
}

TEST_P(ExprRoundTripFuzz, RandomHistoricalConstantsRoundTrip) {
  workload::Generator gen(GetParam() + 300);
  const Schema schema = gen.RandomSchema();
  for (int trial = 0; trial < 5; ++trial) {
    HistoricalState state = gen.RandomHistoricalState(schema, 8);
    Expr original = Expr::Const(state);
    auto reparsed = ParseExpr(original.ToString());
    ASSERT_TRUE(reparsed.ok()) << original.ToString();
    EXPECT_EQ(*reparsed, original);
  }
}

TEST_P(ExprRoundTripFuzz, RandomPredicatesRoundTrip) {
  workload::Generator gen(GetParam() + 600);
  const Schema schema = gen.RandomSchema();
  for (int trial = 0; trial < 10; ++trial) {
    Predicate original = gen.RandomPredicate(schema, 4);
    auto reparsed = ParsePredicate(original.ToString());
    ASSERT_TRUE(reparsed.ok()) << original.ToString();
    EXPECT_EQ(*reparsed, original) << original.ToString();
  }
}

// --- Garbage input never crashes -------------------------------------------------

class GarbageInputFuzz : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputFuzz,
                         ::testing::Range<uint64_t>(0, 20));

TEST_P(GarbageInputFuzz, RandomBytesParseToErrorNotCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage;
    const size_t length = rng.Uniform(120);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(96) + 32));
    }
    // Any outcome is fine as long as it is a clean Result.
    auto program = ParseProgram(garbage);
    if (!program.ok()) {
      EXPECT_EQ(program.status().code(), ErrorCode::kParseError);
    }
    (void)ParseExpr(garbage);
    (void)ParsePredicate(garbage);
  }
}

TEST_P(GarbageInputFuzz, TokenSoupParsesToErrorNotCrash) {
  // Structured garbage: valid tokens in random order.
  Rng rng(GetParam() + 1000);
  static const char* kTokens[] = {
      "select", "project", "rho",   "(",    ")",     "[",      "]",
      "{",      "}",       ",",     ";",    "union", "minus",  "1",
      "2.5",    "\"s\"",   "ident", "true", "inf",   "valid",  "@3",
      "delta",  "u",       "->",    "=",    "<",     "modify_state",
      "summarize", "count", "extend", "historical",
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup;
    const size_t tokens = rng.Uniform(40);
    for (size_t i = 0; i < tokens; ++i) {
      soup += kTokens[rng.Uniform(std::size(kTokens))];
      soup += ' ';
    }
    (void)ParseProgram(soup);
    (void)ParseExpr(soup);
  }
}

// --- Deep nesting ------------------------------------------------------------------

TEST(DeepNestingTest, DeepSelectChainsParseAndEvaluate) {
  std::string source = "(n: int) {(1), (2), (3)}";
  for (int i = 0; i < 200; ++i) {
    source = "select[n > 0](" + source + ")";
  }
  auto expr = ParseExpr(source);
  ASSERT_TRUE(expr.ok()) << expr.status();
  Database db;
  auto value = EvalExpr(*expr, db);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::get<SnapshotState>(*value).size(), 3u);
}

TEST(DeepNestingTest, DeepParenthesesParse) {
  std::string source = "(n: int) {}";
  for (int i = 0; i < 300; ++i) source = "(" + source + ")";
  auto expr = ParseExpr(source);
  ASSERT_TRUE(expr.ok()) << expr.status();
}

TEST(DeepNestingTest, DeepPredicateNesting) {
  std::string pred = "n = 1";
  for (int i = 0; i < 200; ++i) pred = "not (" + pred + ")";
  auto parsed = ParsePredicate(pred);
  ASSERT_TRUE(parsed.ok());
  Schema schema = *Schema::Make({{"n", ValueType::kInt}});
  auto value = parsed->Eval(schema, Tuple{Value::Int(1)});
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(*value);  // 200 negations cancel out
}

// --- Evaluator under randomized programs --------------------------------------------

class ProgramFuzz : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz, ::testing::Range<uint64_t>(0, 10));

TEST_P(ProgramFuzz, PrintedProgramsReExecuteIdentically) {
  // Generate a command stream, convert to a language program, print it,
  // re-parse, and check both programs produce identical databases.
  workload::Generator gen(GetParam());
  auto commands = gen.RandomCommandStream("r", RelationType::kRollback, 10,
                                          8, 0.4);
  Program program;
  for (const Command& cmd : commands) {
    if (std::holds_alternative<DefineRelationCmd>(cmd)) {
      const auto& c = std::get<DefineRelationCmd>(cmd);
      program.push_back(DefineRelationStmt{c.name, c.type, c.schema});
    } else {
      const auto& c = std::get<ModifySnapshotCmd>(cmd);
      program.push_back(ModifyStateStmt{c.name, Expr::Const(c.state)});
    }
  }
  const std::string printed = ProgramToString(program);
  auto reparsed = ParseProgram(printed);
  ASSERT_TRUE(reparsed.ok()) << printed << "\n→ " << reparsed.status();

  Database direct;
  ASSERT_TRUE(ExecProgram(program, direct).ok());
  Database via_text;
  ASSERT_TRUE(ExecProgram(*reparsed, via_text).ok());
  ASSERT_EQ(direct.transaction_number(), via_text.transaction_number());
  for (TransactionNumber txn = 0; txn <= direct.transaction_number();
       ++txn) {
    EXPECT_EQ(*direct.Rollback("r", txn), *via_text.Rollback("r", txn));
  }
}

}  // namespace
}  // namespace ttra::lang
