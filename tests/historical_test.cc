#include <gtest/gtest.h>

#include "historical/hoperators.h"
#include "historical/hstate.h"
#include "historical/interval.h"
#include "historical/temporal_element.h"
#include "historical/temporal_expr.h"
#include "snapshot/operators.h"
#include "workload/generator.h"

namespace ttra {
namespace {

namespace hops = historical_ops;

Schema OneCol() { return *Schema::Make({{"n", ValueType::kInt}}); }

HistoricalState HState(std::vector<HistoricalTuple> tuples) {
  return *HistoricalState::Make(OneCol(), std::move(tuples));
}

HistoricalTuple Fact(int64_t n, std::initializer_list<Interval> valid) {
  return HistoricalTuple{Tuple{Value::Int(n)}, TemporalElement::Of(valid)};
}

// --- Interval -----------------------------------------------------------------

TEST(IntervalTest, EmptinessAndContains) {
  EXPECT_TRUE(Interval::Make(5, 5).empty());
  EXPECT_TRUE(Interval::Make(6, 5).empty());
  Interval i = Interval::Make(2, 5);
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.Contains(2));
  EXPECT_TRUE(i.Contains(4));
  EXPECT_FALSE(i.Contains(5));  // half-open
  EXPECT_FALSE(i.Contains(1));
}

TEST(IntervalTest, OverlapsAndMeets) {
  Interval a = Interval::Make(0, 5);
  EXPECT_TRUE(a.Overlaps(Interval::Make(4, 9)));
  EXPECT_FALSE(a.Overlaps(Interval::Make(5, 9)));  // touching != overlapping
  EXPECT_TRUE(a.Meets(Interval::Make(5, 9)));      // touching coalesces
  EXPECT_FALSE(a.Meets(Interval::Make(6, 9)));
}

TEST(IntervalTest, PointAndFromFactories) {
  EXPECT_TRUE(Interval::Point(3).Contains(3));
  EXPECT_FALSE(Interval::Point(3).Contains(4));
  EXPECT_TRUE(Interval::From(10).Contains(kChrononMax - 1));
}

TEST(IntervalTest, ToStringUsesInf) {
  EXPECT_EQ(Interval::Make(1, 5).ToString(), "[1, 5)");
  EXPECT_EQ(Interval::From(7).ToString(), "[7, inf)");
}

// --- TemporalElement ------------------------------------------------------------

TEST(TemporalElementTest, CanonicalizesSortsCoalescesDropsEmpty) {
  TemporalElement e = TemporalElement::Of(
      {Interval::Make(7, 9), Interval::Make(0, 3), Interval::Make(3, 5),
       Interval::Make(4, 4)});
  ASSERT_EQ(e.intervals().size(), 2u);
  EXPECT_EQ(e.intervals()[0], Interval::Make(0, 5));
  EXPECT_EQ(e.intervals()[1], Interval::Make(7, 9));
}

TEST(TemporalElementTest, ContainsBinarySearch) {
  TemporalElement e = TemporalElement::Of(
      {Interval::Make(0, 3), Interval::Make(10, 20), Interval::Make(30, 31)});
  EXPECT_TRUE(e.Contains(0));
  EXPECT_FALSE(e.Contains(3));
  EXPECT_TRUE(e.Contains(15));
  EXPECT_TRUE(e.Contains(30));
  EXPECT_FALSE(e.Contains(31));
  EXPECT_FALSE(e.Contains(-1));
  EXPECT_FALSE(TemporalElement().Contains(0));
}

TEST(TemporalElementTest, SetOperations) {
  TemporalElement a = TemporalElement::Of({Interval::Make(0, 10)});
  TemporalElement b =
      TemporalElement::Of({Interval::Make(5, 15), Interval::Make(20, 25)});
  EXPECT_EQ(a.Union(b),
            TemporalElement::Of({Interval::Make(0, 15),
                                 Interval::Make(20, 25)}));
  EXPECT_EQ(a.Intersect(b), TemporalElement::Of({Interval::Make(5, 10)}));
  EXPECT_EQ(a.Difference(b), TemporalElement::Of({Interval::Make(0, 5)}));
  EXPECT_EQ(b.Difference(a),
            TemporalElement::Of({Interval::Make(10, 15),
                                 Interval::Make(20, 25)}));
}

TEST(TemporalElementTest, DifferenceSplitsInterval) {
  TemporalElement a = TemporalElement::Of({Interval::Make(0, 10)});
  TemporalElement hole = TemporalElement::Of({Interval::Make(3, 6)});
  EXPECT_EQ(a.Difference(hole),
            TemporalElement::Of({Interval::Make(0, 3), Interval::Make(6, 10)}));
}

TEST(TemporalElementTest, CoversAndOverlaps) {
  TemporalElement a = TemporalElement::Of({Interval::Make(0, 10)});
  TemporalElement inside =
      TemporalElement::Of({Interval::Make(1, 3), Interval::Make(5, 7)});
  EXPECT_TRUE(a.Covers(inside));
  EXPECT_FALSE(inside.Covers(a));
  EXPECT_TRUE(a.Overlaps(inside));
  EXPECT_FALSE(a.Overlaps(TemporalElement::Of({Interval::Make(10, 12)})));
  EXPECT_TRUE(a.Covers(TemporalElement()));  // vacuously
}

TEST(TemporalElementTest, DurationAndBounds) {
  TemporalElement e =
      TemporalElement::Of({Interval::Make(0, 4), Interval::Make(10, 11)});
  EXPECT_EQ(e.Duration(), 5u);
  EXPECT_EQ(e.Min(), 0);
  EXPECT_EQ(e.Max(), 11);
  EXPECT_EQ(TemporalElement().Duration(), 0u);
}

TEST(TemporalElementTest, ToStringForms) {
  EXPECT_EQ(TemporalElement().ToString(), "[)");
  EXPECT_EQ(TemporalElement::Span(1, 5).ToString(), "[1, 5)");
  EXPECT_EQ(TemporalElement::Of({Interval::Make(1, 2), Interval::Make(4, 6)})
                .ToString(),
            "[1, 2) u [4, 6)");
}

class ElementPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ElementPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST_P(ElementPropertyTest, SetAlgebraLaws) {
  workload::Generator gen(GetParam());
  TemporalElement a = gen.RandomElement();
  TemporalElement b = gen.RandomElement();
  TemporalElement c = gen.RandomElement();
  // Commutativity / associativity / distributivity.
  EXPECT_EQ(a.Union(b), b.Union(a));
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
  EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
  EXPECT_EQ(a.Intersect(b.Union(c)),
            a.Intersect(b).Union(a.Intersect(c)));
  // Difference identities.
  EXPECT_EQ(a.Difference(a), TemporalElement());
  EXPECT_EQ(a.Difference(TemporalElement()), a);
  EXPECT_EQ(a.Difference(b).Intersect(b), TemporalElement());
  EXPECT_EQ(a.Difference(b).Union(a.Intersect(b)), a);
}

TEST_P(ElementPropertyTest, MembershipMatchesOperations) {
  workload::Generator gen(GetParam() + 500);
  TemporalElement a = gen.RandomElement();
  TemporalElement b = gen.RandomElement();
  for (Chronon t = 0; t < 1000; t += 13) {
    EXPECT_EQ(a.Union(b).Contains(t), a.Contains(t) || b.Contains(t));
    EXPECT_EQ(a.Intersect(b).Contains(t), a.Contains(t) && b.Contains(t));
    EXPECT_EQ(a.Difference(b).Contains(t), a.Contains(t) && !b.Contains(t));
  }
}

// --- HistoricalState -------------------------------------------------------------

TEST(HistoricalStateTest, MakeMergesValueEqualTuples) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 5)}),
                              Fact(1, {Interval::Make(3, 9)}),
                              Fact(2, {Interval::Make(1, 2)})});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ValidTimeOf(Tuple{Value::Int(1)}), TemporalElement::Span(0, 9));
}

TEST(HistoricalStateTest, MakeDropsEmptyElements) {
  HistoricalState s = HState({Fact(1, {Interval::Make(5, 5)})});
  EXPECT_TRUE(s.empty());
}

TEST(HistoricalStateTest, ValidTimeOfMissingTupleIsEmpty) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 5)})});
  EXPECT_TRUE(s.ValidTimeOf(Tuple{Value::Int(42)}).empty());
}

TEST(HistoricalStateTest, SnapshotAtSlices) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 5)}),
                              Fact(2, {Interval::Make(3, 9)})});
  EXPECT_EQ(s.SnapshotAt(0).size(), 1u);
  EXPECT_EQ(s.SnapshotAt(4).size(), 2u);
  EXPECT_EQ(s.SnapshotAt(7).size(), 1u);
  EXPECT_TRUE(s.SnapshotAt(100).empty());
  EXPECT_EQ(s.SnapshotAt(4).schema(), s.schema());
}

TEST(HistoricalStateTest, EqualityIsCanonical) {
  HistoricalState a = HState({Fact(1, {Interval::Make(0, 3)}),
                              Fact(1, {Interval::Make(3, 6)})});
  HistoricalState b = HState({Fact(1, {Interval::Make(0, 6)})});
  EXPECT_EQ(a, b);
}

// --- Historical operators --------------------------------------------------------

TEST(HistoricalOpsTest, UnionMergesHistories) {
  HistoricalState a = HState({Fact(1, {Interval::Make(0, 5)})});
  HistoricalState b = HState({Fact(1, {Interval::Make(10, 15)}),
                              Fact(2, {Interval::Make(0, 1)})});
  auto r = hops::Union(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Of({Interval::Make(0, 5),
                                 Interval::Make(10, 15)}));
}

TEST(HistoricalOpsTest, DifferenceSubtractsElements) {
  HistoricalState a = HState({Fact(1, {Interval::Make(0, 10)})});
  HistoricalState b = HState({Fact(1, {Interval::Make(4, 6)})});
  auto r = hops::Difference(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Of({Interval::Make(0, 4), Interval::Make(6, 10)}));
}

TEST(HistoricalOpsTest, DifferenceDropsFullyCoveredTuples) {
  HistoricalState a = HState({Fact(1, {Interval::Make(2, 4)})});
  HistoricalState b = HState({Fact(1, {Interval::Make(0, 9)})});
  auto r = hops::Difference(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(HistoricalOpsTest, ProductIntersectsElements) {
  Schema left = *Schema::Make({{"x", ValueType::kInt}});
  Schema right = *Schema::Make({{"y", ValueType::kInt}});
  HistoricalState a = *HistoricalState::Make(
      left, {HistoricalTuple{Tuple{Value::Int(1)},
                             TemporalElement::Span(0, 10)}});
  HistoricalState b = *HistoricalState::Make(
      right, {HistoricalTuple{Tuple{Value::Int(2)},
                              TemporalElement::Span(5, 15)},
              HistoricalTuple{Tuple{Value::Int(3)},
                              TemporalElement::Span(20, 30)}});
  auto r = hops::Product(a, b);
  ASSERT_TRUE(r.ok());
  // (1,3) never co-valid → dropped; (1,2) valid on the overlap.
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->ValidTimeOf(Tuple{Value::Int(1), Value::Int(2)}),
            TemporalElement::Span(5, 10));
}

TEST(HistoricalOpsTest, ProjectMergesCollapsedTuples) {
  Schema two = *Schema::Make({{"n", ValueType::kInt},
                              {"tag", ValueType::kString}});
  HistoricalState s = *HistoricalState::Make(
      two, {HistoricalTuple{Tuple{Value::Int(1), Value::String("a")},
                            TemporalElement::Span(0, 5)},
            HistoricalTuple{Tuple{Value::Int(1), Value::String("b")},
                            TemporalElement::Span(5, 9)}});
  auto r = hops::Project(s, {"n"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(0, 9));
}

TEST(HistoricalOpsTest, SelectKeepsElements) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 5)}),
                              Fact(7, {Interval::Make(2, 3)})});
  Predicate p = Predicate::AttrCompare("n", CompareOp::kGt, Value::Int(3));
  auto r = hops::Select(s, p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->ValidTimeOf(Tuple{Value::Int(7)}),
            TemporalElement::Span(2, 3));
}

TEST(HistoricalOpsTest, DeltaSelectsOnValidTime) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 5)}),
                              Fact(2, {Interval::Make(50, 60)})});
  // Keep tuples valid sometime in [0, 10).
  TemporalPred g = TemporalPred::Overlaps(
      TemporalExpr::Valid(),
      TemporalExpr::Const(TemporalElement::Span(0, 10)));
  auto r = hops::Delta(s, g, TemporalExpr::Valid());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_FALSE(r->ValidTimeOf(Tuple{Value::Int(1)}).empty());
}

TEST(HistoricalOpsTest, DeltaProjectsValidTime) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 10)})});
  // Restrict every tuple's history to [5, 30).
  TemporalExpr v = TemporalExpr::Intersect(
      TemporalExpr::Valid(),
      TemporalExpr::Const(TemporalElement::Span(5, 30)));
  auto r = hops::Delta(s, TemporalPred::True(), v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(5, 10));
}

TEST(HistoricalOpsTest, DeltaDropsTuplesProjectedToEmpty) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 10)})});
  TemporalExpr v = TemporalExpr::Intersect(
      TemporalExpr::Valid(),
      TemporalExpr::Const(TemporalElement::Span(50, 60)));
  auto r = hops::Delta(s, TemporalPred::True(), v);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(HistoricalOpsTest, DeltaIdentity) {
  HistoricalState s = HState({Fact(1, {Interval::Make(0, 10)}),
                              Fact(2, {Interval::Make(3, 4)})});
  auto r = hops::Delta(s, TemporalPred::True(), TemporalExpr::Valid());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, s);
}

TEST(HistoricalOpsTest, FromSnapshotStampsUniformly) {
  Schema schema = OneCol();
  SnapshotState snap = *SnapshotState::Make(
      schema, {Tuple{Value::Int(1)}, Tuple{Value::Int(2)}});
  auto r = hops::FromSnapshot(snap, TemporalElement::Span(10, 20));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->SnapshotAt(15), snap);
  EXPECT_TRUE(r->SnapshotAt(25).empty());
}

// --- Temporal predicates ----------------------------------------------------------

TEST(TemporalPredTest, ComparisonSemantics) {
  TemporalElement valid = TemporalElement::Span(0, 10);
  auto c = [](TemporalElement e) { return TemporalExpr::Const(std::move(e)); };
  EXPECT_TRUE(TemporalPred::Overlaps(TemporalExpr::Valid(),
                                     c(TemporalElement::Span(9, 20)))
                  .Eval(valid));
  EXPECT_FALSE(TemporalPred::Overlaps(TemporalExpr::Valid(),
                                      c(TemporalElement::Span(10, 20)))
                   .Eval(valid));
  EXPECT_TRUE(TemporalPred::Contains(TemporalExpr::Valid(),
                                     c(TemporalElement::Span(2, 5)))
                  .Eval(valid));
  EXPECT_FALSE(TemporalPred::Contains(c(TemporalElement::Span(2, 5)),
                                      TemporalExpr::Valid())
                   .Eval(valid));
  EXPECT_TRUE(TemporalPred::Before(TemporalExpr::Valid(),
                                   c(TemporalElement::Span(10, 12)))
                  .Eval(valid));
  EXPECT_FALSE(TemporalPred::Before(TemporalExpr::Valid(),
                                    c(TemporalElement::Span(5, 12)))
                   .Eval(valid));
  EXPECT_TRUE(TemporalPred::Equals(TemporalExpr::Valid(),
                                   c(TemporalElement::Span(0, 10)))
                  .Eval(valid));
  EXPECT_TRUE(TemporalPred::Empty(TemporalExpr::Difference(
                                      TemporalExpr::Valid(),
                                      c(TemporalElement::Span(0, 10))))
                  .Eval(valid));
}

TEST(TemporalPredTest, BeforeWithEmptyOperandIsFalse) {
  TemporalElement valid = TemporalElement::Span(0, 10);
  EXPECT_FALSE(TemporalPred::Before(TemporalExpr::Const(TemporalElement()),
                                    TemporalExpr::Valid())
                   .Eval(valid));
}

TEST(TemporalPredTest, LogicalConnectives) {
  TemporalElement valid = TemporalElement::Span(0, 10);
  TemporalPred yes = TemporalPred::True();
  TemporalPred no = TemporalPred::False();
  EXPECT_TRUE(TemporalPred::And(yes, yes).Eval(valid));
  EXPECT_FALSE(TemporalPred::And(yes, no).Eval(valid));
  EXPECT_TRUE(TemporalPred::Or(no, yes).Eval(valid));
  EXPECT_FALSE(TemporalPred::Or(no, no).Eval(valid));
  EXPECT_TRUE(TemporalPred::Not(no).Eval(valid));
}

TEST(TemporalExprTest, EvalAndToString) {
  TemporalElement valid = TemporalElement::Span(0, 10);
  TemporalExpr e = TemporalExpr::Union(
      TemporalExpr::Difference(TemporalExpr::Valid(),
                               TemporalExpr::Const(
                                   TemporalElement::Span(0, 5))),
      TemporalExpr::Const(TemporalElement::Span(20, 25)));
  EXPECT_EQ(e.Eval(valid),
            TemporalElement::Of({Interval::Make(5, 10),
                                 Interval::Make(20, 25)}));
  EXPECT_EQ(e.ToString(), "((valid minus [0, 5)) union [20, 25))");
}

// --- Randomized law checks for the historical operators (E1/E6) ------------------

class HistoricalLawTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, HistoricalLawTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST_P(HistoricalLawTest, UnionCommutesAndSelectDistributes) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  HistoricalState a = gen.RandomHistoricalState(schema, 15);
  HistoricalState b = gen.RandomHistoricalState(schema, 15);
  Predicate f = gen.RandomPredicate(schema);
  EXPECT_EQ(*hops::Union(a, b), *hops::Union(b, a));
  EXPECT_EQ(*hops::Select(*hops::Union(a, b), f),
            *hops::Union(*hops::Select(a, f), *hops::Select(b, f)));
  EXPECT_EQ(*hops::Select(*hops::Difference(a, b), f),
            *hops::Difference(*hops::Select(a, f), *hops::Select(b, f)));
}

TEST_P(HistoricalLawTest, TimesliceCommutesWithOperators) {
  // Snapshot-reducibility: slicing the historical result at any chronon t
  // equals applying the snapshot operator to the slices.
  workload::Generator gen(GetParam() + 700);
  const Schema schema = gen.RandomSchema();
  HistoricalState a = gen.RandomHistoricalState(schema, 15);
  HistoricalState b = gen.RandomHistoricalState(schema, 15);
  Predicate f = gen.RandomPredicate(schema);
  for (Chronon t = 0; t < 1000; t += 97) {
    EXPECT_EQ(hops::Union(a, b)->SnapshotAt(t),
              *snapshot_ops::Union(a.SnapshotAt(t), b.SnapshotAt(t)));
    EXPECT_EQ(hops::Difference(a, b)->SnapshotAt(t),
              *snapshot_ops::Difference(a.SnapshotAt(t), b.SnapshotAt(t)));
    EXPECT_EQ(hops::Select(a, f)->SnapshotAt(t),
              *snapshot_ops::Select(a.SnapshotAt(t), f));
    EXPECT_EQ(hops::Intersect(a, b)->SnapshotAt(t),
              *snapshot_ops::Intersect(a.SnapshotAt(t), b.SnapshotAt(t)));
  }
}

TEST_P(HistoricalLawTest, ProductTimesliceCommutes) {
  workload::Generator gen(GetParam() + 1400);
  const Schema left = gen.RandomSchema(2);
  // Disjoint attribute names for the product.
  Schema right = *Schema::Make({{"b0", ValueType::kInt},
                                {"b1", ValueType::kString}});
  HistoricalState a = gen.RandomHistoricalState(left, 10);
  HistoricalState b = gen.RandomHistoricalState(right, 10);
  for (Chronon t = 0; t < 1000; t += 131) {
    EXPECT_EQ(hops::Product(a, b)->SnapshotAt(t),
              *snapshot_ops::Product(a.SnapshotAt(t), b.SnapshotAt(t)));
  }
}

}  // namespace
}  // namespace ttra
