// End-to-end scenarios across every layer: language → evaluator →
// database → storage engines → serialization, plus the Quel front-end and
// the optimizer in one pipeline.

#include <gtest/gtest.h>

#include "lang/analyzer.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "optimizer/rewriter.h"
#include "quel/quel.h"
#include "storage/serialize.h"
#include "workload/generator.h"

namespace ttra {
namespace {

using lang::StateValue;

TEST(IntegrationTest, PaperLifecycleScenario) {
  // The full §3 machinery: define, update via algebra over ρ(R, ∞), and
  // roll back to every past transaction.
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(emp, rollback, (name: string, dept: string));
    modify_state(emp, (name: string, dept: string) {("ed", "cs")});
    modify_state(emp, rho(emp, inf) union
                      (name: string, dept: string) {("amy", "ee")});
    modify_state(emp, select[dept = "cs"](rho(emp, inf)));
    modify_state(emp, extend[dept = dept + "!"](rho(emp, inf)));
  )", db).ok());
  ASSERT_EQ(db.transaction_number(), 5u);
  EXPECT_EQ(db.Rollback("emp", 2)->size(), 1u);
  EXPECT_EQ(db.Rollback("emp", 3)->size(), 2u);
  EXPECT_EQ(db.Rollback("emp", 4)->size(), 1u);
  EXPECT_TRUE(db.Rollback("emp", 5)->Contains(
      Tuple{Value::String("ed"), Value::String("cs!")}));
  // ρ composes into bigger queries over past states.
  std::vector<StateValue> outputs;
  ASSERT_TRUE(lang::Run(
      "show(rho(emp, 3) minus rho(emp, 4));", db, &outputs).ok());
  EXPECT_EQ(std::get<SnapshotState>(outputs[0]).size(), 1u);
}

TEST(IntegrationTest, MixedQuelAndAlgebraHistory) {
  Database db;
  ASSERT_TRUE(lang::Run(
      "define_relation(acct, rollback, (owner: string, bal: int));", db)
          .ok());
  auto run_quel = [&db](std::string_view q) {
    auto stmt = quel::ParseQuel(q);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    auto compiled = quel::CompileQuel(*stmt, lang::Catalog(db));
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ASSERT_TRUE(lang::ExecStmt(*compiled, db).ok());
  };
  run_quel(R"(append to acct (owner = "a", bal = 100))");
  run_quel(R"(append to acct (owner = "b", bal = 200))");
  ASSERT_TRUE(lang::Run(
      "modify_state(acct, extend[bal = bal * 2](rho(acct, inf)));", db)
          .ok());
  run_quel(R"(delete acct where owner = "a")");
  ASSERT_EQ(db.transaction_number(), 5u);
  EXPECT_EQ(db.Rollback("acct", 3)->size(), 2u);
  EXPECT_TRUE(db.Rollback("acct", 4)->Contains(
      Tuple{Value::String("a"), Value::Int(200)}));
  EXPECT_EQ(db.Rollback("acct")->size(), 1u);
}

TEST(IntegrationTest, OptimizerInTheExecutionPipeline) {
  // Parse → analyze → optimize → evaluate must agree with the direct
  // path on a real database.
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(l, rollback, (a: int, b: string));
    define_relation(r, rollback, (c: int, d: string));
    modify_state(l, (a: int, b: string) {(1, "x"), (2, "y"), (3, "z")});
    modify_state(r, (c: int, d: string) {(1, "p"), (3, "q")});
  )", db).ok());
  lang::Catalog catalog(db);
  auto expr = lang::ParseExpr(
      "select[a < 3 and d = \"p\" and a = c](rho(l, inf) times rho(r, inf))");
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(lang::Analyze(*expr, catalog).ok());
  lang::Expr optimized = optimizer::Optimize(*expr, catalog);
  auto direct = lang::EvalExpr(*expr, db);
  auto via_opt = lang::EvalExpr(optimized, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_opt.ok());
  EXPECT_TRUE(*direct == *via_opt);
  EXPECT_EQ(std::get<SnapshotState>(*direct).size(), 1u);
}

TEST(IntegrationTest, PersistAndRestoreAcrossEngines) {
  // Build with delta storage, serialize the logical sequence, restore
  // into a fresh database with checkpoint storage, and verify rollback
  // answers match at every transaction.
  workload::Generator gen(99);
  Database db(DatabaseOptions{StorageKind::kDelta, 16});
  const Schema schema = gen.RandomSchema();
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, schema).ok());
  SnapshotState state = gen.RandomState(schema, 30);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.ModifyState("r", state).ok());
    state = gen.MutateState(state, 0.25);
  }
  // Serialize.
  const Relation* relation = db.Find("r");
  std::vector<std::pair<SnapshotState, TransactionNumber>> sequence;
  for (size_t i = 0; i < relation->history_length(); ++i) {
    sequence.emplace_back(*relation->SnapshotAt(relation->TxnAt(i)),
                          relation->TxnAt(i));
  }
  const std::string bytes = EncodeStateSequence(sequence);
  // Restore into a checkpoint-engine database by replay.
  auto decoded = DecodeStateSequence<SnapshotState>(bytes);
  ASSERT_TRUE(decoded.ok());
  Database restored(DatabaseOptions{StorageKind::kCheckpoint, 4});
  ASSERT_TRUE(
      restored.DefineRelation("r", RelationType::kRollback, schema).ok());
  for (const auto& [s, txn] : *decoded) {
    ASSERT_TRUE(restored.ModifyState("r", s).ok());
  }
  // Transaction numbers differ (replay recommits), but the k-th recorded
  // state must be identical.
  const Relation* restored_rel = restored.Find("r");
  ASSERT_EQ(restored_rel->history_length(), relation->history_length());
  for (size_t i = 0; i < relation->history_length(); ++i) {
    EXPECT_EQ(*restored_rel->SnapshotAt(restored_rel->TxnAt(i)),
              *relation->SnapshotAt(relation->TxnAt(i)));
  }
}

TEST(IntegrationTest, FourRelationTypesSideBySide) {
  // Orthogonality: one database holding all four relation types, each
  // updated and queried through its proper operators.
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(s, snapshot, (n: int));
    define_relation(r, rollback, (n: int));
    define_relation(h, historical, (n: int));
    define_relation(t, temporal, (n: int));
    modify_state(s, (n: int) {(1)});
    modify_state(r, (n: int) {(1)});
    modify_state(h, (n: int) {(1) @ [0, 5)});
    modify_state(t, (n: int) {(1) @ [0, 5)});
    modify_state(s, (n: int) {(2)});
    modify_state(r, (n: int) {(2)});
    modify_state(h, (n: int) {(1) @ [0, 9)});
    modify_state(t, (n: int) {(1) @ [0, 9)});
  )", db).ok());
  EXPECT_EQ(db.transaction_number(), 12u);
  // snapshot / historical: only the latest state survives.
  EXPECT_EQ(db.Find("s")->history_length(), 1u);
  EXPECT_EQ(db.Find("h")->history_length(), 1u);
  // rollback / temporal: both states retained.
  EXPECT_EQ(db.Find("r")->history_length(), 2u);
  EXPECT_EQ(db.Find("t")->history_length(), 2u);
  // Past queries only where history is kept.
  EXPECT_EQ(db.Rollback("r", 6)->size(), 1u);
  EXPECT_TRUE(db.Rollback("r", 6)->Contains(Tuple{Value::Int(1)}));
  EXPECT_EQ(db.RollbackHistorical("t", 8)
                ->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(0, 5));
}

TEST(IntegrationTest, SchemeEvolutionEndToEnd) {
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(emp, rollback, (name: string));
    modify_state(emp, (name: string) {("ed")});
    modify_schema(emp, (name: string, dept: string));
    modify_state(emp, extend[dept = "cs"](rho(emp, 2)));
  )", db).ok());
  // Past state keeps the narrow scheme; current state has the wide one.
  EXPECT_EQ(db.Rollback("emp", 2)->schema().size(), 1u);
  auto current = db.Rollback("emp");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->schema().size(), 2u);
  EXPECT_TRUE(current->Contains(
      Tuple{Value::String("ed"), Value::String("cs")}));
}

TEST(IntegrationTest, AnalyzerAcceptsExactlyWhatEvaluatorAccepts) {
  // Randomized agreement test: for generated programs, static analysis
  // and execution agree on success.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    workload::Generator gen(seed);
    auto commands = gen.RandomCommandStream("r", RelationType::kRollback, 5,
                                            10, 0.3);
    // Convert the plain commands into language statements.
    lang::Program program;
    for (const Command& cmd : commands) {
      if (std::holds_alternative<DefineRelationCmd>(cmd)) {
        const auto& c = std::get<DefineRelationCmd>(cmd);
        program.push_back(
            lang::DefineRelationStmt{c.name, c.type, c.schema});
      } else if (std::holds_alternative<ModifySnapshotCmd>(cmd)) {
        const auto& c = std::get<ModifySnapshotCmd>(cmd);
        program.push_back(
            lang::ModifyStateStmt{c.name, lang::Expr::Const(c.state)});
      }
    }
    EXPECT_TRUE(lang::AnalyzeProgram(program, lang::Catalog()).ok());
    Database db;
    EXPECT_TRUE(lang::ExecProgram(program, db).ok());
  }
}

TEST(IntegrationTest, LargeSentenceStressAcrossEngines) {
  // A longer randomized sentence against all engines; the language path
  // and the plain-command path must land in identical databases.
  workload::Generator gen(4242);
  auto commands = gen.RandomCommandStream("r", RelationType::kRollback, 60,
                                          40, 0.25);
  for (StorageKind kind : {StorageKind::kFullCopy, StorageKind::kDelta,
                           StorageKind::kCheckpoint}) {
    Database via_commands(DatabaseOptions{kind, 8});
    ASSERT_TRUE(ApplySentence(via_commands, commands).ok());
    Database via_lang(DatabaseOptions{kind, 8});
    lang::Program program;
    for (const Command& cmd : commands) {
      if (std::holds_alternative<DefineRelationCmd>(cmd)) {
        const auto& c = std::get<DefineRelationCmd>(cmd);
        program.push_back(
            lang::DefineRelationStmt{c.name, c.type, c.schema});
      } else {
        const auto& c = std::get<ModifySnapshotCmd>(cmd);
        program.push_back(
            lang::ModifyStateStmt{c.name, lang::Expr::Const(c.state)});
      }
    }
    ASSERT_TRUE(lang::ExecProgram(program, via_lang).ok());
    ASSERT_EQ(via_commands.transaction_number(),
              via_lang.transaction_number());
    for (TransactionNumber txn = 0;
         txn <= via_commands.transaction_number(); ++txn) {
      EXPECT_EQ(*via_commands.Rollback("r", txn), *via_lang.Rollback("r", txn));
    }
  }
}

}  // namespace
}  // namespace ttra
