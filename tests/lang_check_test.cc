// Tests for the diagnostics engine: golden-file style checks of `ttra
// check`'s human and JSON renderings, the TTRA-E/W code registry, span
// placement, the collecting analyzer, and static/runtime parity (everything
// the analyzer rejects, the evaluator rejects with the same code).

#include <gtest/gtest.h>

#include "lang/analyzer.h"
#include "lang/check.h"
#include "lang/diagnostics.h"
#include "lang/evaluator.h"
#include "lang/parser.h"

namespace ttra::lang {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(DiagnosticCodes, EveryErrorCodeHasARegistryEntry) {
  for (ErrorCode code :
       {ErrorCode::kUnknownIdentifier, ErrorCode::kAlreadyDefined,
        ErrorCode::kSchemaMismatch, ErrorCode::kTypeMismatch,
        ErrorCode::kInvalidRollback, ErrorCode::kParseError,
        ErrorCode::kCorruption, ErrorCode::kInvalidArgument,
        ErrorCode::kInternal, ErrorCode::kIoError, ErrorCode::kUnavailable,
        ErrorCode::kResourceExhausted, ErrorCode::kReadOnly}) {
    const std::string_view diag_code = DiagnosticCodeForError(code);
    EXPECT_TRUE(diag_code.rfind("TTRA-E0", 0) == 0) << diag_code;
    EXPECT_FALSE(DiagnosticCodeSummary(diag_code).empty()) << diag_code;
  }
  EXPECT_EQ(DiagnosticCodeForError(ErrorCode::kOk), "");
  for (std::string_view warn :
       {kWarnUseBeforeDefine, kWarnKindNeverMatches, kWarnRollbackInFuture,
        kWarnUnusedRelation, kWarnUnreachableStmt, kWarnRollbackProvablyEmpty,
        kWarnRollbackSchemaChanged, kWarnDeadModifyState,
        kWarnConstantFoldable}) {
    EXPECT_FALSE(DiagnosticCodeSummary(warn).empty()) << warn;
  }
}

TEST(DiagnosticSinkTest, CountsAndFirstError) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  EXPECT_TRUE(sink.FirstError().ok());
  sink.AddWarning(kWarnUnusedRelation, {}, "w");
  sink.AddError(TypeMismatchError("first"), {});
  sink.AddError(SchemaMismatchError("second"), {});
  EXPECT_EQ(sink.error_count(), 2u);
  EXPECT_EQ(sink.warning_count(), 1u);
  const Status first = sink.FirstError();
  EXPECT_EQ(first.code(), ErrorCode::kTypeMismatch);
  EXPECT_EQ(first.message(), "first");
}

// --- Status span bridging ---------------------------------------------------

TEST(StatusSpanTest, WithSpanPrefixesOnceInnermostWins) {
  const SourceSpan span{{3, 14}, {3, 20}};
  Status tagged = WithSpan(TypeMismatchError("boom"), span);
  EXPECT_EQ(tagged.message(), "3:14: boom");
  EXPECT_TRUE(StatusHasSpan(tagged));
  // Re-tagging with an outer span keeps the inner position.
  Status retagged = WithSpan(std::move(tagged), SourceSpan{{1, 1}, {1, 2}});
  EXPECT_EQ(retagged.message(), "3:14: boom");
  // OK statuses and invalid spans pass through untouched.
  EXPECT_TRUE(WithSpan(Status::Ok(), span).ok());
  EXPECT_EQ(WithSpan(TypeMismatchError("x"), SourceSpan{}).message(), "x");
  EXPECT_FALSE(StatusHasSpan(TypeMismatchError("plain")));
  EXPECT_FALSE(StatusHasSpan(TypeMismatchError("10 users: gone")));
}

// --- Golden renderings ------------------------------------------------------

constexpr std::string_view kMultiErrorSource =
    "show(rho(ghost, inf));\n"
    "define_relation(emp, rollback, (name: string));\n"
    "modify_state(emp, (name: int) {(1)})";

TEST(CheckGolden, HumanReadableMultiError) {
  const DiagnosticSink sink = CheckSource(kMultiErrorSource);
  EXPECT_EQ(FormatDiagnostics(sink.diagnostics(), "prog.ttra"),
            "prog.ttra:1:6: error[TTRA-E001]: rollback of undefined relation: "
            "ghost\n"
            "prog.ttra:2:1: warning[TTRA-W005]: unreachable: strict execution "
            "stops at the first failing command (statement 1)\n"
            "prog.ttra:3:19: error[TTRA-E003]: modify_state expression schema "
            "(name: int) does not match relation schema (name: string)\n"
            "prog.ttra: 2 error(s), 1 warning(s)\n");
}

TEST(CheckGolden, JsonMultiError) {
  const DiagnosticSink sink = CheckSource(kMultiErrorSource);
  EXPECT_EQ(
      DiagnosticsToJson(sink.diagnostics(), "prog.ttra"),
      "{\n"
      "  \"version\": 1,\n"
      "  \"file\": \"prog.ttra\",\n"
      "  \"errors\": 2,\n"
      "  \"warnings\": 1,\n"
      "  \"diagnostics\": [\n"
      "    {\"severity\": \"error\", \"code\": \"TTRA-E001\", \"line\": 1, "
      "\"column\": 6, \"endLine\": 1, \"endColumn\": 21, \"message\": "
      "\"rollback of undefined relation: ghost\"},\n"
      "    {\"severity\": \"warning\", \"code\": \"TTRA-W005\", \"line\": 2, "
      "\"column\": 1, \"endLine\": 2, \"endColumn\": 47, \"message\": "
      "\"unreachable: strict execution stops at the first failing command "
      "(statement 1)\"},\n"
      "    {\"severity\": \"error\", \"code\": \"TTRA-E003\", \"line\": 3, "
      "\"column\": 19, \"endLine\": 3, \"endColumn\": 36, \"message\": "
      "\"modify_state expression schema (name: int) does not match relation "
      "schema (name: string)\"}\n"
      "  ]\n"
      "}\n");
}

TEST(CheckGolden, CleanProgramSaysOk) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(r, snapshot, (x: int));\n"
      "modify_state(r, (x: int) {(1)});\n"
      "show(rho(r, inf))");
  EXPECT_EQ(sink.error_count(), 0u);
  EXPECT_EQ(sink.warning_count(), 0u);
  EXPECT_EQ(FormatDiagnostics(sink.diagnostics(), "clean.ttra"),
            "clean.ttra: ok\n");
  EXPECT_EQ(DiagnosticsToJson(sink.diagnostics(), "clean.ttra"),
            "{\n"
            "  \"version\": 1,\n"
            "  \"file\": \"clean.ttra\",\n"
            "  \"errors\": 0,\n"
            "  \"warnings\": 0,\n"
            "  \"diagnostics\": []\n"
            "}\n");
}

TEST(CheckGolden, ParseErrorCarriesTokenSpan) {
  const DiagnosticSink sink = CheckSource("define_relation(r snapshot)");
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "TTRA-E006");
  EXPECT_EQ(d.error, ErrorCode::kParseError);
  EXPECT_EQ(d.span.begin, (SourcePos{1, 19}));  // the unexpected 'snapshot'
  EXPECT_EQ(d.span.end, (SourcePos{1, 27}));
  EXPECT_EQ(d.message, "expected ',', found keyword 'snapshot'");
}

TEST(CheckGolden, LexerErrorCarriesPosition) {
  const DiagnosticSink sink = CheckSource("show(rho(r, inf));\n  ?");
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "TTRA-E006");
  EXPECT_EQ(d.span.begin.line, 2u);
  EXPECT_EQ(d.span.begin.column, 3u);
}

// --- Warnings ---------------------------------------------------------------

TEST(CheckWarnings, UseBeforeDefineW001) {
  const DiagnosticSink sink = CheckSource(
      "show(rho(emp, inf));\n"
      "define_relation(emp, rollback, (x: int));\n"
      "modify_state(emp, (x: int) {(1)})");
  ASSERT_EQ(sink.error_count(), 1u);  // still an error at statement 1
  bool found = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == kWarnUseBeforeDefine) {
      found = true;
      EXPECT_EQ(d.span.begin.line, 1u);
      EXPECT_EQ(d.message,
                "relation 'emp' is used here but only defined by statement 2");
    }
  }
  EXPECT_TRUE(found);
}

TEST(CheckWarnings, KindNeverMatchesW002) {
  // The expression has an error (bad rollback target) so its type is
  // unknown, but hrho pins its kind to historical — which a rollback
  // relation can never accept.
  const DiagnosticSink sink = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "modify_state(emp, hrho(ghost, inf))");
  bool found = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == kWarnKindNeverMatches) {
      found = true;
      EXPECT_EQ(d.span.begin.line, 2u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(sink.error_count(), 1u);  // the undefined 'ghost'
}

TEST(CheckWarnings, RollbackInFutureW003) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "show(rho(emp, 99))");
  EXPECT_EQ(sink.error_count(), 0u);
  bool found = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == kWarnRollbackInFuture) {
      found = true;
      EXPECT_EQ(d.span.begin, (SourcePos{2, 6}));
      EXPECT_EQ(d.message,
                "rollback to transaction 99, but at most 1 transactions can "
                "have committed when this statement runs");
    }
  }
  EXPECT_TRUE(found);
  // A reachable transaction number does not warn.
  const DiagnosticSink quiet = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "show(rho(emp, 1))");
  for (const Diagnostic& d : quiet.diagnostics()) {
    EXPECT_NE(d.code, kWarnRollbackInFuture);
  }
}

TEST(CheckWarnings, UnusedRelationW004) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(used, snapshot, (x: int));\n"
      "define_relation(idle, snapshot, (x: int));\n"
      "modify_state(used, (x: int) {(1)})");
  EXPECT_EQ(sink.error_count(), 0u);
  ASSERT_EQ(sink.warning_count(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, kWarnUnusedRelation);
  EXPECT_EQ(d.span.begin.line, 2u);
  EXPECT_EQ(d.message, "relation 'idle' is defined but never used");
}

TEST(CheckWarnings, UnreachableStmtW005OnlyOnce) {
  const DiagnosticSink sink = CheckSource(
      "delete_relation(ghost);\n"
      "show(rho(ghost, inf));\n"
      "show(rho(ghost, inf))");
  size_t unreachable = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == kWarnUnreachableStmt) {
      ++unreachable;
      EXPECT_EQ(d.span.begin.line, 2u);  // only the first dead statement
    }
  }
  EXPECT_EQ(unreachable, 1u);
}

// --- Whole-program warnings (abstract interpreter, W006..W009) --------------

const Diagnostic* FindCode(const DiagnosticSink& sink, std::string_view code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

TEST(CheckAbsint, RollbackProvablyEmptyW006) {
  // The only state is recorded at transaction 2; a probe at 1 provably
  // observes the empty state.
  const DiagnosticSink sink = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "modify_state(emp, (x: int) {(1)});\n"
      "show(rho(emp, 1))");
  EXPECT_EQ(sink.error_count(), 0u);
  const Diagnostic* d = FindCode(sink, kWarnRollbackProvablyEmpty);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin, (SourcePos{3, 6}));
  EXPECT_EQ(d->message,
            "rollback to transaction 1 provably observes the empty state: "
            "relation 'emp' records no state at or before that transaction");
  // A probe that observes a state does not warn, and ρ(I, ∞) never does.
  const DiagnosticSink quiet = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "modify_state(emp, (x: int) {(1)});\n"
      "show(rho(emp, 2));\n"
      "show(rho(emp, inf))");
  EXPECT_EQ(FindCode(quiet, kWarnRollbackProvablyEmpty), nullptr);
}

TEST(CheckAbsint, RollbackProvablyEmptyW006Historical) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(t, temporal, (x: int));\n"
      "modify_state(t, (x: int) {(1) @ [0, 5)});\n"
      "show(hrho(t, 1))");
  EXPECT_EQ(sink.error_count(), 0u);
  const Diagnostic* d = FindCode(sink, kWarnRollbackProvablyEmpty);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin, (SourcePos{3, 6}));
}

TEST(CheckAbsint, RollbackSchemaChangedW007) {
  // The probed state (txn 2) was recorded under (x: int); the current
  // scheme is (x: int, y: int): surrounding operators type against the
  // latter, so the observation is schema-incompatible.
  const DiagnosticSink sink = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "modify_state(emp, (x: int) {(1)});\n"
      "modify_schema(emp, (x: int, y: int));\n"
      "show(rho(emp, 2))");
  EXPECT_EQ(sink.error_count(), 0u);
  const Diagnostic* d = FindCode(sink, kWarnRollbackSchemaChanged);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin, (SourcePos{4, 6}));
  EXPECT_EQ(d->message,
            "rollback to transaction 2 observes scheme (x: int), but "
            "surrounding operators are typed against the current scheme "
            "(x: int, y: int)");
  // After the scheme change a probe at the new epoch is fine.
  const DiagnosticSink quiet = CheckSource(
      "define_relation(emp, rollback, (x: int));\n"
      "modify_state(emp, (x: int) {(1)});\n"
      "modify_schema(emp, (x: int, y: int));\n"
      "modify_state(emp, (x: int, y: int) {(1, 2)});\n"
      "show(rho(emp, 4))");
  EXPECT_EQ(FindCode(quiet, kWarnRollbackSchemaChanged), nullptr);
}

TEST(CheckAbsint, DeadModifyStateW008) {
  // Statement 2's write is overwritten by statement 3 before any
  // expression reads it — snapshot relations keep no history, so it is
  // dead. The warning anchors at the dead write.
  const DiagnosticSink sink = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, (x: int) {(1)});\n"
      "modify_state(s, (x: int) {(2)});\n"
      "show(rho(s, inf))");
  EXPECT_EQ(sink.error_count(), 0u);
  const Diagnostic* d = FindCode(sink, kWarnDeadModifyState);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin, (SourcePos{2, 1}));
  EXPECT_EQ(d->message,
            "state written to 's' here is overwritten by statement 3 before "
            "any expression reads it");
}

TEST(CheckAbsint, DeadModifyStateW008RespectsReadsAndHistory) {
  // An intervening read keeps the first write alive.
  const DiagnosticSink read = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, (x: int) {(1)});\n"
      "show(rho(s, inf));\n"
      "modify_state(s, (x: int) {(2)});\n"
      "show(rho(s, inf))");
  EXPECT_EQ(FindCode(read, kWarnDeadModifyState), nullptr);
  // Rollback/temporal relations retain every state: never dead.
  const DiagnosticSink retained = CheckSource(
      "define_relation(r, rollback, (x: int));\n"
      "modify_state(r, (x: int) {(1)});\n"
      "modify_state(r, (x: int) {(2)});\n"
      "show(rho(r, 2))");
  EXPECT_EQ(FindCode(retained, kWarnDeadModifyState), nullptr);
  // A self-referencing overwrite reads the previous state first.
  const DiagnosticSink self = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, (x: int) {(1)});\n"
      "modify_state(s, rho(s, inf) union (x: int) {(2)});\n"
      "show(rho(s, inf))");
  EXPECT_EQ(FindCode(self, kWarnDeadModifyState), nullptr);
}

TEST(CheckAbsint, DeadModifyStateW008OnDelete) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, (x: int) {(1)});\n"
      "delete_relation(s)");
  EXPECT_EQ(sink.error_count(), 0u);
  const Diagnostic* d = FindCode(sink, kWarnDeadModifyState);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin, (SourcePos{2, 1}));
  EXPECT_EQ(d->message,
            "state written to 's' here is deleted by statement 3 before any "
            "expression reads it");
}

TEST(CheckAbsint, ConstantFoldableW009) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, select[x > 1]((x: int) {(1), (2)}));\n"
      "show(rho(s, inf))");
  EXPECT_EQ(sink.error_count(), 0u);
  const Diagnostic* d = FindCode(sink, kWarnConstantFoldable);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.begin.line, 2u);
  EXPECT_EQ(d->message,
            "expression references no relation; its value is a compile-time "
            "constant");
  // Plain constant literals are already constants: no warning.
  const DiagnosticSink quiet = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, (x: int) {(1)});\n"
      "show(rho(s, inf))");
  EXPECT_EQ(FindCode(quiet, kWarnConstantFoldable), nullptr);
}

TEST(CheckAbsint, CleanTemporalProgramStaysClean) {
  const DiagnosticSink sink = CheckSource(
      "define_relation(t, temporal, (x: int));\n"
      "modify_state(t, (x: int) {(1) @ [0, 5)});\n"
      "modify_state(t, hrho(t, inf) union (x: int) {(2) @ [5, 9)});\n"
      "show(delta[isempty((valid minus [0, 5))); valid](hrho(t, inf)))");
  EXPECT_EQ(sink.error_count(), 0u);
  EXPECT_EQ(sink.warning_count(), 0u);
}

TEST(CheckAbsint, GoldenHumanRenderingWithSpans) {
  // Pins the span-accurate human rendering of the whole-program warnings.
  const DiagnosticSink sink = CheckSource(
      "define_relation(s, snapshot, (x: int));\n"
      "modify_state(s, select[x > 1]((x: int) {(7)}));\n"
      "modify_state(s, (x: int) {(2)});\n"
      "show(rho(s, inf))");
  EXPECT_EQ(FormatDiagnostics(sink.diagnostics(), "abs.ttra"),
            "abs.ttra:2:17: warning[TTRA-W009]: expression references no "
            "relation; its value is a compile-time constant\n"
            "abs.ttra:2:1: warning[TTRA-W008]: state written to 's' here is "
            "overwritten by statement 3 before any expression reads it\n"
            "abs.ttra: 0 error(s), 2 warning(s)\n");
}

// --- Collecting behavior ----------------------------------------------------

TEST(CheckCollects, BothOperandsOfABinaryError) {
  const DiagnosticSink sink = CheckSource("show(rho(a, inf) union rho(b, inf))");
  // Both undefined operands are reported, not just the left one.
  EXPECT_EQ(sink.error_count(), 2u);
}

TEST(CheckCollects, EveryStatementIsChecked) {
  const DiagnosticSink sink = CheckSource(
      "delete_relation(a);\n"
      "delete_relation(b);\n"
      "delete_relation(c)");
  EXPECT_EQ(sink.error_count(), 3u);
}

TEST(CheckCollects, AnalyzeProgramStillReturnsFirstError) {
  auto program = ParseProgram(
      "delete_relation(a);\n"
      "delete_relation(b)");
  ASSERT_TRUE(program.ok());
  const Status status = AnalyzeProgram(*program, Catalog());
  EXPECT_EQ(status.code(), ErrorCode::kUnknownIdentifier);
  EXPECT_EQ(status.message(), "delete_relation of undefined relation: a");
}

// --- Static/runtime parity --------------------------------------------------

/// The analyzer and the evaluator must agree: a program the static checker
/// rejects with code X also fails execution with code X (on a database with
/// the same catalog), and a clean program executes.
void ExpectParity(std::string_view setup, std::string_view offending,
                  ErrorCode code) {
  auto db = EvalSentence(setup);
  ASSERT_TRUE(db.ok()) << db.status();

  auto program = ParseProgram(offending);
  ASSERT_TRUE(program.ok()) << program.status();
  const Status analyzed = AnalyzeProgram(*program, Catalog(*db));
  EXPECT_EQ(analyzed.code(), code) << analyzed;

  const Status executed = ExecProgram(*program, *db);
  EXPECT_EQ(executed.code(), code) << executed;
}

TEST(ParityTest, UndefinedRelation) {
  ExpectParity("define_relation(emp, rollback, (x: int))",
               "show(rho(ghost, inf))", ErrorCode::kUnknownIdentifier);
}

TEST(ParityTest, SchemaMismatch) {
  ExpectParity("define_relation(emp, rollback, (x: int))",
               "modify_state(emp, (y: int) {(1)})",
               ErrorCode::kSchemaMismatch);
}

TEST(ParityTest, KindMismatch) {
  ExpectParity(
      "define_relation(emp, rollback, (x: int))",
      "modify_state(emp, historical (x: int) {(1) @ [0, 5)})",
      ErrorCode::kTypeMismatch);
}

TEST(ParityTest, MixedKindUnion) {
  ExpectParity("define_relation(emp, rollback, (x: int));"
               "define_relation(hist, temporal, (x: int))",
               "show(rho(emp, inf) union hrho(hist, inf))",
               ErrorCode::kTypeMismatch);
}

TEST(ParityTest, NonDisjointProduct) {
  ExpectParity("define_relation(a, snapshot, (x: int));"
               "define_relation(b, snapshot, (x: int))",
               "show(rho(a, inf) times rho(b, inf))",
               ErrorCode::kSchemaMismatch);
}

TEST(ParityTest, InvalidRollbackKind) {
  ExpectParity("define_relation(emp, snapshot, (x: int))",
               "show(rho(emp, 3))", ErrorCode::kInvalidRollback);
}

// --- Runtime spans ----------------------------------------------------------

TEST(RuntimeSpanTest, ExecutionErrorsCarryPositions) {
  Database db;
  const Status status = ttra::lang::Run(
      "define_relation(emp, rollback, (x: int));\n"
      "show(rho(emp, inf) union\n"
      "     hrho(emp, inf))",
      db);
  ASSERT_FALSE(status.ok());
  // The innermost failing construct is the hrho on line 3.
  EXPECT_EQ(status.message().substr(0, 5), "3:6: ");
  EXPECT_TRUE(StatusHasSpan(status));
}

TEST(RuntimeSpanTest, HandBuiltTreesStayPositionFree) {
  Database db;
  const Status status =
      ExecStmt(ShowStmt{Expr::Rollback("ghost", std::nullopt, false)}, db);
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(StatusHasSpan(status));
  EXPECT_EQ(status.message(), "rollback of undefined relation: ghost");
}

}  // namespace
}  // namespace ttra::lang
