#include <gtest/gtest.h>

#include "lang/analyzer.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "lang/printer.h"

namespace ttra::lang {
namespace {

Database MustRun(std::string_view source) {
  auto db = EvalSentence(source);
  EXPECT_TRUE(db.ok()) << source << " → " << db.status();
  return db.ok() ? *std::move(db) : Database();
}

SnapshotState Snap(const StateValue& v) {
  EXPECT_TRUE(std::holds_alternative<SnapshotState>(v));
  return std::get<SnapshotState>(v);
}

// --- The paper's running machinery end to end -----------------------------------

TEST(EvaluatorTest, DefineModifyRollback) {
  Database db = MustRun(R"(
    define_relation(emp, rollback, (name: string, salary: int));
    modify_state(emp, (name: string, salary: int) {("ed", 100)});
    modify_state(emp, rho(emp, inf) union
                      (name: string, salary: int) {("rick", 200)});
    modify_state(emp, select[name != "ed"](rho(emp, inf)));
  )");
  EXPECT_EQ(db.transaction_number(), 4u);
  // Current state: only rick.
  auto current = db.Rollback("emp");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->size(), 1u);
  // As of txn 3: both.
  EXPECT_EQ(db.Rollback("emp", 3)->size(), 2u);
  // As of txn 2: just ed.
  EXPECT_EQ(db.Rollback("emp", 2)->size(), 1u);
  EXPECT_TRUE(
      db.Rollback("emp", 2)->Contains(
          Tuple{Value::String("ed"), Value::Int(100)}));
}

TEST(EvaluatorTest, ExpressionEvaluationIsSideEffectFree) {
  Database db = MustRun(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
  )");
  const TransactionNumber before = db.transaction_number();
  auto expr = ParseExpr("select[n > 0](rho(r, inf) union (n: int) {(9)})");
  ASSERT_TRUE(expr.ok());
  auto value = EvalExpr(*expr, db);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(Snap(*value).size(), 2u);
  // E⟦·⟧ never changes the database.
  EXPECT_EQ(db.transaction_number(), before);
  EXPECT_EQ(db.Rollback("r")->size(), 1u);
}

TEST(EvaluatorTest, ShowCollectsOutputs) {
  Database db;
  std::vector<StateValue> outputs;
  ASSERT_TRUE(::ttra::lang::Run(R"(
    define_relation(r, snapshot, (n: int));
    modify_state(r, (n: int) {(1), (2), (3)});
    show(select[n >= 2](rho(r, inf)));
    show(project[n](rho(r, inf)));
  )", db, &outputs).ok());
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(Snap(outputs[0]).size(), 2u);
  EXPECT_EQ(Snap(outputs[1]).size(), 3u);
}

TEST(EvaluatorTest, HistoricalAndTemporalFlow) {
  Database db = MustRun(R"(
    define_relation(hist, temporal, (name: string));
    modify_state(hist, (name: string) {("ed") @ [0, 10)});
    modify_state(hist, hrho(hist, inf) union
                       (name: string) {("rick") @ [5, 15)});
  )");
  auto current = db.RollbackHistorical("hist");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->size(), 2u);
  auto past = db.RollbackHistorical("hist", 2);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past->size(), 1u);
}

TEST(EvaluatorTest, DeltaThroughTheLanguage) {
  Database db = MustRun(R"(
    define_relation(t, temporal, (n: int));
    modify_state(t, (n: int) {(1) @ [0, 10), (2) @ [20, 30)});
  )");
  std::vector<StateValue> outputs;
  ASSERT_TRUE(::ttra::lang::Run(
      "show(delta[overlaps(valid, [0, 15)); valid intersect [0, 15)]"
      "(hrho(t, inf)));",
      db, &outputs).ok());
  ASSERT_EQ(outputs.size(), 1u);
  const auto& state = std::get<HistoricalState>(outputs[0]);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_EQ(state.ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(0, 10));
}

TEST(EvaluatorTest, ExtendComputesValues) {
  Database db = MustRun(R"(
    define_relation(emp, snapshot, (name: string, salary: int));
    modify_state(emp, (name: string, salary: int) {("ed", 100)});
  )");
  std::vector<StateValue> outputs;
  ASSERT_TRUE(::ttra::lang::Run("show(extend[salary = salary + 50, bonus = salary / 10]"
                  "(rho(emp, inf)));",
                  db, &outputs).ok());
  const SnapshotState state = Snap(outputs[0]);
  ASSERT_EQ(state.size(), 1u);
  // Definitions all read the *original* tuple: bonus = 100/10, not 150/10.
  EXPECT_EQ(state.tuples()[0],
            (Tuple{Value::String("ed"), Value::Int(150), Value::Int(10)}));
}

TEST(EvaluatorTest, JoinAndTimesThroughLanguage) {
  Database db = MustRun(R"(
    define_relation(dept, snapshot, (dept: string, floor: int));
    define_relation(emp, snapshot, (name: string, dept: string));
    modify_state(dept, (dept: string, floor: int) {("cs", 3)});
    modify_state(emp, (name: string, dept: string)
                      {("ed", "cs"), ("al", "ee")});
  )");
  std::vector<StateValue> outputs;
  ASSERT_TRUE(
      ::ttra::lang::Run("show(rho(emp, inf) join rho(dept, inf));", db, &outputs).ok());
  EXPECT_EQ(Snap(outputs[0]).size(), 1u);
}

// --- Error paths (the companion TR's invalid expressions) ------------------------

TEST(EvaluatorTest, ErrorsLeaveDatabaseUntouchedStrict) {
  Database db = MustRun("define_relation(r, rollback, (n: int));");
  const TransactionNumber before = db.transaction_number();
  struct Case {
    const char* source;
    ErrorCode code;
  };
  const Case cases[] = {
      {"modify_state(ghost, (n: int) {});", ErrorCode::kUnknownIdentifier},
      {"define_relation(r, snapshot, (n: int));", ErrorCode::kAlreadyDefined},
      {"show(rho(ghost, inf));", ErrorCode::kUnknownIdentifier},
      {"show(hrho(r, inf));", ErrorCode::kInvalidRollback},
      {"show(select[zzz = 1](rho(r, inf)));", ErrorCode::kSchemaMismatch},
      {"show(select[n = \"s\"](rho(r, inf)));", ErrorCode::kTypeMismatch},
      {"show(project[ghost](rho(r, inf)));", ErrorCode::kSchemaMismatch},
      {"show(rho(r, inf) union (m: int) {});", ErrorCode::kSchemaMismatch},
      {"show(rho(r, inf) union historical (n: int) {});",
       ErrorCode::kTypeMismatch},
      {"modify_state(r, historical (n: int) {});", ErrorCode::kTypeMismatch},
      {"show(delta[true; valid](rho(r, inf)));", ErrorCode::kTypeMismatch},
      {"delete_relation(ghost);", ErrorCode::kUnknownIdentifier},
  };
  for (const Case& c : cases) {
    Status status = ::ttra::lang::Run(c.source, db);
    EXPECT_EQ(status.code(), c.code) << c.source << " → " << status;
    EXPECT_EQ(db.transaction_number(), before) << c.source;
  }
}

TEST(EvaluatorTest, NonStrictModeMatchesPaperElseBranches) {
  // With strict=false, the failing middle command is a no-op and the rest
  // of the sentence still executes — exactly C⟦C1, C2⟧ of the paper.
  Database db;
  ExecOptions lax{.strict = false};
  ASSERT_TRUE(::ttra::lang::Run(R"(
    define_relation(r, rollback, (n: int));
    modify_state(ghost, (n: int) {});
    modify_state(r, (n: int) {(7)});
  )", db, nullptr, lax).ok());
  EXPECT_EQ(db.transaction_number(), 2u);
  EXPECT_EQ(db.Rollback("r")->size(), 1u);
}

TEST(EvaluatorTest, RollbackToPastOnSnapshotRelationFails) {
  Database db = MustRun(R"(
    define_relation(s, snapshot, (n: int));
    modify_state(s, (n: int) {(1)});
  )");
  Status status = ::ttra::lang::Run("show(rho(s, 1));", db);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidRollback);
}

TEST(EvaluatorTest, DivisionByZeroSurfacesInExtend) {
  Database db = MustRun(R"(
    define_relation(r, snapshot, (n: int));
    modify_state(r, (n: int) {(1)});
  )");
  Status status = ::ttra::lang::Run("show(extend[bad = n / 0](rho(r, inf)));", db);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

// --- Scheme evolution through the language ---------------------------------------

TEST(EvaluatorTest, SchemeEvolution) {
  Database db = MustRun(R"(
    define_relation(emp, rollback, (name: string));
    modify_state(emp, (name: string) {("ed")});
    modify_schema(emp, (name: string, dept: string));
    modify_state(emp, (name: string, dept: string) {("ed", "cs")});
  )");
  EXPECT_EQ(db.Rollback("emp", 2)->schema().ToString(), "(name: string)");
  EXPECT_EQ(db.Rollback("emp")->schema().ToString(),
            "(name: string, dept: string)");
}

// --- Analyzer ----------------------------------------------------------------------

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MustRun(R"(
      define_relation(emp, rollback, (name: string, salary: int));
      define_relation(hist, temporal, (name: string));
      define_relation(s, snapshot, (n: int));
    )");
    catalog_ = Catalog(db_);
  }

  Result<ExprType> AnalyzeSource(std::string_view source) {
    auto expr = ParseExpr(source);
    if (!expr.ok()) return expr.status();
    return Analyze(*expr, catalog_);
  }

  Database db_;
  Catalog catalog_;
};

TEST_F(AnalyzerTest, TypesRollbackExpressions) {
  auto t = AnalyzeSource("rho(emp, inf)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->kind, StateKind::kSnapshot);
  EXPECT_EQ(t->schema.ToString(), "(name: string, salary: int)");

  auto h = AnalyzeSource("hrho(hist, 4)");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->kind, StateKind::kHistorical);
}

TEST_F(AnalyzerTest, ResolvesPolymorphicOperators) {
  EXPECT_TRUE(AnalyzeSource(
                  "hrho(hist, inf) union historical (name: string) {}")
                  .ok());
  auto bad = AnalyzeSource("rho(emp, inf) union hrho(hist, inf)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kTypeMismatch);
}

TEST_F(AnalyzerTest, ChecksRollbackTypeRules) {
  EXPECT_EQ(AnalyzeSource("rho(hist, inf)").status().code(),
            ErrorCode::kInvalidRollback);
  EXPECT_EQ(AnalyzeSource("hrho(emp, inf)").status().code(),
            ErrorCode::kInvalidRollback);
  EXPECT_EQ(AnalyzeSource("rho(s, 3)").status().code(),
            ErrorCode::kInvalidRollback);
  EXPECT_TRUE(AnalyzeSource("rho(s, inf)").ok());
  EXPECT_EQ(AnalyzeSource("rho(ghost, inf)").status().code(),
            ErrorCode::kUnknownIdentifier);
}

TEST_F(AnalyzerTest, DerivesSchemas) {
  auto t = AnalyzeSource("project[salary](rho(emp, inf))");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema.ToString(), "(salary: int)");

  auto x = AnalyzeSource("rho(s, inf) times rename[n -> m](rho(s, inf))");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->schema.ToString(), "(n: int, m: int)");

  auto e = AnalyzeSource("extend[d = salary * 2](rho(emp, inf))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->schema.ToString(), "(name: string, salary: int, d: int)");
}

TEST_F(AnalyzerTest, CatchesStaticErrors) {
  EXPECT_EQ(AnalyzeSource("select[ghost = 1](rho(emp, inf))").status().code(),
            ErrorCode::kSchemaMismatch);
  EXPECT_EQ(AnalyzeSource("rho(s, inf) times rho(s, inf)").status().code(),
            ErrorCode::kSchemaMismatch);  // duplicate attribute n
  EXPECT_EQ(AnalyzeSource("delta[true; valid](rho(emp, inf))").status().code(),
            ErrorCode::kTypeMismatch);
  EXPECT_EQ(
      AnalyzeSource("extend[x = name + 1](rho(emp, inf))").status().code(),
      ErrorCode::kTypeMismatch);
}

TEST_F(AnalyzerTest, AnalyzeProgramThreadsCatalog) {
  auto program = ParseProgram(R"(
    define_relation(fresh, rollback, (x: int));
    modify_state(fresh, (x: int) {(1)});
    show(rho(fresh, inf));
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(AnalyzeProgram(*program, catalog_).ok());

  auto bad = ParseProgram(R"(
    delete_relation(emp);
    show(rho(emp, inf));
  )");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(AnalyzeProgram(*bad, catalog_).code(),
            ErrorCode::kUnknownIdentifier);
}

TEST_F(AnalyzerTest, ModifyStateKindChecked) {
  auto program = ParseProgram(
      "modify_state(hist, rho(emp, inf) times (x: int) {});");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(AnalyzeProgram(*program, catalog_).code(),
            ErrorCode::kTypeMismatch);
  auto mismatched = ParseProgram("modify_state(s, (m: int) {});");
  ASSERT_TRUE(mismatched.ok());
  EXPECT_EQ(AnalyzeProgram(*mismatched, catalog_).code(),
            ErrorCode::kSchemaMismatch);
}

// --- Analyzer ↔ evaluator agreement: if analysis passes, evaluation's ------
// --- schema matches the static one. -----------------------------------------

TEST_F(AnalyzerTest, StaticTypesMatchRuntime) {
  const char* sources[] = {
      "rho(emp, inf)",
      "project[name](rho(emp, inf))",
      "select[salary > 10](rho(emp, inf))",
      "rho(s, inf) times rename[n -> m](rho(s, inf))",
      "extend[d = salary * 2, tag = name + \"!\"](rho(emp, inf))",
      "hrho(hist, inf) union historical (name: string) {}",
      "delta[overlaps(valid, [0, 5)); valid](hrho(hist, inf))",
  };
  for (const char* source : sources) {
    auto expr = ParseExpr(source);
    ASSERT_TRUE(expr.ok()) << source;
    auto static_type = Analyze(*expr, catalog_);
    ASSERT_TRUE(static_type.ok()) << source;
    auto value = EvalExpr(*expr, db_);
    ASSERT_TRUE(value.ok()) << source;
    if (std::holds_alternative<SnapshotState>(*value)) {
      EXPECT_EQ(static_type->kind, StateKind::kSnapshot) << source;
      EXPECT_EQ(std::get<SnapshotState>(*value).schema(),
                static_type->schema)
          << source;
    } else {
      EXPECT_EQ(static_type->kind, StateKind::kHistorical) << source;
      EXPECT_EQ(std::get<HistoricalState>(*value).schema(),
                static_type->schema)
          << source;
    }
  }
}

// --- Printer ---------------------------------------------------------------------

TEST(PrinterTest, FormatsSnapshotTable) {
  Database db = MustRun(R"(
    define_relation(emp, snapshot, (name: string, salary: int));
    modify_state(emp, (name: string, salary: int) {("ed", 100)});
  )");
  const std::string table = FormatTable(*db.Rollback("emp"));
  EXPECT_NE(table.find("| name"), std::string::npos);
  EXPECT_NE(table.find("\"ed\""), std::string::npos);
  EXPECT_NE(table.find("1 tuple(s)"), std::string::npos);
}

TEST(PrinterTest, FormatsHistoricalTableWithValidColumn) {
  Database db = MustRun(R"(
    define_relation(t, temporal, (n: int));
    modify_state(t, (n: int) {(1) @ [0, 5)});
  )");
  const std::string table = FormatTable(*db.RollbackHistorical("t"));
  EXPECT_NE(table.find("valid"), std::string::npos);
  EXPECT_NE(table.find("[0, 5)"), std::string::npos);
}

TEST(PrinterTest, FormatExprTreeShapes) {
  auto expr = ParseExpr(
      "select[a > 1](rho(l, inf) union project[a](rho(r, 3)))");
  ASSERT_TRUE(expr.ok());
  const std::string tree = FormatExprTree(*expr);
  EXPECT_EQ(tree,
            "select[a > 1]\n"
            "└─ union\n"
            "   ├─ rho(l, inf)\n"
            "   └─ project[a]\n"
            "      └─ rho(r, 3)\n");
}

TEST(PrinterTest, FormatExprTreeConstAndSummarize) {
  auto expr = ParseExpr(
      "summarize[d; n = count]((d: string) {(\"x\"), (\"y\")})");
  ASSERT_TRUE(expr.ok());
  const std::string tree = FormatExprTree(*expr);
  EXPECT_NE(tree.find("summarize[d; n = count]"), std::string::npos);
  EXPECT_NE(tree.find("const (d: string) {2 tuples}"), std::string::npos);
}

TEST(ExprTest, RelationNamesCollectsRhoTargets) {
  auto expr = ParseExpr(
      "select[a = 1](rho(x, inf) union (rho(y, 2) minus rho(z, inf)))");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->RelationNames(),
            (std::set<std::string>{"x", "y", "z"}));
  auto constant = ParseExpr("(n: int) {}");
  ASSERT_TRUE(constant.ok());
  EXPECT_TRUE(constant->RelationNames().empty());
}

TEST(PrinterTest, DescribeDatabaseListsRelations) {
  Database db = MustRun(R"(
    define_relation(a, snapshot, (n: int));
    define_relation(b, temporal, (n: int));
  )");
  const std::string description = DescribeDatabase(db);
  EXPECT_NE(description.find("a : snapshot"), std::string::npos);
  EXPECT_NE(description.find("b : temporal"), std::string::npos);
  EXPECT_NE(description.find("transaction 2"), std::string::npos);
}

}  // namespace
}  // namespace ttra::lang
