#include <gtest/gtest.h>

#include "lang/ast.h"
#include "lang/parser.h"
#include "lang/token.h"

namespace ttra::lang {
namespace {

// --- Lexer --------------------------------------------------------------------

std::vector<Token> Lex(std::string_view source) {
  auto tokens = Tokenize(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("emp select Select");
  ASSERT_EQ(tokens.size(), 4u);  // + end
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "emp");
  EXPECT_EQ(tokens[1].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[1].text, "select");
  // Keywords are case-sensitive; "Select" is an identifier.
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[3].kind, TokenKind::kEnd);
}

TEST(LexerTest, NumericLiterals) {
  auto tokens = Lex("42 3.5 1e3 2E-2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.02);
  // A bare '.' is not part of any token.
  EXPECT_FALSE(Tokenize("7.").ok());
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex(R"("hello" "a\"b" "line\nbreak")");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "line\nbreak");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, TimeLiteralsAndAtSign) {
  auto tokens = Lex("@123 @-5 @ [");
  EXPECT_EQ(tokens[0].kind, TokenKind::kTimeLiteral);
  EXPECT_EQ(tokens[0].int_value, 123);
  EXPECT_EQ(tokens[1].kind, TokenKind::kTimeLiteral);
  EXPECT_EQ(tokens[1].int_value, -5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kAtSign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kLBracket);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex("( ) { } [ ] , ; : -> = != < <= > >= + - * /");
  const std::vector<TokenKind> expected = {
      TokenKind::kLParen,   TokenKind::kRParen,    TokenKind::kLBrace,
      TokenKind::kRBrace,   TokenKind::kLBracket,  TokenKind::kRBracket,
      TokenKind::kComma,    TokenKind::kSemicolon, TokenKind::kColon,
      TokenKind::kArrow,    TokenKind::kEq,        TokenKind::kNe,
      TokenKind::kLt,       TokenKind::kLe,        TokenKind::kGt,
      TokenKind::kGe,       TokenKind::kPlus,      TokenKind::kMinusSign,
      TokenKind::kStar,     TokenKind::kSlash,     TokenKind::kEnd,
  };
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, CommentsAndPositions) {
  auto tokens = Lex("a -- comment to end of line\n  b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());  // '!' requires '='
}

// --- Expression parsing ----------------------------------------------------------

Expr MustParseExpr(std::string_view source) {
  auto e = ParseExpr(source);
  EXPECT_TRUE(e.ok()) << source << " → " << e.status();
  return e.ok() ? *e : Expr();
}

TEST(ParserTest, SnapshotConstant) {
  Expr e = MustParseExpr(R"((id: int, name: string) {(1, "a"), (2, "b")})");
  ASSERT_EQ(e.kind(), Expr::Kind::kConst);
  const auto& state = std::get<SnapshotState>(e.constant());
  EXPECT_EQ(state.size(), 2u);
  EXPECT_EQ(state.schema().ToString(), "(id: int, name: string)");
}

TEST(ParserTest, EmptyConstant) {
  Expr e = MustParseExpr("(n: int) {}");
  EXPECT_TRUE(std::get<SnapshotState>(e.constant()).empty());
  Expr empty_schema = MustParseExpr("() {}");
  EXPECT_TRUE(std::get<SnapshotState>(empty_schema.constant()).schema().empty());
}

TEST(ParserTest, HistoricalConstant) {
  Expr e = MustParseExpr(
      "(n: int) {(1) @ [0, 5) u [7, inf), (2) @ [3, 4)}");
  ASSERT_EQ(e.kind(), Expr::Kind::kConst);
  const auto& state = std::get<HistoricalState>(e.constant());
  EXPECT_EQ(state.size(), 2u);
  EXPECT_EQ(state.ValidTimeOf(Tuple{Value::Int(1)}).ToString(),
            "[0, 5) u [7, inf)");
}

TEST(ParserTest, TaggedHistoricalConstantMayBeEmpty) {
  Expr e = MustParseExpr("historical (n: int) {}");
  EXPECT_TRUE(std::holds_alternative<HistoricalState>(e.constant()));
  Expr s = MustParseExpr("snapshot (n: int) {}");
  EXPECT_TRUE(std::holds_alternative<SnapshotState>(s.constant()));
}

TEST(ParserTest, MixedConstantFails) {
  EXPECT_FALSE(ParseExpr("(n: int) {(1) @ [0, 2), (2)}").ok());
  EXPECT_FALSE(ParseExpr("(n: int) {(1), (2) @ [0, 2)}").ok());
  EXPECT_FALSE(ParseExpr("snapshot (n: int) {(1) @ [0, 2)}").ok());
}

TEST(ParserTest, LiteralValues) {
  Expr e = MustParseExpr(
      R"((a: int, b: double, c: string, d: bool, e: usertime)
         {(-5, 2.5, "x", true, @9)})");
  const auto& state = std::get<SnapshotState>(e.constant());
  ASSERT_EQ(state.size(), 1u);
  const Tuple& t = state.tuples()[0];
  EXPECT_EQ(t.at(0), Value::Int(-5));
  EXPECT_EQ(t.at(1), Value::Double(2.5));
  EXPECT_EQ(t.at(2), Value::String("x"));
  EXPECT_EQ(t.at(3), Value::Bool(true));
  EXPECT_EQ(t.at(4), Value::Time(9));
}

TEST(ParserTest, BinaryPrecedence) {
  // times binds tighter than minus binds tighter than union.
  Expr e = MustParseExpr("rho(a, inf) union rho(b, inf) minus rho(c, inf)");
  ASSERT_EQ(e.kind(), Expr::Kind::kBinary);
  EXPECT_EQ(e.op(), BinaryOp::kUnion);
  EXPECT_EQ(e.right().op(), BinaryOp::kMinus);
  Expr f = MustParseExpr("rho(a, inf) minus rho(b, inf) times rho(c, inf)");
  EXPECT_EQ(f.op(), BinaryOp::kMinus);
  EXPECT_EQ(f.right().op(), BinaryOp::kTimes);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Expr e = MustParseExpr("(rho(a, inf) union rho(b, inf)) minus rho(c, inf)");
  EXPECT_EQ(e.op(), BinaryOp::kMinus);
  EXPECT_EQ(e.left().op(), BinaryOp::kUnion);
}

TEST(ParserTest, RollbackForms) {
  Expr inf_form = MustParseExpr("rho(emp, inf)");
  EXPECT_EQ(inf_form.kind(), Expr::Kind::kRollback);
  EXPECT_FALSE(inf_form.rollback_txn().has_value());
  EXPECT_FALSE(inf_form.rollback_historical());

  Expr finite = MustParseExpr("rho(emp, 42)");
  ASSERT_TRUE(finite.rollback_txn().has_value());
  EXPECT_EQ(*finite.rollback_txn(), 42u);

  Expr historical = MustParseExpr("hrho(emp, 7)");
  EXPECT_TRUE(historical.rollback_historical());
}

TEST(ParserTest, ProjectSelectRenameExtendDelta) {
  Expr p = MustParseExpr("project[a, b](rho(r, inf))");
  EXPECT_EQ(p.kind(), Expr::Kind::kProject);
  EXPECT_EQ(p.attributes(), (std::vector<std::string>{"a", "b"}));

  Expr s = MustParseExpr(
      "select[a > 5 and not (b = \"x\")](rho(r, inf))");
  EXPECT_EQ(s.kind(), Expr::Kind::kSelect);
  EXPECT_EQ(s.predicate().ToString(), "(a > 5 and not (b = \"x\"))");

  Expr rn = MustParseExpr("rename[a -> b](rho(r, inf))");
  EXPECT_EQ(rn.rename_from(), "a");
  EXPECT_EQ(rn.rename_to(), "b");

  Expr ex = MustParseExpr("extend[total = a + b * 2](rho(r, inf))");
  ASSERT_EQ(ex.definitions().size(), 1u);
  EXPECT_EQ(ex.definitions()[0].second.ToString(), "(a + (b * 2))");

  Expr d = MustParseExpr(
      "delta[overlaps(valid, [0, 10)); valid intersect [0, 10)]"
      "(hrho(t, inf))");
  EXPECT_EQ(d.kind(), Expr::Kind::kDelta);
  EXPECT_EQ(d.temporal_pred().ToString(), "overlaps(valid, [0, 10))");
}

TEST(ParserTest, RhoRejectsNegativeAndGarbageTxn) {
  EXPECT_FALSE(ParseExpr("rho(emp, -3)").ok());
  EXPECT_FALSE(ParseExpr("rho(emp, x)").ok());
  EXPECT_FALSE(ParseExpr("rho(emp)").ok());
}

TEST(ParserTest, ReservedWordsAreNotRelationNames) {
  EXPECT_FALSE(ParseExpr("rho(select, inf)").ok());
}

// --- Statement / program parsing ---------------------------------------------------

TEST(ParserTest, DefineRelationStatement) {
  auto stmt = ParseStmt(
      "define_relation(emp, rollback, (name: string, salary: int))");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = std::get<DefineRelationStmt>(*stmt);
  EXPECT_EQ(s.name, "emp");
  EXPECT_EQ(s.type, RelationType::kRollback);
  EXPECT_EQ(s.schema.ToString(), "(name: string, salary: int)");
}

TEST(ParserTest, ModifyAndShowAndDeleteAndModifySchema) {
  EXPECT_TRUE(ParseStmt("modify_state(emp, rho(emp, inf))").ok());
  EXPECT_TRUE(ParseStmt("show(rho(emp, 3))").ok());
  EXPECT_TRUE(ParseStmt("delete_relation(emp)").ok());
  EXPECT_TRUE(
      ParseStmt("modify_schema(emp, (name: string, dept: string))").ok());
}

TEST(ParserTest, ProgramSequencing) {
  auto program = ParseProgram(
      "define_relation(r, rollback, (n: int));\n"
      "modify_state(r, (n: int) {(1)});\n"
      "show(rho(r, inf));");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->size(), 3u);
  EXPECT_TRUE(std::holds_alternative<DefineRelationStmt>((*program)[0]));
  EXPECT_TRUE(std::holds_alternative<ModifyStateStmt>((*program)[1]));
  EXPECT_TRUE(std::holds_alternative<ShowStmt>((*program)[2]));
}

TEST(ParserTest, EmptyProgramFails) {
  EXPECT_FALSE(ParseProgram("").ok());
  EXPECT_FALSE(ParseProgram("   -- just a comment\n").ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto r = ParseProgram("define_relation(emp, bogus, (n: int))");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  EXPECT_EQ(r.status().code(), ErrorCode::kParseError);
}

// --- Print → parse round-trips -----------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(
    Exprs, RoundTripTest,
    ::testing::Values(
        "(n: int) {(1), (2)}",
        "() {}",
        "historical (n: int) {}",
        "(n: int) {(1) @ [0, 5) u [7, inf)}",
        "rho(emp, inf)",
        "rho(emp, 17)",
        "hrho(hist, inf)",
        "(rho(a, inf) union rho(b, inf))",
        "(rho(a, inf) minus (rho(b, inf) times rho(c, inf)))",
        "project[x, y](rho(r, inf))",
        "select[(x > 5 or not (y = \"s\"))](rho(r, inf))",
        "select[x >= @77](rho(r, inf))",
        "rename[a -> b](rho(r, inf))",
        "extend[t = (a + (b * 2))](rho(r, inf))",
        "extend[half = (a / 2), neg = (0 - a)](rho(r, inf))",
        "delta[contains(valid, [1, 2)); (valid union [10, 20))]"
        "(hrho(t, 5))",
        "delta[(isempty((valid minus [0, 5))) and true); valid]"
        "(hrho(t, inf))"));

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  auto first = ParseExpr(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << " → " << first.status();
  const std::string printed = first->ToString();
  auto second = ParseExpr(printed);
  ASSERT_TRUE(second.ok()) << printed << " → " << second.status();
  EXPECT_EQ(*first, *second) << printed;
  EXPECT_EQ(second->ToString(), printed);
}

TEST(RoundTripTest, StatementsRoundTrip) {
  const char* sources[] = {
      "define_relation(emp, temporal, (name: string))",
      "modify_state(emp, (hrho(emp, inf) union historical (name: string) "
      "{(\"ed\") @ [0, inf)}))",
      "delete_relation(emp)",
      "modify_schema(emp, (name: string, dept: string))",
      "show(select[x = 1](rho(r, inf)))",
  };
  for (const char* source : sources) {
    auto first = ParseStmt(source);
    ASSERT_TRUE(first.ok()) << source << " → " << first.status();
    const std::string printed = StmtToString(*first);
    auto second = ParseStmt(printed);
    ASSERT_TRUE(second.ok()) << printed << " → " << second.status();
    EXPECT_EQ(StmtToString(*second), printed);
  }
}

// --- Source spans -------------------------------------------------------------

TEST(SpanTest, StatementsCoverTheirSource) {
  auto program = ParseProgram(
      "define_relation(emp, rollback, (n: int));\n"
      "show(rho(emp, inf))");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->size(), 2u);
  EXPECT_EQ(StmtSpan((*program)[0]).begin, (SourcePos{1, 1}));
  EXPECT_EQ(StmtSpan((*program)[0]).end, (SourcePos{1, 41}));
  EXPECT_EQ(StmtSpan((*program)[1]).begin, (SourcePos{2, 1}));
  EXPECT_EQ(StmtSpan((*program)[1]).end, (SourcePos{2, 20}));
}

TEST(SpanTest, ExpressionsCarryNestedSpans) {
  auto stmt = ParseStmt("show(rho(a, inf) union rho(b, 7))");
  ASSERT_TRUE(stmt.ok());
  const Expr* expr = StmtExpr(*stmt);
  ASSERT_NE(expr, nullptr);
  ASSERT_EQ(expr->kind(), Expr::Kind::kBinary);
  // The union node spans both operands; each operand points at itself.
  EXPECT_EQ(expr->span().begin, (SourcePos{1, 6}));
  EXPECT_EQ(expr->span().end, (SourcePos{1, 33}));
  EXPECT_EQ(expr->left().span().begin, (SourcePos{1, 6}));
  EXPECT_EQ(expr->left().span().end, (SourcePos{1, 17}));
  EXPECT_EQ(expr->right().span().begin, (SourcePos{1, 24}));
  EXPECT_EQ(expr->right().span().end, (SourcePos{1, 33}));
}

TEST(SpanTest, SpansSurviveMultiLineStatements) {
  auto stmt = ParseStmt(
      "show(project[n](\n"
      "  select[n > 3](rho(r, inf))))");
  ASSERT_TRUE(stmt.ok());
  const Expr* expr = StmtExpr(*stmt);
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->span().begin, (SourcePos{1, 6}));
  EXPECT_EQ(expr->span().end.line, 2u);
  EXPECT_EQ(expr->left().span().begin, (SourcePos{2, 3}));
}

TEST(SpanTest, EqualityAndPrintingIgnoreSpans) {
  auto parsed = ParseStmt("show(rho(emp, inf))");
  ASSERT_TRUE(parsed.ok());
  const Stmt built = ShowStmt{Expr::Rollback("emp", std::nullopt, false)};
  // Same tree modulo spans: equal, and prints identically.
  EXPECT_EQ(*parsed, built);
  EXPECT_EQ(StmtToString(*parsed), StmtToString(built));
  // But the parsed one has positions while the built one does not.
  EXPECT_TRUE(StmtSpan(*parsed).valid());
  EXPECT_FALSE(StmtSpan(built).valid());
  EXPECT_FALSE(StmtExpr(built)->span().valid());
}

TEST(SpanTest, TokensRecordPositionsAndWidths) {
  auto tokens = Lex("rho(emp,\n  42)");
  ASSERT_EQ(tokens.size(), 7u);  // rho ( emp , 42 ) end
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[0].Width(), 3u);
  EXPECT_EQ(tokens[4].line, 2u);
  EXPECT_EQ(tokens[4].column, 3u);
  EXPECT_EQ(tokens[4].Width(), 2u);
}

TEST(SpanTest, TokenizeReportsErrorPosition) {
  size_t line = 0, column = 0;
  auto tokens = Tokenize("rho(emp,\n   ?)", &line, &column);
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(line, 2u);
  EXPECT_EQ(column, 4u);
}

}  // namespace
}  // namespace ttra::lang
