// Negative compile test for the lock-discipline gate.
//
// This file MUST FAIL to compile under
//   clang++ -fsyntax-only -Werror=thread-safety
// because `Deposit` mutates a TTRA_GUARDED_BY member without holding the
// guarding mutex. tools/check.sh --tidy compiles it with clang and asserts
// a non-zero exit: if this file ever compiles cleanly there, the
// annotations have been silently disabled (macro definitions broken, or
// the analysis flag dropped) and the whole thread-safety gate is dead.
//
// It is intentionally NOT part of any CMake target.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ttra {

class Account {
 public:
  // BUG (on purpose): writes balance_ without acquiring mu_. Clang's
  // analysis reports "writing variable 'balance_' requires holding mutex
  // 'mu_' exclusively".
  void Deposit(long amount) { balance_ += amount; }

  long Read() {
    MutexLock lock(mu_);
    return balance_;
  }

 private:
  Mutex mu_;
  long balance_ TTRA_GUARDED_BY(mu_) = 0;
};

}  // namespace ttra
