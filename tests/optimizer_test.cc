#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "lang/parser.h"
#include "optimizer/rewriter.h"
#include "workload/generator.h"

namespace ttra::optimizer {
namespace {

using lang::Catalog;
using lang::EvalExpr;
using lang::Expr;
using lang::ParseExpr;
using lang::StateValue;

// --- Predicate utilities -------------------------------------------------------

Predicate P(std::string_view source) {
  auto p = lang::ParsePredicate(source);
  EXPECT_TRUE(p.ok()) << source;
  return p.ok() ? *p : Predicate();
}

TEST(PredicateSimplifyTest, ConstantPropagation) {
  EXPECT_TRUE(SimplifyPredicate(
                  Predicate::And(P("a = 1"), Predicate::True())) == P("a = 1"));
  EXPECT_TRUE(SimplifyPredicate(Predicate::And(P("a = 1"),
                                               Predicate::False()))
                  .IsFalseLiteral());
  EXPECT_TRUE(SimplifyPredicate(
                  Predicate::Or(P("a = 1"), Predicate::True()))
                  .IsTrueLiteral());
  EXPECT_TRUE(SimplifyPredicate(
                  Predicate::Or(P("a = 1"), Predicate::False())) == P("a = 1"));
}

TEST(PredicateSimplifyTest, DoubleNegation) {
  EXPECT_TRUE(SimplifyPredicate(Predicate::Not(Predicate::Not(P("a = 1")))) ==
              P("a = 1"));
  EXPECT_TRUE(
      SimplifyPredicate(Predicate::Not(Predicate::True())).IsFalseLiteral());
}

TEST(PredicateSimplifyTest, SplitAndRebuildConjuncts) {
  Predicate p = P("a = 1 and b = 2 and c = 3");
  auto conjuncts = SplitConjuncts(p);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_TRUE(AndAll(conjuncts) == p);  // left-assoc rebuild is identical
  EXPECT_TRUE(AndAll({}).IsTrueLiteral());
}

// --- Structural rewrites -------------------------------------------------------

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = lang::EvalSentence(R"(
      define_relation(r, rollback, (a: int, b: string));
      modify_state(r, (a: int, b: string) {(1, "x"), (2, "y"), (3, "x")});
      define_relation(s, rollback, (c: int, d: string));
      modify_state(s, (c: int, d: string) {(1, "p"), (4, "q")});
      define_relation(t, temporal, (n: int));
      modify_state(t, (n: int) {(1) @ [0, 10), (2) @ [5, 25)});
    )");
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = *std::move(db);
    catalog_ = Catalog(db_);
  }

  Expr Opt(std::string_view source, RewriteStats* stats = nullptr) {
    auto expr = ParseExpr(source);
    EXPECT_TRUE(expr.ok()) << source;
    return Optimize(*expr, catalog_, stats);
  }

  Database db_;
  Catalog catalog_;
};

TEST_F(RewriteTest, SelectMerge) {
  Expr e = Opt("select[a > 1](select[b = \"x\"](rho(r, inf)))");
  EXPECT_EQ(e.ToString(),
            "select[(a > 1 and b = \"x\")](rho(r, inf))");
}

TEST_F(RewriteTest, SelectTrueVanishes) {
  EXPECT_EQ(Opt("select[true](rho(r, inf))").ToString(), "rho(r, inf)");
}

TEST_F(RewriteTest, SelectFalseBecomesEmptyConstant) {
  Expr e = Opt("select[false](rho(r, inf))");
  ASSERT_EQ(e.kind(), Expr::Kind::kConst);
  EXPECT_TRUE(std::get<SnapshotState>(e.constant()).empty());
  EXPECT_EQ(std::get<SnapshotState>(e.constant()).schema().ToString(),
            "(a: int, b: string)");
}

TEST_F(RewriteTest, SelectDistributesOverUnionAndMinus) {
  Expr u = Opt("select[a > 1](rho(r, inf) union rho(r, 2))");
  EXPECT_EQ(u.ToString(),
            "(select[a > 1](rho(r, inf)) union select[a > 1](rho(r, 2)))");
  Expr m = Opt("select[a > 1](rho(r, inf) minus rho(r, 2))");
  EXPECT_EQ(m.ToString(),
            "(select[a > 1](rho(r, inf)) minus select[a > 1](rho(r, 2)))");
}

TEST_F(RewriteTest, SelectPushesThroughProductBySide) {
  Expr e = Opt("select[a > 1 and d = \"q\" and a = c]"
               "(rho(r, inf) times rho(s, inf))");
  // a>1 goes left, d="q" goes right, a=c (mixed) stays on top.
  EXPECT_EQ(e.ToString(),
            "select[a = c]((select[a > 1](rho(r, inf)) times "
            "select[d = \"q\"](rho(s, inf))))");
}

TEST_F(RewriteTest, ProjectAbsorbsProject) {
  Expr e = Opt("project[a](project[a, b](rho(r, inf)))");
  EXPECT_EQ(e.ToString(), "project[a](rho(r, inf))");
}

TEST_F(RewriteTest, FullSchemeProjectionVanishes) {
  EXPECT_EQ(Opt("project[a, b](rho(r, inf))").ToString(), "rho(r, inf)");
  // A permutation is NOT the identity — must be preserved.
  EXPECT_EQ(Opt("project[b, a](rho(r, inf))").ToString(),
            "project[b, a](rho(r, inf))");
}

TEST_F(RewriteTest, DeltaIdentityVanishes) {
  EXPECT_EQ(Opt("delta[true; valid](hrho(t, inf))").ToString(),
            "hrho(t, inf)");
  EXPECT_NE(Opt("delta[true; valid intersect [0, 5)](hrho(t, inf))")
                .ToString(),
            "hrho(t, inf)");
}

TEST_F(RewriteTest, RulesFireThroughRollbackOfHistoricalStates) {
  // The same rewrites apply over ρ̂ — the paper's orthogonality claim.
  Expr e = Opt("select[n > 1](select[n < 5](hrho(t, inf)))");
  EXPECT_EQ(e.ToString(), "select[(n > 1 and n < 5)](hrho(t, inf))");
}

TEST_F(RewriteTest, StatsCountApplications) {
  RewriteStats stats;
  Opt("select[true](select[true](rho(r, inf)))", &stats);
  EXPECT_GT(stats.applications, 0);
  EXPECT_GT(stats.passes, 0);
}

TEST_F(RewriteTest, UnknownRelationsAreLeftAlone) {
  Catalog empty;
  auto expr = ParseExpr("select[false](rho(ghost, inf))");
  ASSERT_TRUE(expr.ok());
  Expr e = Optimize(*expr, empty);
  // σ_false folding needs the schema; without a catalog entry the
  // expression is preserved rather than broken.
  EXPECT_EQ(e.ToString(), "select[false](rho(ghost, inf))");
}

// --- Equivalence: every rewrite preserves E⟦·⟧ (experiment E1) -------------------

class RewriteEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST_P(RewriteEquivalenceTest, OptimizedExpressionsEvaluateIdentically) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, schema).ok());
  SnapshotState state = gen.RandomState(schema, 20);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.ModifyState("r", state).ok());
    state = gen.MutateState(state, 0.4);
  }
  Catalog catalog(db);

  std::vector<Expr> bases;
  bases.push_back(Expr::Rollback("r", std::nullopt, false));
  bases.push_back(Expr::Rollback("r", 3, false));
  bases.push_back(Expr::Const(gen.RandomState(schema, 10)));

  for (int trial = 0; trial < 10; ++trial) {
    Expr original = gen.RandomExpr(bases, schema, 4);
    Expr optimized = Optimize(original, catalog);
    auto a = EvalExpr(original, db);
    auto b = EvalExpr(optimized, db);
    ASSERT_TRUE(a.ok()) << original.ToString();
    ASSERT_TRUE(b.ok()) << optimized.ToString();
    EXPECT_TRUE(*a == *b) << "original:  " << original.ToString()
                          << "\noptimized: " << optimized.ToString();
  }
}

TEST_P(RewriteEquivalenceTest, HistoricalExpressionsToo) {
  workload::Generator gen(GetParam() + 5000);
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("t", RelationType::kTemporal, schema).ok());
  HistoricalState state = gen.RandomHistoricalState(schema, 12);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.ModifyState("t", state).ok());
    state = gen.MutateState(state, 0.4);
  }
  Catalog catalog(db);

  std::vector<Expr> bases;
  bases.push_back(Expr::Rollback("t", std::nullopt, true));
  bases.push_back(Expr::Rollback("t", 2, true));

  for (int trial = 0; trial < 8; ++trial) {
    Expr original = gen.RandomExpr(bases, schema, 3);
    Expr optimized = Optimize(original, catalog);
    auto a = EvalExpr(original, db);
    auto b = EvalExpr(optimized, db);
    ASSERT_TRUE(a.ok()) << original.ToString();
    ASSERT_TRUE(b.ok()) << optimized.ToString();
    EXPECT_TRUE(*a == *b) << "original:  " << original.ToString()
                          << "\noptimized: " << optimized.ToString();
  }
}

TEST_P(RewriteEquivalenceTest, ProductPushdownEquivalence) {
  workload::Generator gen(GetParam() + 9000);
  Schema left = *Schema::Make({{"a", ValueType::kInt},
                               {"b", ValueType::kString}});
  Schema right = *Schema::Make({{"c", ValueType::kInt},
                                {"d", ValueType::kString}});
  Database db;
  ASSERT_TRUE(db.DefineRelation("l", RelationType::kRollback, left).ok());
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, right).ok());
  ASSERT_TRUE(db.ModifyState("l", gen.RandomState(left, 15)).ok());
  ASSERT_TRUE(db.ModifyState("r", gen.RandomState(right, 15)).ok());
  Catalog catalog(db);

  Schema product = *left.Concat(right);
  Expr original = Expr::Select(
      gen.RandomPredicate(product, 3),
      Expr::Binary(lang::BinaryOp::kTimes,
                   Expr::Rollback("l", std::nullopt, false),
                   Expr::Rollback("r", std::nullopt, false)));
  Expr optimized = Optimize(original, catalog);
  auto a = EvalExpr(original, db);
  auto b = EvalExpr(optimized, db);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b) << "original:  " << original.ToString()
                        << "\noptimized: " << optimized.ToString();
}

}  // namespace
}  // namespace ttra::optimizer
