// Oracle suites: independent reference implementations checked against
// the real ones on randomized inputs.

#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "lang/parser.h"
#include "workload/generator.h"

namespace ttra {
namespace {

// --- FINDSTATE against a linear-scan reference (experiment E2) -----------------

class FindStateOracleTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FindStateOracleTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST_P(FindStateOracleTest, MatchesLinearScan) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, schema).ok());
  // Record the reference sequence alongside.
  std::vector<std::pair<SnapshotState, TransactionNumber>> reference;
  SnapshotState state = gen.RandomState(schema, 15);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db.ModifyState("r", state).ok());
    reference.emplace_back(state, db.transaction_number());
    state = gen.MutateState(state, 0.3);
  }
  // The paper's FINDSTATE: the state whose txn is the largest <= probe,
  // written as the obvious linear scan.
  auto oracle = [&reference,
                 &schema](TransactionNumber probe) -> SnapshotState {
    const SnapshotState* best = nullptr;
    for (const auto& [s, txn] : reference) {
      if (txn <= probe) best = &s;
    }
    return best != nullptr ? *best : SnapshotState::Empty(schema);
  };
  for (TransactionNumber probe = 0; probe <= db.transaction_number() + 3;
       ++probe) {
    EXPECT_EQ(*db.Rollback("r", probe), oracle(probe)) << "probe " << probe;
  }
}

// --- Derived operators vs their defining expressions, via the language ---------

class DerivedOpOracleTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, DerivedOpOracleTest,
                         ::testing::Range<uint64_t>(0, 10));

Result<lang::StateValue> Eval(const Database& db, std::string_view source) {
  auto expr = lang::ParseExpr(source);
  if (!expr.ok()) return expr.status();
  return lang::EvalExpr(*expr, db);
}

TEST_P(DerivedOpOracleTest, IntersectIsDoubleDifference) {
  workload::Generator gen(GetParam());
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("a", RelationType::kRollback, schema).ok());
  ASSERT_TRUE(db.DefineRelation("b", RelationType::kRollback, schema).ok());
  ASSERT_TRUE(db.ModifyState("a", gen.RandomState(schema, 20)).ok());
  ASSERT_TRUE(db.ModifyState("b", gen.RandomState(schema, 20)).ok());
  auto direct = Eval(db, "rho(a, inf) intersect rho(b, inf)");
  auto derived =
      Eval(db, "rho(a, inf) minus (rho(a, inf) minus rho(b, inf))");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(*direct == *derived);
}

TEST_P(DerivedOpOracleTest, JoinIsSelectedProductWithRenameAndProject) {
  // Natural join over one shared attribute k:
  //   A ⋈ B  =  π[k, x, y](σ[k = k2](A × rename[k→k2](B)))
  workload::Generator gen(GetParam() + 77);
  Schema left = *Schema::Make({{"k", ValueType::kInt},
                               {"x", ValueType::kString}});
  Schema right = *Schema::Make({{"k", ValueType::kInt},
                                {"y", ValueType::kString}});
  Database db;
  ASSERT_TRUE(db.DefineRelation("a", RelationType::kRollback, left).ok());
  ASSERT_TRUE(db.DefineRelation("b", RelationType::kRollback, right).ok());
  workload::GeneratorOptions narrow;
  narrow.value_range = 8;  // force key collisions
  workload::Generator values(GetParam() + 78, narrow);
  ASSERT_TRUE(db.ModifyState("a", values.RandomState(left, 15)).ok());
  ASSERT_TRUE(db.ModifyState("b", values.RandomState(right, 15)).ok());
  auto direct = Eval(db, "rho(a, inf) join rho(b, inf)");
  auto derived = Eval(db,
                      "project[k, x, y](select[k = k2]"
                      "(rho(a, inf) times rename[k -> k2](rho(b, inf))))");
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_TRUE(*direct == *derived);
}

TEST_P(DerivedOpOracleTest, HistoricalIntersectIsDoubleDifference) {
  workload::Generator gen(GetParam() + 200);
  const Schema schema = gen.RandomSchema();
  Database db;
  ASSERT_TRUE(db.DefineRelation("a", RelationType::kTemporal, schema).ok());
  ASSERT_TRUE(db.DefineRelation("b", RelationType::kTemporal, schema).ok());
  ASSERT_TRUE(
      db.ModifyState("a", gen.RandomHistoricalState(schema, 15)).ok());
  ASSERT_TRUE(
      db.ModifyState("b", gen.RandomHistoricalState(schema, 15)).ok());
  auto direct = Eval(db, "hrho(a, inf) intersect hrho(b, inf)");
  auto derived =
      Eval(db, "hrho(a, inf) minus (hrho(a, inf) minus hrho(b, inf))");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(*direct == *derived);
}

// --- The evaluator against a hand-rolled interpreter for a tiny core ----------

TEST_P(DerivedOpOracleTest, SelectProjectAgainstHandInterpreter) {
  workload::Generator gen(GetParam() + 400);
  Schema schema = *Schema::Make({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt}});
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, schema).ok());
  SnapshotState state = gen.RandomState(schema, 30);
  ASSERT_TRUE(db.ModifyState("r", state).ok());
  // Query: project[b](select[a < C](r))
  const int64_t cutoff = gen.rng().UniformInt(0, 100);
  auto via_lang = Eval(db, "project[b](select[a < " +
                               std::to_string(cutoff) + "](rho(r, inf)))");
  ASSERT_TRUE(via_lang.ok());
  // Hand interpreter.
  std::vector<Tuple> expected;
  for (const Tuple& t : state.tuples()) {
    if (t.at(0).AsInt() < cutoff) expected.push_back(Tuple{t.at(1)});
  }
  SnapshotState oracle = *SnapshotState::Make(
      *Schema::Make({{"b", ValueType::kInt}}), std::move(expected));
  EXPECT_EQ(std::get<SnapshotState>(*via_lang), oracle);
}

}  // namespace
}  // namespace ttra
