// The paper's denotational equations, transcribed one by one.
//
// Each test names the equation it checks (section / definition in
// McKenzie & Snodgrass, SIGMOD 1987) and exercises it through the public
// API exactly as written, so the correspondence between the formalism and
// this implementation can be audited test-by-test.

#include <gtest/gtest.h>

#include "historical/hoperators.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "snapshot/operators.h"
#include "workload/generator.h"

namespace ttra {
namespace {

using lang::EvalExpr;
using lang::Expr;
using lang::ParseExpr;
using lang::StateValue;

Schema OneCol() { return *Schema::Make({{"n", ValueType::kInt}}); }

SnapshotState Nums(std::vector<int64_t> values) {
  std::vector<Tuple> tuples;
  for (int64_t v : values) tuples.push_back(Tuple{Value::Int(v)});
  return *SnapshotState::Make(OneCol(), std::move(tuples));
}

SnapshotState EvalSnap(const Database& db, std::string_view source) {
  auto expr = ParseExpr(source);
  EXPECT_TRUE(expr.ok()) << source;
  auto value = EvalExpr(*expr, db);
  EXPECT_TRUE(value.ok()) << source << " → " << value.status();
  return std::get<SnapshotState>(*value);
}

// --- §3.4  E⟦A⟧d ≜ S⟦A⟧ -------------------------------------------------------
// A constant denotes its snapshot state, independent of the database.
TEST(PaperSemantics, E_Constant) {
  Database empty;
  Database populated;
  ASSERT_TRUE(
      populated.DefineRelation("r", RelationType::kRollback, OneCol()).ok());
  const char* a = "(n: int) {(1), (2)}";
  EXPECT_EQ(EvalSnap(empty, a), Nums({1, 2}));
  EXPECT_EQ(EvalSnap(populated, a), Nums({1, 2}));  // d is irrelevant
}

// --- §3.4  E⟦E1 ∪ E2⟧d ≜ E⟦E1⟧d ∪ E⟦E2⟧d  (and −, ×, π, σ) ------------------
// The operators are compositional: the denotation of the whole is the
// operator applied to the denotations of the parts.
TEST(PaperSemantics, E_Compositionality) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, OneCol()).ok());
  ASSERT_TRUE(db.ModifyState("r", Nums({1, 2, 3})).ok());
  // Left side: one expression. Right side: operator over sub-evaluations.
  SnapshotState whole =
      EvalSnap(db, "rho(r, inf) union (n: int) {(9)}");
  SnapshotState parts = *snapshot_ops::Union(EvalSnap(db, "rho(r, inf)"),
                                             EvalSnap(db, "(n: int) {(9)}"));
  EXPECT_EQ(whole, parts);

  SnapshotState sel_whole = EvalSnap(db, "select[n > 1](rho(r, inf))");
  SnapshotState sel_parts = *snapshot_ops::Select(
      EvalSnap(db, "rho(r, inf)"),
      Predicate::AttrCompare("n", CompareOp::kGt, Value::Int(1)));
  EXPECT_EQ(sel_whole, sel_parts);
}

// --- §3.4  E⟦ρ(I, N)⟧d: N = ∞ → FINDSTATE(r, n); else FINDSTATE(r, N⟦N⟧) ------
TEST(PaperSemantics, E_RollbackOperator) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, OneCol()).ok());
  ASSERT_TRUE(db.ModifyState("r", Nums({1})).ok());  // txn 2
  ASSERT_TRUE(db.ModifyState("r", Nums({1, 2})).ok());  // txn 3
  // N = ∞: the state at the database's own transaction number n.
  EXPECT_EQ(EvalSnap(db, "rho(r, inf)"), Nums({1, 2}));
  // Finite N: FINDSTATE interpolation (largest txn <= N).
  EXPECT_EQ(EvalSnap(db, "rho(r, 2)"), Nums({1}));
  EXPECT_EQ(EvalSnap(db, "rho(r, 3)"), Nums({1, 2}));
  // FINDSTATE with no qualifying element → the empty set (§3.3).
  EXPECT_TRUE(EvalSnap(db, "rho(r, 1)").empty());
}

// --- §3.4  expression evaluation "does not change that database" --------------
TEST(PaperSemantics, E_IsSideEffectFree) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, OneCol()).ok());
  ASSERT_TRUE(db.ModifyState("r", Nums({5})).ok());
  const TransactionNumber n_before = db.transaction_number();
  (void)EvalSnap(db, "select[n > 0](rho(r, inf) union rho(r, 2))");
  EXPECT_EQ(db.transaction_number(), n_before);
  EXPECT_EQ(*db.Rollback("r"), Nums({5}));
}

// --- §3.5  C⟦define_relation(I, Y)⟧d -------------------------------------------
// If b(I) = ⊥: bind I to (Y⟦Y⟧, ⟨⟩) and increment n. Else: d unchanged.
TEST(PaperSemantics, C_DefineRelation) {
  Database db;
  EXPECT_EQ(db.transaction_number(), 0u);
  ASSERT_TRUE(
      db.DefineRelation("r", RelationType::kRollback, OneCol()).ok());
  EXPECT_EQ(db.transaction_number(), 1u);           // n+1
  EXPECT_EQ(db.Find("r")->history_length(), 0u);    // empty sequence ⟨⟩
  EXPECT_EQ(db.Find("r")->type(), RelationType::kRollback);
  // else d: the second define leaves everything unchanged.
  Status status = db.DefineRelation("r", RelationType::kSnapshot, OneCol());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(db.transaction_number(), 1u);
  EXPECT_EQ(db.Find("r")->type(), RelationType::kRollback);
}

// --- §3.5  C⟦modify_state(I, E)⟧d, snapshot branch ------------------------------
// The relation becomes (RTYPE(r), ⟨(E⟦E⟧d, n+1)⟩): a single-element
// sequence, replaced on every modification.
TEST(PaperSemantics, C_ModifyState_SnapshotReplaces) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("s", RelationType::kSnapshot, OneCol()).ok());
  ASSERT_TRUE(db.ModifyState("s", Nums({1})).ok());
  ASSERT_TRUE(db.ModifyState("s", Nums({2})).ok());
  EXPECT_EQ(db.Find("s")->history_length(), 1u);  // ⟨(state, txn)⟩
  EXPECT_EQ(db.Find("s")->TxnAt(0), 3u);          // stamped n+1 at commit
  EXPECT_EQ(*db.Rollback("s"), Nums({2}));
}

// --- §3.5  C⟦modify_state(I, E)⟧d, rollback branch ------------------------------
// The new pair (E⟦E⟧d, n+1) is concatenated: RSTATE(r) || (E⟦E⟧d, n+1).
TEST(PaperSemantics, C_ModifyState_RollbackAppends) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("r", RelationType::kRollback, OneCol()).ok());
  ASSERT_TRUE(db.ModifyState("r", Nums({1})).ok());
  ASSERT_TRUE(db.ModifyState("r", Nums({2})).ok());
  ASSERT_EQ(db.Find("r")->history_length(), 2u);
  EXPECT_EQ(db.Find("r")->TxnAt(0), 2u);
  EXPECT_EQ(db.Find("r")->TxnAt(1), 3u);
  // Both states retrievable, unchanged.
  EXPECT_EQ(*db.Rollback("r", 2), Nums({1}));
  EXPECT_EQ(*db.Rollback("r", 3), Nums({2}));
}

// --- §3.5  E inside modify_state is evaluated on the *pre-command* database ----
// modify_state(I, E) stores E⟦E⟧d where d is the database before the
// command; the paper's append/delete/replace encodings depend on this.
TEST(PaperSemantics, C_ModifyState_EvaluatesAgainstOldState) {
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1)});
    modify_state(r, rho(r, inf) union (n: int) {(2)});
  )", db).ok());
  EXPECT_EQ(*db.Rollback("r"), Nums({1, 2}));
}

// --- §3.5  C⟦C1, C2⟧d ≜ C⟦C2⟧(C⟦C1⟧ d) ------------------------------------------
TEST(PaperSemantics, C_Sequencing) {
  // Executing [C1, C2] equals executing C2 against the result of C1.
  auto both = lang::EvalSentence(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(7)});
  )");
  ASSERT_TRUE(both.ok());

  Database staged;
  ASSERT_TRUE(
      lang::Run("define_relation(r, rollback, (n: int));", staged).ok());
  ASSERT_TRUE(
      lang::Run("modify_state(r, (n: int) {(7)});", staged).ok());

  EXPECT_EQ(both->transaction_number(), staged.transaction_number());
  EXPECT_EQ(*both->Rollback("r"), *staged.Rollback("r"));
}

// --- §3.6  P⟦C⟧ ≜ C⟦C⟧(EMPTY, 0) -------------------------------------------------
TEST(PaperSemantics, P_StartsFromEmptyDatabase) {
  // EMPTY maps every identifier to ⊥ and the transaction count is 0.
  Database empty;
  EXPECT_EQ(empty.transaction_number(), 0u);
  EXPECT_EQ(empty.Find("anything"), nullptr);
  // And the sentence evaluation begins there.
  auto db = lang::EvalSentence("define_relation(x, snapshot, (n: int));");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction_number(), 1u);
}

// --- §3.6  strictly increasing transaction-number components --------------------
// "the transaction-number components of a state sequence, while not
// necessarily consecutive, will be nevertheless strictly increasing."
TEST(PaperSemantics, StateSequenceTxnsStrictlyIncrease) {
  Database db;
  ASSERT_TRUE(db.DefineRelation("a", RelationType::kRollback, OneCol()).ok());
  ASSERT_TRUE(db.DefineRelation("b", RelationType::kRollback, OneCol()).ok());
  // Interleave updates so each relation's txns have gaps.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.ModifyState(i % 2 == 0 ? "a" : "b", Nums({i})).ok());
  }
  for (const char* name : {"a", "b"}) {
    const Relation* r = db.Find(name);
    ASSERT_EQ(r->history_length(), 3u);
    EXPECT_LT(r->TxnAt(0), r->TxnAt(1));
    EXPECT_LT(r->TxnAt(1), r->TxnAt(2));
    // Not consecutive: the other relation's commits sit in between.
    EXPECT_GT(r->TxnAt(1) - r->TxnAt(0), 1u);
  }
}

// --- §4  E⟦(Y, A)⟧d: constants carry their state kind ----------------------------
TEST(PaperSemantics, E_TypedConstant) {
  Database db;
  auto snap = ParseExpr("snapshot (n: int) {}");
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(std::holds_alternative<SnapshotState>(
      *EvalExpr(*snap, db)));
  auto hist = ParseExpr("historical (n: int) {}");
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE(std::holds_alternative<HistoricalState>(
      *EvalExpr(*hist, db)));
}

// --- §4  C⟦modify_state⟧ extended: historical ~ snapshot, temporal ~ rollback ----
TEST(PaperSemantics, C_ModifyState_HistoricalAndTemporalBranches) {
  Database db;
  ASSERT_TRUE(
      db.DefineRelation("h", RelationType::kHistorical, OneCol()).ok());
  ASSERT_TRUE(
      db.DefineRelation("t", RelationType::kTemporal, OneCol()).ok());
  auto v1 = HistoricalState::Make(
      OneCol(),
      {HistoricalTuple{Tuple{Value::Int(1)}, TemporalElement::Span(0, 5)}});
  auto v2 = HistoricalState::Make(
      OneCol(),
      {HistoricalTuple{Tuple{Value::Int(1)}, TemporalElement::Span(0, 9)}});
  ASSERT_TRUE(db.ModifyState("h", *v1).ok());
  ASSERT_TRUE(db.ModifyState("t", *v1).ok());
  ASSERT_TRUE(db.ModifyState("h", *v2).ok());
  ASSERT_TRUE(db.ModifyState("t", *v2).ok());
  // historical ~ snapshot: single element, replaced.
  EXPECT_EQ(db.Find("h")->history_length(), 1u);
  // temporal ~ rollback: appended.
  EXPECT_EQ(db.Find("t")->history_length(), 2u);
  // t's states committed at txns 4 and 6 (defines at 1-2, h-updates 3, 5).
  EXPECT_EQ(*db.RollbackHistorical("t", 4), *v1);
  EXPECT_EQ(*db.RollbackHistorical("t", 6), *v2);
}

// --- §4  E⟦ρ̂(I, N)⟧d mirrors E⟦ρ(I, N)⟧d over historical states ------------------
TEST(PaperSemantics, E_HistoricalRollbackOperator) {
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(t, temporal, (n: int));
    modify_state(t, (n: int) {(1) @ [0, 5)});
    modify_state(t, (n: int) {(1) @ [0, 9)});
  )", db).ok());
  auto at2 = db.RollbackHistorical("t", 2);
  auto at3 = db.RollbackHistorical("t", 3);
  auto current = db.RollbackHistorical("t");
  ASSERT_TRUE(at2.ok());
  ASSERT_TRUE(at3.ok());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(at2->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(0, 5));
  EXPECT_EQ(at3->ValidTimeOf(Tuple{Value::Int(1)}),
            TemporalElement::Span(0, 9));
  EXPECT_EQ(*current, *at3);
  // Before the first historical state: the empty set.
  EXPECT_TRUE(db.RollbackHistorical("t", 1)->empty());
}

// --- §3.5  append / delete / replace are all expressible via modify_state -------
// "the modify_state command effectively performs append, delete, and
// replace operations."
TEST(PaperSemantics, C_ModifyState_ExpressesAllUpdateOperations) {
  Database db;
  ASSERT_TRUE(lang::Run(R"(
    define_relation(r, rollback, (n: int));
    modify_state(r, (n: int) {(1), (2), (3)});
    -- append: superset of the previous state
    modify_state(r, rho(r, inf) union (n: int) {(4)});
    -- delete: proper subset of the previous state
    modify_state(r, select[n != 2](rho(r, inf)));
    -- replace: same tuples with different attribute values
    modify_state(r, extend[n = n * 10](rho(r, inf)));
  )", db).ok());
  EXPECT_EQ(*db.Rollback("r", 3), Nums({1, 2, 3, 4}));
  EXPECT_EQ(*db.Rollback("r", 4), Nums({1, 3, 4}));
  EXPECT_EQ(*db.Rollback("r", 5), Nums({10, 30, 40}));
}

}  // namespace
}  // namespace ttra
