// Property tests for the fast read-path kernels: the hash-join operators
// must be observationally identical to their σ(×) / nested-loop
// definitions, copy-on-write reuse must hand back the input
// representation, and FINDSTATE must agree across every storage engine
// with the reconstruction cache on and off.

#include <gtest/gtest.h>

#include "historical/hoperators.h"
#include "lang/evaluator.h"
#include "rollback/commands.h"
#include "snapshot/operators.h"
#include "storage/state_log.h"
#include "workload/generator.h"

namespace ttra {
namespace {

namespace sops = snapshot_ops;
namespace hops = historical_ops;

// Join operands: name-disjoint schemes with like-typed key columns plus a
// payload column, so equality conjuncts across the operands are common.
Schema LeftSchema() {
  return *Schema::Make({{"a0", ValueType::kInt},
                        {"a1", ValueType::kInt},
                        {"a2", ValueType::kString}});
}

Schema RightSchema() {
  return *Schema::Make({{"b0", ValueType::kInt},
                        {"b1", ValueType::kInt},
                        {"b2", ValueType::kDouble}});
}

Predicate EquiPred() {
  return Predicate::Comparison(Operand::Attr("a0"), CompareOp::kEq,
                               Operand::Attr("b0"));
}

class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST_P(JoinEquivalenceTest, ThetaJoinMatchesSelectOverProduct) {
  workload::Generator gen(GetParam());
  // Alternate which operand is smaller so both build-side branches run.
  const size_t ln = GetParam() % 2 == 0 ? 40 : 12;
  const size_t rn = GetParam() % 2 == 0 ? 12 : 40;
  const SnapshotState lhs = gen.RandomState(LeftSchema(), ln);
  const SnapshotState rhs = gen.RandomState(RightSchema(), rn);
  const Schema product_schema = *LeftSchema().Concat(RightSchema());

  std::vector<Predicate> predicates = {
      EquiPred(),
      Predicate::And(EquiPred(),
                     Predicate::AttrCompare("a1", CompareOp::kLt,
                                            Value::Int(50))),
      Predicate::And(EquiPred(),
                     Predicate::Comparison(Operand::Attr("a1"),
                                           CompareOp::kEq,
                                           Operand::Attr("b1"))),
      // No usable equality conjunct: exercises the nested-loop fallback.
      Predicate::AttrCompare("b1", CompareOp::kGe, Value::Int(20)),
      Predicate::Or(EquiPred(), Predicate::False()),
      gen.RandomPredicate(product_schema, 3),
  };
  for (const Predicate& pred : predicates) {
    auto joined = sops::ThetaJoin(lhs, rhs, pred);
    auto product = sops::Product(lhs, rhs);
    ASSERT_TRUE(product.ok());
    auto reference = sops::Select(*product, pred);
    ASSERT_EQ(joined.ok(), reference.ok()) << pred.ToString();
    if (joined.ok()) {
      EXPECT_EQ(*joined, *reference) << pred.ToString();
    }
  }
}

TEST_P(JoinEquivalenceTest, HistoricalThetaJoinMatchesSelectOverProduct) {
  workload::Generator gen(GetParam() + 100);
  const HistoricalState lhs = gen.RandomHistoricalState(LeftSchema(), 25);
  const HistoricalState rhs = gen.RandomHistoricalState(RightSchema(), 25);
  const Schema product_schema = *LeftSchema().Concat(RightSchema());

  std::vector<Predicate> predicates = {
      EquiPred(),
      Predicate::And(EquiPred(),
                     Predicate::AttrCompare("b1", CompareOp::kGt,
                                            Value::Int(10))),
      Predicate::AttrCompare("a1", CompareOp::kLe, Value::Int(70)),
      gen.RandomPredicate(product_schema, 3),
  };
  for (const Predicate& pred : predicates) {
    auto joined = hops::ThetaJoin(lhs, rhs, pred);
    auto product = hops::Product(lhs, rhs);
    ASSERT_TRUE(product.ok());
    auto reference = hops::Select(*product, pred);
    ASSERT_EQ(joined.ok(), reference.ok()) << pred.ToString();
    if (joined.ok()) {
      EXPECT_EQ(*joined, *reference) << pred.ToString();
    }
  }
}

TEST_P(JoinEquivalenceTest, NaturalJoinMatchesNestedLoopReference) {
  workload::Generator gen(GetParam() + 200);
  // Operands share columns n0/n1; s and t are private payloads.
  const Schema left = *Schema::Make({{"n0", ValueType::kInt},
                                     {"s", ValueType::kString},
                                     {"n1", ValueType::kInt}});
  const Schema right = *Schema::Make({{"n1", ValueType::kInt},
                                      {"t", ValueType::kDouble},
                                      {"n0", ValueType::kInt}});
  const SnapshotState lhs = gen.RandomState(left, 35);
  const SnapshotState rhs = gen.RandomState(right, 35);

  auto joined = sops::NaturalJoin(lhs, rhs);
  ASSERT_TRUE(joined.ok());

  // Oracle: brute-force nested loop with the same schema rules.
  std::vector<Tuple> expected;
  for (const Tuple& a : lhs.tuples()) {
    for (const Tuple& b : rhs.tuples()) {
      if (a.at(0) == b.at(2) && a.at(2) == b.at(0)) {
        expected.push_back(Tuple{a.at(0), a.at(1), a.at(2), b.at(1)});
      }
    }
  }
  const Schema joined_schema = *Schema::Make({{"n0", ValueType::kInt},
                                              {"s", ValueType::kString},
                                              {"n1", ValueType::kInt},
                                              {"t", ValueType::kDouble}});
  auto reference = SnapshotState::Make(joined_schema, std::move(expected));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*joined, *reference);
}

TEST_P(JoinEquivalenceTest, HistoricalNaturalJoinMatchesNestedLoopReference) {
  workload::Generator gen(GetParam() + 300);
  const Schema left = *Schema::Make({{"k", ValueType::kInt},
                                     {"u", ValueType::kInt}});
  const Schema right = *Schema::Make({{"k", ValueType::kInt},
                                      {"v", ValueType::kInt}});
  const HistoricalState lhs = gen.RandomHistoricalState(left, 20);
  const HistoricalState rhs = gen.RandomHistoricalState(right, 20);

  auto joined = hops::NaturalJoin(lhs, rhs);
  ASSERT_TRUE(joined.ok());

  std::vector<HistoricalTuple> expected;
  for (const HistoricalTuple& a : lhs.tuples()) {
    for (const HistoricalTuple& b : rhs.tuples()) {
      if (!(a.tuple.at(0) == b.tuple.at(0))) continue;
      TemporalElement both = a.valid.Intersect(b.valid);
      if (both.empty()) continue;
      expected.push_back(HistoricalTuple{
          Tuple{a.tuple.at(0), a.tuple.at(1), b.tuple.at(1)},
          std::move(both)});
    }
  }
  const Schema joined_schema = *Schema::Make({{"k", ValueType::kInt},
                                              {"u", ValueType::kInt},
                                              {"v", ValueType::kInt}});
  auto reference = HistoricalState::Make(joined_schema, std::move(expected));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*joined, *reference);
}

// --- Copy-on-write fast paths -------------------------------------------------

TEST(CowFastPathTest, SelectKeepingEverythingReusesTheInputState) {
  workload::Generator gen(42);
  const SnapshotState state = gen.RandomState(LeftSchema(), 30);
  auto all = sops::Select(state, Predicate::True());
  ASSERT_TRUE(all.ok());
  // Same shared representation, not a copy.
  EXPECT_EQ(all->tuples().data(), state.tuples().data());

  auto none = sops::Select(
      state, Predicate::AttrCompare("a0", CompareOp::kLt, Value::Int(-1)));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(CowFastPathTest, HistoricalSelectKeepingEverythingReusesTheInput) {
  workload::Generator gen(43);
  const HistoricalState state = gen.RandomHistoricalState(LeftSchema(), 20);
  auto all = hops::Select(state, Predicate::True());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->tuples().data(), state.tuples().data());
}

TEST(CowFastPathTest, StateCopiesShareRepresentation) {
  workload::Generator gen(44);
  const SnapshotState state = gen.RandomState(LeftSchema(), 10);
  const SnapshotState copy = state;
  EXPECT_EQ(copy.tuples().data(), state.tuples().data());
  EXPECT_EQ(copy, state);
}

// --- Product guards -----------------------------------------------------------

TEST(ProductGuardTest, RejectsOverlappingAttributeNames) {
  workload::Generator gen(45);
  const SnapshotState lhs = gen.RandomState(LeftSchema(), 3);
  auto result = sops::Product(lhs, lhs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("disjoint"), std::string::npos)
      << result.status().message();

  auto hlhs = gen.RandomHistoricalState(LeftSchema(), 3);
  auto hresult = hops::Product(hlhs, hlhs);
  ASSERT_FALSE(hresult.ok());
  EXPECT_NE(hresult.status().message().find("disjoint"), std::string::npos);
}

TEST(ProductGuardTest, EmptyOperandsProduceEmptyProduct) {
  auto result = sops::Product(SnapshotState::Empty(LeftSchema()),
                              SnapshotState::Empty(RightSchema()));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

// --- FINDSTATE equivalence with the cache on and off --------------------------

class CacheEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 6));

TEST_P(CacheEquivalenceTest, AllEnginesAgreeWithCacheOnAndOff) {
  workload::Generator gen(GetParam() + 900);
  const Schema schema = gen.RandomSchema();
  const std::vector<StorageKind> kinds = {
      StorageKind::kFullCopy, StorageKind::kDelta, StorageKind::kCheckpoint,
      StorageKind::kReverseDelta};
  std::vector<std::unique_ptr<StateLog<SnapshotState>>> logs;
  for (StorageKind kind : kinds) {
    logs.push_back(MakeStateLog<SnapshotState>(kind, 4, /*cache=*/8));
    logs.push_back(MakeStateLog<SnapshotState>(kind, 4, /*cache=*/0));
  }

  SnapshotState state = gen.RandomState(schema, 20);
  TransactionNumber txn = 1;
  for (int i = 0; i < 30; ++i) {
    txn += 1 + gen.rng().Uniform(3);
    for (auto& log : logs) ASSERT_TRUE(log->Append(state, txn).ok());
    state = gen.MutateState(state, 0.3);
  }
  // Two probe rounds in a non-monotone order so cached reconstructions
  // from round one serve (and must not corrupt) round two.
  for (int round = 0; round < 2; ++round) {
    for (TransactionNumber delta = 0; delta <= txn + 1; ++delta) {
      const TransactionNumber probe =
          (round == 0) ? txn + 1 - delta : delta;
      auto expected = logs[0]->StateAt(probe);
      for (size_t i = 1; i < logs.size(); ++i) {
        auto got = logs[i]->StateAt(probe);
        ASSERT_EQ(expected != nullptr, got != nullptr)
            << "log " << i << " txn " << probe;
        if (expected != nullptr) {
          EXPECT_EQ(*expected, *got) << "log " << i << " txn " << probe;
        }
      }
    }
  }
}

TEST_P(CacheEquivalenceTest, DatabasesAgreeWithCacheOnAndOff) {
  workload::Generator gen(GetParam() + 950);
  auto commands =
      gen.RandomCommandStream("r", RelationType::kRollback, 25, 15, 0.3);
  Database cached(DatabaseOptions{StorageKind::kDelta, 16,
                                  /*findstate_cache_capacity=*/8});
  Database uncached(DatabaseOptions{StorageKind::kDelta, 16,
                                    /*findstate_cache_capacity=*/0});
  ASSERT_TRUE(ApplySentence(cached, commands).ok());
  ASSERT_TRUE(ApplySentence(uncached, commands).ok());
  for (int round = 0; round < 2; ++round) {
    for (TransactionNumber probe = 0;
         probe <= cached.transaction_number() + 1; ++probe) {
      auto a = cached.Rollback("r", probe);
      auto b = uncached.Rollback("r", probe);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << "txn " << probe;
    }
  }
}

// --- Evaluator fusion ---------------------------------------------------------

TEST(EvaluatorFusionTest, SelectOverProductMatchesUnfusedSemantics) {
  Database db;
  ASSERT_TRUE(lang::Run("define_relation(r, snapshot, (a: int, x: int));"
                        "modify_state(r, (a: int, x: int) "
                        "{(1, 10), (2, 20), (3, 30)});"
                        "define_relation(s, snapshot, (b: int, y: int));"
                        "modify_state(s, (b: int, y: int) "
                        "{(2, 200), (3, 300), (4, 400)});",
                        db, nullptr)
                  .ok());
  std::vector<lang::StateValue> outputs;
  ASSERT_TRUE(lang::Run(
                  "show(select[a = b](rho(r, inf) times rho(s, inf)));",
                  db, &outputs)
                  .ok());
  ASSERT_EQ(outputs.size(), 1u);
  const auto& state = std::get<SnapshotState>(outputs[0]);
  const Schema schema = *Schema::Make({{"a", ValueType::kInt},
                                       {"x", ValueType::kInt},
                                       {"b", ValueType::kInt},
                                       {"y", ValueType::kInt}});
  const SnapshotState expected = *SnapshotState::Make(
      schema,
      {Tuple{Value::Int(2), Value::Int(20), Value::Int(2), Value::Int(200)},
       Tuple{Value::Int(3), Value::Int(30), Value::Int(3), Value::Int(300)}});
  EXPECT_EQ(state, expected);
}

TEST(EvaluatorFusionTest, FusedSelectStillRejectsMixedOperands) {
  Database db;
  ASSERT_TRUE(lang::Run("define_relation(r, snapshot, (a: int));"
                        "define_relation(h, historical, (b: int));",
                        db, nullptr)
                  .ok());
  std::vector<lang::StateValue> outputs;
  Status status = lang::Run(
      "show(select[a = b](rho(r, inf) times hrho(h, inf)));", db, &outputs);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mixes snapshot and historical"),
            std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace ttra
