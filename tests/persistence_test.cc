#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "lang/evaluator.h"
#include "rollback/persistence.h"
#include "workload/generator.h"

namespace ttra {
namespace {

Database BuildSampleDb() {
  auto db = lang::EvalSentence(R"(
    define_relation(emp, rollback, (name: string, salary: int));
    modify_state(emp, (name: string, salary: int) {("ed", 100)});
    modify_state(emp, rho(emp, inf) union
                      (name: string, salary: int) {("amy", 200)});
    define_relation(now, snapshot, (n: int));
    modify_state(now, (n: int) {(7)});
    define_relation(hist, temporal, (name: string));
    modify_state(hist, (name: string) {("x") @ [0, 10)});
    modify_state(hist, (name: string) {("x") @ [0, 20)});
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return *std::move(db);
}

void ExpectDatabasesEqual(const Database& a, const Database& b) {
  EXPECT_EQ(a.transaction_number(), b.transaction_number());
  ASSERT_EQ(a.RelationNames(), b.RelationNames());
  for (const std::string& name : a.RelationNames()) {
    const Relation* ra = a.Find(name);
    const Relation* rb = b.Find(name);
    EXPECT_EQ(ra->type(), rb->type()) << name;
    EXPECT_EQ(ra->schema(), rb->schema()) << name;
    ASSERT_EQ(ra->history_length(), rb->history_length()) << name;
    for (size_t i = 0; i < ra->history_length(); ++i) {
      EXPECT_EQ(ra->TxnAt(i), rb->TxnAt(i)) << name;
      if (HoldsSnapshotStates(ra->type())) {
        EXPECT_EQ(*ra->SnapshotAt(ra->TxnAt(i)),
                  *rb->SnapshotAt(rb->TxnAt(i)))
            << name << " state " << i;
      } else {
        EXPECT_EQ(*ra->HistoricalAt(ra->TxnAt(i)),
                  *rb->HistoricalAt(rb->TxnAt(i)))
            << name << " state " << i;
      }
    }
  }
}

TEST(PersistenceTest, EncodeDecodeRoundTrip) {
  Database db = BuildSampleDb();
  const std::string bytes = EncodeDatabase(db);
  auto restored = DecodeDatabase(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectDatabasesEqual(db, *restored);
}

TEST(PersistenceTest, RestoredDatabaseContinuesCorrectly) {
  Database db = BuildSampleDb();
  auto restored = DecodeDatabase(EncodeDatabase(db));
  ASSERT_TRUE(restored.ok());
  // New work picks up at the preserved transaction counter.
  const TransactionNumber before = restored->transaction_number();
  ASSERT_TRUE(lang::Run(
      "modify_state(emp, select[salary > 150](rho(emp, inf)));", *restored)
          .ok());
  EXPECT_EQ(restored->transaction_number(), before + 1);
  EXPECT_EQ(restored->Rollback("emp")->size(), 1u);
  // Past states from before the save/restore boundary still answer.
  EXPECT_EQ(restored->Rollback("emp", 2)->size(), 1u);
}

TEST(PersistenceTest, EngineChangesAcrossSaveLoad) {
  Database db = BuildSampleDb();
  const std::string bytes = EncodeDatabase(db);
  for (StorageKind kind : {StorageKind::kFullCopy, StorageKind::kDelta,
                           StorageKind::kCheckpoint,
                           StorageKind::kReverseDelta}) {
    auto restored = DecodeDatabase(bytes, DatabaseOptions{kind, 4});
    ASSERT_TRUE(restored.ok()) << StorageKindName(kind);
    ExpectDatabasesEqual(db, *restored);
    EXPECT_EQ(restored->Find("emp")->storage_kind(), kind);
  }
}

TEST(PersistenceTest, SchemeEvolutionSurvives) {
  auto db = lang::EvalSentence(R"(
    define_relation(emp, rollback, (name: string));
    modify_state(emp, (name: string) {("ed")});
    modify_schema(emp, (name: string, dept: string));
    modify_state(emp, (name: string, dept: string) {("ed", "cs")});
  )");
  ASSERT_TRUE(db.ok());
  auto restored = DecodeDatabase(EncodeDatabase(*db));
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectDatabasesEqual(*db, *restored);
  EXPECT_EQ(restored->Find("emp")->schema_history().size(), 2u);
  EXPECT_EQ(restored->Rollback("emp", 2)->schema().size(), 1u);
  EXPECT_EQ(restored->Rollback("emp")->schema().size(), 2u);
}

TEST(PersistenceTest, EmptyDatabaseRoundTrips) {
  Database db;
  auto restored = DecodeDatabase(EncodeDatabase(db));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->transaction_number(), 0u);
  EXPECT_TRUE(restored->RelationNames().empty());
}

TEST(PersistenceTest, CorruptionDetectedAtEveryByte) {
  Database db = BuildSampleDb();
  const std::string good = EncodeDatabase(db);
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x3c);
    auto decoded = DecodeDatabase(bad);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << i << " undetected";
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption) << i;
    }
  }
}

TEST(PersistenceTest, TruncationDetected) {
  Database db = BuildSampleDb();
  const std::string good = EncodeDatabase(db);
  for (size_t keep = 0; keep < good.size(); keep += 7) {
    auto decoded =
        DecodeDatabase(std::string_view(good).substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << keep;
  }
}

TEST(PersistenceTest, TruncationAtEveryOffsetIsCorruption) {
  // A crash can cut the file anywhere; every cut must decode to
  // kCorruption — never crash, never yield a wrong database.
  Database db = BuildSampleDb();
  const std::string good = EncodeDatabase(db);
  for (size_t keep = 0; keep < good.size(); ++keep) {
    auto decoded = DecodeDatabase(std::string_view(good).substr(0, keep));
    ASSERT_FALSE(decoded.ok()) << "truncation at " << keep << " undetected";
    EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption)
        << "truncation at " << keep;
  }
}

TEST(PersistenceTest, EveryBitFlipInHeaderAndFirstFrameIsCorruption) {
  // Single-bit rot in the frame header (magic, version, checksum, length)
  // or the leading payload bytes must always surface as kCorruption.
  Database db = BuildSampleDb();
  const std::string good = EncodeDatabase(db);
  const size_t probe = std::min<size_t>(good.size(), 96);
  for (size_t byte = 0; byte < probe; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      auto decoded = DecodeDatabase(bad);
      ASSERT_FALSE(decoded.ok())
          << "flip of bit " << bit << " in byte " << byte << " undetected";
      EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(PersistenceTest, SaveAndLoadFile) {
  Database db = BuildSampleDb();
  const std::string path = ::testing::TempDir() + "/ttra_db_test.bin";
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  auto restored = LoadDatabase(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectDatabasesEqual(db, *restored);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatabase(path).ok());  // gone
}

class PersistencePropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PersistencePropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST_P(PersistencePropertyTest, RandomDatabasesRoundTrip) {
  workload::Generator gen(GetParam());
  Database db;
  auto r1 = gen.RandomCommandStream("alpha", RelationType::kRollback, 12, 15,
                                    0.3);
  auto r2 = gen.RandomCommandStream("beta", RelationType::kTemporal, 8, 10,
                                    0.3);
  auto r3 = gen.RandomCommandStream("gamma", RelationType::kSnapshot, 5, 8,
                                    0.5);
  ASSERT_TRUE(ApplySentence(db, r1).ok());
  ASSERT_TRUE(ApplySentence(db, r2).ok());
  ASSERT_TRUE(ApplySentence(db, r3).ok());
  auto restored = DecodeDatabase(EncodeDatabase(db),
                                 DatabaseOptions{StorageKind::kDelta, 8});
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectDatabasesEqual(db, *restored);
  // Re-encoding the restored database is byte-identical (canonical form).
  EXPECT_EQ(EncodeDatabase(db), EncodeDatabase(*restored));
}

}  // namespace
}  // namespace ttra
