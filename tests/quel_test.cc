#include <gtest/gtest.h>

#include "lang/evaluator.h"
#include "quel/quel.h"

namespace ttra::quel {
namespace {

using lang::Catalog;
using lang::StateValue;

class QuelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = lang::EvalSentence(R"(
      define_relation(emp, rollback, (name: string, salary: int));
      modify_state(emp, (name: string, salary: int)
                        {("ed", 100), ("rick", 200)});
    )");
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = *std::move(db);
    catalog_ = Catalog(db_);
  }

  /// Parses, compiles, and executes one Quel statement.
  Status RunQuel(std::string_view source,
                 std::vector<StateValue>* outputs = nullptr) {
    auto stmt = ParseQuel(source);
    if (!stmt.ok()) return stmt.status();
    auto compiled = CompileQuel(*stmt, Catalog(db_));
    if (!compiled.ok()) return compiled.status();
    return lang::ExecStmt(*compiled, db_, outputs);
  }

  SnapshotState Current() { return *db_.Rollback("emp"); }

  Database db_;
  Catalog catalog_;
};

// --- Parsing ------------------------------------------------------------------

TEST_F(QuelTest, ParsesAppend) {
  auto stmt = ParseQuel(R"(append to emp (name = "al", salary = 50))");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& append = std::get<AppendStmt>(*stmt);
  EXPECT_EQ(append.relation, "emp");
  ASSERT_EQ(append.values.size(), 2u);
  EXPECT_EQ(append.values[0].first, "name");
}

TEST_F(QuelTest, ParsesDeleteWithAndWithoutWhere) {
  auto with = ParseQuel("delete emp where salary < 100");
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(std::get<DeleteStmt>(*with).where.ToString(), "salary < 100");
  auto without = ParseQuel("delete emp");
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(std::get<DeleteStmt>(*without).where.IsTrueLiteral());
}

TEST_F(QuelTest, ParsesReplaceAndRetrieve) {
  auto rep = ParseQuel(
      R"(replace emp set salary = salary + 10 where name = "ed")");
  ASSERT_TRUE(rep.ok()) << rep.status();
  const auto& replace = std::get<ReplaceStmt>(*rep);
  EXPECT_EQ(replace.assignments.size(), 1u);
  auto ret = ParseQuel("retrieve emp (name) where salary > 150");
  ASSERT_TRUE(ret.ok());
  const auto& retrieve = std::get<RetrieveStmt>(*ret);
  EXPECT_EQ(retrieve.attributes, (std::vector<std::string>{"name"}));
}

TEST_F(QuelTest, ParseErrors) {
  EXPECT_FALSE(ParseQuel("append emp (x = 1)").ok());       // missing 'to'
  EXPECT_FALSE(ParseQuel("replace emp salary = 1").ok());   // missing 'set'
  EXPECT_FALSE(ParseQuel("frobnicate emp").ok());
  EXPECT_FALSE(ParseQuel("").ok());
}

TEST_F(QuelTest, ParsesProgramOfStatements) {
  auto stmts = ParseQuelProgram(R"(
    append to emp (name = "a", salary = 1);
    delete emp where salary < 1;
    retrieve emp
  )");
  ASSERT_TRUE(stmts.ok()) << stmts.status();
  EXPECT_EQ(stmts->size(), 3u);
}

// --- Compilation shape (the paper's mapping) -------------------------------------

TEST_F(QuelTest, AppendCompilesToUnionWithConstant) {
  auto stmt = ParseQuel(R"(append to emp (salary = 50, name = "al"))");
  ASSERT_TRUE(stmt.ok());
  auto compiled = CompileQuel(*stmt, catalog_);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  // modify_state(emp, ρ(emp, ∞) ∪ {("al", 50)}) — scheme order restored.
  EXPECT_EQ(lang::StmtToString(*compiled),
            "modify_state(emp, (rho(emp, inf) union "
            "(name: string, salary: int) {(\"al\", 50)}))");
}

TEST_F(QuelTest, DeleteCompilesToNegatedSelection) {
  auto stmt = ParseQuel("delete emp where salary < 100");
  ASSERT_TRUE(stmt.ok());
  auto compiled = CompileQuel(*stmt, catalog_);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(lang::StmtToString(*compiled),
            "modify_state(emp, select[not (salary < 100)](rho(emp, inf)))");
}

TEST_F(QuelTest, ReplaceCompilesToUnionOfUntouchedAndExtended) {
  auto stmt =
      ParseQuel(R"(replace emp set salary = salary * 2 where name = "ed")");
  ASSERT_TRUE(stmt.ok());
  auto compiled = CompileQuel(*stmt, catalog_);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(
      lang::StmtToString(*compiled),
      "modify_state(emp, (select[not (name = \"ed\")](rho(emp, inf)) union "
      "extend[salary = (salary * 2)](select[name = \"ed\"](rho(emp, "
      "inf)))))");
}

TEST_F(QuelTest, RetrieveCompilesToShow) {
  auto stmt = ParseQuel("retrieve emp (name) where salary > 150");
  ASSERT_TRUE(stmt.ok());
  auto compiled = CompileQuel(*stmt, catalog_);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(lang::StmtToString(*compiled),
            "show(project[name](select[salary > 150](rho(emp, inf))))");
}

// --- Compile-time checks ------------------------------------------------------------

TEST_F(QuelTest, AppendValidatesAssignments) {
  EXPECT_EQ(RunQuel("append to ghost (x = 1)").code(),
            ErrorCode::kUnknownIdentifier);
  EXPECT_EQ(RunQuel(R"(append to emp (name = "x"))").code(),
            ErrorCode::kInvalidArgument);  // salary unassigned
  EXPECT_EQ(RunQuel(R"(append to emp (name = "x", salary = 1, name = "y"))")
                .code(),
            ErrorCode::kInvalidArgument);  // duplicate
  EXPECT_EQ(
      RunQuel(R"(append to emp (name = "x", salary = 1, extra = 2))").code(),
      ErrorCode::kSchemaMismatch);
  EXPECT_EQ(
      RunQuel(R"(append to emp (name = "x", salary = salary + 1))").code(),
      ErrorCode::kInvalidArgument);  // non-constant value
}

TEST_F(QuelTest, ReplaceValidatesAttributes) {
  EXPECT_EQ(RunQuel("replace emp set ghost = 1").code(),
            ErrorCode::kSchemaMismatch);
  EXPECT_EQ(RunQuel("replace ghost set x = 1").code(),
            ErrorCode::kUnknownIdentifier);
}

// --- End-to-end semantics: the update operations behave like Quel's ---------------

TEST_F(QuelTest, AppendAddsTuple) {
  ASSERT_TRUE(RunQuel(R"(append to emp (name = "al", salary = 5 * 10))").ok());
  SnapshotState state = Current();
  EXPECT_EQ(state.size(), 3u);
  EXPECT_TRUE(state.Contains(Tuple{Value::String("al"), Value::Int(50)}));
}

TEST_F(QuelTest, DeleteRemovesMatching) {
  ASSERT_TRUE(RunQuel("delete emp where salary < 150").ok());
  SnapshotState state = Current();
  EXPECT_EQ(state.size(), 1u);
  EXPECT_TRUE(state.Contains(Tuple{Value::String("rick"), Value::Int(200)}));
}

TEST_F(QuelTest, DeleteWithoutWhereEmpties) {
  ASSERT_TRUE(RunQuel("delete emp").ok());
  EXPECT_TRUE(Current().empty());
}

TEST_F(QuelTest, ReplaceUpdatesMatchingOnly) {
  ASSERT_TRUE(
      RunQuel(R"(replace emp set salary = salary + 5 where name = "ed")")
          .ok());
  SnapshotState state = Current();
  EXPECT_TRUE(state.Contains(Tuple{Value::String("ed"), Value::Int(105)}));
  EXPECT_TRUE(state.Contains(Tuple{Value::String("rick"), Value::Int(200)}));
}

TEST_F(QuelTest, ReplaceWithoutWhereUpdatesAll) {
  ASSERT_TRUE(RunQuel("replace emp set salary = 0").ok());
  const SnapshotState state = Current();
  for (const Tuple& t : state.tuples()) {
    EXPECT_EQ(t.at(1), Value::Int(0));
  }
}

TEST_F(QuelTest, RetrieveProducesOutput) {
  std::vector<StateValue> outputs;
  ASSERT_TRUE(RunQuel("retrieve emp (name) where salary > 150", &outputs).ok());
  ASSERT_EQ(outputs.size(), 1u);
  const auto& state = std::get<SnapshotState>(outputs[0]);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_TRUE(state.Contains(Tuple{Value::String("rick")}));
}

TEST_F(QuelTest, UpdatesAreTransactionsVisibleToRollback) {
  // Each Quel update is one modify_state, hence one transaction — the
  // paper's benefit: the calculus update maps onto the algebra and the
  // rollback operator sees every step.
  const TransactionNumber before = db_.transaction_number();
  ASSERT_TRUE(RunQuel(R"(append to emp (name = "a", salary = 1))").ok());
  ASSERT_TRUE(RunQuel("delete emp where salary >= 100").ok());
  EXPECT_EQ(db_.transaction_number(), before + 2);
  EXPECT_EQ(db_.Rollback("emp", before)->size(), 2u);
  EXPECT_EQ(db_.Rollback("emp", before + 1)->size(), 3u);
  EXPECT_EQ(db_.Rollback("emp", before + 2)->size(), 1u);
}

TEST_F(QuelTest, CompileQuelProgramRunsEndToEnd) {
  auto program = CompileQuelProgram(R"(
    append to emp (name = "a", salary = 10);
    replace emp set salary = salary + 1 where name = "a";
    retrieve emp (salary) where name = "a"
  )", catalog_);
  ASSERT_TRUE(program.ok()) << program.status();
  std::vector<StateValue> outputs;
  ASSERT_TRUE(lang::ExecProgram(*program, db_, &outputs).ok());
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(std::get<SnapshotState>(outputs[0])
                  .Contains(Tuple{Value::Int(11)}));
}

// --- TQuel-style temporal clauses -------------------------------------------------

class QuelTemporalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = lang::EvalSentence(R"(
      define_relation(emp, rollback, (name: string, salary: int));
      modify_state(emp, (name: string, salary: int) {("ed", 100)});
      modify_state(emp, (name: string, salary: int)
                        {("ed", 100), ("rick", 200)});
      define_relation(hist, temporal, (name: string));
      modify_state(hist, (name: string) {("ed") @ [0, 10)});
      modify_state(hist, (name: string) {("ed") @ [0, 10),
                                         ("rick") @ [5, 25)});
    )");
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = *std::move(db);
  }

  Result<StateValue> RunRetrieve(std::string_view source) {
    auto stmt = ParseQuel(source);
    if (!stmt.ok()) return stmt.status();
    auto compiled = CompileQuel(*stmt, Catalog(db_));
    if (!compiled.ok()) return compiled.status();
    std::vector<StateValue> outputs;
    TTRA_RETURN_IF_ERROR(lang::ExecStmt(*compiled, db_, &outputs));
    if (outputs.size() != 1) return InternalError("expected one output");
    return outputs[0];
  }

  Database db_;
};

TEST_F(QuelTemporalTest, AsOfRollsBack) {
  auto now = RunRetrieve("retrieve emp");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(std::get<SnapshotState>(*now).size(), 2u);
  auto past = RunRetrieve("retrieve emp as of 2");
  ASSERT_TRUE(past.ok()) << past.status();
  EXPECT_EQ(std::get<SnapshotState>(*past).size(), 1u);
}

TEST_F(QuelTemporalTest, AsOfComposesWithWhereAndProjection) {
  auto result =
      RunRetrieve("retrieve emp (name) as of 3 where salary >= 200");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& state = std::get<SnapshotState>(*result);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_TRUE(state.Contains(Tuple{Value::String("rick")}));
}

TEST_F(QuelTemporalTest, WhenOverlapsSlicesValidTime) {
  auto result = RunRetrieve("retrieve hist when overlaps [0, 5)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& state = std::get<HistoricalState>(*result);
  EXPECT_EQ(state.size(), 1u);  // only ed's history intersects [0, 5)
  EXPECT_EQ(state.ValidTimeOf(Tuple{Value::String("ed")}),
            TemporalElement::Span(0, 5));
}

TEST_F(QuelTemporalTest, WhenAndAsOfTogether) {
  // As of txn 5 the database only knew ed; rick's fact arrived at txn 6.
  auto result =
      RunRetrieve("retrieve hist as of 5 when overlaps [0, inf)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(std::get<HistoricalState>(*result).size(), 1u);
  auto later = RunRetrieve("retrieve hist as of 6 when overlaps [0, inf)");
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(std::get<HistoricalState>(*later).size(), 2u);
}

TEST_F(QuelTemporalTest, ClauseTypeRules) {
  EXPECT_EQ(RunRetrieve("retrieve emp when overlaps [0, 5)").status().code(),
            ErrorCode::kTypeMismatch);
  auto db2 = lang::EvalSentence(
      "define_relation(s, snapshot, (n: int));"
      "modify_state(s, (n: int) {(1)});");
  ASSERT_TRUE(db2.ok());
  auto stmt = ParseQuel("retrieve s as of 1");
  ASSERT_TRUE(stmt.ok());
  auto compiled = CompileQuel(*stmt, Catalog(*db2));
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), ErrorCode::kInvalidRollback);
}

TEST_F(QuelTemporalTest, ParsesMultiIntervalWindows) {
  auto stmt = ParseQuel("retrieve hist when overlaps [0, 3) u [20, inf)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& retrieve = std::get<RetrieveStmt>(*stmt);
  ASSERT_TRUE(retrieve.when_overlaps.has_value());
  EXPECT_EQ(retrieve.when_overlaps->intervals().size(), 2u);
}

// --- Aggregate clause ---------------------------------------------------------------

TEST_F(QuelTest, ComputeCompilesToSummarize) {
  auto stmt = ParseQuel(
      "retrieve emp compute n = count, total = sum(salary) by dept "
      "where salary > 0");
  // 'dept' is not in the scheme — but compilation does not resolve
  // attributes for compute; evaluation will. Use a schema-valid variant:
  stmt = ParseQuel(
      "retrieve emp compute n = count, total = sum(salary) where salary > 0");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto compiled = CompileQuel(*stmt, catalog_);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(lang::StmtToString(*compiled),
            "show(summarize[; n = count, total = sum(salary)]"
            "(select[salary > 0](rho(emp, inf))))");
}

TEST_F(QuelTest, ComputeEvaluates) {
  std::vector<StateValue> outputs;
  ASSERT_TRUE(
      RunQuel("retrieve emp compute n = count, hi = max(salary)", &outputs)
          .ok());
  ASSERT_EQ(outputs.size(), 1u);
  const auto& state = std::get<SnapshotState>(outputs[0]);
  ASSERT_EQ(state.size(), 1u);
  EXPECT_EQ(state.tuples()[0], (Tuple{Value::Int(2), Value::Int(200)}));
}

TEST_F(QuelTest, ComputeByGroups) {
  // Add a second cs-row so grouping matters.
  ASSERT_TRUE(RunQuel(R"(append to emp (name = "al", salary = 100))").ok());
  std::vector<StateValue> outputs;
  ASSERT_TRUE(
      RunQuel("retrieve emp compute n = count by salary", &outputs).ok());
  const auto& state = std::get<SnapshotState>(outputs[0]);
  EXPECT_EQ(state.size(), 2u);  // groups: salary 100 (×2), salary 200 (×1)
  EXPECT_TRUE(state.Contains(Tuple{Value::Int(100), Value::Int(2)}));
  EXPECT_TRUE(state.Contains(Tuple{Value::Int(200), Value::Int(1)}));
}

TEST_F(QuelTest, ComputeRejectsAttributeList) {
  EXPECT_FALSE(ParseQuel("retrieve emp (name) compute n = count").ok());
}

// --- Oracle test: the compiled algebra matches a direct reference ---------------
// --- implementation of the update semantics. ------------------------------------

TEST_F(QuelTest, CompiledSemanticsMatchReferenceImplementation) {
  // Reference: delete = filter, computed directly on the tuple set.
  SnapshotState before = Current();
  ASSERT_TRUE(RunQuel("delete emp where salary >= 200").ok());
  std::vector<Tuple> expected;
  for (const Tuple& t : before.tuples()) {
    if (!(t.at(1).AsInt() >= 200)) expected.push_back(t);
  }
  EXPECT_EQ(Current(),
            *SnapshotState::Make(before.schema(), std::move(expected)));
}

}  // namespace
}  // namespace ttra::quel
